//! Cross-crate integration tests: the measured pipeline
//! (emulation → measurement → Algorithm 2 → Algorithm 1).
//!
//! These are short (10–20 s simulated) versions of the §6.3 experiments —
//! the full-length regenerations live in `nni-bench`'s binaries.

use netneutrality::core::{identify, Config, Observations};
use netneutrality::emu::{
    link_params, measured_routes, policer_at_fraction, CcKind, RouteId, SimConfig, SimReport,
    Simulator, SizeDist, TrafficSpec,
};
use netneutrality::measure::{MeasuredObservations, NormalizeConfig};
use netneutrality::topology::library::topology_a;
use netneutrality::topology::{PathId, PathSet};

fn run_dumbbell(policing: Option<f64>, duration_s: f64, seed: u64) -> SimReport {
    let paper = topology_a(0.05, 0.05);
    let g = &paper.topology;
    let l5 = g.link_by_name("l5").unwrap();
    let mechanisms = match policing {
        Some(frac) => vec![policer_at_fraction(g, l5, 1, frac, 0.01)],
        None => vec![],
    };
    let cfg = SimConfig {
        duration_s,
        seed,
        ..SimConfig::default()
    };
    let mut sim = Simulator::new(link_params(g, &mechanisms), measured_routes(g), 4, 2, cfg);
    for path in g.path_ids() {
        let c2 = paper.classes[1].contains(&path);
        sim.add_traffic(TrafficSpec {
            route: RouteId(path.index() as u32),
            class: c2 as u8,
            cc: CcKind::Cubic.into(),
            size: SizeDist::ParetoMean {
                mean_bytes: 10e6 / 8.0,
                shape: 1.5,
            },
            mean_gap_s: 10.0,
            parallel: 20,
        });
    }
    sim.run()
}

#[test]
fn policing_produces_class_skewed_congestion() {
    let report = run_dumbbell(Some(0.2), 20.0, 1);
    let c1 = report.log.congestion_probability(PathId(0), 0.01)
        + report.log.congestion_probability(PathId(1), 0.01);
    let c2 = report.log.congestion_probability(PathId(2), 0.01)
        + report.log.congestion_probability(PathId(3), 0.01);
    assert!(
        c2 > c1 + 0.3,
        "policed class must congest far more: c1 sum {c1:.3}, c2 sum {c2:.3}"
    );
}

#[test]
fn measured_inference_detects_policing_and_clears_neutral() {
    let paper = topology_a(0.05, 0.05);
    let g = &paper.topology;
    let l5 = g.link_by_name("l5").unwrap();

    let policed = run_dumbbell(Some(0.2), 20.0, 2);
    let obs = MeasuredObservations::new(&policed.log, NormalizeConfig::default());
    let result = identify(g, &obs, Config::clustered());
    assert!(result.network_is_nonneutral(), "policing must be detected");
    assert!(result.nonneutral.iter().any(|s| s.contains(l5)));

    let neutral = run_dumbbell(None, 20.0, 2);
    let obs = MeasuredObservations::new(&neutral.log, NormalizeConfig::default());
    let result = identify(g, &obs, Config::clustered());
    assert!(
        !result.network_is_nonneutral(),
        "neutral network must not be accused"
    );
}

#[test]
fn throttled_paths_congest_jointly() {
    // §3.3's giveaway: the two policed paths are congestion-free together —
    // y({p3,p4}) is close to y({p3}), far from y({p3}) + y({p4}).
    let report = run_dumbbell(Some(0.2), 20.0, 3);
    let obs = MeasuredObservations::new(&report.log, NormalizeConfig::default());
    let group: Vec<PathId> = (0..4).map(PathId).collect();
    let y3 = obs.pathset_perf(&group, &PathSet::single(PathId(2)));
    let y4 = obs.pathset_perf(&group, &PathSet::single(PathId(3)));
    let y34 = obs.pathset_perf(&group, &PathSet::pair(PathId(2), PathId(3)));
    assert!(y3 > 0.1 && y4 > 0.1, "both policed paths congested");
    let independent = y3 + y4;
    assert!(
        y34 < 0.8 * independent,
        "joint congestion must show correlation: y34 {y34:.3} vs independent {independent:.3}"
    );
}

#[test]
fn emulation_is_deterministic_end_to_end() {
    let a = run_dumbbell(Some(0.3), 10.0, 9);
    let b = run_dumbbell(Some(0.3), 10.0, 9);
    assert_eq!(a.segments_sent, b.segments_sent);
    assert_eq!(a.segments_dropped, b.segments_dropped);
    for p in 0..4 {
        assert_eq!(a.log.total_sent(PathId(p)), b.log.total_sent(PathId(p)));
        assert_eq!(a.log.total_lost(PathId(p)), b.log.total_lost(PathId(p)));
    }
}

#[test]
fn ground_truth_isolates_the_policer() {
    let paper = topology_a(0.05, 0.05);
    let g = &paper.topology;
    let l5 = g.link_by_name("l5").unwrap();
    let report = run_dumbbell(Some(0.2), 20.0, 4);
    // Only the shared link drops packets: access links are 1 Gb/s.
    for l in g.link_ids() {
        let dropped = report.link_truth.total_dropped(l);
        if l == l5 {
            assert!(dropped > 0, "the policed bottleneck must drop");
        } else {
            assert_eq!(dropped, 0, "access link {l} must not drop");
        }
    }
    // And within l5, class 2 suffers far more often than class 1.
    let p1 = report.link_truth.congestion_probability(l5, 0, 0.01);
    let p2 = report.link_truth.congestion_probability(l5, 1, 0.01);
    assert!(
        p2 > p1 + 0.3,
        "class skew at the link: c1 {p1:.3} c2 {p2:.3}"
    );
}

#[test]
fn loss_threshold_sweep_keeps_the_verdict() {
    // §6.5: thresholds from Table 1 must not flip the verdict.
    let paper = topology_a(0.05, 0.05);
    let g = &paper.topology;
    // 30 s (not the 20 s the other tests use): at the loosest threshold
    // (10%) the verdict needs the larger interval count to be stable.
    let report = run_dumbbell(Some(0.2), 30.0, 5);
    for thr in [0.01, 0.05, 0.10] {
        let obs = MeasuredObservations::new(
            &report.log,
            NormalizeConfig {
                loss_threshold: thr,
                seed: 77,
                delay: None,
            },
        );
        let result = identify(g, &obs, Config::clustered());
        assert!(
            result.network_is_nonneutral(),
            "verdict flipped at threshold {thr}"
        );
    }
}
