//! Cross-crate integration tests: the exact-mode theory pipeline
//! (topology → ground truth → equivalent network → observability →
//! slices → Algorithm 1 → metrics).

use netneutrality::core::{
    evaluate, identify, lemma3_condition, seq_nonneutral, seq_top_class, slice_for,
    system4_unsolvable, theorem1, unsolvable_over_power_set, Classes, Config, EquivalentNetwork,
    ExactOracle, LinkPerf, NetworkPerf,
};
use netneutrality::topology::library::{
    dumbbell, figure1, figure2, figure4, figure5, topology_a, topology_b, PaperTopology,
};
use netneutrality::topology::LinkSeq;

/// Per-link `(name, class-1 number, class-2 number)` ground-truth deltas.
type Deltas = Vec<(&'static str, f64, f64)>;

fn two_class_truth(t: &PaperTopology, deltas: &[(&str, f64, f64)]) -> (Classes, NetworkPerf) {
    let classes = Classes::new(&t.topology, t.classes.clone()).unwrap();
    let mut perf = NetworkPerf::congestion_free(&t.topology, 2);
    for &(name, x1, x2) in deltas {
        let l = t.topology.link_by_name(name).unwrap();
        perf = perf.with_link(l, LinkPerf::per_class(vec![x1, x2]));
    }
    (classes, perf)
}

#[test]
fn theorem1_matches_brute_force_on_all_paper_figures() {
    let cases: Vec<(PaperTopology, Deltas, bool)> = vec![
        (figure1(), vec![("l1", 0.0, 0.5)], true),
        (figure2(), vec![("l1", 0.0, 0.5)], false),
        (figure4(), vec![("l1", 0.0, 0.4), ("l2", 0.0, 0.2)], true),
        (figure5(), vec![("l1", 0.0, (2.0_f64).ln())], true),
    ];
    for (t, deltas, expected) in cases {
        let (classes, perf) = two_class_truth(&t, &deltas);
        let th = theorem1(&t.topology, &classes, &perf).observable;
        let brute = unsolvable_over_power_set(&t.topology, &classes, &perf);
        assert_eq!(th, expected, "Theorem 1 verdict");
        assert_eq!(brute, expected, "brute-force verdict");
    }
}

#[test]
fn full_pipeline_on_figure4_matches_section5() {
    let t = figure4();
    let (classes, perf) = two_class_truth(&t, &[("l1", 0.0, 0.4), ("l2", 0.0, 0.2)]);
    let g = &t.topology;
    let l1 = g.link_by_name("l1").unwrap();
    let l2 = g.link_by_name("l2").unwrap();

    // Lemma 3's hypotheses hold for ⟨l1⟩.
    let s = slice_for(g, &LinkSeq::single(l1)).unwrap();
    let top = seq_top_class(&perf, &s.tau);
    assert!(seq_nonneutral(&perf, &s.tau));
    assert!(lemma3_condition(&s, &classes, top));

    // Lemma 3 ⇒ System 4 unsolvable.
    let oracle = ExactOracle::new(EquivalentNetwork::build(g, &classes, &perf));
    assert!(system4_unsolvable(g, &s, &oracle, 1e-9));

    // Algorithm 1 returns exactly {⟨l1⟩, ⟨l1,l2⟩} with the §5 metrics.
    let result = identify(g, &oracle, Config::exact());
    let mut got = result.nonneutral.clone();
    got.sort();
    let mut want = vec![LinkSeq::single(l1), LinkSeq::new(vec![l1, l2])];
    want.sort();
    assert_eq!(got, want);
    let q = evaluate(g, &result.nonneutral, &[l1, l2]);
    assert_eq!(q.false_negative_rate, 0.0);
    assert_eq!(q.false_positive_rate, 0.0);
    assert!((q.granularity - 1.5).abs() < 1e-12);
}

#[test]
fn exact_mode_never_accuses_a_neutral_network() {
    for t in [
        figure1(),
        figure4(),
        topology_a(0.05, 0.05),
        topology_b(),
        dumbbell(3, 3),
    ] {
        let classes = Classes::new(&t.topology, t.classes.clone()).unwrap();
        // Arbitrary neutral performance numbers.
        let xs: Vec<f64> = (0..t.topology.link_count())
            .map(|i| 0.01 * (i % 7) as f64)
            .collect();
        let perf = NetworkPerf::neutral(&xs, classes.count());
        let oracle = ExactOracle::new(EquivalentNetwork::build(&t.topology, &classes, &perf));
        let result = identify(&t.topology, &oracle, Config::exact());
        assert!(
            result.nonneutral.is_empty(),
            "false positives on a neutral network in {} slices",
            result.verdicts.len()
        );
    }
}

#[test]
fn topology_b_exact_pipeline_reaches_paper_metrics() {
    let t = topology_b();
    let classes = Classes::new(&t.topology, t.classes.clone()).unwrap();
    let mut perf = NetworkPerf::congestion_free(&t.topology, 2);
    for &l in &t.nonneutral_links {
        perf = perf.with_link(l, LinkPerf::per_class(vec![0.002, 0.04]));
    }
    let oracle = ExactOracle::new(EquivalentNetwork::build(&t.topology, &classes, &perf));
    let result = identify(&t.topology, &oracle, Config::exact());
    let q = evaluate(&t.topology, &result.nonneutral, &t.nonneutral_links);
    assert_eq!(q.false_negative_rate, 0.0, "all three policers found");
    assert_eq!(q.false_positive_rate, 0.0, "no neutral link accused");
    assert!(q.granularity >= 1.0 && q.granularity <= 4.0);
}

#[test]
fn clustered_mode_agrees_with_exact_mode_on_clean_oracles() {
    let t = topology_a(0.05, 0.05);
    let classes = Classes::new(&t.topology, t.classes.clone()).unwrap();
    let l5 = t.topology.link_by_name("l5").unwrap();
    let perf = NetworkPerf::congestion_free(&t.topology, 2)
        .with_link(l5, LinkPerf::per_class(vec![0.01, 0.3]));
    let oracle = ExactOracle::new(EquivalentNetwork::build(&t.topology, &classes, &perf));
    let exact = identify(&t.topology, &oracle, Config::exact());
    let clustered = identify(&t.topology, &oracle, Config::clustered());
    assert_eq!(exact.nonneutral, clustered.nonneutral);
    assert!(exact.nonneutral.iter().any(|s| s.contains(l5)));
}

#[test]
fn masked_violation_stays_invisible_end_to_end() {
    // Figure 2: the violation is structurally non-observable; neither mode
    // may flag anything.
    let t = figure2();
    let (classes, perf) = two_class_truth(&t, &[("l1", 0.0, 0.9)]);
    let oracle = ExactOracle::new(EquivalentNetwork::build(&t.topology, &classes, &perf));
    for cfg in [Config::exact(), Config::clustered()] {
        let result = identify(&t.topology, &oracle, cfg);
        assert!(
            result.nonneutral.is_empty(),
            "non-observable violation flagged"
        );
    }
}
