//! Descriptive statistics: mean, variance, quantiles, five-number summaries.
//!
//! Figure 10 of the paper reports per-link and per-link-sequence performance
//! as boxplots; [`FiveNumber`] is the exact data a boxplot renders.

/// Arithmetic mean; 0 for empty input.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Unbiased sample variance; 0 for fewer than two samples.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64
}

/// Sample standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Linear-interpolation quantile (`q` in `[0, 1]`) of unsorted data.
///
/// # Panics
/// Panics if `xs` is empty or `q` is outside `[0, 1]`.
pub fn quantile(xs: &[f64], q: f64) -> f64 {
    assert!(!xs.is_empty(), "quantile of empty data");
    assert!((0.0..=1.0).contains(&q), "quantile must be within [0, 1]");
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in quantile input"));
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Median (0.5 quantile).
pub fn median(xs: &[f64]) -> f64 {
    quantile(xs, 0.5)
}

/// The five numbers a boxplot renders: min, first quartile, median, third
/// quartile, max.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FiveNumber {
    pub min: f64,
    pub q1: f64,
    pub median: f64,
    pub q3: f64,
    pub max: f64,
}

impl FiveNumber {
    /// Computes the five-number summary of a non-empty sample.
    ///
    /// # Panics
    /// Panics if `xs` is empty.
    pub fn of(xs: &[f64]) -> FiveNumber {
        FiveNumber {
            min: quantile(xs, 0.0),
            q1: quantile(xs, 0.25),
            median: quantile(xs, 0.5),
            q3: quantile(xs, 0.75),
            max: quantile(xs, 1.0),
        }
    }

    /// Interquartile range.
    pub fn iqr(&self) -> f64 {
        self.q3 - self.q1
    }

    /// Renders as the compact `min/q1/med/q3/max` text form used by the
    /// experiment binaries.
    pub fn render(&self) -> String {
        format!(
            "{:.3}/{:.3}/{:.3}/{:.3}/{:.3}",
            self.min, self.q1, self.median, self.q3, self.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_of_simple_sequence() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn variance_of_constant_is_zero() {
        assert_eq!(variance(&[4.0, 4.0, 4.0]), 0.0);
    }

    #[test]
    fn variance_known_value() {
        // var([1,2,3,4]) = 5/3 (unbiased)
        assert!((variance(&[1.0, 2.0, 3.0, 4.0]) - 5.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn quantile_interpolates() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 1.0), 4.0);
        assert!((quantile(&xs, 0.5) - 2.5).abs() < 1e-12);
        assert!((quantile(&xs, 0.25) - 1.75).abs() < 1e-12);
    }

    #[test]
    fn median_of_odd_sample_is_middle() {
        assert_eq!(median(&[5.0, 1.0, 3.0]), 3.0);
    }

    #[test]
    fn five_number_summary_ordered() {
        let f = FiveNumber::of(&[3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0]);
        assert!(f.min <= f.q1 && f.q1 <= f.median && f.median <= f.q3 && f.q3 <= f.max);
        assert_eq!(f.min, 1.0);
        assert_eq!(f.max, 9.0);
        assert!(f.iqr() >= 0.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn quantile_of_empty_panics() {
        quantile(&[], 0.5);
    }
}
