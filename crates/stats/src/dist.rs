//! Samplers for the traffic model of §6.1.
//!
//! *"Each pair of communicating end-hosts starts a number of parallel TCP
//! flows with the transfer size following a Pareto distribution; when a TCP
//! flow ends, a new one starts after an idle time that is governed by an
//! exponential distribution."* (citing the Crovella–Bestavros self-similarity
//! evidence \[9\]).
//!
//! Both samplers use inverse-transform sampling over a caller-supplied RNG so
//! every experiment is reproducible from its seed.

use rand::Rng;

/// Pareto distribution with shape `alpha` and scale `x_min` (the minimum).
///
/// Mean is `alpha * x_min / (alpha - 1)` for `alpha > 1`. Flow-size modelling
/// conventionally uses `alpha` around 1.2–1.5 (heavy-tailed, finite mean).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pareto {
    alpha: f64,
    x_min: f64,
}

impl Pareto {
    /// Creates a Pareto sampler.
    ///
    /// # Panics
    /// Panics unless `alpha > 1` (finite mean required to target a mean flow
    /// size) and `x_min > 0`.
    pub fn new(alpha: f64, x_min: f64) -> Pareto {
        assert!(alpha > 1.0, "Pareto shape must exceed 1 for a finite mean");
        assert!(x_min > 0.0, "Pareto scale must be positive");
        Pareto { alpha, x_min }
    }

    /// Creates a Pareto sampler with shape `alpha` whose *mean* is `mean`.
    ///
    /// This is the form the experiments use: Table 1/2 specify the *mean*
    /// flow size (1 Mb … 10 Gb); the scale is derived.
    pub fn with_mean(alpha: f64, mean: f64) -> Pareto {
        assert!(alpha > 1.0, "Pareto shape must exceed 1 for a finite mean");
        assert!(mean > 0.0, "mean must be positive");
        let x_min = mean * (alpha - 1.0) / alpha;
        Pareto::new(alpha, x_min)
    }

    /// Theoretical mean.
    pub fn mean(&self) -> f64 {
        self.alpha * self.x_min / (self.alpha - 1.0)
    }

    /// Minimum possible sample.
    pub fn x_min(&self) -> f64 {
        self.x_min
    }

    /// Draws one sample via inverse transform: `x_min * u^{-1/alpha}`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // Draw u in (0, 1]; u = 0 would map to infinity.
        let u: f64 = 1.0 - rng.gen::<f64>();
        self.x_min * u.powf(-1.0 / self.alpha)
    }
}

/// Exponential distribution parameterised by its mean.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    mean: f64,
}

impl Exponential {
    /// Creates an exponential sampler with the given mean.
    ///
    /// # Panics
    /// Panics unless `mean > 0`.
    pub fn with_mean(mean: f64) -> Exponential {
        assert!(mean > 0.0, "mean must be positive");
        Exponential { mean }
    }

    /// Theoretical mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Draws one sample via inverse transform: `-mean * ln(u)`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = 1.0 - rng.gen::<f64>();
        -self.mean * u.ln()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn pareto_samples_respect_minimum() {
        let p = Pareto::new(1.5, 2.0);
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            assert!(p.sample(&mut rng) >= 2.0);
        }
    }

    #[test]
    fn pareto_with_mean_hits_target_mean() {
        let p = Pareto::with_mean(2.5, 10.0);
        assert!((p.mean() - 10.0).abs() < 1e-12);
        let mut rng = StdRng::seed_from_u64(42);
        let n = 200_000;
        let sum: f64 = (0..n).map(|_| p.sample(&mut rng)).sum();
        let empirical = sum / n as f64;
        // alpha = 2.5 has finite variance, the sample mean converges well.
        assert!(
            (empirical - 10.0).abs() < 0.5,
            "empirical mean {empirical} too far from 10"
        );
    }

    #[test]
    fn exponential_mean_converges() {
        let e = Exponential::with_mean(3.0);
        let mut rng = StdRng::seed_from_u64(11);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| e.sample(&mut rng)).sum();
        assert!((sum / n as f64 - 3.0).abs() < 0.1);
    }

    #[test]
    fn exponential_samples_nonnegative() {
        let e = Exponential::with_mean(0.5);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            assert!(e.sample(&mut rng) >= 0.0);
        }
    }

    #[test]
    fn samplers_are_deterministic_given_seed() {
        let p = Pareto::with_mean(1.3, 5.0);
        let mut a = StdRng::seed_from_u64(99);
        let mut b = StdRng::seed_from_u64(99);
        for _ in 0..100 {
            assert_eq!(p.sample(&mut a), p.sample(&mut b));
        }
    }

    #[test]
    #[should_panic(expected = "shape must exceed 1")]
    fn pareto_rejects_infinite_mean_shape() {
        Pareto::new(0.9, 1.0);
    }
}
