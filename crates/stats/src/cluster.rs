//! Two-cluster classification of one-dimensional "unsolvability" scores.
//!
//! §6.2 of the paper: *"Based on this unsolvability, we assign the system to
//! one of two clusters using standard clustering; we decide that the system
//! 'has a solution' when it belongs to the low-unsolvability cluster."*
//!
//! A naive 2-means always produces two clusters, even over pure noise — which
//! would misclassify half of a fully neutral network's slices as non-neutral.
//! The paper reports zero false positives across every experiment, so its
//! clustering implicitly refuses to split when the two candidate clusters are
//! not meaningfully separated. [`SeparationGuard`] makes that rule explicit
//! and tunable (the `exp_robustness` bench sweeps it).

/// Assignment of each score to the low (`false`) or high (`true`) cluster.
#[derive(Debug, Clone, PartialEq)]
pub struct TwoClusters {
    /// `true` entries belong to the high-value cluster.
    pub high: Vec<bool>,
    /// Centroid of the low cluster.
    pub low_centroid: f64,
    /// Centroid of the high cluster (equals `low_centroid` when degenerate).
    pub high_centroid: f64,
    /// Whether the guard collapsed everything into the low cluster.
    pub collapsed: bool,
}

impl TwoClusters {
    /// Number of entries assigned to the high cluster.
    pub fn high_count(&self) -> usize {
        self.high.iter().filter(|&&h| h).count()
    }
}

/// Minimum-separation rule that prevents splitting pure noise.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SeparationGuard {
    /// Absolute floor: centroids closer than this are one cluster.
    ///
    /// Unsolvability scores are differences of `-ln P(congestion-free)`
    /// estimates, so `0.02` ≈ a 2% disagreement in congestion-free
    /// probability — comfortably above sampling noise at ≥1200 intervals.
    pub abs_floor: f64,
    /// Relative factor: the high centroid must exceed
    /// `rel_factor * low_centroid` for the split to stand.
    pub rel_factor: f64,
}

impl Default for SeparationGuard {
    fn default() -> Self {
        SeparationGuard {
            abs_floor: 0.02,
            rel_factor: 3.0,
        }
    }
}

impl SeparationGuard {
    /// A guard that never collapses (pure 2-means, for testing).
    pub fn off() -> Self {
        SeparationGuard {
            abs_floor: 0.0,
            rel_factor: 0.0,
        }
    }

    fn permits(&self, low: f64, high: f64) -> bool {
        let gap = high - low;
        gap > self.abs_floor && high > self.rel_factor * low
    }
}

/// Exact 1-D 2-means: scores are sorted and every split point is evaluated;
/// the split minimising within-cluster sum of squares wins. With the guard,
/// insufficiently separated clusters collapse to a single (low) cluster.
///
/// Empty input yields an empty assignment; a single score is always "low".
pub fn two_means(scores: &[f64], guard: SeparationGuard) -> TwoClusters {
    let n = scores.len();
    if n == 0 {
        return TwoClusters {
            high: Vec::new(),
            low_centroid: 0.0,
            high_centroid: 0.0,
            collapsed: true,
        };
    }
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        scores[a]
            .partial_cmp(&scores[b])
            .expect("NaN unsolvability score")
    });
    let sorted: Vec<f64> = order.iter().map(|&i| scores[i]).collect();

    // Prefix sums for O(1) within-cluster SSE at every split.
    let mut prefix = vec![0.0; n + 1];
    let mut prefix_sq = vec![0.0; n + 1];
    for (i, &s) in sorted.iter().enumerate() {
        prefix[i + 1] = prefix[i] + s;
        prefix_sq[i + 1] = prefix_sq[i] + s * s;
    }
    let sse = |a: usize, b: usize| -> f64 {
        // Sum of squared deviations of sorted[a..b].
        let k = (b - a) as f64;
        if k == 0.0 {
            return 0.0;
        }
        let s = prefix[b] - prefix[a];
        let sq = prefix_sq[b] - prefix_sq[a];
        (sq - s * s / k).max(0.0)
    };

    // Best split: low cluster = sorted[..k], high = sorted[k..], 1 <= k < n.
    let mut best_k = n; // n means "no split" (all low)
    let mut best_cost = sse(0, n);
    for k in 1..n {
        let cost = sse(0, k) + sse(k, n);
        if cost < best_cost - 1e-15 {
            best_cost = cost;
            best_k = k;
        }
    }

    if best_k == n {
        let c = prefix[n] / n as f64;
        return TwoClusters {
            high: vec![false; n],
            low_centroid: c,
            high_centroid: c,
            collapsed: true,
        };
    }

    let low_centroid = prefix[best_k] / best_k as f64;
    let high_centroid = (prefix[n] - prefix[best_k]) / (n - best_k) as f64;

    if !guard.permits(low_centroid, high_centroid) {
        let c = prefix[n] / n as f64;
        return TwoClusters {
            high: vec![false; n],
            low_centroid: c,
            high_centroid: c,
            collapsed: true,
        };
    }

    let mut high = vec![false; n];
    for (rank_pos, &orig) in order.iter().enumerate() {
        high[orig] = rank_pos >= best_k;
    }
    TwoClusters {
        high,
        low_centroid,
        high_centroid,
        collapsed: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clearly_separated_scores_split_correctly() {
        let scores = [0.001, 0.002, 0.5, 0.6, 0.003];
        let c = two_means(&scores, SeparationGuard::default());
        assert!(!c.collapsed);
        assert_eq!(c.high, vec![false, false, true, true, false]);
        assert!(c.low_centroid < 0.01);
        assert!(c.high_centroid > 0.4);
    }

    #[test]
    fn pure_noise_collapses_with_guard() {
        let scores = [0.0011, 0.0012, 0.0013, 0.0014, 0.0015];
        let c = two_means(&scores, SeparationGuard::default());
        assert!(c.collapsed, "noise-level scores must not split");
        assert_eq!(c.high_count(), 0);
    }

    #[test]
    fn pure_noise_splits_without_guard() {
        let scores = [0.0011, 0.0012, 0.0013, 0.9014, 0.9015];
        let c = two_means(&scores, SeparationGuard::off());
        assert!(!c.collapsed);
        assert_eq!(c.high_count(), 2);
    }

    #[test]
    fn single_score_is_low() {
        let c = two_means(&[1.0], SeparationGuard::default());
        assert_eq!(c.high, vec![false]);
        assert!(c.collapsed);
    }

    #[test]
    fn empty_input_is_empty() {
        let c = two_means(&[], SeparationGuard::default());
        assert!(c.high.is_empty());
    }

    #[test]
    fn relative_guard_blocks_proportionally_close_clusters() {
        // 0.5 vs 1.0: gap 0.5 > abs floor, but 1.0 < 3 * 0.5 so must collapse.
        let scores = [0.5, 0.5, 1.0, 1.0];
        let c = two_means(&scores, SeparationGuard::default());
        assert!(c.collapsed);
    }

    #[test]
    fn zero_low_cluster_passes_relative_guard() {
        // Low centroid ~0 means any finite high centroid passes rel_factor.
        let scores = [0.0, 0.0, 0.0, 0.25];
        let c = two_means(&scores, SeparationGuard::default());
        assert!(!c.collapsed);
        assert_eq!(c.high, vec![false, false, false, true]);
    }

    #[test]
    fn assignment_preserves_input_order() {
        let scores = [0.9, 0.0, 0.95, 0.01];
        let c = two_means(&scores, SeparationGuard::default());
        assert_eq!(c.high, vec![true, false, true, false]);
    }

    #[test]
    fn optimal_split_minimises_sse() {
        // Three tight groups; 2-means must cut at the largest gap.
        let scores = [0.0, 0.01, 0.02, 0.5, 0.51, 0.52, 0.53];
        let c = two_means(&scores, SeparationGuard::default());
        assert_eq!(c.high_count(), 4);
    }
}
