//! # nni-stats
//!
//! Statistics support for neutrality inference:
//!
//! * [`describe`] — means, variances, quantiles, and the five-number
//!   summaries behind Figure 10's boxplots.
//! * [`cluster`] — the "standard clustering" of §6.2: exact 1-D two-means
//!   over slice-system unsolvability scores, with an explicit
//!   [`cluster::SeparationGuard`] so that pure noise never splits (the paper
//!   reports zero false positives; the guard is what makes that reproducible).
//! * [`dist`] — Pareto flow sizes and exponential think times for the
//!   dynamic traffic model of §6.1.

pub mod cluster;
pub mod describe;
pub mod dist;

pub use cluster::{two_means, SeparationGuard, TwoClusters};
pub use describe::{mean, median, quantile, std_dev, variance, FiveNumber};
pub use dist::{Exponential, Pareto};
