//! Property-based tests for the graph model.

use nni_topology::library::{dumbbell, parking_lot};
use nni_topology::{LinkId, LinkSeq, PathId, PathSet};
use proptest::prelude::*;

fn linkseq_strategy() -> impl Strategy<Value = LinkSeq> {
    prop::collection::vec(0usize..8, 0..6)
        .prop_map(|v| LinkSeq::new(v.into_iter().map(LinkId).collect()))
}

proptest! {
    /// LinkSeq union is commutative, associative, idempotent (it is a set).
    #[test]
    fn linkseq_union_laws(
        a in linkseq_strategy(),
        b in linkseq_strategy(),
        c in linkseq_strategy(),
    ) {
        prop_assert_eq!(a.union(&b), b.union(&a));
        prop_assert_eq!(a.union(&b).union(&c), a.union(&b.union(&c)));
        prop_assert_eq!(a.union(&a), a.clone());
        prop_assert!(a.is_subset_of(&a.union(&b)));
    }

    /// Subset relation is a partial order w.r.t. union.
    #[test]
    fn linkseq_subset_consistency(a in linkseq_strategy(), b in linkseq_strategy()) {
        if a.is_subset_of(&b) {
            prop_assert_eq!(&a.union(&b), &b);
        }
        if a.is_subset_of(&b) && b.is_subset_of(&a) {
            prop_assert_eq!(&a, &b);
        }
    }

    /// Pathset canonicalisation: construction order never matters.
    #[test]
    fn pathset_canonical(mut ids in prop::collection::vec(0usize..10, 1..6)) {
        let s1 = PathSet::new(ids.iter().map(|&i| PathId(i)).collect());
        ids.reverse();
        let s2 = PathSet::new(ids.iter().map(|&i| PathId(i)).collect());
        prop_assert_eq!(s1, s2);
    }

    /// `paths_through` is the inverse of `Path::links`: p traverses l iff
    /// l's path list contains p, for every generated topology.
    #[test]
    fn paths_through_is_inverse_of_links(n1 in 1usize..4, n2 in 1usize..4) {
        let t = dumbbell(n1, n2);
        let g = &t.topology;
        for p in g.paths() {
            for l in g.link_ids() {
                let forward = p.traverses(l);
                let backward = g.paths_through(l).contains(&p.id());
                prop_assert_eq!(forward, backward);
            }
        }
    }

    /// `paths_through_all` equals the intersection of single-link lists.
    #[test]
    fn paths_through_all_is_intersection(segments in 2usize..8) {
        let t = parking_lot(segments);
        let g = &t.topology;
        // Take the first two backbone links of the full path.
        let full = g.path(PathId(0));
        let pair = [full.links()[1], full.links()[2]];
        let joint = g.paths_through_all(&pair);
        for p in g.path_ids() {
            let in_both = g.paths_through(pair[0]).contains(&p)
                && g.paths_through(pair[1]).contains(&p);
            prop_assert_eq!(joint.contains(&p), in_both);
        }
    }

    /// shared_links is symmetric and a subset of both paths.
    #[test]
    fn shared_links_symmetric(n1 in 1usize..4, n2 in 1usize..4) {
        let t = dumbbell(n1, n2);
        let g = &t.topology;
        let paths = g.paths();
        for i in 0..paths.len() {
            for j in 0..paths.len() {
                let ab = paths[i].shared_links(&paths[j]);
                let ba = paths[j].shared_links(&paths[i]);
                prop_assert_eq!(&ab, &ba);
                for &l in ab.links() {
                    prop_assert!(paths[i].traverses(l) && paths[j].traverses(l));
                }
            }
        }
    }

    /// Distinguishability is irreflexive-ish: a link is never distinguishable
    /// from itself, and the relation is symmetric.
    #[test]
    fn distinguishability_relation(n1 in 1usize..4, n2 in 1usize..4) {
        let t = dumbbell(n1, n2);
        let g = &t.topology;
        for a in g.link_ids() {
            prop_assert!(!g.distinguishable(a, a));
            for b in g.link_ids() {
                prop_assert_eq!(g.distinguishable(a, b), g.distinguishable(b, a));
            }
        }
    }
}
