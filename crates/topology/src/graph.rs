//! The network graph `G = (V, L, P)` of §2.3.
//!
//! Nodes are end-hosts or relays; links are *directed* (the measured paths
//! are one-way, §7 "Measurement platform"); a path is a loop-free sequence of
//! consecutive links starting and ending at end-hosts. A link in this graph
//! may correspond to an IP link, a domain-level link, or any sequence of
//! consecutive physical links (assumption #1, §2.2).

use crate::ids::{LinkId, NodeId, PathId};
use crate::path::Path;
use std::collections::HashSet;

/// Kind of a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeKind {
    /// A measurement end-point; paths start and end here.
    Host,
    /// An intermediate element (switch / router); paths pass through.
    Relay,
}

/// A node of the network graph.
#[derive(Debug, Clone, PartialEq)]
pub struct Node {
    /// Kind (host or relay).
    pub kind: NodeKind,
    /// Human-readable name used in experiment output (e.g. `R4`, `S1`).
    pub name: String,
}

/// A directed link of the network graph, with the physical parameters the
/// emulator needs (the inference layer only uses the `src`/`dst` structure).
#[derive(Debug, Clone, PartialEq)]
pub struct Link {
    /// Transmitting node.
    pub src: NodeId,
    /// Receiving node.
    pub dst: NodeId,
    /// Capacity in bits per second.
    pub capacity_bps: f64,
    /// One-way propagation delay in seconds.
    pub delay_s: f64,
    /// Human-readable name (paper numbering where applicable, e.g. `l5`).
    pub name: String,
}

/// Errors raised while building or validating a topology.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyError {
    /// A link references a node id that was never added.
    UnknownNode(NodeId),
    /// A path references a link id that was never added.
    UnknownLink(LinkId),
    /// A path's consecutive links are not connected head-to-tail.
    DisconnectedPath { position: usize },
    /// A path visits some node twice.
    PathHasLoop(NodeId),
    /// A path is empty.
    EmptyPath,
    /// A path does not start at a host.
    PathSourceNotHost(NodeId),
    /// A path does not end at a host.
    PathSinkNotHost(NodeId),
}

impl std::fmt::Display for TopologyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TopologyError::UnknownNode(n) => write!(f, "unknown node {n}"),
            TopologyError::UnknownLink(l) => write!(f, "unknown link {l}"),
            TopologyError::DisconnectedPath { position } => {
                write!(f, "path links disconnected at position {position}")
            }
            TopologyError::PathHasLoop(n) => write!(f, "path visits {n} twice"),
            TopologyError::EmptyPath => write!(f, "path has no links"),
            TopologyError::PathSourceNotHost(n) => {
                write!(f, "path source {n} is not a host")
            }
            TopologyError::PathSinkNotHost(n) => {
                write!(f, "path sink {n} is not a host")
            }
        }
    }
}

impl std::error::Error for TopologyError {}

/// The immutable network graph plus the set of currently used paths `P`.
///
/// `PartialEq` compares the full structure (nodes, links — f64 parameters
/// included — and paths; `paths_by_link` is derived, so it follows), which
/// is what makes a decoded `MeasurementSet` comparable bit-for-bit to the
/// live one (`nni-measure`).
#[derive(Debug, Clone, PartialEq)]
pub struct Topology {
    nodes: Vec<Node>,
    links: Vec<Link>,
    paths: Vec<Path>,
    /// `paths_by_link[l]` = ids of paths traversing link `l` (the helper
    /// function `Paths(l)` of §2.3, precomputed).
    paths_by_link: Vec<Vec<PathId>>,
}

impl Topology {
    /// All nodes.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// All links.
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// All paths `P`.
    pub fn paths(&self) -> &[Path] {
        &self.paths
    }

    /// Number of links `|L|`.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// Number of paths `|P|`.
    pub fn path_count(&self) -> usize {
        self.paths.len()
    }

    /// Node lookup.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Link lookup.
    pub fn link(&self, id: LinkId) -> &Link {
        &self.links[id.index()]
    }

    /// Path lookup.
    pub fn path(&self, id: PathId) -> &Path {
        &self.paths[id.index()]
    }

    /// Looks a link up by its human-readable name.
    pub fn link_by_name(&self, name: &str) -> Option<LinkId> {
        self.links.iter().position(|l| l.name == name).map(LinkId)
    }

    /// `Paths(l)`: ids of all paths that traverse link `l` (§2.3).
    pub fn paths_through(&self, l: LinkId) -> &[PathId] {
        &self.paths_by_link[l.index()]
    }

    /// `Paths(σ)`: ids of all paths that traverse *every* link of `seq`.
    pub fn paths_through_all(&self, seq: &[LinkId]) -> Vec<PathId> {
        if seq.is_empty() {
            return (0..self.paths.len()).map(PathId).collect();
        }
        let mut out: Vec<PathId> = self.paths_through(seq[0]).to_vec();
        for &l in &seq[1..] {
            let through: HashSet<PathId> = self.paths_through(l).iter().copied().collect();
            out.retain(|p| through.contains(p));
        }
        out
    }

    /// Two links are *distinguishable* when `Paths(l) != Paths(l')` (§2.3).
    pub fn distinguishable(&self, a: LinkId, b: LinkId) -> bool {
        self.paths_through(a) != self.paths_through(b)
    }

    /// Iterator over all link ids.
    pub fn link_ids(&self) -> impl Iterator<Item = LinkId> + '_ {
        (0..self.links.len()).map(LinkId)
    }

    /// Iterator over all path ids.
    pub fn path_ids(&self) -> impl Iterator<Item = PathId> + '_ {
        (0..self.paths.len()).map(PathId)
    }
}

/// Builder for [`Topology`]; validates every path as it is added.
#[derive(Debug, Default)]
pub struct TopologyBuilder {
    nodes: Vec<Node>,
    links: Vec<Link>,
    paths: Vec<Path>,
}

/// Default capacity for links whose capacity is not specified: 1 Gb/s, i.e.
/// an order of magnitude above the paper's 100 Mb/s bottleneck so that
/// unspecified links never become the bottleneck by accident.
pub const DEFAULT_CAPACITY_BPS: f64 = 1e9;

/// Default one-way propagation delay: 5 ms per link.
pub const DEFAULT_DELAY_S: f64 = 0.005;

impl TopologyBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an end-host node.
    pub fn host(&mut self, name: &str) -> NodeId {
        self.nodes.push(Node {
            kind: NodeKind::Host,
            name: name.to_string(),
        });
        NodeId(self.nodes.len() - 1)
    }

    /// Adds a relay node.
    pub fn relay(&mut self, name: &str) -> NodeId {
        self.nodes.push(Node {
            kind: NodeKind::Relay,
            name: name.to_string(),
        });
        NodeId(self.nodes.len() - 1)
    }

    /// Adds a directed link with explicit parameters.
    pub fn link_with(
        &mut self,
        name: &str,
        src: NodeId,
        dst: NodeId,
        capacity_bps: f64,
        delay_s: f64,
    ) -> Result<LinkId, TopologyError> {
        for n in [src, dst] {
            if n.index() >= self.nodes.len() {
                return Err(TopologyError::UnknownNode(n));
            }
        }
        self.links.push(Link {
            src,
            dst,
            capacity_bps,
            delay_s,
            name: name.to_string(),
        });
        Ok(LinkId(self.links.len() - 1))
    }

    /// Adds a directed link with default capacity and delay.
    pub fn link(&mut self, name: &str, src: NodeId, dst: NodeId) -> Result<LinkId, TopologyError> {
        self.link_with(name, src, dst, DEFAULT_CAPACITY_BPS, DEFAULT_DELAY_S)
    }

    /// Adds a path (validated: non-empty, connected, loop-free, host
    /// endpoints).
    pub fn path(&mut self, name: &str, links: Vec<LinkId>) -> Result<PathId, TopologyError> {
        if links.is_empty() {
            return Err(TopologyError::EmptyPath);
        }
        for &l in &links {
            if l.index() >= self.links.len() {
                return Err(TopologyError::UnknownLink(l));
            }
        }
        // Connectivity: dst of link i must equal src of link i+1.
        for (i, w) in links.windows(2).enumerate() {
            if self.links[w[0].index()].dst != self.links[w[1].index()].src {
                return Err(TopologyError::DisconnectedPath { position: i });
            }
        }
        // Loop-freedom: the visited node sequence must not repeat.
        let mut seen = HashSet::new();
        let first_src = self.links[links[0].index()].src;
        seen.insert(first_src);
        for &l in &links {
            let dst = self.links[l.index()].dst;
            if !seen.insert(dst) {
                return Err(TopologyError::PathHasLoop(dst));
            }
        }
        // Host endpoints.
        let last_dst = self.links[links.last().unwrap().index()].dst;
        if self.nodes[first_src.index()].kind != NodeKind::Host {
            return Err(TopologyError::PathSourceNotHost(first_src));
        }
        if self.nodes[last_dst.index()].kind != NodeKind::Host {
            return Err(TopologyError::PathSinkNotHost(last_dst));
        }
        let id = PathId(self.paths.len());
        self.paths.push(Path::new(id, name.to_string(), links));
        Ok(id)
    }

    /// Finalises the topology, precomputing `Paths(l)` for every link.
    pub fn build(self) -> Topology {
        let mut paths_by_link = vec![Vec::new(); self.links.len()];
        for path in &self.paths {
            for &l in path.links() {
                paths_by_link[l.index()].push(path.id());
            }
        }
        for v in &mut paths_by_link {
            v.sort();
            v.dedup();
        }
        Topology {
            nodes: self.nodes,
            links: self.links,
            paths: self.paths,
            paths_by_link,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two hosts connected through one relay: h0 -l0-> r -l1-> h1.
    fn tiny() -> (TopologyBuilder, NodeId, NodeId, NodeId) {
        let mut b = TopologyBuilder::new();
        let h0 = b.host("h0");
        let h1 = b.host("h1");
        let r = b.relay("r");
        (b, h0, h1, r)
    }

    #[test]
    fn build_simple_path() {
        let (mut b, h0, h1, r) = tiny();
        let l0 = b.link("l0", h0, r).unwrap();
        let l1 = b.link("l1", r, h1).unwrap();
        let p = b.path("p0", vec![l0, l1]).unwrap();
        let t = b.build();
        assert_eq!(t.path_count(), 1);
        assert_eq!(t.paths_through(l0), &[p]);
        assert_eq!(t.paths_through(l1), &[p]);
        assert!(!t.distinguishable(l0, l1));
    }

    #[test]
    fn disconnected_path_rejected() {
        let (mut b, h0, h1, r) = tiny();
        let l0 = b.link("l0", h0, r).unwrap();
        let l_bad = b.link("lx", h0, h1).unwrap();
        let err = b.path("p", vec![l0, l_bad]).unwrap_err();
        assert!(matches!(
            err,
            TopologyError::DisconnectedPath { position: 0 }
        ));
    }

    #[test]
    fn loop_rejected() {
        let mut b = TopologyBuilder::new();
        let h0 = b.host("h0");
        let r1 = b.relay("r1");
        let r2 = b.relay("r2");
        let l0 = b.link("l0", h0, r1).unwrap();
        let l1 = b.link("l1", r1, r2).unwrap();
        let l2 = b.link("l2", r2, r1).unwrap();
        let err = b.path("p", vec![l0, l1, l2]).unwrap_err();
        assert!(matches!(err, TopologyError::PathHasLoop(_)));
    }

    #[test]
    fn non_host_endpoints_rejected() {
        let mut b = TopologyBuilder::new();
        let h0 = b.host("h0");
        let r1 = b.relay("r1");
        let r2 = b.relay("r2");
        let l0 = b.link("l0", h0, r1).unwrap();
        let l1 = b.link("l1", r1, r2).unwrap();
        let err = b.path("p", vec![l0, l1]).unwrap_err();
        assert!(matches!(err, TopologyError::PathSinkNotHost(_)));

        let err2 = b.path("p", vec![l1]).unwrap_err();
        assert!(matches!(err2, TopologyError::PathSourceNotHost(_)));
    }

    #[test]
    fn empty_path_rejected() {
        let (mut b, ..) = tiny();
        assert_eq!(b.path("p", vec![]).unwrap_err(), TopologyError::EmptyPath);
    }

    #[test]
    fn unknown_link_rejected() {
        let (mut b, ..) = tiny();
        let err = b.path("p", vec![LinkId(42)]).unwrap_err();
        assert_eq!(err, TopologyError::UnknownLink(LinkId(42)));
    }

    #[test]
    fn paths_through_all_intersects() {
        // Two hosts, two relays; p0 over l0,l1; p1 over l0,l2.
        let mut b = TopologyBuilder::new();
        let h0 = b.host("h0");
        let h1 = b.host("h1");
        let h2 = b.host("h2");
        let r = b.relay("r");
        let l0 = b.link("l0", h0, r).unwrap();
        let l1 = b.link("l1", r, h1).unwrap();
        let l2 = b.link("l2", r, h2).unwrap();
        let p0 = b.path("p0", vec![l0, l1]).unwrap();
        let p1 = b.path("p1", vec![l0, l2]).unwrap();
        let t = b.build();
        assert_eq!(t.paths_through_all(&[l0]), vec![p0, p1]);
        assert_eq!(t.paths_through_all(&[l0, l1]), vec![p0]);
        assert_eq!(t.paths_through_all(&[l1, l2]), Vec::<PathId>::new());
        assert!(t.distinguishable(l1, l2));
        assert!(t.distinguishable(l0, l1));
    }

    #[test]
    fn link_by_name_finds_links() {
        let (mut b, h0, h1, r) = tiny();
        b.link("a", h0, r).unwrap();
        let l1 = b.link("b", r, h1).unwrap();
        let t = b.build();
        assert_eq!(t.link_by_name("b"), Some(l1));
        assert_eq!(t.link_by_name("zzz"), None);
    }
}
