//! Pathsets — the unit of external observation.
//!
//! §2.3: a pathset is a set of paths; its performance number `y_Θ` is
//! `-ln P(Θ)` where `P(Θ)` is the probability that *all* member paths are
//! congestion-free during a time interval. Observable violation #2 (§3.3)
//! shows why multi-path pathsets matter: correlations between paths only
//! surface when they are observed *as a pair*.

use crate::ids::PathId;

/// A non-empty set of paths, stored sorted for canonical equality/hashing.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PathSet {
    paths: Vec<PathId>,
}

impl PathSet {
    /// Creates a pathset from any collection of paths (sorted, deduplicated).
    ///
    /// # Panics
    /// Panics when the resulting set is empty — the theory never uses `∅`.
    pub fn new(mut paths: Vec<PathId>) -> PathSet {
        paths.sort();
        paths.dedup();
        assert!(!paths.is_empty(), "pathsets are non-empty by construction");
        PathSet { paths }
    }

    /// Singleton `{p}`.
    pub fn single(p: PathId) -> PathSet {
        PathSet { paths: vec![p] }
    }

    /// Pair `{p_i, p_j}`.
    ///
    /// # Panics
    /// Panics when `a == b`.
    pub fn pair(a: PathId, b: PathId) -> PathSet {
        assert_ne!(a, b, "a pair requires two distinct paths");
        PathSet::new(vec![a, b])
    }

    /// Member paths (sorted).
    pub fn paths(&self) -> &[PathId] {
        &self.paths
    }

    /// Number of member paths.
    pub fn len(&self) -> usize {
        self.paths.len()
    }

    /// Pathsets are never empty; provided for clippy-idiomatic completeness.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Membership test.
    pub fn contains(&self, p: PathId) -> bool {
        self.paths.binary_search(&p).is_ok()
    }

    /// Whether every member path belongs to `other` (interpreted as a set of
    /// paths — used for the `σ ⊆ c_n` tests of Lemma 3).
    pub fn is_subset_of_paths(&self, other: &[PathId]) -> bool {
        self.paths.iter().all(|p| other.contains(p))
    }

    /// Renders as the paper's `{p1, p3}` notation.
    pub fn render(&self) -> String {
        let inner: Vec<String> = self.paths.iter().map(|p| p.to_string()).collect();
        format!("{{{}}}", inner.join(", "))
    }
}

impl std::fmt::Display for PathSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.render())
    }
}

impl FromIterator<PathId> for PathSet {
    fn from_iter<T: IntoIterator<Item = PathId>>(iter: T) -> Self {
        PathSet::new(iter.into_iter().collect())
    }
}

/// Enumerates the full power set `P*` of `n` paths, minus the empty set.
///
/// Exponential — intended for the exact-mode oracle on the small theory
/// examples (Figures 1–5, `n <= ~12`).
pub fn power_set(n: usize) -> Vec<PathSet> {
    assert!(n <= 20, "power set of {n} paths would be excessive");
    let mut out = Vec::with_capacity((1usize << n) - 1);
    for mask in 1u32..(1u32 << n) {
        let paths: Vec<PathId> = (0..n)
            .filter(|&i| mask & (1 << i) != 0)
            .map(PathId)
            .collect();
        out.push(PathSet::new(paths));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_sorts_and_dedups() {
        let s = PathSet::new(vec![PathId(2), PathId(0), PathId(2)]);
        assert_eq!(s.paths(), &[PathId(0), PathId(2)]);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_pathset_panics() {
        PathSet::new(vec![]);
    }

    #[test]
    fn pair_requires_distinct() {
        let p = PathSet::pair(PathId(0), PathId(1));
        assert_eq!(p.len(), 2);
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn degenerate_pair_panics() {
        PathSet::pair(PathId(1), PathId(1));
    }

    #[test]
    fn canonical_equality() {
        assert_eq!(
            PathSet::new(vec![PathId(1), PathId(0)]),
            PathSet::new(vec![PathId(0), PathId(1)])
        );
    }

    #[test]
    fn subset_of_paths() {
        let s = PathSet::new(vec![PathId(0), PathId(2)]);
        assert!(s.is_subset_of_paths(&[PathId(0), PathId(1), PathId(2)]));
        assert!(!s.is_subset_of_paths(&[PathId(0), PathId(1)]));
    }

    #[test]
    fn power_set_size() {
        assert_eq!(power_set(3).len(), 7);
        assert_eq!(power_set(1).len(), 1);
    }

    #[test]
    fn power_set_contains_full_set() {
        let ps = power_set(3);
        let full = PathSet::new(vec![PathId(0), PathId(1), PathId(2)]);
        assert!(ps.contains(&full));
    }

    #[test]
    fn render_matches_paper_notation() {
        let s = PathSet::new(vec![PathId(1), PathId(3)]);
        assert_eq!(s.render(), "{p1, p3}");
    }
}
