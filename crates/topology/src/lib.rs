//! # nni-topology
//!
//! The network graph model of §2.3 — `G = (V, L, P)` — plus factories for
//! every topology the paper uses:
//!
//! * [`graph`] — nodes (hosts / relays), directed links with emulation
//!   parameters, validated loop-free host-to-host paths, and the precomputed
//!   `Paths(l)` / distinguishability helpers.
//! * [`path`] — paths and [`path::LinkSeq`] (candidate non-neutral link
//!   sequences `τ`).
//! * [`pathset`] — pathsets `Θ` (the unit of external observation) and the
//!   power-set enumeration used by the exact-mode observability oracle.
//! * [`ids`] — strongly typed node / link / path identifiers.
//! * [`library`] — Figures 1, 2, 4, 5 (theory examples), topology A
//!   (Figure 7), topology B (Figure 9, reconstructed per DESIGN.md), and
//!   parametric generators for tests and benches.

pub mod graph;
pub mod ids;
pub mod library;
pub mod path;
pub mod pathset;

pub use graph::{Link, Node, NodeKind, Topology, TopologyBuilder, TopologyError};
pub use ids::{LinkId, NodeId, PathId};
pub use library::PaperTopology;
pub use path::{LinkSeq, Path};
pub use pathset::{power_set, PathSet};
