//! Strongly typed identifiers for nodes, links, and paths.
//!
//! The theory juggles three index spaces (links `l_k`, paths `p_i`, pathsets
//! `Θ_i`); newtypes prevent the classic off-by-one-index-space bug.

use std::fmt;

/// Identifier of a node (end-host or relay).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub usize);

/// Identifier of a directed link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LinkId(pub usize);

/// Identifier of a path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PathId(pub usize);

impl NodeId {
    /// Raw index.
    pub fn index(self) -> usize {
        self.0
    }
}

impl LinkId {
    /// Raw index.
    pub fn index(self) -> usize {
        self.0
    }
}

impl PathId {
    /// Raw index.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Paper convention: links are 1-indexed (l1, l2, ...), our storage is
        // 0-indexed; display keeps the storage index to avoid ambiguity and
        // the factories name links explicitly where the paper numbering
        // matters.
        write!(f, "l{}", self.0)
    }
}

impl fmt::Display for PathId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_ordered_by_index() {
        assert!(LinkId(1) < LinkId(2));
        assert!(PathId(0) < PathId(9));
        assert!(NodeId(3) > NodeId(2));
    }

    #[test]
    fn display_forms() {
        assert_eq!(NodeId(4).to_string(), "n4");
        assert_eq!(LinkId(4).to_string(), "l4");
        assert_eq!(PathId(4).to_string(), "p4");
    }

    #[test]
    fn index_round_trips() {
        assert_eq!(LinkId(7).index(), 7);
        assert_eq!(NodeId(7).index(), 7);
        assert_eq!(PathId(7).index(), 7);
    }
}
