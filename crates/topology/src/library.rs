//! Factories for every topology the paper uses.
//!
//! * Figures 1, 2, 4, 5 — the worked theory examples (observable /
//!   non-observable / identifiable / non-identifiable).
//! * Figure 7 — experiment **topology A**: a dumbbell with a single shared
//!   (possibly differentiating) link `l5`.
//! * Figure 9 — experiment **topology B**: a multi-bottleneck tier-1/tier-2
//!   topology with policers on `l5`, `l14`, and `l20`.
//!
//! The paper does not fully specify Figure 9's wiring; per DESIGN.md we build
//! a 24-link "parking-lot" backbone with feeders and two-hop egresses that
//! preserves the structural features the evaluation depends on: the three
//! policers sit on widely shared links (one internal backbone link, two
//! tier-2 ingress links), several *neutral* links run near capacity, and the
//! measured paths generate a rich population of identifiable link sequences.
//! The policer link numbers (5, 14, 20) and the neutral-but-congested link
//! (13) match the paper's numbering so the figures read the same.

use crate::graph::{Topology, TopologyBuilder};
use crate::ids::{LinkId, PathId};

/// A topology bundled with its performance-class partition and its designated
/// non-neutral links (ground truth for evaluation).
#[derive(Debug, Clone)]
pub struct PaperTopology {
    /// The graph and measured paths.
    pub topology: Topology,
    /// Class partition: `classes[n]` lists the member paths of class `c_{n+1}`.
    /// Class 0 is the top-priority class everywhere in this library.
    pub classes: Vec<Vec<PathId>>,
    /// Ground-truth non-neutral links.
    pub nonneutral_links: Vec<LinkId>,
}

impl PaperTopology {
    /// Convenience: the class index of a path (panics when unclassified).
    pub fn class_of(&self, p: PathId) -> usize {
        self.classes
            .iter()
            .position(|c| c.contains(&p))
            .expect("every measured path belongs to a class")
    }

    /// Convenience: the id of a named link (panics when absent). Scenario
    /// builders reference library links by their paper names.
    pub fn link_named(&self, name: &str) -> LinkId {
        self.topology
            .link_by_name(name)
            .unwrap_or_else(|| panic!("topology has no link named {name}"))
    }

    /// Convenience: ids of several named links, in the given order.
    pub fn links_named(&self, names: &[&str]) -> Vec<LinkId> {
        names.iter().map(|n| self.link_named(n)).collect()
    }
}

/// Figure 1: observable violation. `l1` treats `{p2}` worse than `{p1, p3}`.
///
/// Paths: `p1 = ⟨l1,l2⟩`, `p2 = ⟨l1,l3⟩`, `p3 = ⟨l3,l4⟩`;
/// classes `{{p1,p3},{p2}}`.
pub fn figure1() -> PaperTopology {
    let mut b = TopologyBuilder::new();
    let a = b.host("A");
    let bb = b.host("B");
    let c = b.host("C");
    let d = b.host("D");
    let e = b.host("E");
    let l1 = b.link("l1", a, bb).unwrap();
    let l2 = b.link("l2", bb, c).unwrap();
    let l3 = b.link("l3", bb, d).unwrap();
    let l4 = b.link("l4", d, e).unwrap();
    let p1 = b.path("p1", vec![l1, l2]).unwrap();
    let p2 = b.path("p2", vec![l1, l3]).unwrap();
    let p3 = b.path("p3", vec![l3, l4]).unwrap();
    PaperTopology {
        topology: b.build(),
        classes: vec![vec![p1, p3], vec![p2]],
        nonneutral_links: vec![l1],
    }
}

/// Figure 2: **non-observable** violation. `l1` treats `p2` worse than `p1`,
/// but `l1`'s regulation of `p2` is indistinguishable from `l3`.
///
/// Paths: `p1 = ⟨l1,l2⟩`, `p2 = ⟨l1,l3⟩`; classes `{{p1},{p2}}`.
pub fn figure2() -> PaperTopology {
    let mut b = TopologyBuilder::new();
    let a = b.host("A");
    let bb = b.relay("B");
    let c = b.host("C");
    let d = b.host("D");
    let l1 = b.link("l1", a, bb).unwrap();
    let l2 = b.link("l2", bb, c).unwrap();
    let l3 = b.link("l3", bb, d).unwrap();
    let p1 = b.path("p1", vec![l1, l2]).unwrap();
    let p2 = b.path("p2", vec![l1, l3]).unwrap();
    PaperTopology {
        topology: b.build(),
        classes: vec![vec![p1], vec![p2]],
        nonneutral_links: vec![l1],
    }
}

/// Figure 4: observable violation with two non-neutral links; `⟨l1⟩` and
/// `⟨l1,l2⟩` are identifiable, `⟨l2⟩` is not (no path pair shares only `l2`).
///
/// Paths: `p1 = ⟨l1,l2,l3⟩`, `p2 = ⟨l1,l2,l4⟩`, `p3 = ⟨l1,l2,l5⟩`,
/// `p4 = ⟨l1,l6⟩`; classes `{{p1},{p2,p3,p4}}` with `{p1}` top-priority.
pub fn figure4() -> PaperTopology {
    let mut b = TopologyBuilder::new();
    let a = b.host("A");
    let r1 = b.relay("B");
    let r2 = b.relay("C");
    let d = b.host("D");
    let e = b.host("E");
    let f = b.host("F");
    let g = b.host("G");
    let l1 = b.link("l1", a, r1).unwrap();
    let l2 = b.link("l2", r1, r2).unwrap();
    let l3 = b.link("l3", r2, d).unwrap();
    let l4 = b.link("l4", r2, e).unwrap();
    let l5 = b.link("l5", r2, f).unwrap();
    let l6 = b.link("l6", r1, g).unwrap();
    let p1 = b.path("p1", vec![l1, l2, l3]).unwrap();
    let p2 = b.path("p2", vec![l1, l2, l4]).unwrap();
    let p3 = b.path("p3", vec![l1, l2, l5]).unwrap();
    let p4 = b.path("p4", vec![l1, l6]).unwrap();
    PaperTopology {
        topology: b.build(),
        classes: vec![vec![p1], vec![p2, p3, p4]],
        nonneutral_links: vec![l1, l2],
    }
}

/// Figure 5: observable violation on a star. `l1` congests class-2 traffic
/// with probability 0.5 while class 1 rides free.
///
/// Paths: `p1 = ⟨l1,l2⟩`, `p2 = ⟨l1,l3⟩`, `p3 = ⟨l1,l4⟩`;
/// classes `{{p1},{p2,p3}}`.
pub fn figure5() -> PaperTopology {
    let mut b = TopologyBuilder::new();
    let a = b.host("A");
    let r = b.relay("B");
    let c = b.host("C");
    let d = b.host("D");
    let e = b.host("E");
    let l1 = b.link("l1", a, r).unwrap();
    let l2 = b.link("l2", r, c).unwrap();
    let l3 = b.link("l3", r, d).unwrap();
    let l4 = b.link("l4", r, e).unwrap();
    let p1 = b.path("p1", vec![l1, l2]).unwrap();
    let p2 = b.path("p2", vec![l1, l3]).unwrap();
    let p3 = b.path("p3", vec![l1, l4]).unwrap();
    PaperTopology {
        topology: b.build(),
        classes: vec![vec![p1], vec![p2, p3]],
        nonneutral_links: vec![l1],
    }
}

/// Capacity of the paper's bottleneck links: 100 Mb/s (Table 1).
pub const BOTTLENECK_BPS: f64 = 100e6;

/// Capacity of non-bottleneck (access / egress) links: 1 Gb/s.
pub const ACCESS_BPS: f64 = 1e9;

/// Figure 7 — experiment **topology A**: four sources, four sinks, one shared
/// link `l5` that (in some experiments) differentiates.
///
/// Paths `p_i = ⟨l_i, l5, l_{5+i}⟩`, classes `c1 = {p1, p2}` (paths 0, 1) and
/// `c2 = {p3, p4}` (paths 2, 3).
///
/// `rtt_c1` / `rtt_c2` set the propagation round-trip time of each class's
/// paths (Table 2, experiment sets 2, 5, 8 vary class RTT).
pub fn topology_a(rtt_c1: f64, rtt_c2: f64) -> PaperTopology {
    let mut b = TopologyBuilder::new();
    let sources: Vec<_> = (1..=4).map(|i| b.host(&format!("S{i}"))).collect();
    let sinks: Vec<_> = (1..=4).map(|i| b.host(&format!("D{i}"))).collect();
    let sw1 = b.relay("SW1");
    let sw2 = b.relay("SW2");

    // One-way budget: access + shared + egress = RTT / 2.
    let shared_delay = 0.005;
    let access_delay = |rtt: f64| (rtt / 2.0 - shared_delay) / 2.0;

    let mut ingress = Vec::new();
    let mut egress = Vec::new();
    for (i, &src) in sources.iter().enumerate() {
        let rtt = if i < 2 { rtt_c1 } else { rtt_c2 };
        let d = access_delay(rtt).max(0.0005);
        ingress.push(
            b.link_with(&format!("l{}", i + 1), src, sw1, ACCESS_BPS, d)
                .unwrap(),
        );
        egress.push((i, d));
    }
    let l5 = b
        .link_with("l5", sw1, sw2, BOTTLENECK_BPS, shared_delay)
        .unwrap();
    let mut paths = Vec::new();
    let mut egress_links = Vec::new();
    for (i, d) in egress {
        let le = b
            .link_with(&format!("l{}", i + 6), sw2, sinks[i], ACCESS_BPS, d)
            .unwrap();
        egress_links.push(le);
    }
    for i in 0..4 {
        let p = b
            .path(
                &format!("p{}", i + 1),
                vec![ingress[i], l5, egress_links[i]],
            )
            .unwrap();
        paths.push(p);
    }
    PaperTopology {
        topology: b.build(),
        classes: vec![vec![paths[0], paths[1]], vec![paths[2], paths[3]]],
        nonneutral_links: vec![l5],
    }
}

/// Figure 9 — experiment **topology B** (see module docs for the
/// substitution rationale). 24 router-level links; policers on `l5`
/// (backbone), `l14` and `l20` (tier-2 ingress); `l13` is neutral but driven
/// near capacity by background traffic (Figure 11's comparison pair).
///
/// Returns 15 measured paths: class `c1` = short-flow paths, class `c2` =
/// long-flow (policed) paths.
pub fn topology_b() -> PaperTopology {
    let mut b = TopologyBuilder::new();
    // Sources.
    let f1 = b.host("F1");
    let f2 = b.host("F2");
    let f3 = b.host("F3");
    let f4 = b.host("F4");
    let s5 = b.host("S5");
    // Sinks.
    let d1 = b.host("D1");
    let d2 = b.host("D2");
    let d3 = b.host("D3");
    let d4 = b.host("D4");
    let d5 = b.host("D5");
    // Tier-2 aggregation relays.
    let a0 = b.relay("A0");
    let a1 = b.relay("A1");
    let a2 = b.relay("A2");
    let a3 = b.relay("A3");
    // Tier-1 backbone.
    let b0 = b.relay("B0");
    let b1 = b.relay("B1");
    let b2 = b.relay("B2");
    let b3 = b.relay("B3");
    let b4 = b.relay("B4");
    let b5 = b.relay("B5");
    // Egress relays.
    let c1 = b.relay("C1");
    let c2 = b.relay("C2");
    let c3 = b.relay("C3");
    let c4 = b.relay("C4");
    let c5 = b.relay("C5");

    let bb = BOTTLENECK_BPS;
    let ramp = 2.0 * BOTTLENECK_BPS;
    let d = 0.005;

    // Numbered exactly as referenced by the experiment binaries.
    let l1 = b.link_with("l1", a0, b0, ramp, d).unwrap();
    let l2 = b.link_with("l2", b0, b1, bb, d).unwrap();
    let l3 = b.link_with("l3", b1, b2, bb, d).unwrap();
    let l4 = b.link_with("l4", b2, b3, bb, d).unwrap();
    let l5 = b.link_with("l5", b3, b4, bb, d).unwrap(); // policer
    let l6 = b.link_with("l6", b4, b5, bb, d).unwrap();
    let l7 = b.link_with("l7", a1, b1, ramp, d).unwrap();
    let l8 = b.link_with("l8", a2, b2, ramp, d).unwrap();
    let l9 = b.link_with("l9", a3, b3, ramp, d).unwrap();
    let l10 = b.link_with("l10", b1, c1, ramp, d).unwrap();
    let l11 = b.link_with("l11", b2, c2, ramp, d).unwrap();
    let l12 = b.link_with("l12", b3, c3, ramp, d).unwrap();
    let l13 = b.link_with("l13", b4, c4, bb, d).unwrap(); // neutral, near capacity
    let l14 = b.link_with("l14", f1, a1, bb, d).unwrap(); // policer
    let l15 = b.link_with("l15", b5, c5, ramp, d).unwrap();
    let l16 = b.link_with("l16", c5, d1, ramp, d).unwrap();
    let l17 = b.link_with("l17", c4, d2, ramp, d).unwrap();
    let l18 = b.link_with("l18", f2, a3, bb, d).unwrap();
    let l19 = b.link_with("l19", c2, d3, ramp, d).unwrap();
    let l20 = b.link_with("l20", f3, a0, bb, d).unwrap(); // policer
    let l21 = b.link_with("l21", s5, b4, ramp, d).unwrap();
    let l22 = b.link_with("l22", c1, d4, ramp, d).unwrap();
    let l23 = b.link_with("l23", f4, a2, bb, d).unwrap();
    let l24 = b.link_with("l24", c3, d5, ramp, d).unwrap();

    // Measured paths. Comments give the class (c1 = short flows,
    // c2 = long/policed flows).
    let p0 = b
        .path("p0", vec![l20, l1, l2, l3, l4, l5, l6, l15, l16])
        .unwrap(); // c1
    let p1 = b.path("p1", vec![l20, l1, l2, l10, l22]).unwrap(); // c2
    let p2 = b.path("p2", vec![l14, l7, l3, l11, l19]).unwrap(); // c2
    let p3 = b.path("p3", vec![l14, l7, l3, l4, l12, l24]).unwrap(); // c1
    let p4 = b.path("p4", vec![l23, l8, l4, l5, l13, l17]).unwrap(); // c2
    let p5 = b.path("p5", vec![l23, l8, l11, l19]).unwrap(); // c1
    let p6 = b.path("p6", vec![l18, l9, l5, l6, l15, l16]).unwrap(); // c2
    let p7 = b.path("p7", vec![l18, l9, l12, l24]).unwrap(); // c1
    let p8 = b.path("p8", vec![l21, l6, l15, l16]).unwrap(); // c1
    let p9 = b.path("p9", vec![l21, l13, l17]).unwrap(); // c2
    let p10 = b.path("p10", vec![l20, l1, l2, l3, l11, l19]).unwrap(); // c1
    let p11 = b
        .path("p11", vec![l14, l7, l3, l4, l5, l6, l15, l16])
        .unwrap(); // c2
    let p12 = b.path("p12", vec![l23, l8, l4, l12, l24]).unwrap(); // c1
    let p13 = b.path("p13", vec![l18, l9, l5, l13, l17]).unwrap(); // c2
    let p14 = b.path("p14", vec![l20, l1, l2, l3, l4, l12, l24]).unwrap(); // c2

    PaperTopology {
        topology: b.build(),
        classes: vec![
            vec![p0, p3, p5, p7, p8, p10, p12],
            vec![p1, p2, p4, p6, p9, p11, p13, p14],
        ],
        nonneutral_links: vec![l5, l14, l20],
    }
}

/// Parametric dumbbell: `n1` class-1 and `n2` class-2 source/sink pairs
/// sharing one bottleneck. Used by property tests and scaling benches.
pub fn dumbbell(n1: usize, n2: usize) -> PaperTopology {
    assert!(n1 + n2 >= 1, "dumbbell needs at least one path");
    let n = n1 + n2;
    let mut b = TopologyBuilder::new();
    let sw1 = b.relay("SW1");
    let sw2 = b.relay("SW2");
    let shared = b
        .link_with("shared", sw1, sw2, BOTTLENECK_BPS, 0.005)
        .unwrap();
    let mut paths = Vec::new();
    for i in 0..n {
        let s = b.host(&format!("S{i}"));
        let t = b.host(&format!("D{i}"));
        let li = b
            .link_with(&format!("in{i}"), s, sw1, ACCESS_BPS, 0.01)
            .unwrap();
        let le = b
            .link_with(&format!("out{i}"), sw2, t, ACCESS_BPS, 0.01)
            .unwrap();
        paths.push(b.path(&format!("p{i}"), vec![li, shared, le]).unwrap());
    }
    PaperTopology {
        topology: b.build(),
        classes: vec![paths[..n1].to_vec(), paths[n1..].to_vec()],
        nonneutral_links: vec![shared],
    }
}

/// Parametric "parking lot": a backbone of `segments` links with one
/// on-ramp/off-ramp path per segment plus one end-to-end path; produces a
/// linearly growing population of link sequences for the scaling benches.
pub fn parking_lot(segments: usize) -> PaperTopology {
    assert!(segments >= 2, "parking lot needs at least two segments");
    let mut b = TopologyBuilder::new();
    let relays: Vec<_> = (0..=segments).map(|i| b.relay(&format!("B{i}"))).collect();
    let backbone: Vec<_> = (0..segments)
        .map(|i| {
            b.link_with(
                &format!("b{i}"),
                relays[i],
                relays[i + 1],
                BOTTLENECK_BPS,
                0.005,
            )
            .unwrap()
        })
        .collect();
    let mut paths = Vec::new();
    // End-to-end path.
    let s = b.host("S");
    let t = b.host("T");
    let sin = b.link_with("in", s, relays[0], ACCESS_BPS, 0.005).unwrap();
    let sout = b
        .link_with("out", relays[segments], t, ACCESS_BPS, 0.005)
        .unwrap();
    let mut full = vec![sin];
    full.extend(backbone.iter().copied());
    full.push(sout);
    paths.push(b.path("pfull", full).unwrap());
    // One two-segment path per interior relay.
    for i in 0..segments.saturating_sub(1) {
        let hs = b.host(&format!("S{i}"));
        let ht = b.host(&format!("T{i}"));
        let lin = b
            .link_with(&format!("ramp_in{i}"), hs, relays[i], ACCESS_BPS, 0.005)
            .unwrap();
        let lout = b
            .link_with(
                &format!("ramp_out{i}"),
                relays[i + 2],
                ht,
                ACCESS_BPS,
                0.005,
            )
            .unwrap();
        paths.push(
            b.path(
                &format!("p{i}"),
                vec![lin, backbone[i], backbone[i + 1], lout],
            )
            .unwrap(),
        );
    }
    let first = backbone[0];
    let n = paths.len();
    PaperTopology {
        topology: b.build(),
        classes: vec![paths[..1].to_vec(), paths[1..n].to_vec()],
        nonneutral_links: vec![first],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_matches_routing_matrix() {
        let t = figure1();
        let g = &t.topology;
        assert_eq!(g.link_count(), 4);
        assert_eq!(g.path_count(), 3);
        // Figure 1(b) routing matrix rows for singleton pathsets.
        let l1 = g.link_by_name("l1").unwrap();
        let l3 = g.link_by_name("l3").unwrap();
        assert_eq!(g.paths_through(l1).len(), 2); // p1, p2
        assert_eq!(g.paths_through(l3).len(), 2); // p2, p3
    }

    #[test]
    fn figure2_l1_indistinguishable_structure() {
        let t = figure2();
        let g = &t.topology;
        let l1 = g.link_by_name("l1").unwrap();
        // l1 is traversed by both paths; l2/l3 by one each.
        assert_eq!(g.paths_through(l1).len(), 2);
    }

    #[test]
    fn figure4_link_sharing() {
        let t = figure4();
        let g = &t.topology;
        let l1 = g.link_by_name("l1").unwrap();
        let l2 = g.link_by_name("l2").unwrap();
        assert_eq!(g.paths_through(l1).len(), 4);
        assert_eq!(g.paths_through(l2).len(), 3);
        // No path pair shares exactly {l2}: every pair sharing l2 also shares l1.
        let paths = g.paths();
        for i in 0..paths.len() {
            for j in i + 1..paths.len() {
                let shared = paths[i].shared_links(&paths[j]);
                if shared.contains(l2) {
                    assert!(shared.contains(l1), "l2 always comes with l1");
                }
            }
        }
    }

    #[test]
    fn figure5_is_star_through_l1() {
        let t = figure5();
        let g = &t.topology;
        let l1 = g.link_by_name("l1").unwrap();
        assert_eq!(g.paths_through(l1).len(), 3);
        assert_eq!(t.classes[0].len(), 1);
        assert_eq!(t.classes[1].len(), 2);
    }

    #[test]
    fn topology_a_structure() {
        let t = topology_a(0.05, 0.05);
        let g = &t.topology;
        assert_eq!(g.link_count(), 9);
        assert_eq!(g.path_count(), 4);
        let l5 = g.link_by_name("l5").unwrap();
        assert_eq!(g.paths_through(l5).len(), 4);
        assert_eq!(g.link(l5).capacity_bps, BOTTLENECK_BPS);
        // Every path has exactly three links and crosses l5.
        for p in g.paths() {
            assert_eq!(p.len(), 3);
            assert!(p.traverses(l5));
        }
    }

    #[test]
    fn topology_a_rtt_budget() {
        let t = topology_a(0.05, 0.2);
        let g = &t.topology;
        // Propagation RTT of a path = 2 * sum of one-way delays.
        for (i, p) in g.paths().iter().enumerate() {
            let one_way: f64 = p.links().iter().map(|&l| g.link(l).delay_s).sum();
            let want = if i < 2 { 0.05 } else { 0.2 };
            assert!(
                (2.0 * one_way - want).abs() < 1e-9,
                "path {i} RTT {} != {want}",
                2.0 * one_way
            );
        }
    }

    #[test]
    fn topology_b_structure() {
        let t = topology_b();
        let g = &t.topology;
        assert_eq!(g.link_count(), 24);
        assert_eq!(g.path_count(), 15);
        assert_eq!(t.classes[0].len() + t.classes[1].len(), 15);
        // The three policers are where the paper puts them.
        let names: Vec<String> = t
            .nonneutral_links
            .iter()
            .map(|&l| g.link(l).name.clone())
            .collect();
        assert_eq!(names, vec!["l5", "l14", "l20"]);
    }

    #[test]
    fn topology_b_paths_are_valid_and_classified() {
        let t = topology_b();
        for p in t.topology.path_ids() {
            // class_of panics if some path is unclassified.
            let _ = t.class_of(p);
        }
    }

    #[test]
    fn topology_b_policers_have_mixed_and_pure_pairs() {
        // Each policer must participate in a link sequence with >= 2 path
        // pairs, at least one pair entirely inside class 2 and one not
        // (Lemma 3's hypothesis) — otherwise the evaluation could not
        // possibly reach FN = 0.
        let t = topology_b();
        let g = &t.topology;
        let c2 = &t.classes[1];
        for &pol in &t.nonneutral_links {
            let mut pure = 0;
            let mut mixed = 0;
            let paths = g.paths();
            for i in 0..paths.len() {
                for j in i + 1..paths.len() {
                    let shared = paths[i].shared_links(&paths[j]);
                    if !shared.contains(pol) {
                        continue;
                    }
                    let pi_c2 = c2.contains(&paths[i].id());
                    let pj_c2 = c2.contains(&paths[j].id());
                    if pi_c2 && pj_c2 {
                        pure += 1;
                    } else {
                        mixed += 1;
                    }
                }
            }
            assert!(pure >= 1, "policer {pol} lacks a pure class-2 pair");
            assert!(mixed >= 1, "policer {pol} lacks a mixed pair");
        }
    }

    #[test]
    fn named_link_lookup() {
        let t = topology_b();
        assert_eq!(t.topology.link(t.link_named("l13")).name, "l13");
        let ids = t.links_named(&["l5", "l14", "l20"]);
        assert_eq!(ids, t.nonneutral_links);
    }

    #[test]
    #[should_panic(expected = "no link named")]
    fn named_link_lookup_panics_on_unknown() {
        let t = figure1();
        t.link_named("l99");
    }

    #[test]
    fn dumbbell_generalises() {
        let t = dumbbell(3, 2);
        assert_eq!(t.topology.path_count(), 5);
        assert_eq!(t.classes[0].len(), 3);
        assert_eq!(t.classes[1].len(), 2);
        let shared = t.nonneutral_links[0];
        assert_eq!(t.topology.paths_through(shared).len(), 5);
    }

    #[test]
    fn parking_lot_scales() {
        for segs in 2..6 {
            let t = parking_lot(segs);
            assert_eq!(t.topology.path_count(), segs); // 1 full + (segs-1) ramps
        }
    }
}
