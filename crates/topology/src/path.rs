//! Paths and link sequences.

use crate::ids::{LinkId, PathId};

/// A loop-free sequence of consecutive links between two end-hosts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Path {
    id: PathId,
    name: String,
    links: Vec<LinkId>,
}

impl Path {
    /// Creates a path; validation happens in the topology builder.
    pub(crate) fn new(id: PathId, name: String, links: Vec<LinkId>) -> Path {
        Path { id, name, links }
    }

    /// Path identifier.
    pub fn id(&self) -> PathId {
        self.id
    }

    /// Human-readable name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// `Links(p)`: the links traversed by this path, in traversal order.
    pub fn links(&self) -> &[LinkId] {
        &self.links
    }

    /// Number of links.
    pub fn len(&self) -> usize {
        self.links.len()
    }

    /// A validated path is never empty.
    pub fn is_empty(&self) -> bool {
        self.links.is_empty()
    }

    /// Whether this path traverses link `l`.
    pub fn traverses(&self, l: LinkId) -> bool {
        self.links.contains(&l)
    }

    /// The links shared with another path, as a [`LinkSeq`]
    /// (the `Links(p_i) ∩ Links(p_j)` of Algorithm 1, line 3).
    pub fn shared_links(&self, other: &Path) -> LinkSeq {
        let shared: Vec<LinkId> = self
            .links
            .iter()
            .copied()
            .filter(|l| other.links.contains(l))
            .collect();
        LinkSeq::new(shared)
    }
}

/// A set of links treated as a candidate non-neutral link sequence `τ`.
///
/// Stored sorted so that equal sets compare equal and can key maps; the
/// traversal order along a concrete path is irrelevant to the algorithm
/// (System 4 only needs the *membership* of links in `τ`).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct LinkSeq {
    links: Vec<LinkId>,
}

impl LinkSeq {
    /// Creates a link sequence from any collection of links (sorted,
    /// deduplicated).
    pub fn new(mut links: Vec<LinkId>) -> LinkSeq {
        links.sort();
        links.dedup();
        LinkSeq { links }
    }

    /// Single-link sequence `⟨l⟩`.
    pub fn single(l: LinkId) -> LinkSeq {
        LinkSeq { links: vec![l] }
    }

    /// Member links (sorted).
    pub fn links(&self) -> &[LinkId] {
        &self.links
    }

    /// Number of links.
    pub fn len(&self) -> usize {
        self.links.len()
    }

    /// True when the sequence has no links.
    pub fn is_empty(&self) -> bool {
        self.links.is_empty()
    }

    /// Membership test.
    pub fn contains(&self, l: LinkId) -> bool {
        self.links.binary_search(&l).is_ok()
    }

    /// Whether `self` is a subset of `other`.
    pub fn is_subset_of(&self, other: &LinkSeq) -> bool {
        self.links.iter().all(|l| other.contains(*l))
    }

    /// Set union.
    pub fn union(&self, other: &LinkSeq) -> LinkSeq {
        let mut links = self.links.clone();
        links.extend_from_slice(&other.links);
        LinkSeq::new(links)
    }

    /// Renders as the paper's `⟨l3, l5⟩` notation.
    pub fn render(&self) -> String {
        let inner: Vec<String> = self.links.iter().map(|l| l.to_string()).collect();
        format!("⟨{}⟩", inner.join(", "))
    }
}

impl std::fmt::Display for LinkSeq {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.render())
    }
}

impl FromIterator<LinkId> for LinkSeq {
    fn from_iter<T: IntoIterator<Item = LinkId>>(iter: T) -> Self {
        LinkSeq::new(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(id: usize, links: &[usize]) -> Path {
        Path::new(
            PathId(id),
            format!("p{id}"),
            links.iter().map(|&l| LinkId(l)).collect(),
        )
    }

    #[test]
    fn shared_links_is_intersection() {
        let a = path(0, &[0, 1, 2, 3]);
        let b = path(1, &[5, 2, 1, 7]);
        let shared = a.shared_links(&b);
        assert_eq!(shared.links(), &[LinkId(1), LinkId(2)]);
    }

    #[test]
    fn shared_links_empty_when_disjoint() {
        let a = path(0, &[0, 1]);
        let b = path(1, &[2, 3]);
        assert!(a.shared_links(&b).is_empty());
    }

    #[test]
    fn linkseq_sorted_and_deduped() {
        let s = LinkSeq::new(vec![LinkId(3), LinkId(1), LinkId(3)]);
        assert_eq!(s.links(), &[LinkId(1), LinkId(3)]);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn linkseq_equality_is_set_equality() {
        let a = LinkSeq::new(vec![LinkId(2), LinkId(1)]);
        let b = LinkSeq::new(vec![LinkId(1), LinkId(2)]);
        assert_eq!(a, b);
    }

    #[test]
    fn subset_and_union() {
        let a = LinkSeq::new(vec![LinkId(1)]);
        let b = LinkSeq::new(vec![LinkId(1), LinkId(2)]);
        assert!(a.is_subset_of(&b));
        assert!(!b.is_subset_of(&a));
        assert_eq!(a.union(&b), b);
    }

    #[test]
    fn contains_uses_sorted_order() {
        let s = LinkSeq::new(vec![LinkId(9), LinkId(4), LinkId(6)]);
        assert!(s.contains(LinkId(6)));
        assert!(!s.contains(LinkId(5)));
    }

    #[test]
    fn render_matches_paper_notation() {
        let s = LinkSeq::new(vec![LinkId(5), LinkId(3)]);
        assert_eq!(s.render(), "⟨l3, l5⟩");
    }

    #[test]
    fn traverses_checks_membership() {
        let p = path(0, &[4, 5]);
        assert!(p.traverses(LinkId(4)));
        assert!(!p.traverses(LinkId(6)));
        assert_eq!(p.len(), 2);
        assert_eq!(p.name(), "p0");
    }
}
