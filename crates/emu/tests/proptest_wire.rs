//! Property harness for the report codec and its checksummed frame: byte
//! soup, mid-frame EOF, and single-bit flips must always come back as a
//! typed error (or a valid report) — never a panic, a hang, or a huge
//! speculative allocation. This is the decode half of the chaos contract:
//! whatever a dying or faulty worker leaves on the pipe, the parent's
//! failure is classified, not fatal.

use std::io::Cursor;

use nni_emu::{decode_report, encode_report, LinkTruth, QueueTrace, SimReport};
use nni_measure::codec::CodecError;
use nni_measure::{
    frame_bytes, frame_bytes_v1, read_frame, read_frame_v1, FrameError, MeasurementLog,
    FRAME_VERSION,
};
use nni_topology::{LinkId, PathId};
use proptest::prelude::*;

const MAGIC: &[u8; 7] = b"NNITEST";

/// Cheap deterministic value mixer: dims and one salt fully determine a
/// report, so failing cases reproduce from the printed inputs.
fn mix(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state >> 33
}

fn build_report(
    n_paths: usize,
    n_intervals: usize,
    n_links: usize,
    n_classes: usize,
    trace_lens: Vec<usize>,
    salt: u64,
) -> SimReport {
    let mut s = salt;
    let mut log = MeasurementLog::new(n_paths, 0.1);
    for t in 0..n_intervals {
        for p in 0..n_paths {
            log.record_sent(t, PathId(p), mix(&mut s) % 1000);
            log.record_lost(t, PathId(p), mix(&mut s) % 10);
        }
    }
    let mut truth = LinkTruth::new(n_links, n_classes);
    if n_links > 0 && n_classes > 0 {
        for t in 0..n_intervals {
            for l in 0..n_links {
                for c in 0..n_classes {
                    if mix(&mut s).is_multiple_of(2) {
                        truth.record_offered(t, LinkId(l), c as u8);
                    }
                }
            }
        }
    }
    let queue_traces = trace_lens
        .into_iter()
        .map(|len| {
            let mut trace = QueueTrace::default();
            for i in 0..len {
                trace.push(i as f64 * 0.01, mix(&mut s) % 4096);
            }
            trace
        })
        .collect();
    SimReport {
        log,
        link_truth: truth,
        queue_traces,
        completed_flows: (salt % 50) as usize,
        segments_sent: salt % 10_000,
        segments_delivered: salt % 9_000,
        segments_dropped: salt % 100,
    }
}

fn arb_report() -> impl Strategy<Value = SimReport> {
    (
        1usize..4,
        0usize..6,
        0usize..3,
        0usize..3,
        prop::collection::vec(0usize..5, 0..3),
        0u64..u64::MAX,
    )
        .prop_map(|(p, i, l, c, lens, salt)| build_report(p, i, l, c, lens, salt))
}

/// Maps a unit fraction onto a strict index of an `n`-byte buffer.
fn at(frac: f64, n: usize) -> usize {
    ((frac * n as f64) as usize).min(n - 1)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary bytes must decode to a typed result, whatever they are.
    /// (The allocation guards are what make this safe to even attempt:
    /// garbled dimension varints fail fast instead of reserving memory.)
    #[test]
    fn report_decode_survives_byte_soup(soup in prop::collection::vec(0u8..=255, 0..512)) {
        let _ = decode_report(&soup);
        let _ = read_frame(&mut Cursor::new(&soup), MAGIC);
    }

    /// Any strict prefix of a valid report payload is an error — the
    /// decoder consumed every byte on the way in, so it must notice every
    /// missing byte on the way out.
    #[test]
    fn report_truncation_is_a_typed_error(
        report in arb_report(),
        frac in 0.0f64..1.0,
    ) {
        let bytes = encode_report(&report);
        prop_assert_eq!(&decode_report(&bytes).unwrap(), &report);
        let k = at(frac, bytes.len());
        prop_assert!(decode_report(&bytes[..k]).is_err());
    }

    /// A single flipped bit anywhere in a frame can never deliver a
    /// payload: the FNV-1a trailer (or the header checks before it) must
    /// reject the frame with a typed error.
    #[test]
    fn frame_bit_flip_never_delivers_a_payload(
        report in arb_report(),
        frac in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let mut frame = frame_bytes(MAGIC, &encode_report(&report));
        let i = at(frac, frame.len());
        frame[i] ^= 1 << bit;
        let got = read_frame(&mut Cursor::new(&frame), MAGIC);
        prop_assert!(got.is_err(), "flipped frame must not deliver: {got:?}");
    }

    /// A flip confined to the 8-byte FNV trailer is specifically a
    /// checksum mismatch — the payload itself was intact.
    #[test]
    fn flipped_fnv_trailer_is_a_checksum_mismatch(
        report in arb_report(),
        byte in 0usize..8,
        bit in 0u8..8,
    ) {
        let mut frame = frame_bytes(MAGIC, &encode_report(&report));
        let n = frame.len();
        frame[n - 8 + byte] ^= 1 << bit;
        prop_assert!(matches!(
            read_frame(&mut Cursor::new(&frame), MAGIC),
            Err(FrameError::Codec(CodecError::ChecksumMismatch))
        ));
    }

    /// EOF inside a frame is the worker-died signal: every nonempty strict
    /// prefix must classify as `UnexpectedEof`, and the empty prefix as a
    /// clean end-of-stream.
    #[test]
    fn mid_frame_eof_is_unexpected_eof(
        report in arb_report(),
        frac in 0.0f64..1.0,
    ) {
        let frame = frame_bytes(MAGIC, &encode_report(&report));
        let k = at(frac, frame.len());
        let got = read_frame(&mut Cursor::new(&frame[..k]), MAGIC);
        if k == 0 {
            prop_assert!(matches!(got, Ok(None)));
        } else {
            prop_assert!(matches!(
                got,
                Err(FrameError::Codec(CodecError::UnexpectedEof))
            ), "cut at {k}: {got:?}");
        }
    }

    /// Backward interop: every frozen v1 frame decodes bit-identically in
    /// the v2 reader — a fleet can upgrade its readers first.
    #[test]
    fn v1_frames_decode_bit_identically_in_the_v2_reader(report in arb_report()) {
        let frame = frame_bytes_v1(MAGIC, &encode_report(&report));
        let payload = read_frame(&mut Cursor::new(&frame), MAGIC)
            .expect("v1 frame reads clean")
            .expect("one frame present");
        prop_assert_eq!(&decode_report(&payload).unwrap(), &report);
    }

    /// Forward interop: a still-deployed v1 reader stops on a v2 frame at
    /// the version byte with a typed `UnsupportedVersion(2)` — never a
    /// checksum mismatch, never a speculative allocation from misreading
    /// the sync marker as a length.
    #[test]
    fn v2_frames_fail_the_v1_reader_at_the_version_byte(report in arb_report()) {
        let frame = frame_bytes(MAGIC, &encode_report(&report));
        let got = read_frame_v1(&mut Cursor::new(&frame), MAGIC);
        prop_assert!(matches!(
            got,
            Err(FrameError::Codec(CodecError::UnsupportedVersion(FRAME_VERSION)))
        ), "v1 reader on a v2 frame: {got:?}");
    }

    /// The PR 8 bit-flip guarantee re-run against the frozen v1 layout:
    /// one flipped bit never delivers a payload through either reader.
    #[test]
    fn v1_frame_bit_flip_never_delivers_in_either_reader(
        report in arb_report(),
        frac in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let mut frame = frame_bytes_v1(MAGIC, &encode_report(&report));
        let i = at(frac, frame.len());
        frame[i] ^= 1 << bit;
        let v2 = read_frame(&mut Cursor::new(&frame), MAGIC);
        prop_assert!(v2.is_err(), "flipped v1 frame via v2 reader: {v2:?}");
        let v1 = read_frame_v1(&mut Cursor::new(&frame), MAGIC);
        prop_assert!(v1.is_err(), "flipped v1 frame via v1 reader: {v1:?}");
    }

    /// Marker-adjacent corruption: a flip confined to the 8-byte sync
    /// region of a v2 frame is specifically the typed sync-marker
    /// mismatch — the resync scanner's anchor failure, not a mystery
    /// checksum error downstream.
    #[test]
    fn sync_marker_corruption_is_the_typed_marker_mismatch(
        report in arb_report(),
        byte in 0usize..8,
        bit in 0u8..8,
    ) {
        let mut frame = frame_bytes(MAGIC, &encode_report(&report));
        frame[8 + byte] ^= 1 << bit; // magic(7) · version(1) · SYNC(8..16)
        prop_assert!(matches!(
            read_frame(&mut Cursor::new(&frame), MAGIC),
            Err(FrameError::Codec(CodecError::BadValue("frame sync marker mismatch")))
        ));
    }

    /// Garbage that diverges from the magic inside the first seven bytes —
    /// however short — is `BadMagic`, never `UnexpectedEof`: a dialer that
    /// reaches the wrong port gets told so even if the stranger only wrote
    /// a byte or two.
    #[test]
    fn short_garbage_is_bad_magic_not_eof(
        agree in 0usize..7,
        wrong in 0u8..=255,
        tail in prop::collection::vec(0u8..=255, 0..32),
    ) {
        let mut bytes = MAGIC[..agree].to_vec();
        bytes.push(if wrong == MAGIC[agree] { wrong.wrapping_add(1) } else { wrong });
        bytes.extend_from_slice(&tail);
        let got = read_frame(&mut Cursor::new(&bytes), MAGIC);
        prop_assert!(matches!(
            got,
            Err(FrameError::Codec(CodecError::BadMagic))
        ), "diverging byte at {agree}: {got:?}");
    }
}
