//! Integration tests of emulator behaviours that span several modules:
//! shaping end-to-end, congestion-control comparisons, RTT effects, and
//! measurement-log alignment.

use nni_emu::{
    link_params, measured_routes, shaper_at_fraction, CcFleet, CcKind, Differentiation, LinkParams,
    Route, RouteId, SimConfig, SimReport, Simulator, SizeDist, TrafficSpec,
};
use nni_topology::library::topology_a;
use nni_topology::{LinkId, PathId};

fn quick_cfg(duration: f64, seed: u64) -> SimConfig {
    SimConfig {
        duration_s: duration,
        warmup_s: 1.0,
        seed,
        ..SimConfig::default()
    }
}

/// One flow per class through a 50/20 shaped bottleneck: the shaped-down
/// class gets throttled to roughly its lane rate, the other rides free.
#[test]
fn shaper_end_to_end_throttles_one_class() {
    let paper = topology_a(0.05, 0.05);
    let g = &paper.topology;
    let l5 = g.link_by_name("l5").unwrap();
    let mechanisms = vec![shaper_at_fraction(g, l5, 0.2)];
    let mut sim = Simulator::new(
        link_params(g, &mechanisms),
        measured_routes(g),
        4,
        2,
        quick_cfg(20.0, 11),
    );
    for path in g.path_ids() {
        let c2 = paper.classes[1].contains(&path);
        sim.add_traffic(TrafficSpec {
            route: RouteId(path.index() as u32),
            class: c2 as u8,
            cc: CcKind::Cubic.into(),
            size: SizeDist::Fixed {
                bytes: 1_000_000_000,
            },
            mean_gap_s: 10.0,
            parallel: 1,
        });
    }
    let report = sim.run();
    let goodput = |p: usize| {
        (report.log.total_sent(PathId(p)) - report.log.total_lost(PathId(p))) as f64 * 1500.0 * 8.0
            / 20.0
    };
    let c1 = goodput(0) + goodput(1);
    let c2 = goodput(2) + goodput(3);
    // Class 2 shaped to 20 Mb/s, class 1 to 80 Mb/s.
    assert!(c2 < 25e6, "shaped class exceeded its lane: {c2:.0} b/s");
    assert!(
        c1 > 40e6,
        "unshaped class should use its 80 Mb/s lane: {c1:.0} b/s"
    );
}

/// NewReno and CUBIC both sustain a single bottleneck, and CUBIC (faster
/// window regrowth) achieves at least comparable goodput.
#[test]
fn cubic_competitive_with_newreno() {
    let run = |cc: CcKind| -> u64 {
        let links = vec![
            LinkParams {
                rate_bps: 1e9,
                delay_s: 0.005,
                diff: Differentiation::None,
                queue_bytes: None,
            },
            LinkParams {
                rate_bps: 20e6,
                delay_s: 0.02,
                diff: Differentiation::None,
                queue_bytes: Some(100_000),
            },
        ];
        let routes = vec![Route {
            links: vec![LinkId(0), LinkId(1)],
            path: Some(PathId(0)),
        }];
        let mut sim = Simulator::new(links, routes, 1, 1, quick_cfg(20.0, 5));
        sim.add_traffic(TrafficSpec {
            route: RouteId(0),
            class: 0,
            cc: cc.into(),
            size: SizeDist::Fixed {
                bytes: 1_000_000_000,
            },
            mean_gap_s: 10.0,
            parallel: 1,
        });
        sim.run().segments_delivered
    };
    let newreno = run(CcKind::NewReno);
    let cubic = run(CcKind::Cubic);
    let line_rate = (20e6 * 20.0 / (1500.0 * 8.0)) as u64;
    assert!(
        newreno > line_rate / 3,
        "NewReno too slow: {newreno}/{line_rate}"
    );
    assert!(cubic > line_rate / 3, "CUBIC too slow: {cubic}/{line_rate}");
    assert!(
        cubic * 10 >= newreno * 7,
        "CUBIC should be competitive: {cubic} vs {newreno}"
    );
}

/// A mixed-CC fleet really assigns different algorithms to the slots: the
/// fleet run is deterministic, and swapping half the fleet from CUBIC to
/// NewReno changes the contention outcome relative to a uniform fleet.
#[test]
fn mixed_fleet_assigns_per_slot_algorithms() {
    let run = |cc: CcFleet| -> (u64, u64) {
        let links = vec![
            LinkParams {
                rate_bps: 1e9,
                delay_s: 0.005,
                diff: Differentiation::None,
                queue_bytes: None,
            },
            LinkParams {
                rate_bps: 20e6,
                delay_s: 0.02,
                diff: Differentiation::None,
                queue_bytes: Some(100_000),
            },
        ];
        let routes = vec![Route {
            links: vec![LinkId(0), LinkId(1)],
            path: Some(PathId(0)),
        }];
        let mut sim = Simulator::new(links, routes, 1, 1, quick_cfg(20.0, 9));
        sim.add_traffic(TrafficSpec {
            route: RouteId(0),
            class: 0,
            cc,
            size: SizeDist::Fixed {
                bytes: 1_000_000_000,
            },
            mean_gap_s: 10.0,
            parallel: 4,
        });
        let report = sim.run();
        (report.segments_delivered, report.segments_dropped)
    };
    let uniform = run(CcKind::Cubic.into());
    let fleet = CcFleet::fleet(&[(CcKind::Cubic, 2), (CcKind::NewReno, 2)]);
    let mixed = run(fleet.clone());
    assert_eq!(mixed, run(fleet), "mixed fleets must stay deterministic");
    assert_ne!(
        uniform, mixed,
        "half-NewReno fleet must contend differently from all-CUBIC"
    );
    // The bottleneck still carries real traffic either way.
    assert!(mixed.0 > 1000, "mixed fleet moved {} segments", mixed.0);
}

/// Longer RTT lowers single-flow goodput on a loss-bound path (the classic
/// TCP throughput relation) — the dynamics behind experiment sets 2/5/8.
#[test]
fn rtt_dependence_of_goodput() {
    let run = |rtt: f64| -> u64 {
        let paper = topology_a(rtt, rtt);
        let g = &paper.topology;
        let mut sim = Simulator::new(
            link_params(g, &[]),
            measured_routes(g),
            4,
            2,
            quick_cfg(15.0, 3),
        );
        // Two persistent flows congest the bottleneck.
        for p in 0..2 {
            sim.add_traffic(TrafficSpec {
                route: RouteId(p),
                class: 0,
                cc: CcKind::NewReno.into(),
                size: SizeDist::Fixed {
                    bytes: 1_000_000_000,
                },
                mean_gap_s: 10.0,
                parallel: 1,
            });
        }
        sim.run().segments_delivered
    };
    let short = run(0.05);
    let long = run(0.2);
    assert!(
        short as f64 > long as f64 * 1.1,
        "short-RTT flows should outrun long-RTT flows: {short} vs {long}"
    );
}

/// The measurement log's interval structure aligns with wall-clock time:
/// total sent over all intervals equals the global counter (minus warmup).
fn total_log_sent(report: &SimReport) -> u64 {
    (0..4).map(|p| report.log.total_sent(PathId(p))).sum()
}

#[test]
fn measurement_log_alignment() {
    let paper = topology_a(0.05, 0.05);
    let g = &paper.topology;
    let cfg = SimConfig {
        duration_s: 10.0,
        warmup_s: 0.0,
        seed: 6,
        ..SimConfig::default()
    };
    let mut sim = Simulator::new(link_params(g, &[]), measured_routes(g), 4, 2, cfg);
    for p in 0..4 {
        sim.add_traffic(TrafficSpec {
            route: RouteId(p),
            class: 0,
            cc: CcKind::Cubic.into(),
            size: SizeDist::ParetoMean {
                mean_bytes: 500_000.0,
                shape: 1.5,
            },
            mean_gap_s: 1.0,
            parallel: 2,
        });
    }
    let report = sim.run();
    assert_eq!(total_log_sent(&report), report.segments_sent);
    // ~100 intervals of 100 ms for a 10 s run (within one interval slack).
    assert!((95..=101).contains(&report.log.interval_count()));
}

/// Shaping delays rather than drops when the buffer suffices: with a huge
/// lane buffer, the shaped class loses nothing yet still gets rate-limited.
#[test]
fn shaper_with_large_buffer_delays_not_drops() {
    let links = vec![LinkParams {
        rate_bps: 100e6,
        delay_s: 0.005,
        diff: Differentiation::Shaping {
            lanes: vec![nni_emu::ShapeLaneConfig {
                class: 0,
                rate_bps: 10e6,
                burst_bytes: 30_000.0,
                buffer_bytes: 50_000_000,
            }],
        },
        queue_bytes: None,
    }];
    let routes = vec![Route {
        links: vec![LinkId(0)],
        path: Some(PathId(0)),
    }];
    let mut sim = Simulator::new(links, routes, 1, 1, quick_cfg(20.0, 12));
    sim.add_traffic(TrafficSpec {
        route: RouteId(0),
        class: 0,
        cc: CcKind::Cubic.into(),
        size: SizeDist::Fixed {
            bytes: 1_000_000_000,
        },
        mean_gap_s: 10.0,
        parallel: 1,
    });
    let report = sim.run();
    assert_eq!(
        report.segments_dropped, 0,
        "nothing may drop with a huge buffer"
    );
    let rate = report.segments_delivered as f64 * 1500.0 * 8.0 / 20.0;
    assert!(
        rate < 12e6,
        "shaper must still enforce ~10 Mb/s, got {rate:.0}"
    );
}
