//! Property-based tests for the emulator substrate.

use nni_emu::{
    CalendarEventQueue, CcKind, CongestionControl, Differentiation, Event, FlowId, HeapEventQueue,
    LinkParams, Packet, PacketSlab, Route, RouteId, ShapeLaneConfig, SimConfig, SimTime, Simulator,
    SizeDist, TokenBucket, TrafficSpec,
};
use nni_topology::{LinkId, PathId};
use proptest::prelude::*;

fn probe_packet(id: u32) -> Packet {
    Packet {
        id,
        flow: FlowId(0),
        seq: id,
        size: 1500,
        class: 0,
        route: RouteId(0),
        hop: 0,
        sent_at: SimTime::ZERO,
        retx: false,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// A token bucket never goes negative and never exceeds its burst, no
    /// matter the operation sequence.
    #[test]
    fn token_bucket_invariants(
        rate in 1e3..1e9f64,
        burst in 100.0..1e6f64,
        ops in prop::collection::vec((0.0..1.0f64, 1u64..100_000), 1..60),
    ) {
        let mut tb = TokenBucket::new(rate, burst);
        let mut now = 0.0;
        for (dt, bytes) in ops {
            now += dt;
            tb.update(SimTime::from_secs_f64(now));
            let _ = tb.try_consume(bytes);
            prop_assert!(tb.tokens() >= 0.0, "tokens negative");
            prop_assert!(tb.tokens() <= burst + 1e-6, "tokens exceed burst");
        }
    }

    /// Congestion control invariants across arbitrary event sequences:
    /// cwnd >= 1 after any timeout, ssthresh >= MIN_CWND after any loss.
    #[test]
    fn congestion_control_invariants(
        kind in prop::sample::select(vec![CcKind::NewReno, CcKind::Cubic]),
        events in prop::collection::vec(0u8..5, 1..80),
    ) {
        let mut cc = CongestionControl::new(kind);
        let mut now = 0.0;
        for e in events {
            now += 0.01;
            match e {
                0 | 1 => cc.on_new_ack(1, SimTime::from_secs_f64(now), 0.05),
                2 => {
                    if !cc.in_recovery() {
                        cc.enter_fast_recovery(cc.cwnd());
                    } else {
                        cc.on_dupack_in_recovery();
                    }
                }
                3 => cc.exit_recovery(),
                _ => cc.on_timeout(cc.cwnd()),
            }
            prop_assert!(cc.cwnd() >= 1.0, "cwnd collapsed below 1");
            prop_assert!(cc.cwnd().is_finite());
            prop_assert!(cc.ssthresh() >= 2.0 || cc.ssthresh().is_infinite());
        }
    }

    /// Conservation: segments sent = delivered + dropped + in flight, for
    /// arbitrary bottleneck rates, buffer sizes, and traffic mixes.
    #[test]
    fn segment_conservation(
        rate_mbps in 2.0..50.0f64,
        queue_kb in 20u64..500,
        parallel in 1usize..4,
        mean_mb in 0.2..8.0f64,
        seed in 0u64..1000,
    ) {
        let links = vec![
            LinkParams {
                rate_bps: 1e9,
                delay_s: 0.002,
                diff: Differentiation::None,
                queue_bytes: None,
            },
            LinkParams {
                rate_bps: rate_mbps * 1e6,
                delay_s: 0.005,
                diff: Differentiation::None,
                queue_bytes: Some(queue_kb * 1000),
            },
        ];
        let routes =
            vec![Route { links: vec![LinkId(0), LinkId(1)], path: Some(PathId(0)) }];
        let cfg = SimConfig { duration_s: 5.0, warmup_s: 0.0, seed, ..SimConfig::default() };
        let mut sim = Simulator::new(links, routes, 1, 1, cfg);
        sim.add_traffic(TrafficSpec {
            route: RouteId(0),
            class: 0,
            cc: CcKind::Cubic.into(),
            size: SizeDist::ParetoMean { mean_bytes: mean_mb * 125_000.0, shape: 1.5 },
            mean_gap_s: 0.5,
            parallel,
        });
        let report = sim.run();
        prop_assert_eq!(
            report.segments_sent,
            report.segments_delivered + report.segments_dropped + report.in_flight()
        );
        // The measurement log agrees with the global counters.
        prop_assert_eq!(report.log.total_lost(PathId(0)), report.segments_dropped);
        prop_assert!(report.log.total_sent(PathId(0)) >= report.segments_sent
            - report.in_flight());
    }

    /// Determinism: identical seeds give identical runs; this is the
    /// foundation of every reproducible experiment in the repo.
    #[test]
    fn determinism(seed in 0u64..500) {
        let run = || {
            let links = vec![
                LinkParams {
                    rate_bps: 20e6,
                    delay_s: 0.003,
                    diff: Differentiation::Policing {
                        class: 0,
                        rate_bps: 5e6,
                        burst_bytes: 20_000.0,
                    },
                    queue_bytes: None,
                },
            ];
            let routes = vec![Route { links: vec![LinkId(0)], path: Some(PathId(0)) }];
            let cfg = SimConfig { duration_s: 3.0, warmup_s: 0.0, seed, ..SimConfig::default() };
            let mut sim = Simulator::new(links, routes, 1, 1, cfg);
            sim.add_traffic(TrafficSpec {
                route: RouteId(0),
                class: 0,
                cc: CcKind::NewReno.into(),
                size: SizeDist::ParetoMean { mean_bytes: 300_000.0, shape: 1.4 },
                mean_gap_s: 0.2,
                parallel: 2,
            });
            let r = sim.run();
            (r.segments_sent, r.segments_delivered, r.segments_dropped)
        };
        prop_assert_eq!(run(), run());
    }

    /// Both event-queue implementations pop in exact `(time, insertion
    /// sequence)` order under random interleaved push/pop — the determinism
    /// invariant the slab/compact-entry rewrite must preserve, checked
    /// against a brute-force min-scan model.
    #[test]
    fn event_queues_pop_in_time_insertion_order(
        ops in prop::collection::vec((0u64..1_000_000_000, prop::bool::ANY), 1..400),
    ) {
        let mut heap = HeapEventQueue::new();
        let mut cal = CalendarEventQueue::new();
        // Model: pending (time, insertion seq, slot); pop = min by (time, seq).
        let mut model: Vec<(u64, u64, u32)> = Vec::new();
        let mut seq = 0u64;
        for (time, is_pop) in ops {
            if is_pop && !model.is_empty() {
                let best = model
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, &(t, s, _))| (t, s))
                    .map(|(i, _)| i)
                    .expect("non-empty");
                let (t, _, slot) = model.swap_remove(best);
                let expect = Some((SimTime(t), Event::FlowStart { slot }));
                prop_assert_eq!(heap.pop(), expect, "heap order");
                prop_assert_eq!(cal.pop(), expect, "calendar order");
            } else {
                let slot = seq as u32;
                heap.push(SimTime(time), Event::FlowStart { slot });
                cal.push(SimTime(time), Event::FlowStart { slot });
                model.push((time, seq, slot));
                seq += 1;
            }
            prop_assert_eq!(heap.len(), model.len());
            prop_assert_eq!(cal.len(), model.len());
        }
        // Drain: remaining events come out in identical, fully sorted order.
        model.sort_unstable_by_key(|&(t, s, _)| (t, s));
        for (t, _, slot) in model {
            let expect = Some((SimTime(t), Event::FlowStart { slot }));
            prop_assert_eq!(heap.pop(), expect);
            prop_assert_eq!(cal.pop(), expect);
        }
        prop_assert!(heap.is_empty() && cal.is_empty());
    }

    /// The packet slab neither leaks nor double-frees under random
    /// insert/remove interleavings: `live()` always matches the model, every
    /// handle returns its own packet, and a full drain reaches zero.
    #[test]
    fn packet_slab_never_leaks_or_double_frees(
        ops in prop::collection::vec((prop::bool::ANY, 0usize..64), 1..300),
    ) {
        let mut slab = PacketSlab::new();
        let mut live: Vec<(nni_emu::PacketHandle, u32)> = Vec::new();
        let mut next_id = 0u32;
        for (insert, sel) in ops {
            if insert || live.is_empty() {
                let h = slab.insert(probe_packet(next_id));
                live.push((h, next_id));
                next_id += 1;
            } else {
                let (h, id) = live.swap_remove(sel % live.len());
                prop_assert_eq!(slab.remove(h).id, id, "handle returned a foreign packet");
            }
            prop_assert_eq!(slab.live(), live.len());
        }
        for (h, id) in live.drain(..) {
            prop_assert_eq!(slab.remove(h).id, id);
        }
        prop_assert_eq!(slab.live(), 0);
        // Capacity never exceeds the peak live count (free-list recycling).
        prop_assert!(slab.capacity() <= next_id as usize);
    }

    /// Over a full simulation — including a shaper that buffers packets and
    /// a run cut off mid-flight — every slab handle is freed:
    /// `Simulator::run` asserts `slab.live() == 0` after its end-of-run
    /// drain, so a leak or double-free panics this test.
    #[test]
    fn slab_handles_all_freed_after_full_run(
        shape_frac in 0.1..0.9f64,
        seed in 0u64..200,
    ) {
        let links = vec![LinkParams {
            rate_bps: 20e6,
            delay_s: 0.01,
            diff: Differentiation::Shaping {
                lanes: vec![ShapeLaneConfig {
                    class: 0,
                    rate_bps: 20e6 * shape_frac,
                    burst_bytes: 10_000.0,
                    buffer_bytes: 200_000,
                }],
            },
            queue_bytes: None,
        }];
        let routes = vec![Route { links: vec![LinkId(0)], path: Some(PathId(0)) }];
        let cfg = SimConfig { duration_s: 3.0, warmup_s: 0.0, seed, ..SimConfig::default() };
        let mut sim = Simulator::new(links, routes, 1, 1, cfg);
        sim.add_traffic(TrafficSpec {
            route: RouteId(0),
            class: 0,
            cc: CcKind::Cubic.into(),
            size: SizeDist::ParetoMean { mean_bytes: 400_000.0, shape: 1.5 },
            mean_gap_s: 0.3,
            parallel: 2,
        });
        let report = sim.run();
        // Conservation against the *independently recorded* per-path log
        // (in_flight() is sent - delivered - dropped by definition, so
        // comparing against it alone would be a tautology).
        prop_assert_eq!(report.log.total_lost(PathId(0)), report.segments_dropped);
        prop_assert!(report.log.total_sent(PathId(0)) >= report.segments_delivered);
        prop_assert!(report.segments_sent >= report.segments_delivered + report.segments_dropped);
    }

    /// A policer never drops packets of the untargeted class.
    #[test]
    fn policer_class_isolation(
        police_rate in 1.0..10.0f64,
        seed in 0u64..200,
    ) {
        let links = vec![LinkParams {
            rate_bps: 100e6,
            delay_s: 0.002,
            diff: Differentiation::Policing {
                class: 1,
                rate_bps: police_rate * 1e6,
                burst_bytes: 10_000.0,
            },
            queue_bytes: None,
        }];
        let routes = vec![
            Route { links: vec![LinkId(0)], path: Some(PathId(0)) },
            Route { links: vec![LinkId(0)], path: Some(PathId(1)) },
        ];
        let cfg = SimConfig { duration_s: 3.0, warmup_s: 0.0, seed, ..SimConfig::default() };
        let mut sim = Simulator::new(links, routes, 2, 2, cfg);
        for (r, class) in [(0u32, 0u8), (1, 1)] {
            sim.add_traffic(TrafficSpec {
                route: RouteId(r),
                class,
                cc: CcKind::Cubic.into(),
                size: SizeDist::Fixed { bytes: 50_000_000 },
                mean_gap_s: 1.0,
                parallel: 1,
            });
        }
        let report = sim.run();
        // Class 0 rides a 100 Mb/s link alone: zero drops. (The shared link
        // is never saturated by two flows of < 100 Mb/s aggregate? It can
        // be — so check the *truth* recorder per class instead.)
        prop_assert_eq!(
            report.log.total_lost(PathId(0)),
            report.link_truth.total_dropped(LinkId(0))
                - report.log.total_lost(PathId(1)),
            "every drop belongs to one of the two paths"
        );
    }
}
