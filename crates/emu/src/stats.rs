//! Simulation statistics: the measurement log the inference consumes, the
//! per-link per-class ground truth it is evaluated against (Figure 10a), and
//! queue-occupancy traces (Figure 11).

use crate::packet::ClassLabel;
use nni_measure::MeasurementLog;
use nni_topology::LinkId;

/// Ground-truth per-link, per-class, per-interval packet accounting —
/// "directly measured by the network; our algorithm does not use them in any
/// way" (§6.4).
#[derive(Debug, Clone, PartialEq)]
pub struct LinkTruth {
    n_links: usize,
    n_classes: usize,
    /// `offered[interval][link][class]`, `dropped[interval][link][class]`.
    offered: Vec<Vec<Vec<u64>>>,
    dropped: Vec<Vec<Vec<u64>>>,
}

impl LinkTruth {
    /// Creates an empty ground-truth recorder.
    pub fn new(n_links: usize, n_classes: usize) -> LinkTruth {
        LinkTruth {
            n_links,
            n_classes,
            offered: Vec::new(),
            dropped: Vec::new(),
        }
    }

    /// Rebuilds a recorder from raw cell counts (the codec's decode path).
    /// Both tensors must be `[interval][link][class]`-shaped with the given
    /// dimensions.
    pub fn from_counts(
        n_links: usize,
        n_classes: usize,
        offered: Vec<Vec<Vec<u64>>>,
        dropped: Vec<Vec<Vec<u64>>>,
    ) -> LinkTruth {
        assert_eq!(offered.len(), dropped.len(), "interval counts must match");
        for tensor in [&offered, &dropped] {
            for interval in tensor {
                assert_eq!(interval.len(), n_links, "row per link");
                for row in interval {
                    assert_eq!(row.len(), n_classes, "cell per class");
                }
            }
        }
        LinkTruth {
            n_links,
            n_classes,
            offered,
            dropped,
        }
    }

    fn ensure(&mut self, t: usize) {
        while self.offered.len() <= t {
            self.offered
                .push(vec![vec![0; self.n_classes]; self.n_links]);
            self.dropped
                .push(vec![vec![0; self.n_classes]; self.n_links]);
        }
    }

    /// Records a packet offered to `link`.
    pub fn record_offered(&mut self, t: usize, link: LinkId, class: ClassLabel) {
        self.ensure(t);
        self.offered[t][link.index()][class as usize] += 1;
    }

    /// Records a packet dropped at `link` (queue overflow, policer, or
    /// shaper buffer overflow).
    pub fn record_dropped(&mut self, t: usize, link: LinkId, class: ClassLabel) {
        self.ensure(t);
        self.dropped[t][link.index()][class as usize] += 1;
    }

    /// Number of recorded intervals.
    pub fn interval_count(&self) -> usize {
        self.offered.len()
    }

    /// Number of classes.
    pub fn class_count(&self) -> usize {
        self.n_classes
    }

    /// Number of links.
    pub fn link_count(&self) -> usize {
        self.n_links
    }

    /// Packets of `class` offered to `link` during interval `t`.
    pub fn offered_at(&self, t: usize, link: LinkId, class: ClassLabel) -> u64 {
        self.offered[t][link.index()][class as usize]
    }

    /// Packets of `class` dropped at `link` during interval `t`.
    pub fn dropped_at(&self, t: usize, link: LinkId, class: ClassLabel) -> u64 {
        self.dropped[t][link.index()][class as usize]
    }

    /// Drops the first `k` intervals (aligned with the measurement warm-up).
    pub fn drop_warmup(&mut self, k: usize) {
        let k = k.min(self.offered.len());
        self.offered.drain(0..k);
        self.dropped.drain(0..k);
    }

    /// The link's ground-truth congestion probability for one class: the
    /// fraction of (active) intervals in which the link dropped more than
    /// `loss_threshold` of that class's offered packets.
    pub fn congestion_probability(
        &self,
        link: LinkId,
        class: ClassLabel,
        loss_threshold: f64,
    ) -> f64 {
        let mut active = 0usize;
        let mut congested = 0usize;
        for t in 0..self.offered.len() {
            let off = self.offered[t][link.index()][class as usize];
            if off == 0 {
                continue;
            }
            active += 1;
            let drop = self.dropped[t][link.index()][class as usize];
            if drop as f64 > loss_threshold * off as f64 {
                congested += 1;
            }
        }
        if active == 0 {
            0.0
        } else {
            congested as f64 / active as f64
        }
    }

    /// Per-interval loss fractions of one (link, class) — the samples behind
    /// Figure 10(a)'s boxplots.
    pub fn loss_fractions(&self, link: LinkId, class: ClassLabel) -> Vec<f64> {
        (0..self.offered.len())
            .filter_map(|t| {
                let off = self.offered[t][link.index()][class as usize];
                if off == 0 {
                    None
                } else {
                    Some(self.dropped[t][link.index()][class as usize] as f64 / off as f64)
                }
            })
            .collect()
    }

    /// Total packets of one class offered to a link (the denominator of a
    /// NetPolice-style per-class probe loss rate).
    pub fn class_offered(&self, link: LinkId, class: ClassLabel) -> u64 {
        (0..self.offered.len())
            .map(|t| self.offered[t][link.index()][class as usize])
            .sum()
    }

    /// Total packets of one class dropped at a link.
    pub fn class_dropped(&self, link: LinkId, class: ClassLabel) -> u64 {
        (0..self.dropped.len())
            .map(|t| self.dropped[t][link.index()][class as usize])
            .sum()
    }

    /// Total packets offered to a link across classes.
    pub fn total_offered(&self, link: LinkId) -> u64 {
        (0..self.offered.len())
            .map(|t| self.offered[t][link.index()].iter().sum::<u64>())
            .sum()
    }

    /// Total packets dropped at a link across classes.
    pub fn total_dropped(&self, link: LinkId) -> u64 {
        (0..self.dropped.len())
            .map(|t| self.dropped[t][link.index()].iter().sum::<u64>())
            .sum()
    }
}

/// Queue-occupancy time series of one link (Figure 11).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QueueTrace {
    /// Sample timestamps (seconds).
    pub times_s: Vec<f64>,
    /// Queue occupancy at each sample (bytes, main queue + shaper lanes).
    pub bytes: Vec<u64>,
}

impl QueueTrace {
    /// Appends a sample.
    pub fn push(&mut self, time_s: f64, bytes: u64) {
        self.times_s.push(time_s);
        self.bytes.push(bytes);
    }

    /// Peak occupancy.
    pub fn max_bytes(&self) -> u64 {
        self.bytes.iter().copied().max().unwrap_or(0)
    }

    /// Mean occupancy.
    pub fn mean_bytes(&self) -> f64 {
        if self.bytes.is_empty() {
            return 0.0;
        }
        self.bytes.iter().map(|&b| b as f64).sum::<f64>() / self.bytes.len() as f64
    }
}

/// Everything a simulation run produces.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// Measured-path packet log (the only thing inference sees).
    pub log: MeasurementLog,
    /// Ground truth for evaluation.
    pub link_truth: LinkTruth,
    /// Per-link queue occupancy traces.
    pub queue_traces: Vec<QueueTrace>,
    /// Flows that ran to completion.
    pub completed_flows: usize,
    /// Total segments transmitted (including retransmissions).
    pub segments_sent: u64,
    /// Segments delivered to receivers.
    pub segments_delivered: u64,
    /// Segments dropped anywhere in the network.
    pub segments_dropped: u64,
}

impl SimReport {
    /// Conservation check: every transmitted segment is delivered, dropped,
    /// or still in flight at the end of the run.
    pub fn in_flight(&self) -> u64 {
        self.segments_sent - self.segments_delivered - self.segments_dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truth_accumulates_and_computes_probability() {
        let mut t = LinkTruth::new(2, 2);
        // Interval 0: 100 offered to link 0 class 1, 5 dropped (5% > 1%).
        for _ in 0..100 {
            t.record_offered(0, LinkId(0), 1);
        }
        for _ in 0..5 {
            t.record_dropped(0, LinkId(0), 1);
        }
        // Interval 1: clean.
        for _ in 0..100 {
            t.record_offered(1, LinkId(0), 1);
        }
        assert!((t.congestion_probability(LinkId(0), 1, 0.01) - 0.5).abs() < 1e-12);
        assert_eq!(t.congestion_probability(LinkId(0), 0, 0.01), 0.0);
        assert_eq!(t.congestion_probability(LinkId(1), 1, 0.01), 0.0);
        assert_eq!(t.total_offered(LinkId(0)), 200);
        assert_eq!(t.total_dropped(LinkId(0)), 5);
        assert_eq!(t.class_offered(LinkId(0), 1), 200);
        assert_eq!(t.class_dropped(LinkId(0), 1), 5);
        assert_eq!(t.class_offered(LinkId(0), 0), 0);
    }

    #[test]
    fn loss_fractions_skip_idle_intervals() {
        let mut t = LinkTruth::new(1, 1);
        t.record_offered(0, LinkId(0), 0);
        t.record_dropped(0, LinkId(0), 0);
        t.ensure(2); // interval 1 idle, interval 2 idle
        let f = t.loss_fractions(LinkId(0), 0);
        assert_eq!(f, vec![1.0]);
    }

    #[test]
    fn warmup_drop() {
        let mut t = LinkTruth::new(1, 1);
        t.record_offered(0, LinkId(0), 0);
        t.record_offered(1, LinkId(0), 0);
        t.drop_warmup(1);
        assert_eq!(t.interval_count(), 1);
    }

    #[test]
    fn queue_trace_summaries() {
        let mut q = QueueTrace::default();
        q.push(0.0, 100);
        q.push(1.0, 300);
        q.push(2.0, 200);
        assert_eq!(q.max_bytes(), 300);
        assert!((q.mean_bytes() - 200.0).abs() < 1e-12);
    }
}
