//! Bridging `nni-topology` graphs into simulator inputs, plus the
//! policed-demand audit every policer experiment should run against its
//! traffic model (see [`policed_demand`]).

use crate::diff::Differentiation;
use crate::packet::{ClassLabel, Route};
use crate::sim::LinkParams;
use crate::traffic::{sustained_demand_bps, TrafficSpec};
use nni_topology::{LinkId, Topology};

/// Builds the per-link simulator parameters from a topology, applying the
/// given differentiation mechanisms (all other links are neutral FIFO).
pub fn link_params(
    topology: &Topology,
    mechanisms: &[(LinkId, Differentiation)],
) -> Vec<LinkParams> {
    topology
        .links()
        .iter()
        .enumerate()
        .map(|(i, l)| {
            let diff = mechanisms
                .iter()
                .find(|(id, _)| id.index() == i)
                .map(|(_, d)| d.clone())
                .unwrap_or(Differentiation::None);
            LinkParams {
                rate_bps: l.capacity_bps,
                delay_s: l.delay_s,
                diff,
                queue_bytes: None,
            }
        })
        .collect()
}

/// One measured route per topology path, in path order.
pub fn measured_routes(topology: &Topology) -> Vec<Route> {
    topology
        .paths()
        .iter()
        .map(|p| Route {
            links: p.links().to_vec(),
            path: Some(p.id()),
        })
        .collect()
}

/// An unmeasured background route over explicit links (loads the network
/// without appearing in the measurement log).
pub fn background_route(links: Vec<LinkId>) -> Route {
    Route { links, path: None }
}

/// Convenience: a policer at `fraction` of the link's capacity with a burst
/// of `burst_s` seconds at the policed rate (§6.1: the policing rate varies
/// from 50% down to 20% of link capacity).
///
/// The burst controls the regime: ~10 ms is a strict carrier policer that
/// clips every slow-start burst (topology A's strongly inconsistent
/// observations); ~100 ms lets persistent flows ride at the token rate with
/// periodic loss episodes (topology B's long-flow throttling).
pub fn policer_at_fraction(
    topology: &Topology,
    link: LinkId,
    class: u8,
    fraction: f64,
    burst_s: f64,
) -> (LinkId, Differentiation) {
    let rate = topology.link(link).capacity_bps * fraction;
    (
        link,
        Differentiation::Policing {
            class,
            rate_bps: rate,
            burst_bytes: (rate * burst_s / 8.0).max(3000.0),
        },
    )
}

/// Convenience: the paper's shaping setup — class 2 shaped to `fraction`,
/// class 1 shaped to `1 − fraction` of link capacity, each with a dedicated
/// buffer of `buffer_ms` milliseconds at the shaped rate.
pub fn shaper_at_fraction(
    topology: &Topology,
    link: LinkId,
    fraction: f64,
) -> (LinkId, Differentiation) {
    let cap = topology.link(link).capacity_bps;
    let lane = |class: u8, frac: f64| crate::diff::ShapeLaneConfig {
        class,
        rate_bps: cap * frac,
        burst_bytes: (cap * frac * 0.01 / 8.0).max(3000.0),
        buffer_bytes: ((cap * frac * 0.1 / 8.0) as u64).max(15_000),
    };
    (
        link,
        Differentiation::Shaping {
            lanes: vec![lane(0, 1.0 - fraction), lane(1, fraction)],
        },
    )
}

/// How one policer's (or shaper lane's) token rate compares to the traffic
/// that feeds it.
///
/// Produced by [`policed_demand`]; the numbers encode the PR 1 seed-test
/// lesson — a policer experiment is only meaningful when the targeted class
/// *demands* more than the token rate, from more than one flow slot (a
/// single policed flow can collapse into an RTO crawl below the rate and
/// never trip the bucket). The same starvation mode applies to a shaper
/// lane: an under-demanded lane never queues, so both mechanisms report
/// one entry per targeted class.
#[derive(Debug, Clone, PartialEq)]
pub struct PolicedDemand {
    /// The policed (or shaped) link.
    pub link: LinkId,
    /// The targeted class.
    pub class: ClassLabel,
    /// The policer's (or lane's) token rate (bits per second).
    pub rate_bps: f64,
    /// Conservative lower bound on the targeted class's sustained demand
    /// through the link (sum of [`sustained_demand_bps`] over feeding
    /// sources).
    pub demand_bps: f64,
    /// Total parallel flow slots of the targeted class crossing the link.
    pub feeding_slots: usize,
}

/// Audits every policer and shaper lane in `links` against the traffic that
/// crosses it: for each token bucket (a [`Differentiation::Policing`] stage,
/// or one lane of a [`Differentiation::Shaping`] stage), sums the targeted
/// class's sustained demand and parallel flow slots over all routes
/// traversing the link. `nni-scenario`'s
/// `assert_demand_exceeds_policed_rate` asserts on this report at the
/// scenario level; raw-simulator tests use it directly.
pub fn policed_demand(
    links: &[LinkParams],
    routes: &[Route],
    specs: &[TrafficSpec],
) -> Vec<PolicedDemand> {
    links
        .iter()
        .enumerate()
        .flat_map(|(i, l)| {
            let link = LinkId(i);
            // Every token bucket on this link, as (targeted class, rate).
            let buckets: Vec<(ClassLabel, f64)> = match &l.diff {
                Differentiation::None => Vec::new(),
                Differentiation::Policing {
                    class, rate_bps, ..
                } => vec![(*class, *rate_bps)],
                Differentiation::Shaping { lanes } => lanes
                    .iter()
                    .map(|lane| (lane.class, lane.rate_bps))
                    .collect(),
            };
            buckets
                .into_iter()
                .map(|(class, rate_bps)| {
                    let mut demand_bps = 0.0;
                    let mut feeding_slots = 0;
                    for spec in specs {
                        let route = &routes[spec.route.index()];
                        if spec.class != class || !route.links.contains(&link) {
                            continue;
                        }
                        // The transfer rate is bounded by the slowest link of
                        // the route (the bucket's own token rate is demand we
                        // are measuring, not a bound on it).
                        let line_rate = route
                            .links
                            .iter()
                            .map(|&l| links[l.index()].rate_bps)
                            .fold(f64::INFINITY, f64::min);
                        demand_bps += sustained_demand_bps(spec, line_rate);
                        feeding_slots += spec.parallel;
                    }
                    PolicedDemand {
                        link,
                        class,
                        rate_bps,
                        demand_bps,
                        feeding_slots,
                    }
                })
                .collect::<Vec<_>>()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::RouteId;
    use crate::tcp::CcKind;
    use crate::traffic::SizeDist;
    use nni_topology::library::topology_a;

    #[test]
    fn link_params_carry_topology_attributes() {
        let t = topology_a(0.05, 0.05);
        let l5 = t.topology.link_by_name("l5").unwrap();
        let params = link_params(
            &t.topology,
            &[policer_at_fraction(&t.topology, l5, 1, 0.2, 0.01)],
        );
        assert_eq!(params.len(), 9);
        assert_eq!(params[l5.index()].rate_bps, 100e6);
        assert!(matches!(
            params[l5.index()].diff,
            Differentiation::Policing { class: 1, .. }
        ));
        assert!(matches!(params[0].diff, Differentiation::None));
    }

    #[test]
    fn measured_routes_align_with_paths() {
        let t = topology_a(0.05, 0.05);
        let routes = measured_routes(&t.topology);
        assert_eq!(routes.len(), 4);
        for (i, r) in routes.iter().enumerate() {
            assert_eq!(r.path.unwrap().index(), i);
            assert_eq!(r.links, t.topology.path(r.path.unwrap()).links());
        }
    }

    #[test]
    fn policer_rate_follows_fraction() {
        let t = topology_a(0.05, 0.05);
        let l5 = t.topology.link_by_name("l5").unwrap();
        let (_, diff) = policer_at_fraction(&t.topology, l5, 1, 0.3, 0.01);
        match diff {
            Differentiation::Policing { rate_bps, .. } => {
                assert!((rate_bps - 30e6).abs() < 1e-6);
            }
            _ => panic!("expected policer"),
        }
    }

    #[test]
    fn policed_demand_sums_targeted_class_only() {
        let links = vec![
            LinkParams {
                rate_bps: 100e6,
                delay_s: 0.001,
                diff: Differentiation::None,
                queue_bytes: None,
            },
            LinkParams {
                rate_bps: 50e6,
                delay_s: 0.001,
                diff: Differentiation::Policing {
                    class: 1,
                    rate_bps: 5e6,
                    burst_bytes: 15_000.0,
                },
                queue_bytes: None,
            },
        ];
        let routes = vec![
            Route {
                links: vec![LinkId(0), LinkId(1)],
                path: None,
            },
            Route {
                links: vec![LinkId(0)],
                path: None,
            },
        ];
        let spec = |route: u32, class: u8, parallel: usize| TrafficSpec {
            route: RouteId(route),
            class,
            cc: CcKind::Cubic.into(),
            size: SizeDist::Fixed { bytes: 1_250_000 }, // 10 Mb
            mean_gap_s: 1.0,
            parallel,
        };
        let specs = vec![
            spec(0, 1, 4), // targeted: crosses the policer, class 1
            spec(0, 0, 8), // wrong class
            spec(1, 1, 8), // right class, does not cross the policer
        ];
        let audit = policed_demand(&links, &routes, &specs);
        assert_eq!(audit.len(), 1);
        let d = &audit[0];
        assert_eq!((d.link, d.class), (LinkId(1), 1));
        assert_eq!(d.feeding_slots, 4);
        // Cycle = 1 s gap + 10 Mb / 50 Mb/s = 1.2 s -> 8.33 Mb/s per slot.
        assert!((d.demand_bps - 4.0 * 10e6 / 1.2).abs() < 1.0);
        assert!(d.demand_bps > d.rate_bps);
    }

    #[test]
    fn policed_demand_covers_shaper_lanes() {
        let links = vec![LinkParams {
            rate_bps: 100e6,
            delay_s: 0.001,
            diff: Differentiation::Shaping {
                lanes: vec![
                    crate::ShapeLaneConfig {
                        class: 0,
                        rate_bps: 70e6,
                        burst_bytes: 3_000.0,
                        buffer_bytes: 100_000,
                    },
                    crate::ShapeLaneConfig {
                        class: 1,
                        rate_bps: 30e6,
                        burst_bytes: 3_000.0,
                        buffer_bytes: 100_000,
                    },
                ],
            },
            queue_bytes: None,
        }];
        let routes = vec![Route {
            links: vec![LinkId(0)],
            path: None,
        }];
        let specs = vec![TrafficSpec {
            route: RouteId(0),
            class: 1,
            cc: CcKind::Cubic.into(),
            size: SizeDist::Fixed { bytes: 1_250_000 },
            mean_gap_s: 1.0,
            parallel: 4,
        }];
        let audit = policed_demand(&links, &routes, &specs);
        // One entry per lane; only the class-1 lane is fed.
        assert_eq!(audit.len(), 2);
        assert_eq!((audit[0].class, audit[0].rate_bps), (0, 70e6));
        assert_eq!(audit[0].feeding_slots, 0);
        assert_eq!((audit[1].class, audit[1].rate_bps), (1, 30e6));
        assert_eq!(audit[1].feeding_slots, 4);
        assert!(audit[1].demand_bps > audit[1].rate_bps);
    }

    #[test]
    fn shaper_splits_capacity() {
        let t = topology_a(0.05, 0.05);
        let l5 = t.topology.link_by_name("l5").unwrap();
        let (_, diff) = shaper_at_fraction(&t.topology, l5, 0.2);
        match diff {
            Differentiation::Shaping { lanes } => {
                assert_eq!(lanes.len(), 2);
                assert!((lanes[0].rate_bps - 80e6).abs() < 1e-6);
                assert!((lanes[1].rate_bps - 20e6).abs() < 1e-6);
                assert_eq!(lanes[0].class, 0);
                assert_eq!(lanes[1].class, 1);
            }
            _ => panic!("expected shaper"),
        }
    }
}
