//! Bridging `nni-topology` graphs into simulator inputs.

use crate::diff::Differentiation;
use crate::packet::Route;
use crate::sim::LinkParams;
use nni_topology::{LinkId, Topology};

/// Builds the per-link simulator parameters from a topology, applying the
/// given differentiation mechanisms (all other links are neutral FIFO).
pub fn link_params(
    topology: &Topology,
    mechanisms: &[(LinkId, Differentiation)],
) -> Vec<LinkParams> {
    topology
        .links()
        .iter()
        .enumerate()
        .map(|(i, l)| {
            let diff = mechanisms
                .iter()
                .find(|(id, _)| id.index() == i)
                .map(|(_, d)| d.clone())
                .unwrap_or(Differentiation::None);
            LinkParams {
                rate_bps: l.capacity_bps,
                delay_s: l.delay_s,
                diff,
                queue_bytes: None,
            }
        })
        .collect()
}

/// One measured route per topology path, in path order.
pub fn measured_routes(topology: &Topology) -> Vec<Route> {
    topology
        .paths()
        .iter()
        .map(|p| Route {
            links: p.links().to_vec(),
            path: Some(p.id()),
        })
        .collect()
}

/// An unmeasured background route over explicit links (loads the network
/// without appearing in the measurement log).
pub fn background_route(links: Vec<LinkId>) -> Route {
    Route { links, path: None }
}

/// Convenience: a policer at `fraction` of the link's capacity with a burst
/// of `burst_s` seconds at the policed rate (§6.1: the policing rate varies
/// from 50% down to 20% of link capacity).
///
/// The burst controls the regime: ~10 ms is a strict carrier policer that
/// clips every slow-start burst (topology A's strongly inconsistent
/// observations); ~100 ms lets persistent flows ride at the token rate with
/// periodic loss episodes (topology B's long-flow throttling).
pub fn policer_at_fraction(
    topology: &Topology,
    link: LinkId,
    class: u8,
    fraction: f64,
    burst_s: f64,
) -> (LinkId, Differentiation) {
    let rate = topology.link(link).capacity_bps * fraction;
    (
        link,
        Differentiation::Policing {
            class,
            rate_bps: rate,
            burst_bytes: (rate * burst_s / 8.0).max(3000.0),
        },
    )
}

/// Convenience: the paper's shaping setup — class 2 shaped to `fraction`,
/// class 1 shaped to `1 − fraction` of link capacity, each with a dedicated
/// buffer of `buffer_ms` milliseconds at the shaped rate.
pub fn shaper_at_fraction(
    topology: &Topology,
    link: LinkId,
    fraction: f64,
) -> (LinkId, Differentiation) {
    let cap = topology.link(link).capacity_bps;
    let lane = |class: u8, frac: f64| crate::diff::ShapeLaneConfig {
        class,
        rate_bps: cap * frac,
        burst_bytes: (cap * frac * 0.01 / 8.0).max(3000.0),
        buffer_bytes: ((cap * frac * 0.1 / 8.0) as u64).max(15_000),
    };
    (
        link,
        Differentiation::Shaping {
            lanes: vec![lane(0, 1.0 - fraction), lane(1, fraction)],
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use nni_topology::library::topology_a;

    #[test]
    fn link_params_carry_topology_attributes() {
        let t = topology_a(0.05, 0.05);
        let l5 = t.topology.link_by_name("l5").unwrap();
        let params = link_params(
            &t.topology,
            &[policer_at_fraction(&t.topology, l5, 1, 0.2, 0.01)],
        );
        assert_eq!(params.len(), 9);
        assert_eq!(params[l5.index()].rate_bps, 100e6);
        assert!(matches!(
            params[l5.index()].diff,
            Differentiation::Policing { class: 1, .. }
        ));
        assert!(matches!(params[0].diff, Differentiation::None));
    }

    #[test]
    fn measured_routes_align_with_paths() {
        let t = topology_a(0.05, 0.05);
        let routes = measured_routes(&t.topology);
        assert_eq!(routes.len(), 4);
        for (i, r) in routes.iter().enumerate() {
            assert_eq!(r.path.unwrap().index(), i);
            assert_eq!(r.links, t.topology.path(r.path.unwrap()).links());
        }
    }

    #[test]
    fn policer_rate_follows_fraction() {
        let t = topology_a(0.05, 0.05);
        let l5 = t.topology.link_by_name("l5").unwrap();
        let (_, diff) = policer_at_fraction(&t.topology, l5, 1, 0.3, 0.01);
        match diff {
            Differentiation::Policing { rate_bps, .. } => {
                assert!((rate_bps - 30e6).abs() < 1e-6);
            }
            _ => panic!("expected policer"),
        }
    }

    #[test]
    fn shaper_splits_capacity() {
        let t = topology_a(0.05, 0.05);
        let l5 = t.topology.link_by_name("l5").unwrap();
        let (_, diff) = shaper_at_fraction(&t.topology, l5, 0.2);
        match diff {
            Differentiation::Shaping { lanes } => {
                assert_eq!(lanes.len(), 2);
                assert!((lanes[0].rate_bps - 80e6).abs() < 1e-6);
                assert!((lanes[1].rate_bps - 20e6).abs() < 1e-6);
                assert_eq!(lanes[0].class, 0);
                assert_eq!(lanes[1].class, 1);
            }
            _ => panic!("expected shaper"),
        }
    }
}
