//! Simulation time.
//!
//! Integer nanoseconds since simulation start. Integer time makes event
//! ordering exact (no float-comparison ties) and keeps the simulation
//! deterministic across platforms.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time (nanoseconds since start).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Time zero.
    pub const ZERO: SimTime = SimTime(0);

    /// Builds from seconds (saturating at zero for negative input).
    pub fn from_secs_f64(s: f64) -> SimTime {
        SimTime((s.max(0.0) * 1e9).round() as u64)
    }

    /// Converts to seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Nanosecond count.
    pub fn nanos(self) -> u64 {
        self.0
    }

    /// Saturating difference.
    pub fn saturating_sub(self, other: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(other.0))
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.checked_sub(rhs.0).expect("time went backwards"))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

/// Duration needed to serialize `bytes` at `rate_bps` (bits per second).
pub fn tx_time(bytes: u64, rate_bps: f64) -> SimTime {
    assert!(rate_bps > 0.0, "link rate must be positive");
    SimTime::from_secs_f64(bytes as f64 * 8.0 / rate_bps)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        let t = SimTime::from_secs_f64(1.5);
        assert_eq!(t.nanos(), 1_500_000_000);
        assert!((t.as_secs_f64() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_secs_f64(1.0);
        let b = SimTime::from_secs_f64(0.25);
        assert_eq!((a + b).as_secs_f64(), 1.25);
        assert_eq!((a - b).as_secs_f64(), 0.75);
        assert_eq!(b.saturating_sub(a), SimTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "backwards")]
    fn negative_duration_panics() {
        let _ = SimTime::from_secs_f64(1.0) - SimTime::from_secs_f64(2.0);
    }

    #[test]
    fn tx_time_at_line_rate() {
        // 1500 bytes at 100 Mb/s = 120 microseconds.
        let t = tx_time(1500, 100e6);
        assert_eq!(t.nanos(), 120_000);
    }

    #[test]
    fn ordering_is_total() {
        assert!(SimTime(1) < SimTime(2));
        assert_eq!(SimTime::ZERO, SimTime::from_secs_f64(-3.0));
    }
}
