//! # nni-emu
//!
//! A deterministic, packet-level network emulator — the substrate the
//! paper's evaluation runs on (§6.1; the authors use the LINE user-level
//! emulator, we rebuild the equivalent in Rust, see DESIGN.md).
//!
//! * [`sim`] — the discrete-event engine: per-link store-and-forward with
//!   drop-tail queues sized by the maximum RTT, and the TCP flow drivers.
//! * [`tcp`] — NewReno and CUBIC congestion control plus the RFC 6298
//!   RTT/RTO estimator.
//! * [`diff`] — the two differentiation mechanisms of §6.1: token-bucket
//!   **policing** (non-conforming packets dropped) and **shaping**
//!   (non-conforming packets buffered in a dedicated queue).
//! * [`traffic`] — the dynamic traffic model: parallel TCP flows with
//!   Pareto sizes and exponential idle gaps.
//! * [`stats`] — the measurement log handed to the inference, the per-link
//!   per-class ground truth (Figure 10a), and queue traces (Figure 11).
//! * [`scenario`] — adapters from `nni-topology` graphs to simulator inputs.
//! * [`wire`] — the `SimReport` binary codec (the payload a worker
//!   subprocess streams back to its parent).
//!
//! Determinism: integer-nanosecond event times, insertion-order tie
//! breaking, and a single seeded RNG make every run reproducible.

pub mod bucket;
pub mod config;
pub mod diff;
pub mod event;
pub mod packet;
pub mod scenario;
pub mod sim;
pub mod slab;
pub mod stats;
pub mod tcp;
pub mod time;
pub mod traffic;
pub mod window;
pub mod wire;

/// Build fingerprint of this emulator, stamped into every
/// `MeasurementSet`'s provenance (`nni-measure`): the crate version plus the
/// behaviour-relevant implementation choices. Two corpora recorded with the
/// same fingerprint and the same `(scenario fingerprint, seed)` key must
/// hold bit-identical measurements — the cross-version audit the on-disk
/// corpus format exists for.
pub fn build_fingerprint() -> String {
    format!(
        "nni-emu {} ({})",
        env!("CARGO_PKG_VERSION"),
        event::DEFAULT_QUEUE_KIND,
    )
}

pub use bucket::TokenBucket;
pub use config::SimConfig;
pub use diff::{Differentiation, ShapeLaneConfig};
pub use event::{CalendarEventQueue, Event, EventQueue, HeapEventQueue};
pub use packet::{ClassLabel, FlowId, Packet, Route, RouteId};
pub use scenario::{
    background_route, link_params, measured_routes, policed_demand, policer_at_fraction,
    shaper_at_fraction, PolicedDemand,
};
pub use sim::{LinkParams, Simulator};
pub use slab::{PacketHandle, PacketSlab};
pub use stats::{LinkTruth, QueueTrace, SimReport};
pub use tcp::{CcKind, CongestionControl, RttEstimator};
pub use time::SimTime;
pub use traffic::{
    long_flow, mean_flow_bits, short_flow_mix, sustained_demand_bps, CcFleet, SizeDist, TrafficSpec,
};
pub use wire::{decode_report, encode_report};
