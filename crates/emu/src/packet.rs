//! Packets and routes.
//!
//! [`Packet`] is deliberately small (32 bytes, `Copy`): the simulator moves
//! packets through link queues and shaper lanes by value, and while a packet
//! is in flight between events it lives in the
//! [`PacketSlab`](crate::slab::PacketSlab) — so packet size is a first-order
//! term in the event loop's memory traffic. Identifiers are `u32` (4 billion
//! flows / routes / segments per flow is far beyond any run this repo
//! performs) and the hop index is `u16`.

use crate::time::SimTime;
use nni_topology::{LinkId, PathId};

/// Traffic class label carried by every packet. The differentiation
/// mechanisms classify on this label — mirroring real devices that classify
/// on ports/DPI — while the inference layer never sees it.
pub type ClassLabel = u8;

/// Identifier of a route (measured path or background route).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RouteId(pub u32);

impl RouteId {
    /// The route's index into the simulator's route table.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A forwarding route through the network.
#[derive(Debug, Clone)]
pub struct Route {
    /// Links in traversal order.
    pub links: Vec<LinkId>,
    /// The measured path this route realises, if any (background routes
    /// carry `None` — their traffic loads the network but is not observed).
    pub path: Option<PathId>,
}

/// Identifier of a flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FlowId(pub u32);

impl FlowId {
    /// The flow's index into the simulator's flow table.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A data packet in flight. 32 bytes, `Copy` — see the module docs.
#[derive(Debug, Clone, Copy)]
pub struct Packet {
    /// Time the segment was (re)transmitted by the sender.
    pub sent_at: SimTime,
    /// Globally unique packet id (diagnostics).
    pub id: u32,
    /// TCP sequence number in segments (0-based).
    pub seq: u32,
    /// Size in bytes (MSS for full segments).
    pub size: u32,
    /// Owning flow.
    pub flow: FlowId,
    /// Route being traversed.
    pub route: RouteId,
    /// Index of the *next* link to enter (0 = first hop).
    pub hop: u16,
    /// Traffic class label.
    pub class: ClassLabel,
    /// Whether this is a retransmission (Karn's rule: no RTT sample).
    pub retx: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn route_holds_links_and_path() {
        let r = Route {
            links: vec![LinkId(0), LinkId(2)],
            path: Some(PathId(1)),
        };
        assert_eq!(r.links.len(), 2);
        assert_eq!(r.path, Some(PathId(1)));
    }

    #[test]
    fn packet_fields() {
        let p = Packet {
            id: 7,
            flow: FlowId(3),
            seq: 42,
            size: 1500,
            class: 1,
            route: RouteId(0),
            hop: 0,
            sent_at: SimTime::ZERO,
            retx: false,
        };
        assert_eq!(p.seq, 42);
        assert!(!p.retx);
        assert_eq!(p.flow.index(), 3);
        assert_eq!(p.route.index(), 0);
    }

    #[test]
    fn packet_stays_compact() {
        // The event loop's memory traffic scales with this; keep it small.
        assert!(std::mem::size_of::<Packet>() <= 32);
    }
}
