//! Packets and routes.

use crate::time::SimTime;
use nni_topology::{LinkId, PathId};

/// Traffic class label carried by every packet. The differentiation
/// mechanisms classify on this label — mirroring real devices that classify
/// on ports/DPI — while the inference layer never sees it.
pub type ClassLabel = u8;

/// Identifier of a route (measured path or background route).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RouteId(pub usize);

/// A forwarding route through the network.
#[derive(Debug, Clone)]
pub struct Route {
    /// Links in traversal order.
    pub links: Vec<LinkId>,
    /// The measured path this route realises, if any (background routes
    /// carry `None` — their traffic loads the network but is not observed).
    pub path: Option<PathId>,
}

/// Identifier of a flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FlowId(pub usize);

/// A data packet in flight.
#[derive(Debug, Clone)]
pub struct Packet {
    /// Globally unique packet id (diagnostics).
    pub id: u64,
    /// Owning flow.
    pub flow: FlowId,
    /// TCP sequence number in segments (0-based).
    pub seq: u64,
    /// Size in bytes (MSS for full segments).
    pub size: u32,
    /// Traffic class label.
    pub class: ClassLabel,
    /// Route being traversed.
    pub route: RouteId,
    /// Index of the *next* link to enter (0 = first hop).
    pub hop: usize,
    /// Time the segment was (re)transmitted by the sender.
    pub sent_at: SimTime,
    /// Whether this is a retransmission (Karn's rule: no RTT sample).
    pub retx: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn route_holds_links_and_path() {
        let r = Route {
            links: vec![LinkId(0), LinkId(2)],
            path: Some(PathId(1)),
        };
        assert_eq!(r.links.len(), 2);
        assert_eq!(r.path, Some(PathId(1)));
    }

    #[test]
    fn packet_fields() {
        let p = Packet {
            id: 7,
            flow: FlowId(3),
            seq: 42,
            size: 1500,
            class: 1,
            route: RouteId(0),
            hop: 0,
            sent_at: SimTime::ZERO,
            retx: false,
        };
        assert_eq!(p.seq, 42);
        assert!(!p.retx);
    }
}
