//! A slab allocator for in-flight packets.
//!
//! The event queue orders tens of thousands of pending events; if each
//! `Arrive` event inlined its [`Packet`], every heap sift would move the
//! whole packet. Instead, packets in flight between events live here and the
//! event carries a 4-byte [`PacketHandle`]. A handle is valid from
//! [`PacketSlab::insert`] until the matching [`PacketSlab::remove`]; freed
//! slots are recycled through a free list, so a long run allocates only as
//! many slots as its peak in-flight packet count.
//!
//! Slot occupancy is tracked explicitly and `remove` panics on a dangling or
//! double-freed handle — an invariant the simulator's end-of-run drain
//! asserts (`live() == 0`) and the property tests exercise directly.

use crate::packet::Packet;

/// An opaque index into a [`PacketSlab`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PacketHandle(u32);

/// Slab of in-flight packets: a `Vec` plus a free list of recycled slots.
#[derive(Debug, Default)]
pub struct PacketSlab {
    slots: Vec<Packet>,
    occupied: Vec<bool>,
    free: Vec<u32>,
}

impl PacketSlab {
    /// Creates an empty slab.
    pub fn new() -> PacketSlab {
        PacketSlab::default()
    }

    /// Creates an empty slab with room for `cap` packets before resizing.
    pub fn with_capacity(cap: usize) -> PacketSlab {
        PacketSlab {
            slots: Vec::with_capacity(cap),
            occupied: Vec::with_capacity(cap),
            free: Vec::new(),
        }
    }

    /// Stores a packet and returns its handle.
    pub fn insert(&mut self, packet: Packet) -> PacketHandle {
        match self.free.pop() {
            Some(idx) => {
                let i = idx as usize;
                debug_assert!(!self.occupied[i], "free list held a live slot");
                self.slots[i] = packet;
                self.occupied[i] = true;
                PacketHandle(idx)
            }
            None => {
                let idx = u32::try_from(self.slots.len()).expect("more than u32::MAX packets");
                self.slots.push(packet);
                self.occupied.push(true);
                PacketHandle(idx)
            }
        }
    }

    /// Takes a packet out, freeing its slot. Panics on a handle that was
    /// never issued or was already removed (use-after-free / double-free).
    pub fn remove(&mut self, handle: PacketHandle) -> Packet {
        let i = handle.0 as usize;
        assert!(
            self.occupied.get(i).copied().unwrap_or(false),
            "packet slab: stale handle {handle:?}"
        );
        self.occupied[i] = false;
        self.free.push(handle.0);
        self.slots[i]
    }

    /// Read access without freeing.
    pub fn get(&self, handle: PacketHandle) -> &Packet {
        let i = handle.0 as usize;
        assert!(self.occupied[i], "packet slab: stale handle {handle:?}");
        &self.slots[i]
    }

    /// Number of live (inserted, not yet removed) packets.
    pub fn live(&self) -> usize {
        self.slots.len() - self.free.len()
    }

    /// Total slots ever allocated (the peak in-flight packet count).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{FlowId, RouteId};
    use crate::time::SimTime;

    fn pkt(id: u32) -> Packet {
        Packet {
            id,
            flow: FlowId(0),
            seq: id,
            size: 1500,
            class: 0,
            route: RouteId(0),
            hop: 0,
            sent_at: SimTime::ZERO,
            retx: false,
        }
    }

    #[test]
    fn insert_remove_round_trips() {
        let mut s = PacketSlab::new();
        let a = s.insert(pkt(1));
        let b = s.insert(pkt(2));
        assert_eq!(s.live(), 2);
        assert_eq!(s.get(a).id, 1);
        assert_eq!(s.remove(b).id, 2);
        assert_eq!(s.remove(a).id, 1);
        assert_eq!(s.live(), 0);
    }

    #[test]
    fn slots_are_recycled() {
        let mut s = PacketSlab::new();
        let a = s.insert(pkt(1));
        s.remove(a);
        let b = s.insert(pkt(2));
        let c = s.insert(pkt(3));
        // One slot recycled, one fresh: peak live count bounds capacity.
        assert_eq!(s.capacity(), 2);
        assert_eq!(s.get(b).id + s.get(c).id, 5);
    }

    #[test]
    #[should_panic(expected = "stale handle")]
    fn double_free_panics() {
        let mut s = PacketSlab::new();
        let a = s.insert(pkt(1));
        s.remove(a);
        s.remove(a);
    }

    #[test]
    #[should_panic(expected = "stale handle")]
    fn never_issued_handle_panics() {
        let mut s = PacketSlab::new();
        s.remove(PacketHandle(3));
    }
}
