//! `SimReport` binary codec — the payload a worker subprocess ships back to
//! its parent over the PR 5 wire format.
//!
//! The bytes here are a bare payload: they travel inside a checksummed frame
//! (`nni_measure::wire`) whose header carries the magic and version byte, so
//! this codec only has to lay out the report itself. Every number folds
//! through the shared primitives ([`WireWriter`]/[`WireReader`]): varints
//! for counts, `f64` bit patterns for timestamps and intervals — which is
//! what makes a decoded report *bit-identical* to the encoded one, the
//! property the three-way executor identity gate rests on.
//!
//! Layout (in order):
//!
//! ```text
//! log            interval_s f64 · n_paths vu · n_intervals vu ·
//!                sent cells vu (row-major) · lost cells vu ·
//!                delay flag u8 · when 1, per cell: present u8,
//!                then count vu · p50 f64 · p90 f64 · p99 f64
//! link_truth     n_links vu · n_classes vu · n_intervals vu ·
//!                offered cells vu ([t][link][class]) · dropped cells vu
//! queue_traces   count vu · per trace: len vu · times_s f64 × len ·
//!                bytes vu × len
//! counters       completed_flows vu · segments_sent vu ·
//!                segments_delivered vu · segments_dropped vu
//! ```

use nni_measure::codec::CodecError;
use nni_measure::{MeasurementLog, WireReader, WireWriter};
use nni_topology::PathId;

use crate::stats::{LinkTruth, QueueTrace, SimReport};

/// Encodes a report into the bare payload bytes (no frame header).
pub fn encode_report(report: &SimReport) -> Vec<u8> {
    let mut w = WireWriter::new();

    let log = &report.log;
    w.f64(log.interval_s());
    w.vu(log.path_count() as u64);
    w.vu(log.interval_count() as u64);
    for t in 0..log.interval_count() {
        for p in 0..log.path_count() {
            w.vu(log.sent(t, PathId(p)));
        }
    }
    for t in 0..log.interval_count() {
        for p in 0..log.path_count() {
            w.vu(log.lost(t, PathId(p)));
        }
    }
    // Delay grid: both ends of this wire are the same build (worker and
    // parent ship together), so an unconditional flag byte is safe — no
    // committed golden pins these bytes.
    w.u8(log.has_delay() as u8);
    if log.has_delay() {
        for t in 0..log.interval_count() {
            for p in 0..log.path_count() {
                match log.delay(t, PathId(p)) {
                    Some(stats) => {
                        w.u8(1);
                        w.vu(stats.count);
                        w.f64(stats.p50_s);
                        w.f64(stats.p90_s);
                        w.f64(stats.p99_s);
                    }
                    None => w.u8(0),
                }
            }
        }
    }

    let truth = &report.link_truth;
    w.vu(truth.link_count() as u64);
    w.vu(truth.class_count() as u64);
    w.vu(truth.interval_count() as u64);
    for t in 0..truth.interval_count() {
        for l in 0..truth.link_count() {
            for c in 0..truth.class_count() {
                w.vu(truth.offered_at(t, nni_topology::LinkId(l), c as u8));
            }
        }
    }
    for t in 0..truth.interval_count() {
        for l in 0..truth.link_count() {
            for c in 0..truth.class_count() {
                w.vu(truth.dropped_at(t, nni_topology::LinkId(l), c as u8));
            }
        }
    }

    w.vu(report.queue_traces.len() as u64);
    for trace in &report.queue_traces {
        w.vu(trace.times_s.len() as u64);
        for &t in &trace.times_s {
            w.f64(t);
        }
        for &b in &trace.bytes {
            w.vu(b);
        }
    }

    w.vu(report.completed_flows as u64);
    w.vu(report.segments_sent);
    w.vu(report.segments_delivered);
    w.vu(report.segments_dropped);
    w.into_bytes()
}

/// Decodes a report payload, consuming every byte.
pub fn decode_report(bytes: &[u8]) -> Result<SimReport, CodecError> {
    let mut r = WireReader::new(bytes);

    let interval_s = r.f64()?;
    // NaN must be rejected too, not just non-positive values — the log
    // constructor would panic on it.
    if !interval_s.is_finite() || interval_s <= 0.0 {
        return Err(CodecError::BadValue("log interval must be positive"));
    }
    let n_paths = r.vu()? as usize;
    if n_paths == 0 {
        return Err(CodecError::BadValue("log needs at least one path"));
    }
    let n_intervals = r.vu()? as usize;
    // Every cell is at least one varint byte, so a garbled dimension pair
    // whose product exceeds the remaining payload can never decode — reject
    // it before the log grows `n_paths × n_intervals` storage for it.
    if 2 * n_paths as u128 * n_intervals as u128 > r.remaining() as u128 {
        return Err(CodecError::BadValue("log dimensions exceed payload"));
    }
    let mut log = MeasurementLog::new(n_paths, interval_s);
    for t in 0..n_intervals {
        for p in 0..n_paths {
            log.record_sent(t, PathId(p), r.vu()?);
        }
    }
    for t in 0..n_intervals {
        for p in 0..n_paths {
            log.record_lost(t, PathId(p), r.vu()?);
        }
    }
    match r.u8()? {
        0 => {}
        1 => {
            // Each present cell costs at least its flag byte.
            if n_paths as u128 * n_intervals as u128 > r.remaining() as u128 {
                return Err(CodecError::BadValue("delay dimensions exceed payload"));
            }
            let mut rows = Vec::with_capacity(n_intervals);
            for _ in 0..n_intervals {
                let mut row = Vec::with_capacity(n_paths);
                for _ in 0..n_paths {
                    row.push(match r.u8()? {
                        0 => None,
                        1 => {
                            let count = r.vu()?;
                            if count == 0 {
                                return Err(CodecError::BadValue("delay cell with zero samples"));
                            }
                            Some(nni_measure::DelayStats {
                                count,
                                p50_s: r.f64()?,
                                p90_s: r.f64()?,
                                p99_s: r.f64()?,
                            })
                        }
                        _ => return Err(CodecError::BadValue("delay cell presence flag")),
                    });
                }
                rows.push(row);
            }
            log.set_delay(rows);
        }
        _ => return Err(CodecError::BadValue("delay grid flag")),
    }

    let n_links = r.vu()? as usize;
    let n_classes = r.vu()? as usize;
    let truth_intervals = r.vu()? as usize;
    // Same byte-per-cell argument for the truth tensors; the degenerate
    // zero-link/zero-class shape carries no cell bytes at all, so a nonzero
    // interval count there is unfillable garbage (a real recorder can only
    // grow intervals by recording against a link).
    if (n_links == 0 || n_classes == 0) && truth_intervals != 0 {
        return Err(CodecError::BadValue("truth intervals without truth cells"));
    }
    if 2 * truth_intervals as u128 * n_links as u128 * n_classes as u128 > r.remaining() as u128 {
        return Err(CodecError::BadValue("truth dimensions exceed payload"));
    }
    let read_tensor = |r: &mut WireReader<'_>| -> Result<Vec<Vec<Vec<u64>>>, CodecError> {
        let mut tensor = Vec::with_capacity(truth_intervals);
        for _ in 0..truth_intervals {
            let mut interval = Vec::with_capacity(n_links);
            for _ in 0..n_links {
                let mut row = Vec::with_capacity(n_classes);
                for _ in 0..n_classes {
                    row.push(r.vu()?);
                }
                interval.push(row);
            }
            tensor.push(interval);
        }
        Ok(tensor)
    };
    let offered = read_tensor(&mut r)?;
    let dropped = read_tensor(&mut r)?;
    let link_truth = LinkTruth::from_counts(n_links, n_classes, offered, dropped);

    let n_traces = r.vu()? as usize;
    // Each trace costs at least its one-byte length varint.
    if n_traces as u128 > r.remaining() as u128 {
        return Err(CodecError::BadValue("trace count exceeds payload"));
    }
    let mut queue_traces = Vec::with_capacity(n_traces);
    for _ in 0..n_traces {
        let len = r.vu()? as usize;
        let mut trace = QueueTrace::default();
        for _ in 0..len {
            trace.times_s.push(r.f64()?);
        }
        for _ in 0..len {
            trace.bytes.push(r.vu()?);
        }
        queue_traces.push(trace);
    }

    let completed_flows = r.vu()? as usize;
    let segments_sent = r.vu()?;
    let segments_delivered = r.vu()?;
    let segments_dropped = r.vu()?;
    if !r.is_empty() {
        return Err(CodecError::TrailingBytes);
    }
    Ok(SimReport {
        log,
        link_truth,
        queue_traces,
        completed_flows,
        segments_sent,
        segments_delivered,
        segments_dropped,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use nni_topology::LinkId;

    fn sample_report() -> SimReport {
        let mut log = MeasurementLog::new(2, 0.1);
        log.record_sent(0, PathId(0), 10);
        log.record_lost(0, PathId(0), 1);
        log.record_sent(2, PathId(1), 7);
        let mut truth = LinkTruth::new(2, 2);
        truth.record_offered(0, LinkId(1), 1);
        truth.record_dropped(1, LinkId(0), 0);
        let mut trace = QueueTrace::default();
        trace.push(0.05, 1500);
        trace.push(0.15, 0);
        SimReport {
            log,
            link_truth: truth,
            queue_traces: vec![trace, QueueTrace::default()],
            completed_flows: 3,
            segments_sent: 100,
            segments_delivered: 97,
            segments_dropped: 2,
        }
    }

    #[test]
    fn report_round_trips_bit_identically() {
        let report = sample_report();
        let bytes = encode_report(&report);
        let decoded = decode_report(&bytes).expect("decode");
        assert_eq!(decoded, report);
    }

    #[test]
    fn delay_grid_round_trips_bit_identically() {
        let mut report = sample_report();
        let n = report.log.interval_count();
        let mut rows = vec![vec![None; 2]; n];
        rows[0][0] = nni_measure::DelayStats::from_sorted_ns(&[2_000_000, 3_000_000]);
        rows[2][1] = nni_measure::DelayStats::from_sorted_ns(&[750_000_000]);
        report.log.set_delay(rows);
        let decoded = decode_report(&encode_report(&report)).expect("decode");
        assert_eq!(decoded, report);
        assert!(decoded.log.has_delay());
        assert_eq!(decoded.log.delay(0, PathId(0)).unwrap().count, 2);
        // A poisoned flag byte is a typed error.
        let mut bytes = encode_report(&sample_report());
        // The flag byte sits right after the lost cells; find it by
        // re-encoding with the flag forced to garbage.
        let flag_pos = {
            let log = &sample_report().log;
            let mut w = WireWriter::new();
            w.f64(log.interval_s());
            w.vu(log.path_count() as u64);
            w.vu(log.interval_count() as u64);
            for t in 0..log.interval_count() {
                for p in 0..log.path_count() {
                    w.vu(log.sent(t, PathId(p)));
                }
            }
            for t in 0..log.interval_count() {
                for p in 0..log.path_count() {
                    w.vu(log.lost(t, PathId(p)));
                }
            }
            w.into_bytes().len()
        };
        bytes[flag_pos] = 7;
        assert!(matches!(
            decode_report(&bytes),
            Err(CodecError::BadValue("delay grid flag"))
        ));
    }

    #[test]
    fn truncation_and_trailing_bytes_fail() {
        let mut bytes = encode_report(&sample_report());
        let mut truncated = bytes.clone();
        truncated.truncate(bytes.len() - 1);
        assert!(matches!(
            decode_report(&truncated),
            Err(CodecError::UnexpectedEof)
        ));
        bytes.push(0);
        assert!(matches!(
            decode_report(&bytes),
            Err(CodecError::TrailingBytes)
        ));
    }

    /// Garbled dimension varints must fail as [`CodecError::BadValue`]
    /// before the decoder allocates or loops on them — a corrupt frame may
    /// cost an error, never memory or time.
    #[test]
    fn implausible_dimensions_are_rejected_before_allocation() {
        // Log claiming 2^40 intervals for 2^20 paths in a tiny payload.
        let mut w = WireWriter::new();
        w.f64(0.1);
        w.vu(1 << 20);
        w.vu(1 << 40);
        assert!(matches!(
            decode_report(&w.into_bytes()),
            Err(CodecError::BadValue("log dimensions exceed payload"))
        ));

        // Truth tensor claiming 2^50 cells.
        let mut w = WireWriter::new();
        w.f64(0.1);
        w.vu(1); // n_paths
        w.vu(0); // n_intervals
        w.u8(0); // no delay grid
        w.vu(1 << 10); // n_links
        w.vu(1 << 10); // n_classes
        w.vu(1 << 30); // truth_intervals
        assert!(matches!(
            decode_report(&w.into_bytes()),
            Err(CodecError::BadValue("truth dimensions exceed payload"))
        ));

        // Zero-link truth cannot carry intervals (it would loop for free).
        let mut w = WireWriter::new();
        w.f64(0.1);
        w.vu(1);
        w.vu(0);
        w.u8(0);
        w.vu(0); // n_links
        w.vu(0); // n_classes
        w.vu(u64::MAX); // truth_intervals
        assert!(matches!(
            decode_report(&w.into_bytes()),
            Err(CodecError::BadValue("truth intervals without truth cells"))
        ));

        // A delay grid announced with no bytes behind it: the cell-count
        // guard fires before the decoder loops over 16 phantom cells.
        let mut w = WireWriter::new();
        w.f64(0.1);
        w.vu(4); // n_paths
        w.vu(4); // n_intervals
        for _ in 0..32 {
            w.vu(0); // sent + lost cells
        }
        w.u8(1); // delay grid follows — but nothing does
        assert!(matches!(
            decode_report(&w.into_bytes()),
            Err(CodecError::BadValue("delay dimensions exceed payload"))
        ));

        // Queue-trace count far beyond the payload.
        let mut w = WireWriter::new();
        w.f64(0.1);
        w.vu(1);
        w.vu(0);
        w.u8(0);
        w.vu(0);
        w.vu(0);
        w.vu(0);
        w.vu(u64::MAX); // n_traces
        assert!(matches!(
            decode_report(&w.into_bytes()),
            Err(CodecError::BadValue("trace count exceeds payload"))
        ));
    }

    #[test]
    fn empty_report_round_trips() {
        let report = SimReport {
            log: MeasurementLog::new(1, 0.1),
            link_truth: LinkTruth::new(0, 0),
            queue_traces: Vec::new(),
            completed_flows: 0,
            segments_sent: 0,
            segments_delivered: 0,
            segments_dropped: 0,
        };
        let decoded = decode_report(&encode_report(&report)).expect("decode");
        assert_eq!(decoded, report);
    }
}
