//! O(1) per-flow transport-state windows.
//!
//! Two data structures replace the `BTreeMap` / `BTreeSet` the flow driver
//! used before PR 3 — both are *exact* drop-in equivalents (the
//! cross-implementation identity test in `nni-scenario` holds them to
//! bit-identical `SimReport`s), they just exploit that TCP state is dense
//! over a contiguous, forward-moving sequence window:
//!
//! * [`SendTimes`] — per-segment `(send time, was-retransmission)` used for
//!   Karn-rule RTT sampling. The old `BTreeMap<u64, (SimTime, bool)>` did an
//!   allocating `split_off` on **every** cumulative ACK; this is a
//!   seq-offset-indexed ring (`VecDeque`) where a cumulative ACK pops spent
//!   entries off the front.
//! * [`OooWindow`] — the receiver's out-of-order set. The old
//!   `BTreeSet<u64>` becomes a bitmap over 64-bit words starting at the
//!   receive head.

use crate::time::SimTime;
use std::collections::VecDeque;

/// Send-time window of one flow: `(send time, retx)` for every segment in
/// `[base, base + len)`, where `base` tracks the lowest unacknowledged
/// sequence number.
///
/// Matches the old `BTreeMap` semantics exactly, including the odd corners:
/// * Entries for sequence numbers the flow re-walks after a timeout
///   (go-back-N pulls `snd_nxt` back below `snd_una` when late ACKs arrive)
///   are ignored — the map stored them below `snd_una` where no lookup ever
///   reached before the next cumulative ACK discarded them.
/// * Entries above `snd_una` survive a timeout untouched, so a late ACK for
///   a pre-timeout transmission still finds its (possibly stale) send time.
#[derive(Debug, Default)]
pub struct SendTimes {
    base: u64,
    ring: VecDeque<(SimTime, bool)>,
}

impl SendTimes {
    /// Empty window starting at sequence number 0.
    pub fn new() -> SendTimes {
        SendTimes::default()
    }

    /// Records that `seq` was sent at `at` (`retx`: retransmission). Sends
    /// are sequential, so `seq` is either below `base` (ignored, see type
    /// docs), inside the window (overwrite), or exactly one past the end.
    pub fn record(&mut self, seq: u64, at: SimTime, retx: bool) {
        let Some(idx) = seq.checked_sub(self.base) else {
            return; // below the window: unreachable by any lookup
        };
        let idx = idx as usize;
        match idx.cmp(&self.ring.len()) {
            std::cmp::Ordering::Less => self.ring[idx] = (at, retx),
            std::cmp::Ordering::Equal => self.ring.push_back((at, retx)),
            std::cmp::Ordering::Greater => {
                unreachable!("send-time window gap: seq {seq} beyond base {}", self.base)
            }
        }
    }

    /// The send record of `seq`, if it is inside the window.
    pub fn get(&self, seq: u64) -> Option<(SimTime, bool)> {
        let idx = seq.checked_sub(self.base)?;
        self.ring.get(idx as usize).copied()
    }

    /// A cumulative ACK for everything below `ackno`: discards spent
    /// entries and advances the window base. O(newly acked), allocation
    /// free — this is the `on_ack` hot path.
    pub fn advance_to(&mut self, ackno: u64) {
        if ackno <= self.base {
            return;
        }
        let n = ((ackno - self.base) as usize).min(self.ring.len());
        self.ring.drain(..n);
        self.base = ackno;
    }

    /// Number of tracked segments (tests).
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Whether the window tracks no segments.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }
}

/// The receiver's out-of-order window: a bitmap over segments above the
/// receive head. Bit `seq` lives in word `seq / 64 - first_word`, so the
/// window slides in whole words as the head advances.
#[derive(Debug, Default)]
pub struct OooWindow {
    /// Absolute index (in 64-segment words) of `bits[0]`.
    first_word: u64,
    bits: VecDeque<u64>,
}

impl OooWindow {
    /// Empty window.
    pub fn new() -> OooWindow {
        OooWindow::default()
    }

    /// Marks `seq` as received out of order.
    pub fn insert(&mut self, seq: u64) {
        let word = seq / 64;
        debug_assert!(word >= self.first_word, "insert below the window");
        let idx = (word - self.first_word) as usize;
        if idx >= self.bits.len() {
            self.bits.resize(idx + 1, 0);
        }
        self.bits[idx] |= 1 << (seq % 64);
    }

    /// Clears and reports whether `seq` was buffered — the receive head's
    /// catch-up loop (`while ooo.remove(rcv_nxt) { rcv_nxt += 1 }`).
    pub fn remove(&mut self, seq: u64) -> bool {
        let word = seq / 64;
        let Some(idx) = word.checked_sub(self.first_word) else {
            return false;
        };
        let Some(w) = self.bits.get_mut(idx as usize) else {
            return false;
        };
        let mask = 1u64 << (seq % 64);
        let was = *w & mask != 0;
        *w &= !mask;
        was
    }

    /// Slides the window forward: drops leading words fully below
    /// `rcv_nxt`. All their bits are already clear — the head only advances
    /// through received (hence removed) segments.
    pub fn compact(&mut self, rcv_nxt: u64) {
        let head_word = rcv_nxt / 64;
        while self.first_word < head_word {
            match self.bits.pop_front() {
                Some(w) => {
                    debug_assert_eq!(w, 0, "window slid past set bits");
                    self.first_word += 1;
                }
                None => {
                    self.first_word = head_word;
                    break;
                }
            }
        }
    }

    /// Number of buffered segments (tests).
    pub fn count(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::{BTreeMap, BTreeSet};

    #[test]
    fn send_times_record_get_advance() {
        let mut s = SendTimes::new();
        for seq in 0..5 {
            s.record(seq, SimTime(seq * 10), false);
        }
        assert_eq!(s.get(3), Some((SimTime(30), false)));
        s.advance_to(3);
        assert_eq!(s.get(2), None);
        assert_eq!(s.get(3), Some((SimTime(30), false)));
        assert_eq!(s.len(), 2);
        // Retransmission overwrites in place.
        s.record(3, SimTime(99), true);
        assert_eq!(s.get(3), Some((SimTime(99), true)));
    }

    #[test]
    fn send_times_ignores_below_base_like_the_btreemap_did() {
        let mut s = SendTimes::new();
        for seq in 0..10 {
            s.record(seq, SimTime(seq), false);
        }
        s.advance_to(10);
        // Post-timeout go-back-N re-walk below the acked base: ignored.
        s.record(4, SimTime(400), true);
        assert_eq!(s.get(4), None);
        assert!(s.is_empty());
        // The walk reaches the base again: normal appends resume.
        s.record(10, SimTime(500), true);
        assert_eq!(s.get(10), Some((SimTime(500), true)));
    }

    /// Differential test against the exact BTreeMap code the simulator used
    /// before PR 3, driven by a synthetic sender that timeouts and re-walks.
    #[test]
    fn send_times_matches_btreemap_reference() {
        let mut ring = SendTimes::new();
        let mut map: BTreeMap<u64, (SimTime, bool)> = BTreeMap::new();
        let mut una = 0u64;
        let mut nxt = 0u64;
        let mut max_sent = 0u64;
        let mut t = 0u64;
        // Deterministic pseudo-random walk (splitmix-ish).
        let mut x = 0x9E3779B97F4A7C15u64;
        let mut rand = move || {
            x ^= x >> 30;
            x = x.wrapping_mul(0xBF58476D1CE4E5B9);
            x ^= x >> 27;
            x
        };
        for _ in 0..3000 {
            t += 1;
            match rand() % 10 {
                // Send the next segment (possibly a below-base re-walk
                // after an ACK overtook a timeout-reset `nxt`).
                0..=5 => {
                    let retx = nxt < max_sent;
                    ring.record(nxt, SimTime(t), retx);
                    map.insert(nxt, (SimTime(t), retx));
                    nxt += 1;
                    max_sent = max_sent.max(nxt);
                }
                // Cumulative ACK somewhere in (una, max_sent].
                6..=8 => {
                    if max_sent > una {
                        let ackno = una + 1 + rand() % (max_sent - una);
                        let karn_ring = ring.get(ackno - 1);
                        let karn_map = map.get(&(ackno - 1)).copied();
                        assert_eq!(karn_ring, karn_map, "karn lookup at {ackno}");
                        map = map.split_off(&ackno);
                        ring.advance_to(ackno);
                        una = ackno;
                    }
                }
                // Timeout: go-back-N restarts the walk at the base.
                _ => {
                    if nxt > una {
                        nxt = una;
                    }
                }
            }
            assert_eq!(ring.len(), map.range(una..).count(), "live entries");
        }
    }

    #[test]
    fn ooo_window_insert_remove_compact() {
        let mut w = OooWindow::new();
        w.insert(5);
        w.insert(130);
        assert_eq!(w.count(), 2);
        assert!(w.remove(5));
        assert!(!w.remove(5));
        assert!(!w.remove(6));
        w.compact(128);
        assert!(w.remove(130), "compact must keep bits at/above the head");
        assert_eq!(w.count(), 0);
    }

    /// Differential test against the BTreeSet reference under a receiver's
    /// actual access pattern.
    #[test]
    fn ooo_window_matches_btreeset_reference() {
        let mut w = OooWindow::new();
        let mut set: BTreeSet<u64> = BTreeSet::new();
        let mut rcv_nxt = 0u64;
        let mut x = 42u64;
        let mut rand = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for _ in 0..5000 {
            // A segment arrives somewhere in [rcv_nxt, rcv_nxt + 40).
            let seq = rcv_nxt + rand() % 40;
            if seq == rcv_nxt {
                rcv_nxt += 1;
                loop {
                    let a = w.remove(rcv_nxt);
                    let b = set.remove(&rcv_nxt);
                    assert_eq!(a, b, "catch-up at {rcv_nxt}");
                    if !a {
                        break;
                    }
                    rcv_nxt += 1;
                }
                w.compact(rcv_nxt);
            } else if seq > rcv_nxt {
                w.insert(seq);
                set.insert(seq);
            }
            assert_eq!(w.count(), set.len());
        }
        assert!(rcv_nxt > 100, "walk must actually advance");
    }
}
