//! The discrete-event queue.
//!
//! Events are ordered by `(time, insertion sequence)`: ties resolve in
//! insertion order, which makes every run bit-for-bit deterministic for a
//! given seed — the property the whole experiment pipeline rests on.
//!
//! # Compact entries
//!
//! [`Event`] is a fixed small key: packets in flight are **not** inlined
//! (the pre-PR-3 `Arrive(Packet)` made every heap entry ~80 bytes and every
//! sift copy the whole packet). Instead an `Arrive` carries a 4-byte
//! [`PacketHandle`] into the [`PacketSlab`](crate::slab::PacketSlab), and
//! link/flow/lane/slot references are `u32`, so a full heap entry —
//! `(SimTime, seq, Event)` — is 32 bytes.
//!
//! # Two implementations, one API
//!
//! * [`HeapEventQueue`] — a `BinaryHeap` over the compact entries. O(log n)
//!   push/pop, branch-predictable, cache-friendly at the pending-event
//!   counts the simulator produces (10³–10⁴).
//! * [`CalendarEventQueue`] — a classic two-level calendar/bucket queue:
//!   a ring of time buckets (width [`CAL_BUCKET_NS`], lazily sorted when the
//!   clock enters them) with a far-future overflow heap. O(1) amortized for
//!   events within the ring horizon.
//!
//! Both order strictly by `(time, insertion seq)` — a property test asserts
//! they pop identically under random interleaved push/pop — so swapping
//! one for the other can never change simulation results. [`EventQueue`]
//! aliases the implementation the simulator uses: the **calendar** queue.
//! On the real event mix (`bench_emulator`, PR 3 measurements) the calendar
//! beat the compact heap ~1.8× (`topology_a_1s` median 4.3 ms vs 7.6 ms;
//! both far ahead of the pre-PR-3 fat-entry heap's 17.7 ms), because nearly
//! every event lands within a few buckets of `now` where push and pop are
//! O(1) appends; `bench_emulator`'s `event_queue/*` group keeps measuring
//! both so a workload shift can re-open the question.

use crate::packet::FlowId;
use crate::slab::PacketHandle;
use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// All event kinds of the simulation. A fixed small key — references, not
/// payloads (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// A packet (by slab handle) arrives at the entrance of its next link.
    Arrive(PacketHandle),
    /// Link `link` (by index) finished serializing its head-of-line packet.
    TxComplete(u32),
    /// Shaper lane `lane` of link `link` may release buffered packets.
    ShaperRelease {
        /// Link index.
        link: u32,
        /// Lane index within the link's shaper.
        lane: u32,
    },
    /// A cumulative ACK reaches the sender.
    Ack {
        /// Destination flow.
        flow: FlowId,
        /// Cumulative ack: all segments `< ackno` received in order.
        ackno: u32,
    },
    /// Retransmission timer fires (stale generations are ignored).
    Rto {
        /// Flow whose timer fires.
        flow: FlowId,
        /// Generation stamp at arming time.
        generation: u32,
    },
    /// A traffic-generator slot starts its next flow.
    FlowStart {
        /// Generator slot index.
        slot: u32,
    },
    /// Periodic queue-occupancy sample (Figure 11).
    Sample,
}

#[derive(Clone, Copy)]
struct Entry {
    at: SimTime,
    seq: u64,
    event: Event,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap: reverse for earliest-first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// The event-queue implementation the simulator uses (see module docs for
/// the measurements behind the calendar default).
pub type EventQueue = CalendarEventQueue;

/// Short label of the default queue implementation — part of the build
/// fingerprint stamped into measurement-set provenance
/// ([`crate::build_fingerprint`]).
pub const DEFAULT_QUEUE_KIND: &str = "calendar-queue";

/// Deterministic earliest-first event queue over a binary heap.
#[derive(Default)]
pub struct HeapEventQueue {
    heap: BinaryHeap<Entry>,
    next_seq: u64,
}

impl HeapEventQueue {
    /// Creates an empty queue.
    pub fn new() -> HeapEventQueue {
        HeapEventQueue::default()
    }

    /// Schedules `event` at absolute time `at`.
    pub fn push(&mut self, at: SimTime, event: Event) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, event });
    }

    /// Pops the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, Event)> {
        self.heap.pop().map(|e| (e.at, e.event))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

/// Width of one calendar bucket in nanoseconds (~131 µs: the order of a
/// full-MTU serialization time on the topologies' 10–100 Mb/s links).
pub const CAL_BUCKET_NS: u64 = 1 << 17;

/// Number of buckets in the calendar ring (horizon ≈ 67 ms, around one RTT;
/// RTO timers and queue samples land in the overflow heap).
pub const CAL_BUCKETS: usize = 512;

/// Deterministic earliest-first event queue over a two-level calendar:
/// near-future events hash into a ring of time buckets, far-future events
/// overflow into a heap that refills the ring as the clock advances.
///
/// Pops in exactly the same `(time, insertion seq)` order as
/// [`HeapEventQueue`].
pub struct CalendarEventQueue {
    /// Ring of unsorted future buckets; index `abs_bucket % CAL_BUCKETS`.
    buckets: Vec<Vec<Entry>>,
    /// The bucket the clock is in, sorted descending (pop from the back).
    current: Vec<Entry>,
    /// Absolute index of the current bucket.
    epoch: u64,
    /// Entries in `buckets` (excluding `current` and `far`).
    ring_len: usize,
    /// Events at or beyond the ring horizon.
    far: BinaryHeap<Entry>,
    len: usize,
    next_seq: u64,
}

impl Default for CalendarEventQueue {
    fn default() -> Self {
        CalendarEventQueue {
            buckets: (0..CAL_BUCKETS).map(|_| Vec::new()).collect(),
            current: Vec::new(),
            epoch: 0,
            ring_len: 0,
            far: BinaryHeap::new(),
            len: 0,
            next_seq: 0,
        }
    }
}

impl CalendarEventQueue {
    /// Creates an empty queue.
    pub fn new() -> CalendarEventQueue {
        CalendarEventQueue::default()
    }

    #[inline]
    fn abs_bucket(at: SimTime) -> u64 {
        at.0 / CAL_BUCKET_NS
    }

    /// Schedules `event` at absolute time `at`.
    pub fn push(&mut self, at: SimTime, event: Event) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.len += 1;
        let entry = Entry { at, seq, event };
        let abs = Self::abs_bucket(at);
        if abs <= self.epoch {
            // The clock's own bucket (or a pre-pop push into the past):
            // insert in descending key order so the back stays the minimum.
            let key = (at, seq);
            let pos = self.current.partition_point(|e| (e.at, e.seq) > key);
            self.current.insert(pos, entry);
        } else if abs < self.epoch + CAL_BUCKETS as u64 {
            self.buckets[(abs % CAL_BUCKETS as u64) as usize].push(entry);
            self.ring_len += 1;
        } else {
            self.far.push(entry);
        }
    }

    /// Moves far-heap entries that now fall inside the ring horizon.
    fn refill_from_far(&mut self) {
        let horizon = self.epoch + CAL_BUCKETS as u64;
        while let Some(e) = self.far.peek() {
            let abs = Self::abs_bucket(e.at);
            if abs >= horizon {
                break;
            }
            let e = self.far.pop().expect("peeked");
            if abs <= self.epoch {
                let key = (e.at, e.seq);
                let pos = self.current.partition_point(|x| (x.at, x.seq) > key);
                self.current.insert(pos, e);
            } else {
                self.buckets[(abs % CAL_BUCKETS as u64) as usize].push(e);
                self.ring_len += 1;
            }
        }
    }

    /// Pops the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, Event)> {
        loop {
            if let Some(e) = self.current.pop() {
                self.len -= 1;
                return Some((e.at, e.event));
            }
            if self.len == 0 {
                return None;
            }
            if self.ring_len > 0 {
                // Step the clock one bucket forward, sort it, and pull in
                // any far entries that crossed the horizon.
                self.epoch += 1;
                let idx = (self.epoch % CAL_BUCKETS as u64) as usize;
                self.current = std::mem::take(&mut self.buckets[idx]);
                self.ring_len -= self.current.len();
                self.current
                    .sort_unstable_by_key(|e| std::cmp::Reverse((e.at, e.seq)));
                self.refill_from_far();
            } else {
                // Ring is dry: jump the clock to the earliest far entry.
                let next = self.far.peek().expect("len > 0 with empty ring");
                self.epoch = Self::abs_bucket(next.at);
                self.refill_from_far();
            }
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entries_stay_compact() {
        // The whole point of the slab/handle design: a heap entry is a
        // fixed 32-byte key, not an inlined packet.
        assert!(std::mem::size_of::<Entry>() <= 32);
        assert!(std::mem::size_of::<Event>() <= 16);
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime(30), Event::Sample);
        q.push(SimTime(10), Event::Sample);
        q.push(SimTime(20), Event::Sample);
        let times: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|(t, _)| t.0).collect();
        assert_eq!(times, vec![10, 20, 30]);
    }

    #[test]
    fn ties_resolve_in_insertion_order() {
        let mut q = EventQueue::new();
        q.push(SimTime(5), Event::FlowStart { slot: 0 });
        q.push(SimTime(5), Event::FlowStart { slot: 1 });
        q.push(SimTime(5), Event::FlowStart { slot: 2 });
        let slots: Vec<u32> = std::iter::from_fn(|| q.pop())
            .map(|(_, e)| match e {
                Event::FlowStart { slot } => slot,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(slots, vec![0, 1, 2]);
    }

    #[test]
    fn len_and_empty() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(SimTime(1), Event::Sample);
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }

    #[test]
    fn calendar_matches_heap_on_a_mixed_schedule() {
        // Same-time ties, same-bucket clusters, far-future timers, and
        // pushes at the current pop time — the shapes the simulator emits.
        let times: Vec<u64> = vec![
            0,
            1,
            1,
            CAL_BUCKET_NS / 2,
            CAL_BUCKET_NS,
            3 * CAL_BUCKET_NS + 7,
            (CAL_BUCKETS as u64 + 5) * CAL_BUCKET_NS, // beyond the horizon
            2 * (CAL_BUCKETS as u64) * CAL_BUCKET_NS, // far beyond
            42,
        ];
        let mut heap = HeapEventQueue::new();
        let mut cal = CalendarEventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            heap.push(SimTime(t), Event::FlowStart { slot: i as u32 });
            cal.push(SimTime(t), Event::FlowStart { slot: i as u32 });
        }
        // Interleave: pop a few, then push at the popped time (transmit
        // schedules `Arrive` at `self.now`).
        for round in 0..3 {
            let (ht, he) = heap.pop().unwrap();
            let (ct, ce) = cal.pop().unwrap();
            assert_eq!((ht, he), (ct, ce), "round {round}");
            heap.push(ht, Event::Sample);
            cal.push(ct, Event::Sample);
        }
        loop {
            match (heap.pop(), cal.pop()) {
                (None, None) => break,
                (h, c) => assert_eq!(h, c),
            }
        }
        assert!(heap.is_empty() && cal.is_empty());
    }
}
