//! The discrete-event queue.
//!
//! Events are ordered by `(time, insertion sequence)`: ties resolve in
//! insertion order, which makes every run bit-for-bit deterministic for a
//! given seed — the property the whole experiment pipeline rests on.

use crate::packet::{FlowId, Packet};
use crate::time::SimTime;
use nni_topology::LinkId;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// All event kinds of the simulation.
#[derive(Debug)]
pub enum Event {
    /// A packet arrives at the entrance of its next link.
    Arrive(Packet),
    /// A link finished serializing its head-of-line packet.
    TxComplete(LinkId),
    /// A shaper lane may release buffered packets.
    ShaperRelease(LinkId, usize),
    /// A cumulative ACK reaches the sender.
    Ack {
        /// Destination flow.
        flow: FlowId,
        /// Cumulative ack: all segments `< ackno` received in order.
        ackno: u64,
    },
    /// Retransmission timer fires (stale generations are ignored).
    Rto {
        /// Flow whose timer fires.
        flow: FlowId,
        /// Generation stamp at arming time.
        generation: u64,
    },
    /// A traffic-generator slot starts its next flow.
    FlowStart {
        /// Generator slot index.
        slot: usize,
    },
    /// Periodic queue-occupancy sample (Figure 11).
    Sample,
}

struct Entry {
    at: SimTime,
    seq: u64,
    event: Event,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap: reverse for earliest-first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Deterministic earliest-first event queue.
#[derive(Default)]
pub struct EventQueue {
    heap: BinaryHeap<Entry>,
    next_seq: u64,
}

impl EventQueue {
    /// Creates an empty queue.
    pub fn new() -> EventQueue {
        EventQueue::default()
    }

    /// Schedules `event` at absolute time `at`.
    pub fn push(&mut self, at: SimTime, event: Event) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, event });
    }

    /// Pops the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, Event)> {
        self.heap.pop().map(|e| (e.at, e.event))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime(30), Event::Sample);
        q.push(SimTime(10), Event::Sample);
        q.push(SimTime(20), Event::Sample);
        let times: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|(t, _)| t.0).collect();
        assert_eq!(times, vec![10, 20, 30]);
    }

    #[test]
    fn ties_resolve_in_insertion_order() {
        let mut q = EventQueue::new();
        q.push(SimTime(5), Event::FlowStart { slot: 0 });
        q.push(SimTime(5), Event::FlowStart { slot: 1 });
        q.push(SimTime(5), Event::FlowStart { slot: 2 });
        let slots: Vec<usize> = std::iter::from_fn(|| q.pop())
            .map(|(_, e)| match e {
                Event::FlowStart { slot } => slot,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(slots, vec![0, 1, 2]);
    }

    #[test]
    fn len_and_empty() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(SimTime(1), Event::Sample);
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }
}
