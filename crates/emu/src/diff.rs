//! Traffic-differentiation mechanisms (§6.1): policing and shaping.
//!
//! * **Policing**: the targeted class passes through a token bucket; packets
//!   that find no tokens are dropped immediately.
//! * **Shaping**: each configured class passes through its own token bucket;
//!   non-conforming packets are buffered in a dedicated per-class queue and
//!   released when tokens accumulate. The paper shapes class 2 at rate `R`
//!   and class 1 at rate `1 − R` of link capacity.

use crate::bucket::TokenBucket;
use crate::packet::{ClassLabel, Packet};
use crate::time::SimTime;
use std::collections::VecDeque;

/// Differentiation configuration of one link.
#[derive(Debug, Clone)]
pub enum Differentiation {
    /// Neutral FIFO link.
    None,
    /// Token-bucket policer on one class.
    Policing {
        /// Targeted class label.
        class: ClassLabel,
        /// Token fill rate (bits per second).
        rate_bps: f64,
        /// Bucket depth (bytes).
        burst_bytes: f64,
    },
    /// Per-class token-bucket shapers with dedicated buffers.
    Shaping {
        /// One lane per shaped class.
        lanes: Vec<ShapeLaneConfig>,
    },
}

/// Configuration of one shaper lane.
#[derive(Debug, Clone, Copy)]
pub struct ShapeLaneConfig {
    /// Shaped class label.
    pub class: ClassLabel,
    /// Token fill rate (bits per second).
    pub rate_bps: f64,
    /// Bucket depth (bytes).
    pub burst_bytes: f64,
    /// Dedicated buffer size (bytes); excess traffic is dropped.
    pub buffer_bytes: u64,
}

/// Outcome of pushing a packet through a differentiation mechanism.
#[derive(Debug)]
pub enum DiffOutcome {
    /// Forward to the link's main queue.
    Pass(Packet),
    /// Dropped by the mechanism (policer overflow / shaper buffer full).
    Drop(Packet),
    /// Buffered in shaper lane `lane`; if `schedule_release` is set the
    /// caller must schedule a `ShaperRelease(link, lane)` at the given time.
    Buffered {
        /// Lane index.
        lane: usize,
        /// Release to schedule, if none is pending yet.
        schedule_release: Option<SimTime>,
    },
}

/// Runtime state of a shaper lane.
#[derive(Debug)]
pub struct LaneRuntime {
    class: ClassLabel,
    bucket: TokenBucket,
    queue: VecDeque<Packet>,
    queued_bytes: u64,
    buffer_bytes: u64,
    release_pending: bool,
}

impl LaneRuntime {
    /// Bytes currently buffered in this lane.
    pub fn queued_bytes(&self) -> u64 {
        self.queued_bytes
    }
}

/// Runtime state of a link's differentiation stage.
#[derive(Debug)]
pub enum DiffRuntime {
    /// Neutral.
    None,
    /// Policer state.
    Policer {
        /// Targeted class.
        class: ClassLabel,
        /// Token bucket.
        bucket: TokenBucket,
    },
    /// Shaper lanes.
    Shaper {
        /// Lane states.
        lanes: Vec<LaneRuntime>,
    },
}

impl DiffRuntime {
    /// Instantiates runtime state from configuration.
    pub fn new(cfg: &Differentiation) -> DiffRuntime {
        match cfg {
            Differentiation::None => DiffRuntime::None,
            Differentiation::Policing {
                class,
                rate_bps,
                burst_bytes,
            } => DiffRuntime::Policer {
                class: *class,
                bucket: TokenBucket::new(*rate_bps, *burst_bytes),
            },
            Differentiation::Shaping { lanes } => DiffRuntime::Shaper {
                lanes: lanes
                    .iter()
                    .map(|l| LaneRuntime {
                        class: l.class,
                        bucket: TokenBucket::new(l.rate_bps, l.burst_bytes),
                        // Pre-size to the lane buffer's full-MSS packet
                        // count so a saturated lane never reallocates.
                        queue: VecDeque::with_capacity((l.buffer_bytes / 1500 + 2) as usize),
                        queued_bytes: 0,
                        buffer_bytes: l.buffer_bytes,
                        release_pending: false,
                    })
                    .collect(),
            },
        }
    }

    /// Pushes a packet through the mechanism at time `now`.
    pub fn ingress(&mut self, now: SimTime, packet: Packet) -> DiffOutcome {
        match self {
            DiffRuntime::None => DiffOutcome::Pass(packet),
            DiffRuntime::Policer { class, bucket } => {
                if packet.class != *class {
                    return DiffOutcome::Pass(packet);
                }
                bucket.update(now);
                if bucket.try_consume(packet.size as u64) {
                    DiffOutcome::Pass(packet)
                } else {
                    DiffOutcome::Drop(packet)
                }
            }
            DiffRuntime::Shaper { lanes } => {
                let Some(idx) = lanes.iter().position(|l| l.class == packet.class) else {
                    return DiffOutcome::Pass(packet);
                };
                let lane = &mut lanes[idx];
                lane.bucket.update(now);
                if lane.queue.is_empty() && lane.bucket.try_consume(packet.size as u64) {
                    return DiffOutcome::Pass(packet);
                }
                if lane.queued_bytes + packet.size as u64 > lane.buffer_bytes {
                    return DiffOutcome::Drop(packet);
                }
                lane.queued_bytes += packet.size as u64;
                lane.queue.push_back(packet);
                let schedule_release = if lane.release_pending {
                    None
                } else {
                    lane.release_pending = true;
                    let head = lane.queue.front().expect("just pushed");
                    let dt = lane.bucket.time_until_available(head.size as u64);
                    Some(now + dt.max(SimTime(1)))
                };
                DiffOutcome::Buffered {
                    lane: idx,
                    schedule_release,
                }
            }
        }
    }

    /// Handles a `ShaperRelease` event on lane `lane`: appends the packets
    /// now conforming (to be forwarded to the main queue, in per-lane FIFO
    /// order) to `out` and, when packets remain buffered, returns the time of
    /// the next release to schedule.
    ///
    /// `out` is a caller-owned scratch buffer: the simulator reuses one
    /// allocation across all release events instead of allocating per event.
    pub fn release(&mut self, now: SimTime, lane: usize, out: &mut Vec<Packet>) -> Option<SimTime> {
        let DiffRuntime::Shaper { lanes } = self else {
            return None;
        };
        let lane = &mut lanes[lane];
        lane.bucket.update(now);
        while let Some(head) = lane.queue.front() {
            if lane.bucket.try_consume(head.size as u64) {
                let pkt = lane.queue.pop_front().expect("front exists");
                lane.queued_bytes -= pkt.size as u64;
                out.push(pkt);
            } else {
                break;
            }
        }
        let next = lane.queue.front().map(|head| {
            let dt = lane.bucket.time_until_available(head.size as u64);
            now + dt.max(SimTime(1))
        });
        lane.release_pending = next.is_some();
        next
    }

    /// Total bytes buffered in shaper lanes (counted into queue occupancy).
    pub fn buffered_bytes(&self) -> u64 {
        match self {
            DiffRuntime::Shaper { lanes } => lanes.iter().map(|l| l.queued_bytes).sum(),
            _ => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{FlowId, RouteId};

    fn pkt(class: ClassLabel, size: u32, id: u32) -> Packet {
        Packet {
            id,
            flow: FlowId(0),
            seq: id,
            size,
            class,
            route: RouteId(0),
            hop: 0,
            sent_at: SimTime::ZERO,
            retx: false,
        }
    }

    #[test]
    fn neutral_passes_everything() {
        let mut d = DiffRuntime::new(&Differentiation::None);
        assert!(matches!(
            d.ingress(SimTime::ZERO, pkt(0, 1500, 0)),
            DiffOutcome::Pass(_)
        ));
        assert!(matches!(
            d.ingress(SimTime::ZERO, pkt(1, 1500, 1)),
            DiffOutcome::Pass(_)
        ));
    }

    #[test]
    fn policer_targets_only_its_class() {
        let mut d = DiffRuntime::new(&Differentiation::Policing {
            class: 1,
            rate_bps: 8000.0, // 1000 B/s
            burst_bytes: 1500.0,
        });
        // Class 0 always passes.
        for i in 0..10 {
            assert!(matches!(
                d.ingress(SimTime::ZERO, pkt(0, 1500, i)),
                DiffOutcome::Pass(_)
            ));
        }
        // Class 1: first packet conforms (full bucket), second is dropped.
        assert!(matches!(
            d.ingress(SimTime::ZERO, pkt(1, 1500, 10)),
            DiffOutcome::Pass(_)
        ));
        assert!(matches!(
            d.ingress(SimTime::ZERO, pkt(1, 1500, 11)),
            DiffOutcome::Drop(_)
        ));
        // After 1.5 s the bucket refills 1500 bytes.
        let later = SimTime::from_secs_f64(1.5);
        assert!(matches!(
            d.ingress(later, pkt(1, 1500, 12)),
            DiffOutcome::Pass(_)
        ));
    }

    #[test]
    fn shaper_buffers_then_releases() {
        let mut d = DiffRuntime::new(&Differentiation::Shaping {
            lanes: vec![ShapeLaneConfig {
                class: 1,
                rate_bps: 8000.0,
                burst_bytes: 1500.0,
                buffer_bytes: 3000,
            }],
        });
        // First conforms.
        assert!(matches!(
            d.ingress(SimTime::ZERO, pkt(1, 1500, 0)),
            DiffOutcome::Pass(_)
        ));
        // Second buffers with a release scheduled 1.5 s out.
        match d.ingress(SimTime::ZERO, pkt(1, 1500, 1)) {
            DiffOutcome::Buffered {
                lane: 0,
                schedule_release: Some(at),
            } => {
                assert!((at.as_secs_f64() - 1.5).abs() < 1e-6);
            }
            other => panic!("expected buffered, got {other:?}"),
        }
        // Third buffers without a new release (one pending).
        match d.ingress(SimTime::ZERO, pkt(1, 1500, 2)) {
            DiffOutcome::Buffered {
                schedule_release: None,
                ..
            } => {}
            other => panic!("expected buffered w/o release, got {other:?}"),
        }
        assert_eq!(d.buffered_bytes(), 3000);
        // Fourth overflows the 3000-byte buffer.
        assert!(matches!(
            d.ingress(SimTime::ZERO, pkt(1, 1500, 3)),
            DiffOutcome::Drop(_)
        ));

        // Release at t = 1.5 s frees exactly one packet; next release queued.
        let mut released = Vec::new();
        let next = d.release(SimTime::from_secs_f64(1.5), 0, &mut released);
        assert_eq!(released.len(), 1);
        assert!(next.is_some());
        assert_eq!(d.buffered_bytes(), 1500);
        // At t = 3.0 s the last one drains and no further release is needed.
        released.clear();
        let next = d.release(SimTime::from_secs_f64(3.0), 0, &mut released);
        assert_eq!(released.len(), 1);
        assert!(next.is_none());
        assert_eq!(d.buffered_bytes(), 0);
    }

    #[test]
    fn two_lane_shaper_releases_in_per_lane_fifo_order() {
        // Two lanes on one link. Each lane buffers three packets; every
        // release must hand packets back in the order the lane queued them,
        // and lane 0's backlog must not leak into lane 1's releases.
        let lane_cfg = |class: u8| ShapeLaneConfig {
            class,
            rate_bps: 8000.0, // 1000 B/s => one 1000 B packet per second
            burst_bytes: 1000.0,
            buffer_bytes: 10_000,
        };
        let mut d = DiffRuntime::new(&Differentiation::Shaping {
            lanes: vec![lane_cfg(0), lane_cfg(1)],
        });
        // Drain each lane's initial token allowance, then buffer ids 10..13
        // (lane 0) interleaved with ids 20..23 (lane 1).
        assert!(matches!(
            d.ingress(SimTime::ZERO, pkt(0, 1000, 0)),
            DiffOutcome::Pass(_)
        ));
        assert!(matches!(
            d.ingress(SimTime::ZERO, pkt(1, 1000, 1)),
            DiffOutcome::Pass(_)
        ));
        for id in 0..3u32 {
            assert!(matches!(
                d.ingress(SimTime::ZERO, pkt(0, 1000, 10 + id)),
                DiffOutcome::Buffered { lane: 0, .. }
            ));
            assert!(matches!(
                d.ingress(SimTime::ZERO, pkt(1, 1000, 20 + id)),
                DiffOutcome::Buffered { lane: 1, .. }
            ));
        }
        // Drain both lanes by following each lane's release schedule: the
        // 1000-byte burst admits one packet per release, so FIFO order is
        // observable across successive releases. The scratch buffer is
        // appended to, never cleared, by release().
        let mut drain = |lane: usize| -> Vec<u32> {
            let mut out = Vec::new();
            let mut at = SimTime::from_secs_f64(60.0);
            while let Some(next) = d.release(at, lane, &mut out) {
                at = next;
            }
            out.iter().map(|p| p.id).collect()
        };
        assert_eq!(drain(0), [10, 11, 12], "lane 0 must drain in FIFO order");
        assert_eq!(drain(1), [20, 21, 22], "lane 1 must drain in FIFO order");
        assert_eq!(d.buffered_bytes(), 0);
    }

    #[test]
    fn shaper_ignores_unshaped_class() {
        let mut d = DiffRuntime::new(&Differentiation::Shaping {
            lanes: vec![ShapeLaneConfig {
                class: 1,
                rate_bps: 8000.0,
                burst_bytes: 1500.0,
                buffer_bytes: 3000,
            }],
        });
        for i in 0..20 {
            assert!(matches!(
                d.ingress(SimTime::ZERO, pkt(0, 1500, i)),
                DiffOutcome::Pass(_)
            ));
        }
    }
}
