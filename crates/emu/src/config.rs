//! Simulation configuration (Table 1 defaults).

/// Global simulation parameters.
#[derive(Debug, Clone, Copy)]
pub struct SimConfig {
    /// Simulated duration in seconds (the paper runs 10 minutes; the
    /// experiment binaries default to 120 s and expose `--duration`).
    pub duration_s: f64,
    /// Measurement interval in seconds (Table 1: 100 ms default).
    pub interval_s: f64,
    /// Maximum segment size in bytes.
    pub mss: u32,
    /// Queue sizing: each queue holds `rate * queue_rtt / 8` bytes — "the
    /// size of each queue is set according to the maximum RTT experienced by
    /// traffic traversing the queue" (§6.1). Table 1's maximum RTT is 200 ms.
    pub queue_rtt_s: f64,
    /// Queue-occupancy sampling period in seconds (Figure 11).
    pub sample_period_s: f64,
    /// Minimum retransmission timeout in seconds.
    pub min_rto_s: f64,
    /// Warm-up prefix (seconds) dropped from the measurement log so
    /// slow-start transients do not bias congestion-free frequencies.
    pub warmup_s: f64,
    /// RNG seed (flow sizes, inter-flow gaps, start jitter).
    pub seed: u64,
    /// Record per-packet one-way delay and fold per-interval percentile
    /// summaries into the measurement log. Off by default: delay recording
    /// is pure observation (no RNG consumption, no event reordering), but
    /// the resulting log carries a v2 delay grid, so the default stays
    /// bit-identical to pre-delay builds.
    pub record_delay: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            duration_s: 120.0,
            interval_s: 0.1,
            mss: 1500,
            queue_rtt_s: 0.2,
            sample_period_s: 0.5,
            min_rto_s: 0.2,
            warmup_s: 5.0,
            seed: 1,
            record_delay: false,
        }
    }
}

impl SimConfig {
    /// Number of warm-up measurement intervals.
    pub fn warmup_intervals(&self) -> usize {
        (self.warmup_s / self.interval_s).round() as usize
    }

    /// Queue capacity in bytes for a link of the given rate.
    pub fn queue_bytes(&self, rate_bps: f64) -> u64 {
        let bdp = rate_bps * self.queue_rtt_s / 8.0;
        (bdp as u64).max(10 * self.mss as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table1() {
        let c = SimConfig::default();
        assert_eq!(c.interval_s, 0.1);
        assert_eq!(c.mss, 1500);
        assert_eq!(c.min_rto_s, 0.2);
    }

    #[test]
    fn queue_sizing_is_one_bdp() {
        let c = SimConfig::default();
        // 100 Mb/s * 0.2 s / 8 = 2.5 MB.
        assert_eq!(c.queue_bytes(100e6), 2_500_000);
        // Tiny links floor at 10 MSS.
        assert_eq!(c.queue_bytes(1e3), 15_000);
    }

    #[test]
    fn warmup_interval_count() {
        let c = SimConfig {
            warmup_s: 5.0,
            interval_s: 0.1,
            ..Default::default()
        };
        assert_eq!(c.warmup_intervals(), 50);
    }
}
