//! Dynamic traffic generation (§6.1).
//!
//! "Each pair of communicating end-hosts starts a number of parallel TCP
//! flows with the transfer size following a Pareto distribution; when a TCP
//! flow ends, a new one starts after an idle time that is governed by an
//! exponential distribution."

use crate::packet::{ClassLabel, RouteId};
use crate::tcp::CcKind;
use nni_stats::{Exponential, Pareto};
use rand::Rng;

/// Flow-size distribution.
#[derive(Debug, Clone, Copy)]
pub enum SizeDist {
    /// Pareto with the given mean (bytes) and shape (Table 1 flow sizes are
    /// specified by their mean; shape defaults to 1.5 in the scenarios).
    ParetoMean {
        /// Mean transfer size in bytes.
        mean_bytes: f64,
        /// Pareto shape parameter (> 1).
        shape: f64,
    },
    /// Deterministic size (used for the 10 Gb persistent flows of Table 3).
    Fixed {
        /// Transfer size in bytes.
        bytes: u64,
    },
}

impl SizeDist {
    /// Samples a flow size in bytes (at least one MSS).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R, mss: u32) -> u64 {
        let raw = match self {
            SizeDist::ParetoMean { mean_bytes, shape } => {
                Pareto::with_mean(*shape, *mean_bytes).sample(rng)
            }
            SizeDist::Fixed { bytes } => *bytes as f64,
        };
        (raw.round() as u64).max(mss as u64)
    }
}

/// Congestion-control assignment across a source's parallel flow slots.
///
/// A *fleet* assigns each slot its own algorithm, so one source can model
/// heterogeneous end-hosts (e.g. three CUBIC downloads contending with one
/// NewReno upload on the same route). Slot `i` of a [`TrafficSpec`] runs
/// [`CcFleet::kind_for`]`(i)`; a [`Uniform`](CcFleet::Uniform) fleet
/// reproduces the historical single-`CcKind` behaviour exactly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CcFleet {
    /// Every slot runs the same algorithm.
    Uniform(CcKind),
    /// Slot `i` runs `kinds[i % kinds.len()]` — the list cycles when a spec
    /// has more parallel slots than fleet entries.
    Mixed(Vec<CcKind>),
}

impl CcFleet {
    /// A fleet from `(algorithm, count)` groups, e.g.
    /// `CcFleet::fleet(&[(CcKind::Cubic, 3), (CcKind::NewReno, 1)])` —
    /// three CUBIC slots followed by one NewReno slot.
    pub fn fleet(groups: &[(CcKind, usize)]) -> CcFleet {
        let kinds: Vec<CcKind> = groups
            .iter()
            .flat_map(|&(cc, n)| std::iter::repeat_n(cc, n))
            .collect();
        match kinds.as_slice() {
            [only] => CcFleet::Uniform(*only),
            _ => CcFleet::Mixed(kinds),
        }
    }

    /// The algorithm slot `i` runs.
    ///
    /// # Panics
    /// Panics on an empty [`Mixed`](CcFleet::Mixed) fleet — scenario
    /// validation rejects those before they reach the simulator.
    pub fn kind_for(&self, slot: usize) -> CcKind {
        match self {
            CcFleet::Uniform(cc) => *cc,
            CcFleet::Mixed(kinds) => {
                assert!(!kinds.is_empty(), "empty congestion-control fleet");
                kinds[slot % kinds.len()]
            }
        }
    }

    /// Whether the fleet assigns no algorithm at all (`Mixed(vec![])`) —
    /// the invalid state scenario validation reports as a typed error.
    pub fn is_empty(&self) -> bool {
        matches!(self, CcFleet::Mixed(kinds) if kinds.is_empty())
    }

    /// Whether more than one distinct algorithm appears.
    pub fn is_mixed(&self) -> bool {
        match self {
            CcFleet::Uniform(_) => false,
            CcFleet::Mixed(kinds) => kinds.windows(2).any(|w| w[0] != w[1]),
        }
    }
}

impl From<CcKind> for CcFleet {
    fn from(cc: CcKind) -> CcFleet {
        CcFleet::Uniform(cc)
    }
}

/// One traffic source: `parallel` independent slots on a route, each running
/// an endless start-transfer/idle cycle.
#[derive(Debug, Clone)]
pub struct TrafficSpec {
    /// Route the flows follow.
    pub route: RouteId,
    /// Class label stamped on every packet (what differentiators match on).
    pub class: ClassLabel,
    /// Congestion-control assignment across the parallel slots (a plain
    /// [`CcKind`] converts into a uniform fleet).
    pub cc: CcFleet,
    /// Flow-size distribution.
    pub size: SizeDist,
    /// Mean inter-flow idle time in seconds (Table 1: 10 s).
    pub mean_gap_s: f64,
    /// Number of parallel flow slots.
    pub parallel: usize,
}

impl TrafficSpec {
    /// Samples the idle gap before the next flow of a slot.
    pub fn sample_gap<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        if self.mean_gap_s <= 0.0 {
            0.0
        } else {
            Exponential::with_mean(self.mean_gap_s).sample(rng)
        }
    }
}

/// Helper mirroring Table 3's "1 Mb + 10 Mb + 40 Mb" short-flow mix: three
/// specs, one slot each, with fixed-mean Pareto sizes.
pub fn short_flow_mix(route: RouteId, class: ClassLabel, cc: CcKind) -> Vec<TrafficSpec> {
    [1e6, 10e6, 40e6]
        .iter()
        .map(|&mean_bits| TrafficSpec {
            route,
            class,
            cc: cc.into(),
            size: SizeDist::ParetoMean {
                mean_bytes: mean_bits / 8.0,
                shape: 1.5,
            },
            mean_gap_s: 10.0,
            parallel: 1,
        })
        .collect()
}

/// Helper for Table 3's light-gray hosts: one persistent 10 Gb flow.
pub fn long_flow(route: RouteId, class: ClassLabel, cc: CcKind) -> TrafficSpec {
    TrafficSpec {
        route,
        class,
        cc: cc.into(),
        size: SizeDist::Fixed {
            bytes: (10e9 / 8.0) as u64,
        },
        mean_gap_s: 10.0,
        parallel: 1,
    }
}

/// Mean flow size of a spec in bits (the Pareto mean, or the fixed size).
pub fn mean_flow_bits(size: &SizeDist) -> f64 {
    match size {
        SizeDist::ParetoMean { mean_bytes, .. } => mean_bytes * 8.0,
        SizeDist::Fixed { bytes } => *bytes as f64 * 8.0,
    }
}

/// Conservative lower bound on the sustained demand (bits/s) one traffic
/// source offers, given the line rate bounding its transfers.
///
/// Each of the `parallel` slots cycles through "transfer a mean-sized flow,
/// idle for the mean gap"; at best the transfer runs at `line_rate_bps`, so
/// a slot's long-run offered rate is at least
/// `mean_bits / (mean_gap_s + mean_bits / line_rate_bps)`. Loss recovery
/// only lengthens transfers without reducing the backlog the source wants to
/// push, so this is the right yardstick for "does this traffic *demand* more
/// than a policer's token rate".
pub fn sustained_demand_bps(spec: &TrafficSpec, line_rate_bps: f64) -> f64 {
    let bits = mean_flow_bits(&spec.size);
    if bits <= 0.0 || line_rate_bps <= 0.0 {
        return 0.0;
    }
    let cycle_s = spec.mean_gap_s.max(0.0) + bits / line_rate_bps;
    spec.parallel as f64 * bits / cycle_s
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sizes_floor_at_one_mss() {
        let mut rng = StdRng::seed_from_u64(3);
        let d = SizeDist::Fixed { bytes: 10 };
        assert_eq!(d.sample(&mut rng, 1500), 1500);
    }

    #[test]
    fn pareto_sizes_scatter_around_mean() {
        let mut rng = StdRng::seed_from_u64(3);
        let d = SizeDist::ParetoMean {
            mean_bytes: 125_000.0,
            shape: 1.5,
        };
        let n = 50_000;
        let sum: u64 = (0..n).map(|_| d.sample(&mut rng, 1500)).sum();
        let mean = sum as f64 / n as f64;
        // Heavy tail: generous tolerance.
        assert!(
            (mean - 125_000.0).abs() < 25_000.0,
            "empirical mean {mean} too far off"
        );
    }

    #[test]
    fn gap_sampling_nonnegative() {
        let mut rng = StdRng::seed_from_u64(5);
        let spec = TrafficSpec {
            route: RouteId(0),
            class: 0,
            cc: CcKind::Cubic.into(),
            size: SizeDist::Fixed { bytes: 1500 },
            mean_gap_s: 10.0,
            parallel: 1,
        };
        for _ in 0..100 {
            assert!(spec.sample_gap(&mut rng) >= 0.0);
        }
        let zero_gap = TrafficSpec {
            mean_gap_s: 0.0,
            ..spec
        };
        assert_eq!(zero_gap.sample_gap(&mut rng), 0.0);
    }

    #[test]
    fn table3_helpers() {
        let mix = short_flow_mix(RouteId(2), 0, CcKind::Cubic);
        assert_eq!(mix.len(), 3);
        assert!(mix.iter().all(|s| s.route == RouteId(2) && s.parallel == 1));
        let lf = long_flow(RouteId(1), 1, CcKind::Cubic);
        match lf.size {
            SizeDist::Fixed { bytes } => assert_eq!(bytes, 1_250_000_000),
            _ => panic!("long flow must be fixed size"),
        }
    }

    #[test]
    fn fleet_groups_expand_and_cycle() {
        let fleet = CcFleet::fleet(&[(CcKind::Cubic, 3), (CcKind::NewReno, 1)]);
        assert!(fleet.is_mixed());
        assert!(!fleet.is_empty());
        let kinds: Vec<CcKind> = (0..8).map(|i| fleet.kind_for(i)).collect();
        assert_eq!(
            kinds,
            vec![
                CcKind::Cubic,
                CcKind::Cubic,
                CcKind::Cubic,
                CcKind::NewReno,
                // The fleet cycles past its length.
                CcKind::Cubic,
                CcKind::Cubic,
                CcKind::Cubic,
                CcKind::NewReno,
            ]
        );
    }

    #[test]
    fn uniform_fleets_are_not_mixed() {
        let single = CcFleet::fleet(&[(CcKind::NewReno, 1)]);
        assert_eq!(single, CcFleet::Uniform(CcKind::NewReno));
        let same = CcFleet::fleet(&[(CcKind::Cubic, 2), (CcKind::Cubic, 1)]);
        assert!(!same.is_mixed(), "one algorithm repeated is not mixed");
        let from: CcFleet = CcKind::Cubic.into();
        assert_eq!(from.kind_for(5), CcKind::Cubic);
        assert!(CcFleet::Mixed(Vec::new()).is_empty());
    }

    #[test]
    #[should_panic(expected = "empty congestion-control fleet")]
    fn empty_fleet_panics_on_assignment() {
        CcFleet::Mixed(Vec::new()).kind_for(0);
    }

    #[test]
    fn sustained_demand_lower_bound() {
        let spec = TrafficSpec {
            route: RouteId(0),
            class: 0,
            cc: CcKind::Cubic.into(),
            size: SizeDist::Fixed { bytes: 1_250_000 }, // 10 Mb
            mean_gap_s: 9.0,
            parallel: 4,
        };
        // Cycle = 9 s gap + 10 Mb / 10 Mb/s = 10 s -> 1 Mb/s per slot.
        let d = sustained_demand_bps(&spec, 10e6);
        assert!((d - 4e6).abs() < 1.0, "demand {d} != 4 Mb/s");
        // A faster line shortens the transfer and raises demand.
        assert!(sustained_demand_bps(&spec, 100e6) > d);
        assert_eq!(sustained_demand_bps(&spec, 0.0), 0.0);
    }
}
