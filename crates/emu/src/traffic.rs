//! Dynamic traffic generation (§6.1).
//!
//! "Each pair of communicating end-hosts starts a number of parallel TCP
//! flows with the transfer size following a Pareto distribution; when a TCP
//! flow ends, a new one starts after an idle time that is governed by an
//! exponential distribution."

use crate::packet::{ClassLabel, RouteId};
use crate::tcp::CcKind;
use nni_stats::{Exponential, Pareto};
use rand::Rng;

/// Flow-size distribution.
#[derive(Debug, Clone, Copy)]
pub enum SizeDist {
    /// Pareto with the given mean (bytes) and shape (Table 1 flow sizes are
    /// specified by their mean; shape defaults to 1.5 in the scenarios).
    ParetoMean {
        /// Mean transfer size in bytes.
        mean_bytes: f64,
        /// Pareto shape parameter (> 1).
        shape: f64,
    },
    /// Deterministic size (used for the 10 Gb persistent flows of Table 3).
    Fixed {
        /// Transfer size in bytes.
        bytes: u64,
    },
}

impl SizeDist {
    /// Samples a flow size in bytes (at least one MSS).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R, mss: u32) -> u64 {
        let raw = match self {
            SizeDist::ParetoMean { mean_bytes, shape } => {
                Pareto::with_mean(*shape, *mean_bytes).sample(rng)
            }
            SizeDist::Fixed { bytes } => *bytes as f64,
        };
        (raw.round() as u64).max(mss as u64)
    }
}

/// One traffic source: `parallel` independent slots on a route, each running
/// an endless start-transfer/idle cycle.
#[derive(Debug, Clone)]
pub struct TrafficSpec {
    /// Route the flows follow.
    pub route: RouteId,
    /// Class label stamped on every packet (what differentiators match on).
    pub class: ClassLabel,
    /// Congestion-control algorithm.
    pub cc: CcKind,
    /// Flow-size distribution.
    pub size: SizeDist,
    /// Mean inter-flow idle time in seconds (Table 1: 10 s).
    pub mean_gap_s: f64,
    /// Number of parallel flow slots.
    pub parallel: usize,
}

impl TrafficSpec {
    /// Samples the idle gap before the next flow of a slot.
    pub fn sample_gap<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        if self.mean_gap_s <= 0.0 {
            0.0
        } else {
            Exponential::with_mean(self.mean_gap_s).sample(rng)
        }
    }
}

/// Helper mirroring Table 3's "1 Mb + 10 Mb + 40 Mb" short-flow mix: three
/// specs, one slot each, with fixed-mean Pareto sizes.
pub fn short_flow_mix(route: RouteId, class: ClassLabel, cc: CcKind) -> Vec<TrafficSpec> {
    [1e6, 10e6, 40e6]
        .iter()
        .map(|&mean_bits| TrafficSpec {
            route,
            class,
            cc,
            size: SizeDist::ParetoMean {
                mean_bytes: mean_bits / 8.0,
                shape: 1.5,
            },
            mean_gap_s: 10.0,
            parallel: 1,
        })
        .collect()
}

/// Helper for Table 3's light-gray hosts: one persistent 10 Gb flow.
pub fn long_flow(route: RouteId, class: ClassLabel, cc: CcKind) -> TrafficSpec {
    TrafficSpec {
        route,
        class,
        cc,
        size: SizeDist::Fixed {
            bytes: (10e9 / 8.0) as u64,
        },
        mean_gap_s: 10.0,
        parallel: 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sizes_floor_at_one_mss() {
        let mut rng = StdRng::seed_from_u64(3);
        let d = SizeDist::Fixed { bytes: 10 };
        assert_eq!(d.sample(&mut rng, 1500), 1500);
    }

    #[test]
    fn pareto_sizes_scatter_around_mean() {
        let mut rng = StdRng::seed_from_u64(3);
        let d = SizeDist::ParetoMean {
            mean_bytes: 125_000.0,
            shape: 1.5,
        };
        let n = 50_000;
        let sum: u64 = (0..n).map(|_| d.sample(&mut rng, 1500)).sum();
        let mean = sum as f64 / n as f64;
        // Heavy tail: generous tolerance.
        assert!(
            (mean - 125_000.0).abs() < 25_000.0,
            "empirical mean {mean} too far off"
        );
    }

    #[test]
    fn gap_sampling_nonnegative() {
        let mut rng = StdRng::seed_from_u64(5);
        let spec = TrafficSpec {
            route: RouteId(0),
            class: 0,
            cc: CcKind::Cubic,
            size: SizeDist::Fixed { bytes: 1500 },
            mean_gap_s: 10.0,
            parallel: 1,
        };
        for _ in 0..100 {
            assert!(spec.sample_gap(&mut rng) >= 0.0);
        }
        let zero_gap = TrafficSpec {
            mean_gap_s: 0.0,
            ..spec
        };
        assert_eq!(zero_gap.sample_gap(&mut rng), 0.0);
    }

    #[test]
    fn table3_helpers() {
        let mix = short_flow_mix(RouteId(2), 0, CcKind::Cubic);
        assert_eq!(mix.len(), 3);
        assert!(mix.iter().all(|s| s.route == RouteId(2) && s.parallel == 1));
        let lf = long_flow(RouteId(1), 1, CcKind::Cubic);
        match lf.size {
            SizeDist::Fixed { bytes } => assert_eq!(bytes, 1_250_000_000),
            _ => panic!("long flow must be fixed size"),
        }
    }
}
