//! Token buckets — the mechanism behind both policing and shaping (§6.1).
//!
//! "Policing relies on a token bucket; the rate at which tokens are added to
//! the bucket determines the maximum rate of the targeted performance class;
//! the size of the bucket determines the maximum allowed burst; any excess
//! traffic is immediately dropped. Shaping is similar, with the difference
//! that any excess traffic is buffered in a dedicated queue."

use crate::time::SimTime;

/// A byte-denominated token bucket.
#[derive(Debug, Clone)]
pub struct TokenBucket {
    rate_bps: f64,
    burst_bytes: f64,
    tokens: f64,
    last_update: SimTime,
}

impl TokenBucket {
    /// Creates a bucket that starts full.
    ///
    /// # Panics
    /// Panics unless rate and burst are positive.
    pub fn new(rate_bps: f64, burst_bytes: f64) -> TokenBucket {
        assert!(rate_bps > 0.0, "token rate must be positive");
        assert!(burst_bytes > 0.0, "burst size must be positive");
        TokenBucket {
            rate_bps,
            burst_bytes,
            tokens: burst_bytes,
            last_update: SimTime::ZERO,
        }
    }

    /// Token fill rate in bits per second.
    pub fn rate_bps(&self) -> f64 {
        self.rate_bps
    }

    /// Refills tokens up to `now`.
    pub fn update(&mut self, now: SimTime) {
        if now <= self.last_update {
            return;
        }
        let dt = (now - self.last_update).as_secs_f64();
        self.tokens = (self.tokens + dt * self.rate_bps / 8.0).min(self.burst_bytes);
        self.last_update = now;
    }

    /// Current token level in bytes (after the last `update`).
    pub fn tokens(&self) -> f64 {
        self.tokens
    }

    /// Tries to consume `bytes`; returns whether the packet conformed.
    pub fn try_consume(&mut self, bytes: u64) -> bool {
        let b = bytes as f64;
        if self.tokens >= b {
            self.tokens -= b;
            true
        } else {
            false
        }
    }

    /// Time from `now` until `bytes` tokens will be available (zero when
    /// already available). Used by the shaper to schedule releases.
    pub fn time_until_available(&self, bytes: u64) -> SimTime {
        let deficit = bytes as f64 - self.tokens;
        if deficit <= 0.0 {
            SimTime::ZERO
        } else {
            SimTime::from_secs_f64(deficit * 8.0 / self.rate_bps)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_full_and_consumes() {
        let mut tb = TokenBucket::new(8e6, 1000.0); // 1 MB/s, 1000 B burst
        assert!(tb.try_consume(600));
        assert!(tb.try_consume(400));
        assert!(!tb.try_consume(1));
    }

    #[test]
    fn refills_at_rate() {
        let mut tb = TokenBucket::new(8e6, 1000.0); // 1 MB/s fill
        tb.try_consume(1000);
        // After 0.5 ms, 500 bytes available.
        tb.update(SimTime::from_secs_f64(0.0005));
        assert!(tb.try_consume(500));
        assert!(!tb.try_consume(1));
    }

    #[test]
    fn burst_caps_accumulation() {
        let mut tb = TokenBucket::new(8e6, 1000.0);
        tb.update(SimTime::from_secs_f64(100.0));
        assert!((tb.tokens() - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn time_until_available() {
        let mut tb = TokenBucket::new(8e6, 1000.0);
        tb.try_consume(1000);
        let t = tb.time_until_available(500);
        assert!((t.as_secs_f64() - 0.0005).abs() < 1e-9);
        assert_eq!(tb.time_until_available(0), SimTime::ZERO);
    }

    #[test]
    fn update_is_monotonic_safe() {
        let mut tb = TokenBucket::new(8e6, 1000.0);
        tb.update(SimTime::from_secs_f64(1.0));
        tb.try_consume(1000);
        // A stale update must not rewind.
        tb.update(SimTime::from_secs_f64(0.5));
        assert!(tb.tokens() < 1.0);
    }

    #[test]
    fn never_negative() {
        let mut tb = TokenBucket::new(1e6, 100.0);
        assert!(!tb.try_consume(101));
        assert!(tb.tokens() >= 0.0);
    }
}
