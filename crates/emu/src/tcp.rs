//! TCP congestion control: NewReno and CUBIC (Table 1's two algorithms), and
//! the RFC 6298 retransmission-timeout estimator.
//!
//! The state machines are pure (no event-queue coupling) so they can be unit
//! tested exhaustively; the flow driver in `sim.rs` feeds them ACK/loss
//! events and reads back the congestion window.

use crate::time::SimTime;

/// Which congestion-control algorithm a flow runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CcKind {
    /// RFC 6582 NewReno: AIMD with fast retransmit / fast recovery.
    NewReno,
    /// RFC 8312 CUBIC: cubic window growth with beta = 0.7.
    Cubic,
}

/// Initial congestion window in segments (RFC 6928).
pub const INITIAL_CWND: f64 = 10.0;

/// Minimum congestion window after any loss event, in segments.
pub const MIN_CWND: f64 = 2.0;

const CUBIC_BETA: f64 = 0.7;
const CUBIC_C: f64 = 0.4;

/// CUBIC-specific state.
#[derive(Debug, Clone, Copy)]
struct CubicState {
    /// Window size just before the last reduction (segments).
    w_max: f64,
    /// Start of the current congestion-avoidance epoch.
    epoch_start: Option<SimTime>,
    /// Time offset at which the cubic curve crosses `w_max`.
    k: f64,
}

impl CubicState {
    fn new() -> CubicState {
        CubicState {
            w_max: 0.0,
            epoch_start: None,
            k: 0.0,
        }
    }

    fn on_loss(&mut self, cwnd: f64) {
        self.w_max = cwnd;
        self.epoch_start = None;
        self.k = (self.w_max * (1.0 - CUBIC_BETA) / CUBIC_C).cbrt();
    }

    fn target(&mut self, now: SimTime, rtt_s: f64) -> f64 {
        let start = *self.epoch_start.get_or_insert(now);
        let t = (now - start).as_secs_f64() + rtt_s;
        CUBIC_C * (t - self.k).powi(3) + self.w_max
    }
}

/// Congestion-control state of one flow.
#[derive(Debug, Clone)]
pub struct CongestionControl {
    kind: CcKind,
    cwnd: f64,
    ssthresh: f64,
    cubic: CubicState,
    in_recovery: bool,
}

impl CongestionControl {
    /// Fresh state in slow start.
    pub fn new(kind: CcKind) -> CongestionControl {
        CongestionControl {
            kind,
            cwnd: INITIAL_CWND,
            ssthresh: f64::INFINITY,
            cubic: CubicState::new(),
            in_recovery: false,
        }
    }

    /// Current congestion window in segments.
    pub fn cwnd(&self) -> f64 {
        self.cwnd
    }

    /// Current slow-start threshold in segments.
    pub fn ssthresh(&self) -> f64 {
        self.ssthresh
    }

    /// Whether the flow is in fast recovery.
    pub fn in_recovery(&self) -> bool {
        self.in_recovery
    }

    /// Whether the flow is in slow start.
    pub fn in_slow_start(&self) -> bool {
        self.cwnd < self.ssthresh && !self.in_recovery
    }

    /// A new cumulative ACK advanced `snd_una` by `acked` segments.
    pub fn on_new_ack(&mut self, acked: u64, now: SimTime, srtt_s: f64) {
        if self.in_recovery {
            return; // window managed by recovery entry/exit
        }
        if self.in_slow_start() {
            self.cwnd += acked as f64;
            if self.cwnd >= self.ssthresh {
                self.cwnd = self.ssthresh;
            }
            return;
        }
        match self.kind {
            CcKind::NewReno => {
                // Standard congestion avoidance: +1 MSS per RTT.
                self.cwnd += acked as f64 / self.cwnd;
            }
            CcKind::Cubic => {
                let rtt = srtt_s.max(1e-3);
                let target = self.cubic.target(now, rtt);
                if target > self.cwnd {
                    // Approach the cubic target over one RTT.
                    self.cwnd += ((target - self.cwnd) / self.cwnd).min(1.0) * acked as f64;
                } else {
                    // TCP-friendly floor: grow slowly even above the curve.
                    self.cwnd += 0.01 * acked as f64 / self.cwnd;
                }
            }
        }
    }

    /// Third duplicate ACK: fast retransmit. `flight` is the flight size in
    /// segments. Returns the new `ssthresh`.
    pub fn enter_fast_recovery(&mut self, flight: f64) -> f64 {
        let factor = match self.kind {
            CcKind::NewReno => 0.5,
            CcKind::Cubic => CUBIC_BETA,
        };
        if self.kind == CcKind::Cubic {
            self.cubic.on_loss(self.cwnd);
        }
        self.ssthresh = (flight * factor).max(MIN_CWND);
        // NewReno window inflation: ssthresh + 3 (the three dup-acked
        // segments have left the network).
        self.cwnd = self.ssthresh + 3.0;
        self.in_recovery = true;
        self.ssthresh
    }

    /// Additional duplicate ACK while in recovery: one more segment left the
    /// network.
    pub fn on_dupack_in_recovery(&mut self) {
        if self.in_recovery {
            self.cwnd += 1.0;
        }
    }

    /// Full ACK: leave recovery, deflate the window to `ssthresh`.
    pub fn exit_recovery(&mut self) {
        if self.in_recovery {
            self.in_recovery = false;
            self.cwnd = self.ssthresh.max(MIN_CWND);
        }
    }

    /// Retransmission timeout: collapse to one segment (RFC 5681 §3.1).
    pub fn on_timeout(&mut self, flight: f64) {
        if self.kind == CcKind::Cubic {
            self.cubic.on_loss(self.cwnd);
        }
        self.ssthresh = (flight / 2.0).max(MIN_CWND);
        self.cwnd = 1.0;
        self.in_recovery = false;
    }
}

/// RFC 6298 RTT estimator and retransmission timer.
#[derive(Debug, Clone)]
pub struct RttEstimator {
    srtt: Option<f64>,
    rttvar: f64,
    rto: f64,
    min_rto: f64,
    backoff: u32,
}

impl RttEstimator {
    /// Creates an estimator with the given minimum RTO (seconds).
    pub fn new(min_rto: f64) -> RttEstimator {
        RttEstimator {
            srtt: None,
            rttvar: 0.0,
            rto: 1.0, // RFC 6298 initial RTO
            min_rto,
            backoff: 0,
        }
    }

    /// Feeds one RTT sample (seconds). Resets any timeout backoff.
    pub fn on_sample(&mut self, rtt: f64) {
        assert!(rtt >= 0.0, "RTT samples are non-negative");
        match self.srtt {
            None => {
                self.srtt = Some(rtt);
                self.rttvar = rtt / 2.0;
            }
            Some(srtt) => {
                const ALPHA: f64 = 0.125;
                const BETA: f64 = 0.25;
                self.rttvar = (1.0 - BETA) * self.rttvar + BETA * (srtt - rtt).abs();
                self.srtt = Some((1.0 - ALPHA) * srtt + ALPHA * rtt);
            }
        }
        let srtt = self.srtt.unwrap();
        self.rto = (srtt + (4.0 * self.rttvar).max(0.001)).max(self.min_rto);
        self.backoff = 0;
    }

    /// Smoothed RTT (seconds); falls back to the current RTO before the
    /// first sample.
    pub fn srtt(&self) -> f64 {
        self.srtt.unwrap_or(self.rto)
    }

    /// Current RTO including exponential backoff, clamped to 60 s.
    pub fn rto(&self) -> f64 {
        (self.rto * f64::from(1u32 << self.backoff.min(6))).min(60.0)
    }

    /// Doubles the RTO (called when the timer fires).
    pub fn on_timeout(&mut self) {
        self.backoff = (self.backoff + 1).min(6);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs_f64(s)
    }

    #[test]
    fn slow_start_doubles_per_rtt() {
        let mut cc = CongestionControl::new(CcKind::NewReno);
        assert!(cc.in_slow_start());
        let w0 = cc.cwnd();
        // Ack a full window: window doubles.
        cc.on_new_ack(w0 as u64, t(0.1), 0.05);
        assert!((cc.cwnd() - 2.0 * w0).abs() < 1e-9);
    }

    #[test]
    fn congestion_avoidance_is_linear() {
        let mut cc = CongestionControl::new(CcKind::NewReno);
        cc.enter_fast_recovery(20.0);
        cc.exit_recovery();
        assert!(!cc.in_slow_start());
        let w = cc.cwnd();
        // One full window of acks: +1 segment.
        let mut acked = 0;
        while acked < w as u64 {
            cc.on_new_ack(1, t(0.1), 0.05);
            acked += 1;
        }
        assert!((cc.cwnd() - (w + 1.0)).abs() < 0.1, "cwnd {}", cc.cwnd());
    }

    #[test]
    fn fast_recovery_halves_newreno() {
        let mut cc = CongestionControl::new(CcKind::NewReno);
        for _ in 0..30 {
            cc.on_new_ack(1, t(0.1), 0.05);
        }
        let flight = cc.cwnd();
        let ssthresh = cc.enter_fast_recovery(flight);
        assert!((ssthresh - flight / 2.0).abs() < 1e-9);
        assert!(cc.in_recovery());
        cc.on_dupack_in_recovery();
        assert!((cc.cwnd() - (ssthresh + 4.0)).abs() < 1e-9);
        cc.exit_recovery();
        assert!((cc.cwnd() - ssthresh).abs() < 1e-9);
        assert!(!cc.in_recovery());
    }

    #[test]
    fn cubic_reduces_by_beta() {
        let mut cc = CongestionControl::new(CcKind::Cubic);
        for _ in 0..40 {
            cc.on_new_ack(1, t(0.01), 0.05);
        }
        let flight = cc.cwnd();
        let ssthresh = cc.enter_fast_recovery(flight);
        assert!((ssthresh - flight * 0.7).abs() < 1e-9);
    }

    #[test]
    fn cubic_grows_toward_wmax() {
        let mut cc = CongestionControl::new(CcKind::Cubic);
        // Force out of slow start with a loss at cwnd = 100.
        cc.ssthresh = 0.0;
        cc.cwnd = 100.0;
        cc.cubic.on_loss(100.0);
        cc.cwnd = 70.0;
        // Feed acks over simulated time; window must approach w_max ~ 100.
        let mut now = 0.0;
        for _ in 0..4000 {
            now += 0.001;
            cc.on_new_ack(1, t(now), 0.05);
        }
        assert!(cc.cwnd() > 90.0, "cwnd {} should approach w_max", cc.cwnd());
    }

    #[test]
    fn timeout_collapses_window() {
        let mut cc = CongestionControl::new(CcKind::NewReno);
        for _ in 0..50 {
            cc.on_new_ack(1, t(0.1), 0.05);
        }
        cc.on_timeout(cc.cwnd());
        assert_eq!(cc.cwnd(), 1.0);
        assert!(cc.in_slow_start());
    }

    #[test]
    fn min_cwnd_floor() {
        let mut cc = CongestionControl::new(CcKind::NewReno);
        cc.enter_fast_recovery(1.0);
        assert!(cc.ssthresh() >= MIN_CWND);
        cc.on_timeout(0.5);
        assert!(cc.ssthresh() >= MIN_CWND);
    }

    #[test]
    fn rtt_estimator_first_sample() {
        let mut e = RttEstimator::new(0.2);
        e.on_sample(0.1);
        assert!((e.srtt() - 0.1).abs() < 1e-12);
        // RTO = srtt + 4*rttvar = 0.1 + 4*0.05 = 0.3.
        assert!((e.rto() - 0.3).abs() < 1e-9);
    }

    #[test]
    fn rtt_estimator_min_rto_enforced() {
        let mut e = RttEstimator::new(0.2);
        for _ in 0..50 {
            e.on_sample(0.01);
        }
        assert!(e.rto() >= 0.2);
    }

    #[test]
    fn rto_backoff_doubles_and_resets() {
        let mut e = RttEstimator::new(0.2);
        e.on_sample(0.1);
        let base = e.rto();
        e.on_timeout();
        assert!((e.rto() - 2.0 * base).abs() < 1e-9);
        e.on_timeout();
        assert!((e.rto() - 4.0 * base).abs() < 1e-9);
        e.on_sample(0.1);
        // rttvar keeps decaying with each sample, so the post-reset RTO is
        // at most the pre-backoff value (and certainly below 2x it).
        assert!(e.rto() <= base + 1e-9, "backoff resets on new sample");
    }

    #[test]
    fn slow_start_exits_at_ssthresh() {
        let mut cc = CongestionControl::new(CcKind::NewReno);
        cc.ssthresh = 16.0;
        cc.on_new_ack(20, t(0.1), 0.05);
        assert!((cc.cwnd() - 16.0).abs() < 1e-9);
        assert!(!cc.in_slow_start());
    }
}
