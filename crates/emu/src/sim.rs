//! The discrete-event simulator: links, TCP flows, traffic generation, and
//! the event loop.
//!
//! Architecture (per-link store-and-forward):
//!
//! ```text
//! sender ──Arrive(hop 0)──► [diff stage] ──► [drop-tail queue] ──TxComplete──►
//!   ▲                     (police/shape)                              │
//!   │                                                                 ▼
//!  Ack ◄── receiver ◄──────────── Arrive(hop+1) … ◄── propagation delay
//! ```
//!
//! ACKs return after the route's reverse propagation delay without queueing
//! (the measured quantity is forward loss; see DESIGN.md substitutions).
//!
//! # Hot-path data layout (PR 3)
//!
//! The inner loop is built around three packed structures, rewritten for
//! speed with results asserted bit-identical seed-for-seed (the golden
//! identity test in `nni-scenario` gates any change here):
//!
//! * **Packet slab** — packets in flight between events live in a
//!   [`PacketSlab`]; event-queue entries carry a 4-byte handle instead of an
//!   inlined packet ([`crate::event`] has the full design).
//! * **O(1) flow state** — per-flow send times and the receiver's
//!   out-of-order set are ring/bitmap windows ([`crate::window`]), replacing
//!   `BTreeMap`/`BTreeSet` whose every cumulative ACK did an allocating
//!   `split_off`.
//! * **Interval cache** — the current measurement-interval index is tracked
//!   incrementally (simulation time is monotone) instead of a float division
//!   per recorded packet; the cached boundary is computed to agree exactly
//!   with the float division it replaces.
//!
//! End-of-run invariant: after the event loop drains, every slab handle has
//! been freed (`live() == 0`) — leaked or double-freed handles panic.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::config::SimConfig;
use crate::diff::{DiffOutcome, DiffRuntime, Differentiation};
use crate::event::{Event, EventQueue};
use crate::packet::{ClassLabel, FlowId, Packet, Route, RouteId};
use crate::slab::{PacketHandle, PacketSlab};
use crate::stats::{LinkTruth, QueueTrace, SimReport};
use crate::tcp::{CcKind, CongestionControl, RttEstimator};
use crate::time::{tx_time, SimTime};
use crate::traffic::TrafficSpec;
use crate::window::{OooWindow, SendTimes};
// The interval binning rule and its ULP-walked boundary inversion are shared
// with `MeasurementLog::interval_of` — one rule, one place
// (`nni_measure::interval`), so a boundary timestamp can never bin
// differently in the emulator and the log.
use nni_measure::interval::{interval_boundary_ns, interval_index};
use nni_measure::{DelayStats, MeasurementLog};
use nni_topology::LinkId;

/// Physical parameters of one simulated link.
#[derive(Debug, Clone)]
pub struct LinkParams {
    /// Capacity in bits per second.
    pub rate_bps: f64,
    /// One-way propagation delay in seconds.
    pub delay_s: f64,
    /// Differentiation mechanism.
    pub diff: Differentiation,
    /// Queue size override in bytes (default: `SimConfig::queue_bytes`).
    pub queue_bytes: Option<u64>,
}

struct LinkSim {
    rate_bps: f64,
    delay: SimTime,
    qcap_bytes: u64,
    queue: std::collections::VecDeque<Packet>,
    qbytes: u64,
    busy: bool,
    diff: DiffRuntime,
}

struct FlowSim {
    route: RouteId,
    class: ClassLabel,
    size_segments: u64,
    cc: CongestionControl,
    rtt: RttEstimator,
    snd_una: u64,
    snd_nxt: u64,
    dup_acks: u32,
    recover: u64,
    send_times: SendTimes,
    rto_generation: u32,
    done: bool,
    slot: Option<usize>,
    rcv_nxt: u64,
    ooo: OooWindow,
}

struct Slot {
    spec: TrafficSpec,
    /// This slot's congestion control, resolved from the spec's
    /// [`CcFleet`](crate::traffic::CcFleet) at registration time.
    cc: CcKind,
}

/// The simulator. Build with [`Simulator::new`], add traffic with
/// [`Simulator::add_traffic`], run with [`Simulator::run`].
pub struct Simulator {
    cfg: SimConfig,
    links: Vec<LinkSim>,
    routes: Vec<Route>,
    reverse_delay: Vec<SimTime>,
    flows: Vec<FlowSim>,
    slots: Vec<Slot>,
    queue: EventQueue,
    slab: PacketSlab,
    now: SimTime,
    /// Simulation end (`cfg.duration_s`): nothing is scheduled past it.
    end: SimTime,
    rng: StdRng,
    /// Reused across shaper-release events so each release does not allocate.
    release_scratch: Vec<Packet>,
    /// Measurement interval containing `now` (monotone, cached).
    cur_interval: usize,
    /// First timestamp belonging to the *next* measurement interval.
    cur_interval_end: SimTime,
    // Statistics.
    log: MeasurementLog,
    /// One-way delay samples per (send interval, path), nanoseconds —
    /// collected only under `cfg.record_delay` and folded into the log's
    /// percentile grid at end of run. Recording is pure observation: no RNG
    /// is consumed and no event is reordered, so a delay-recording run is
    /// otherwise bit-identical to the same seed without it.
    delay_ns: Vec<Vec<Vec<u64>>>,
    truth: LinkTruth,
    traces: Vec<QueueTrace>,
    completed_flows: usize,
    segments_sent: u64,
    segments_delivered: u64,
    segments_dropped: u64,
}

impl Simulator {
    /// Creates a simulator over the given links and routes.
    ///
    /// `n_paths` is the number of *measured* paths (the routes' `path`
    /// fields must index into `0..n_paths`); `n_classes` sizes the
    /// ground-truth recorder.
    pub fn new(
        links: Vec<LinkParams>,
        routes: Vec<Route>,
        n_paths: usize,
        n_classes: usize,
        cfg: SimConfig,
    ) -> Simulator {
        assert!(!links.is_empty(), "need at least one link");
        assert!(!routes.is_empty(), "need at least one route");
        for r in &routes {
            for l in &r.links {
                assert!(l.index() < links.len(), "route references unknown link {l}");
            }
            if let Some(p) = r.path {
                assert!(p.index() < n_paths, "route references unknown path {p}");
            }
        }
        let n_links = links.len();
        let link_sims: Vec<LinkSim> = links
            .into_iter()
            .map(|p| {
                let qcap_bytes = p.queue_bytes.unwrap_or_else(|| cfg.queue_bytes(p.rate_bps));
                LinkSim {
                    rate_bps: p.rate_bps,
                    delay: SimTime::from_secs_f64(p.delay_s),
                    qcap_bytes,
                    // Pre-size to the drop-tail capacity: the queue can
                    // never hold more than this many full-MSS packets, so
                    // it never reallocates mid-run.
                    queue: std::collections::VecDeque::with_capacity(
                        (qcap_bytes / cfg.mss.max(1) as u64 + 2) as usize,
                    ),
                    qbytes: 0,
                    busy: false,
                    diff: DiffRuntime::new(&p.diff),
                }
            })
            .collect();
        let reverse_delay = routes
            .iter()
            .map(|r| {
                r.links
                    .iter()
                    .fold(SimTime::ZERO, |acc, &l| acc + link_sims[l.index()].delay)
            })
            .collect();
        Simulator {
            links: link_sims,
            routes,
            reverse_delay,
            flows: Vec::new(),
            slots: Vec::new(),
            queue: EventQueue::new(),
            slab: PacketSlab::with_capacity(1024),
            now: SimTime::ZERO,
            end: SimTime::from_secs_f64(cfg.duration_s),
            rng: StdRng::seed_from_u64(cfg.seed),
            release_scratch: Vec::new(),
            cur_interval: 0,
            cur_interval_end: SimTime(interval_boundary_ns(cfg.interval_s, 1)),
            log: MeasurementLog::new(n_paths.max(1), cfg.interval_s),
            delay_ns: Vec::new(),
            truth: LinkTruth::new(n_links, n_classes),
            traces: vec![QueueTrace::default(); n_links],
            completed_flows: 0,
            segments_sent: 0,
            segments_delivered: 0,
            segments_dropped: 0,
            cfg,
        }
    }

    /// Registers a traffic source: `spec.parallel` independent slots, each
    /// starting its first flow after a small random jitter (avoids start-up
    /// synchronisation). Slot `k` of the source runs `spec.cc.kind_for(k)`,
    /// so a mixed fleet interleaves its algorithms across the slots.
    pub fn add_traffic(&mut self, spec: TrafficSpec) {
        assert!(
            !spec.cc.is_empty(),
            "traffic source has an empty congestion-control fleet"
        );
        for k in 0..spec.parallel {
            let slot = self.slots.len();
            self.slots.push(Slot {
                cc: spec.cc.kind_for(k),
                spec: spec.clone(),
            });
            let jitter = SimTime::from_secs_f64(self.rng.gen::<f64>() * 0.2);
            self.queue
                .push(jitter, Event::FlowStart { slot: slot as u32 });
        }
    }

    /// Runs the simulation to `cfg.duration_s` and returns the report
    /// (warm-up intervals already dropped).
    pub fn run(mut self) -> SimReport {
        let end = self.end;
        let first_sample = SimTime::from_secs_f64(self.cfg.sample_period_s);
        if first_sample <= end {
            self.queue.push(first_sample, Event::Sample);
        }
        while let Some((at, ev)) = self.queue.pop() {
            if at > end {
                self.discard(ev);
                break;
            }
            debug_assert!(at >= self.now, "event time regressed");
            self.now = at;
            self.dispatch(ev);
        }
        // Drain events scheduled past the end so every in-flight packet's
        // slab handle is returned, then assert the no-leak invariant.
        while let Some((_, ev)) = self.queue.pop() {
            self.discard(ev);
        }
        assert_eq!(
            self.slab.live(),
            0,
            "packet slab leaked handles at end of run"
        );
        if self.cfg.record_delay {
            self.fold_delay_grid();
        }
        let warmup = self.cfg.warmup_intervals();
        self.log.drop_warmup(warmup);
        self.truth.drop_warmup(warmup);
        SimReport {
            log: self.log,
            link_truth: self.truth,
            queue_traces: self.traces,
            completed_flows: self.completed_flows,
            segments_sent: self.segments_sent,
            segments_delivered: self.segments_delivered,
            segments_dropped: self.segments_dropped,
        }
    }

    /// Frees the slab slot of an event that will never be dispatched.
    fn discard(&mut self, ev: Event) {
        if let Event::Arrive(h) = ev {
            self.slab.remove(h);
        }
    }

    /// Sorts the collected per-cell delay samples and installs the
    /// percentile grid on the log (before warm-up dropping, so the rows
    /// drain in lockstep with the counts). Sample order never matters:
    /// sorting u64 nanoseconds is total, so the fold is deterministic
    /// whatever order deliveries were observed in.
    fn fold_delay_grid(&mut self) {
        let n_paths = self.log.path_count();
        let mut rows = Vec::with_capacity(self.log.interval_count());
        for t in 0..self.log.interval_count() {
            let mut row = Vec::with_capacity(n_paths);
            for p in 0..n_paths {
                let stats = self
                    .delay_ns
                    .get_mut(t)
                    .map(|r| &mut r[p])
                    .filter(|s| !s.is_empty())
                    .and_then(|samples| {
                        samples.sort_unstable();
                        DelayStats::from_sorted_ns(samples)
                    });
                row.push(stats);
            }
            rows.push(row);
        }
        self.log.set_delay(rows);
    }

    /// Measurement interval containing an arbitrary timestamp (float
    /// division — used for past times, e.g. a dropped packet's send time).
    fn interval_at(&self, t: SimTime) -> usize {
        interval_index(t.as_secs_f64(), self.cfg.interval_s)
    }

    /// Measurement interval containing `now` — the cached hot path.
    /// Simulation time is monotone, so the cache only ever steps forward,
    /// and the precomputed boundary agrees exactly with [`Self::interval_at`].
    #[inline]
    fn interval_now(&mut self) -> usize {
        while self.now >= self.cur_interval_end {
            self.cur_interval += 1;
            self.cur_interval_end = SimTime(interval_boundary_ns(
                self.cfg.interval_s,
                self.cur_interval as u64 + 1,
            ));
        }
        debug_assert_eq!(self.cur_interval, self.interval_at(self.now));
        self.cur_interval
    }

    fn dispatch(&mut self, ev: Event) {
        match ev {
            Event::Arrive(h) => self.on_arrive(h),
            Event::TxComplete(link) => self.on_tx_complete(LinkId(link as usize)),
            Event::ShaperRelease { link, lane } => {
                self.on_shaper_release(LinkId(link as usize), lane as usize)
            }
            Event::Ack { flow, ackno } => self.on_ack(flow, ackno as u64),
            Event::Rto { flow, generation } => self.on_rto(flow, generation),
            Event::FlowStart { slot } => self.on_flow_start(slot as usize),
            Event::Sample => self.on_sample(),
        }
    }

    // ------------------------------------------------------------------
    // Network plane
    // ------------------------------------------------------------------

    fn on_arrive(&mut self, h: PacketHandle) {
        let pkt = self.slab.remove(h);
        let link_id = self.routes[pkt.route.index()].links[pkt.hop as usize];
        let t = self.interval_now();
        self.truth.record_offered(t, link_id, pkt.class);
        let outcome = self.links[link_id.index()].diff.ingress(self.now, pkt);
        match outcome {
            DiffOutcome::Pass(pkt) => self.enqueue_main(link_id, pkt),
            DiffOutcome::Drop(pkt) => self.drop_packet(link_id, pkt),
            DiffOutcome::Buffered {
                lane,
                schedule_release,
            } => {
                if let Some(at) = schedule_release {
                    self.queue.push(
                        at,
                        Event::ShaperRelease {
                            link: link_id.index() as u32,
                            lane: lane as u32,
                        },
                    );
                }
            }
        }
    }

    fn enqueue_main(&mut self, link_id: LinkId, pkt: Packet) {
        let link = &mut self.links[link_id.index()];
        if link.qbytes + pkt.size as u64 > link.qcap_bytes {
            self.drop_packet(link_id, pkt);
            return;
        }
        link.qbytes += pkt.size as u64;
        link.queue.push_back(pkt);
        if !link.busy {
            self.start_tx(link_id);
        }
    }

    fn start_tx(&mut self, link_id: LinkId) {
        let link = &mut self.links[link_id.index()];
        debug_assert!(!link.busy && !link.queue.is_empty());
        link.busy = true;
        let head_size = link.queue.front().expect("non-empty").size as u64;
        let done_at = self.now + tx_time(head_size, link.rate_bps);
        self.queue
            .push(done_at, Event::TxComplete(link_id.index() as u32));
    }

    fn on_tx_complete(&mut self, link_id: LinkId) {
        let link = &mut self.links[link_id.index()];
        let mut pkt = link.queue.pop_front().expect("TxComplete with empty queue");
        link.qbytes -= pkt.size as u64;
        link.busy = false;
        let delay = link.delay;
        if !link.queue.is_empty() {
            self.start_tx(link_id);
        }
        pkt.hop += 1;
        let arrive_at = self.now + delay;
        if (pkt.hop as usize) < self.routes[pkt.route.index()].links.len() {
            let h = self.slab.insert(pkt);
            self.queue.push(arrive_at, Event::Arrive(h));
        } else {
            // Destination host: receiver logic runs on "arrival"; we inline
            // it by scheduling delivery through the ACK path.
            self.deliver(pkt, arrive_at);
        }
    }

    fn on_shaper_release(&mut self, link_id: LinkId, lane: usize) {
        let mut released = std::mem::take(&mut self.release_scratch);
        released.clear();
        let next = self.links[link_id.index()]
            .diff
            .release(self.now, lane, &mut released);
        for pkt in released.drain(..) {
            self.enqueue_main(link_id, pkt);
        }
        self.release_scratch = released;
        if let Some(at) = next {
            self.queue.push(
                at,
                Event::ShaperRelease {
                    link: link_id.index() as u32,
                    lane: lane as u32,
                },
            );
        }
    }

    fn drop_packet(&mut self, link_id: LinkId, pkt: Packet) {
        self.segments_dropped += 1;
        // The truth recorder uses the (cached) current interval; the
        // measured loss is attributed to the interval the segment was
        // *sent* in, which lies in the past and needs the full division.
        let t = self.interval_now();
        self.truth.record_dropped(t, link_id, pkt.class);
        if let Some(path) = self.routes[pkt.route.index()].path {
            self.log.record_lost(self.interval_at(pkt.sent_at), path, 1);
        }
    }

    fn deliver(&mut self, pkt: Packet, arrive_at: SimTime) {
        self.segments_delivered += 1;
        if self.cfg.record_delay {
            if let Some(path) = self.routes[pkt.route.index()].path {
                // Attributed to the *send* interval, like sent/lost counts,
                // so the three grids describe the same packet population.
                let t = self.interval_at(pkt.sent_at);
                let n_paths = self.log.path_count();
                while self.delay_ns.len() <= t {
                    self.delay_ns.push(vec![Vec::new(); n_paths]);
                }
                self.delay_ns[t][path.index()].push((arrive_at - pkt.sent_at).nanos());
            }
        }
        let flow = &mut self.flows[pkt.flow.index()];
        let seq = pkt.seq as u64;
        if seq == flow.rcv_nxt {
            flow.rcv_nxt += 1;
            while flow.ooo.remove(flow.rcv_nxt) {
                flow.rcv_nxt += 1;
            }
            flow.ooo.compact(flow.rcv_nxt);
        } else if seq > flow.rcv_nxt {
            flow.ooo.insert(seq);
        }
        // Every data segment elicits one cumulative ACK, which reaches the
        // sender after the reverse propagation delay.
        let ackno = flow.rcv_nxt;
        debug_assert!(ackno <= u32::MAX as u64, "ackno exceeds u32 event field");
        let back_at = arrive_at + self.reverse_delay[pkt.route.index()];
        self.queue.push(
            back_at,
            Event::Ack {
                flow: pkt.flow,
                ackno: ackno as u32,
            },
        );
    }

    fn on_sample(&mut self) {
        let t = self.now.as_secs_f64();
        for (i, link) in self.links.iter().enumerate() {
            let occupancy = link.qbytes + link.diff.buffered_bytes();
            self.traces[i].push(t, occupancy);
        }
        let next = self.now + SimTime::from_secs_f64(self.cfg.sample_period_s);
        // Samples past the end would never be dispatched — don't queue them.
        if next <= self.end {
            self.queue.push(next, Event::Sample);
        }
    }

    // ------------------------------------------------------------------
    // Transport plane
    // ------------------------------------------------------------------

    fn on_flow_start(&mut self, slot: usize) {
        let cc = self.slots[slot].cc;
        let spec = self.slots[slot].spec.clone();
        let size_bytes = spec.size.sample(&mut self.rng, self.cfg.mss);
        let size_segments = size_bytes.div_ceil(self.cfg.mss as u64).max(1);
        assert!(
            size_segments <= u32::MAX as u64,
            "flow of {size_segments} segments overflows the u32 sequence space"
        );
        let flow_id = FlowId(self.flows.len() as u32);
        self.flows.push(FlowSim {
            route: spec.route,
            class: spec.class,
            size_segments,
            cc: CongestionControl::new(cc),
            rtt: RttEstimator::new(self.cfg.min_rto_s),
            snd_una: 0,
            snd_nxt: 0,
            dup_acks: 0,
            recover: 0,
            send_times: SendTimes::new(),
            rto_generation: 0,
            done: false,
            slot: Some(slot),
            rcv_nxt: 0,
            ooo: OooWindow::new(),
        });
        self.flow_try_send(flow_id);
        self.arm_rto(flow_id);
    }

    /// Sends as many new segments as the congestion window allows.
    fn flow_try_send(&mut self, f: FlowId) {
        loop {
            let flow = &self.flows[f.index()];
            if flow.done {
                return;
            }
            let window = flow.cc.cwnd().floor().max(1.0) as u64;
            if flow.snd_nxt >= flow.size_segments || flow.snd_nxt >= flow.snd_una + window {
                return;
            }
            let seq = flow.snd_nxt;
            self.flows[f.index()].snd_nxt += 1;
            self.transmit(f, seq, false);
        }
    }

    fn transmit(&mut self, f: FlowId, seq: u64, retx: bool) {
        self.segments_sent += 1;
        let (route, class) = {
            let flow = &self.flows[f.index()];
            (flow.route, flow.class)
        };
        if let Some(path) = self.routes[route.index()].path {
            let t = self.interval_now();
            self.log.record_sent(t, path, 1);
        }
        let pkt = Packet {
            sent_at: self.now,
            id: self.segments_sent as u32,
            seq: seq as u32,
            size: self.cfg.mss,
            flow: f,
            route,
            hop: 0,
            class,
            retx,
        };
        self.flows[f.index()].send_times.record(seq, self.now, retx);
        let h = self.slab.insert(pkt);
        self.queue.push(self.now, Event::Arrive(h));
    }

    fn arm_rto(&mut self, f: FlowId) {
        let flow = &mut self.flows[f.index()];
        flow.rto_generation += 1;
        let generation = flow.rto_generation;
        let at = self.now + SimTime::from_secs_f64(flow.rtt.rto());
        self.queue.push(
            at,
            Event::Rto {
                flow: f,
                generation,
            },
        );
    }

    fn on_ack(&mut self, f: FlowId, ackno: u64) {
        let now = self.now;
        let flow = &mut self.flows[f.index()];
        if flow.done {
            return;
        }
        if ackno > flow.snd_una {
            let newly = ackno - flow.snd_una;
            // RTT sample from the most recently acked, never-retransmitted
            // segment (Karn's rule).
            if let Some((sent_at, retx)) = flow.send_times.get(ackno - 1) {
                if !retx {
                    flow.rtt.on_sample((now - sent_at).as_secs_f64());
                }
            }
            // Discard timing state for acked segments — O(newly acked).
            flow.send_times.advance_to(ackno);
            flow.snd_una = ackno;
            flow.dup_acks = 0;
            if flow.cc.in_recovery() {
                if ackno > flow.recover {
                    flow.cc.exit_recovery();
                } else {
                    // Partial ACK: the next hole is lost too — retransmit it
                    // without leaving recovery (NewReno).
                    let hole = flow.snd_una;
                    self.transmit(f, hole, true);
                    self.after_ack(f);
                    return;
                }
            } else {
                let srtt = flow.rtt.srtt();
                flow.cc.on_new_ack(newly, now, srtt);
            }
            self.after_ack(f);
        } else if ackno == self.flows[f.index()].snd_una
            && self.flows[f.index()].snd_nxt > self.flows[f.index()].snd_una
        {
            // Duplicate ACK with outstanding data.
            let flow = &mut self.flows[f.index()];
            flow.dup_acks += 1;
            if flow.cc.in_recovery() {
                flow.cc.on_dupack_in_recovery();
                self.flow_try_send(f);
            } else if flow.dup_acks == 3 {
                flow.recover = flow.snd_nxt;
                let flight = (flow.snd_nxt - flow.snd_una) as f64;
                flow.cc.enter_fast_recovery(flight);
                let hole = flow.snd_una;
                self.transmit(f, hole, true);
                self.arm_rto(f);
            }
        }
    }

    /// Common post-ACK bookkeeping: completion, timer management, and
    /// sending whatever the window now allows.
    fn after_ack(&mut self, f: FlowId) {
        let done = {
            let flow = &self.flows[f.index()];
            flow.snd_una >= flow.size_segments
        };
        if done {
            let flow = &mut self.flows[f.index()];
            flow.done = true;
            flow.rto_generation += 1; // cancel pending timers
            self.completed_flows += 1;
            if let Some(slot) = flow.slot {
                let gap = self.slots[slot].spec.sample_gap(&mut self.rng);
                let at = self.now + SimTime::from_secs_f64(gap);
                self.queue.push(at, Event::FlowStart { slot: slot as u32 });
            }
            return;
        }
        self.arm_rto(f);
        self.flow_try_send(f);
    }

    fn on_rto(&mut self, f: FlowId, generation: u32) {
        let flow = &mut self.flows[f.index()];
        if flow.done || generation != flow.rto_generation {
            return; // stale timer
        }
        if flow.snd_una >= flow.snd_nxt {
            return; // nothing outstanding
        }
        let flight = (flow.snd_nxt - flow.snd_una) as f64;
        flow.rtt.on_timeout();
        flow.cc.on_timeout(flight);
        flow.dup_acks = 0;
        // Go-back-N restart: retransmit the first unacked segment; the rest
        // follow as the window reopens.
        flow.snd_nxt = flow.snd_una + 1;
        let hole = flow.snd_una;
        self.transmit(f, hole, true);
        self.arm_rto(f);
    }

    // ------------------------------------------------------------------
    // Introspection for tests
    // ------------------------------------------------------------------

    /// Number of registered traffic slots.
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// Simulation clock (for tests).
    pub fn now(&self) -> SimTime {
        self.now
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traffic::SizeDist;
    use nni_topology::PathId;

    /// Two links in series: host -> l0 -> l1 -> host, 10 Mb/s bottleneck.
    fn two_link_setup(rate_bps: f64) -> (Vec<LinkParams>, Vec<Route>) {
        let links = vec![
            LinkParams {
                rate_bps: 100e6,
                delay_s: 0.005,
                diff: Differentiation::None,
                queue_bytes: None,
            },
            LinkParams {
                rate_bps,
                delay_s: 0.005,
                diff: Differentiation::None,
                queue_bytes: None,
            },
        ];
        let routes = vec![Route {
            links: vec![LinkId(0), LinkId(1)],
            path: Some(PathId(0)),
        }];
        (links, routes)
    }

    fn quick_cfg(duration: f64) -> SimConfig {
        SimConfig {
            duration_s: duration,
            warmup_s: 0.0,
            ..SimConfig::default()
        }
    }

    #[test]
    fn interval_boundaries_agree_with_float_division() {
        // The cached boundary must match the float division exactly, even
        // for awkward interval widths with no exact binary representation.
        for &interval_s in &[0.1, 0.05, 0.25, 0.13, 1.0 / 3.0, 0.7, 2.0] {
            let idx = |ns: u64| ((ns as f64 / 1e9) / interval_s).floor() as u64;
            for i in 1..200u64 {
                let b = interval_boundary_ns(interval_s, i);
                assert!(idx(b) >= i, "boundary too early: {interval_s} {i}");
                assert!(idx(b - 1) < i, "boundary too late: {interval_s} {i}");
            }
        }
    }

    #[test]
    fn single_flow_completes_on_idle_network() {
        // Buffer large enough that slow start cannot overshoot it: a
        // 1000-segment flow then completes without a single loss.
        let (mut links, routes) = two_link_setup(10e6);
        links[1].queue_bytes = Some(10_000_000);
        let mut sim = Simulator::new(links, routes, 1, 1, quick_cfg(30.0));
        sim.add_traffic(TrafficSpec {
            route: RouteId(0),
            class: 0,
            cc: CcKind::NewReno.into(),
            size: SizeDist::Fixed { bytes: 1_500_000 }, // 1000 segments
            mean_gap_s: 1000.0,                         // effectively one flow
            parallel: 1,
        });
        let report = sim.run();
        assert!(report.completed_flows >= 1, "flow should finish in 30 s");
        assert_eq!(
            report.segments_dropped, 0,
            "no loss with an oversized buffer"
        );
        assert!(report.segments_delivered >= 1000);
    }

    #[test]
    fn slow_start_overshoot_recovers_and_completes() {
        // With a realistically sized (1 BDP) buffer, slow start overshoots,
        // loses packets, recovers, and the flow still completes.
        let (links, routes) = two_link_setup(10e6);
        let mut sim = Simulator::new(links, routes, 1, 1, quick_cfg(60.0));
        sim.add_traffic(TrafficSpec {
            route: RouteId(0),
            class: 0,
            cc: CcKind::NewReno.into(),
            size: SizeDist::Fixed { bytes: 3_000_000 }, // 2000 segments
            mean_gap_s: 1000.0,
            parallel: 1,
        });
        let report = sim.run();
        assert!(
            report.segments_dropped > 0,
            "slow start must overshoot 1 BDP"
        );
        assert!(
            report.completed_flows >= 1,
            "loss recovery must finish the flow"
        );
    }

    #[test]
    fn conservation_of_segments() {
        let (links, routes) = two_link_setup(5e6);
        let mut sim = Simulator::new(links, routes, 1, 1, quick_cfg(20.0));
        sim.add_traffic(TrafficSpec {
            route: RouteId(0),
            class: 0,
            cc: CcKind::Cubic.into(),
            size: SizeDist::ParetoMean {
                mean_bytes: 200_000.0,
                shape: 1.5,
            },
            mean_gap_s: 0.5,
            parallel: 3,
        });
        let report = sim.run();
        assert!(report.segments_sent > 0);
        assert_eq!(
            report.segments_sent,
            report.segments_delivered + report.segments_dropped + report.in_flight(),
            "segments must be delivered, dropped, or in flight"
        );
    }

    #[test]
    fn throughput_is_capped_by_bottleneck() {
        // One persistent flow over a 10 Mb/s bottleneck for 20 s can deliver
        // at most ~10 Mb/s * 20 s / (1500 * 8) ≈ 1667 segments.
        let (links, routes) = two_link_setup(10e6);
        let mut sim = Simulator::new(links, routes, 1, 1, quick_cfg(20.0));
        sim.add_traffic(TrafficSpec {
            route: RouteId(0),
            class: 0,
            cc: CcKind::Cubic.into(),
            size: SizeDist::Fixed {
                bytes: 1_000_000_000,
            },
            mean_gap_s: 10.0,
            parallel: 1,
        });
        let report = sim.run();
        let max_segments = (10e6 * 20.0 / (1500.0 * 8.0)) as u64;
        assert!(
            report.segments_delivered <= max_segments + 10,
            "delivered {} > line-rate bound {}",
            report.segments_delivered,
            max_segments
        );
        // And utilisation should be decent (> 50%) for a single long flow.
        assert!(
            report.segments_delivered > max_segments / 2,
            "delivered {} too low vs bound {}",
            report.segments_delivered,
            max_segments
        );
    }

    #[test]
    fn congestion_produces_loss_and_measurement() {
        // Two persistent flows into a small-buffered 5 Mb/s bottleneck must
        // overflow the queue.
        let (mut links, routes) = two_link_setup(5e6);
        links[1].queue_bytes = Some(30_000);
        let mut sim = Simulator::new(links, routes, 1, 1, quick_cfg(30.0));
        sim.add_traffic(TrafficSpec {
            route: RouteId(0),
            class: 0,
            cc: CcKind::NewReno.into(),
            size: SizeDist::Fixed {
                bytes: 1_000_000_000,
            },
            mean_gap_s: 10.0,
            parallel: 2,
        });
        let report = sim.run();
        assert!(report.segments_dropped > 0, "bottleneck must drop");
        let lost = report.log.total_lost(PathId(0));
        assert_eq!(lost, report.segments_dropped, "losses land in the path log");
        assert!(report.log.total_sent(PathId(0)) >= report.segments_sent);
        // Ground truth saw the drops on the bottleneck link.
        assert_eq!(
            report.link_truth.total_dropped(LinkId(1)),
            report.segments_dropped
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed: u64| {
            let (links, routes) = two_link_setup(8e6);
            let mut sim = Simulator::new(
                links,
                routes,
                1,
                1,
                SimConfig {
                    seed,
                    ..quick_cfg(10.0)
                },
            );
            sim.add_traffic(TrafficSpec {
                route: RouteId(0),
                class: 0,
                cc: CcKind::Cubic.into(),
                size: SizeDist::ParetoMean {
                    mean_bytes: 100_000.0,
                    shape: 1.5,
                },
                mean_gap_s: 0.2,
                parallel: 2,
            });
            let r = sim.run();
            (
                r.segments_sent,
                r.segments_delivered,
                r.segments_dropped,
                r.completed_flows,
            )
        };
        assert_eq!(run(7), run(7), "same seed, same outcome");
        assert_ne!(run(7), run(8), "different seed, different traffic");
    }

    #[test]
    fn delay_recording_is_pure_observation() {
        // Same seed with and without delay recording: identical counts and
        // counters (recording consumes no RNG and reorders no event), and
        // the recorded percentiles respect the propagation floor.
        let run = |record_delay: bool| {
            let (links, routes) = two_link_setup(8e6);
            let mut sim = Simulator::new(
                links,
                routes,
                1,
                1,
                SimConfig {
                    record_delay,
                    ..quick_cfg(10.0)
                },
            );
            sim.add_traffic(TrafficSpec {
                route: RouteId(0),
                class: 0,
                cc: CcKind::Cubic.into(),
                size: SizeDist::ParetoMean {
                    mean_bytes: 100_000.0,
                    shape: 1.5,
                },
                mean_gap_s: 0.2,
                parallel: 2,
            });
            sim.run()
        };
        let plain = run(false);
        let delayed = run(true);
        assert!(!plain.log.has_delay());
        assert!(delayed.log.has_delay());
        assert_eq!(plain.segments_sent, delayed.segments_sent);
        assert_eq!(plain.segments_delivered, delayed.segments_delivered);
        assert_eq!(plain.segments_dropped, delayed.segments_dropped);
        assert_eq!(plain.log.interval_count(), delayed.log.interval_count());
        let mut sampled = 0u64;
        for t in 0..plain.log.interval_count() {
            assert_eq!(plain.log.sent(t, PathId(0)), delayed.log.sent(t, PathId(0)));
            assert_eq!(plain.log.lost(t, PathId(0)), delayed.log.lost(t, PathId(0)));
            if let Some(s) = delayed.log.delay(t, PathId(0)) {
                sampled += s.count;
                // One-way delay ≥ 2 × 5 ms propagation, and the ranks are
                // ordered.
                assert!(s.p50_s >= 0.01, "p50 below propagation floor");
                assert!(s.p50_s <= s.p90_s && s.p90_s <= s.p99_s);
            }
        }
        assert_eq!(
            sampled, delayed.segments_delivered,
            "every delivered segment contributes one delay sample"
        );
        assert!(delayed.log.delay_baseline(PathId(0)).unwrap() >= 0.01);
    }

    #[test]
    fn policer_hits_only_target_class() {
        // Class 1 policed to 10% of the bottleneck; class 0 untouched.
        // Four parallel flows per class keep aggregate demand above the
        // token rate (a single policed CUBIC flow settles into an RTO
        // crawl *below* 5 Mb/s and rarely trips the policer at all).
        let links = vec![
            LinkParams {
                rate_bps: 100e6,
                delay_s: 0.002,
                diff: Differentiation::None,
                queue_bytes: None,
            },
            LinkParams {
                rate_bps: 50e6,
                delay_s: 0.002,
                diff: Differentiation::Policing {
                    class: 1,
                    rate_bps: 5e6,
                    burst_bytes: 15_000.0,
                },
                queue_bytes: None,
            },
        ];
        let routes = vec![
            Route {
                links: vec![LinkId(0), LinkId(1)],
                path: Some(PathId(0)),
            },
            Route {
                links: vec![LinkId(0), LinkId(1)],
                path: Some(PathId(1)),
            },
        ];
        let specs: Vec<TrafficSpec> = [(0u32, 0u8), (1, 1)]
            .map(|(route, class)| TrafficSpec {
                route: RouteId(route),
                class,
                cc: CcKind::Cubic.into(),
                size: SizeDist::Fixed {
                    bytes: 1_000_000_000,
                },
                mean_gap_s: 10.0,
                parallel: 4,
            })
            .into();
        // The PR 1 lesson, structurally enforced: the targeted class must
        // demand well over the token rate from several parallel slots, or
        // this test silently stops exercising the policer.
        for d in crate::scenario::policed_demand(&links, &routes, &specs) {
            assert!(
                d.demand_bps > 2.0 * d.rate_bps && d.feeding_slots >= 2,
                "traffic model starves the policer on {}: demand {:.0} b/s \
                 vs rate {:.0} b/s from {} slots",
                d.link,
                d.demand_bps,
                d.rate_bps,
                d.feeding_slots
            );
        }
        let mut sim = Simulator::new(links, routes, 2, 2, quick_cfg(30.0));
        for spec in specs {
            sim.add_traffic(spec);
        }
        let report = sim.run();
        let thr = 0.01;
        let p0 = report.link_truth.congestion_probability(LinkId(1), 0, thr);
        let p1 = report.link_truth.congestion_probability(LinkId(1), 1, thr);
        assert!(
            p1 > p0 + 0.2,
            "policed class must congest far more often: p0={p0:.3} p1={p1:.3}"
        );
        // The policed class still gets (roughly) its allotted rate.
        let delivered1 = report.log.total_sent(PathId(1)) - report.log.total_lost(PathId(1));
        let rate1 = delivered1 as f64 * 1500.0 * 8.0 / 30.0;
        assert!(
            rate1 < 8e6,
            "policed flow throughput {rate1:.0} must stay near 5 Mb/s"
        );
        // Even with per-flow cwnd collapse under the small-burst policer,
        // the aggregate must keep making progress rather than deadlock.
        assert!(
            rate1 > 2e5,
            "policed flows should still move data, got {rate1:.0} b/s"
        );
    }

    #[test]
    fn queue_traces_are_recorded() {
        let (links, routes) = two_link_setup(5e6);
        let mut sim = Simulator::new(links, routes, 1, 1, quick_cfg(10.0));
        sim.add_traffic(TrafficSpec {
            route: RouteId(0),
            class: 0,
            cc: CcKind::NewReno.into(),
            size: SizeDist::Fixed {
                bytes: 1_000_000_000,
            },
            mean_gap_s: 10.0,
            parallel: 1,
        });
        let report = sim.run();
        assert_eq!(report.queue_traces.len(), 2);
        assert!(!report.queue_traces[1].times_s.is_empty());
        // A saturated bottleneck shows queue build-up.
        assert!(report.queue_traces[1].max_bytes() > 0);
    }
}
