//! Hand-rolled binary codec for [`MeasurementSet`] — the on-disk corpus
//! format. No serde: the dependency tree is offline-vendored, so the format
//! is written out longhand and pinned by exhaustive round-trip tests plus a
//! committed golden corpus in CI.
//!
//! # Format (versions 1 and 2)
//!
//! ```text
//! magic     7 bytes  b"NNIMSET"
//! version   u8       1 (loss-only) or 2 (with one-way delay section)
//! sections  each:  tag u8, payload length u64 LE, payload bytes
//!   tag 1  PROVENANCE  scenario str, fingerprint u64, seed u64, build str
//!   tag 2  TOPOLOGY    nodes (kind u8, name str)…,
//!                      links (src vu, dst vu, capacity f64, delay f64, name str)…,
//!                      paths (name str, link ids vu…)…
//!   tag 3  CLASSES     per class: member path ids vu…
//!   tag 4  LOG         interval_s f64, n_paths vu, n_intervals vu,
//!                      per interval per path: sent vu, lost vu
//!   tag 5  DELAY       (v2 only) per interval per path:
//!                      present u8; when 1: count vu, p50 f64, p90 f64, p99 f64
//! trailer   tag 0xFF, then FNV-1a u64 LE over every preceding byte
//! ```
//!
//! Primitives: `u64`/`f64` little-endian (`f64` as its bit pattern, so
//! round trips are bit-identical); `vu` is LEB128 (7 bits per byte, high
//! bit = continue) — measurement counts are small, so logs compress well;
//! strings are `vu` length + UTF-8 bytes. All counts are length prefixes:
//! a reader can skip any section wholesale, and a truncated file fails
//! loudly with [`CodecError::UnexpectedEof`] instead of misparsing.
//!
//! Sections must appear in tag order exactly once each; the version byte is
//! the compatibility gate. [`encode`] emits version 1 — bit-identical to
//! every pre-delay build — unless the log carries a delay grid, in which
//! case it emits version 2 with the DELAY section (the grid dimensions are
//! implied by the LOG section, so the section is never ambiguous).
//! [`decode`] accepts both; [`decode_v1`] is the frozen v1-only reader and
//! rejects version 2 with [`CodecError::UnsupportedVersion`] — the typed
//! error a pre-delay reader would raise.

use crate::dataset::{Fnv, MeasurementSet, Provenance};
use crate::record::{DelayStats, MeasurementLog};
use crate::wire::{WireReader, WireWriter};
use nni_topology::{NodeKind, PathId, TopologyBuilder, TopologyError};

/// Magic prefix of every encoded set.
pub const MAGIC: &[u8; 7] = b"NNIMSET";

/// The original loss-only format version.
pub const VERSION_V1: u8 = 1;

/// The delay-carrying format version (adds the DELAY section).
pub const VERSION_V2: u8 = 2;

/// Newest format version this decoder understands.
pub const VERSION: u8 = VERSION_V2;

const TAG_PROVENANCE: u8 = 1;
const TAG_TOPOLOGY: u8 = 2;
const TAG_CLASSES: u8 = 3;
const TAG_LOG: u8 = 4;
const TAG_DELAY: u8 = 5;
const TAG_END: u8 = 0xFF;

/// Why a byte stream failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The stream ended mid-value.
    UnexpectedEof,
    /// The stream does not start with [`MAGIC`].
    BadMagic,
    /// The version byte is newer than this decoder.
    UnsupportedVersion(u8),
    /// A string payload is not UTF-8.
    BadUtf8,
    /// A value failed a structural check (context in the message).
    BadValue(&'static str),
    /// An unknown or out-of-order section tag.
    BadSection(u8),
    /// Bytes remain after the trailer.
    TrailingBytes,
    /// The trailing checksum does not match the content.
    ChecksumMismatch,
    /// The decoded topology failed re-validation.
    Topology(TopologyError),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::UnexpectedEof => write!(f, "unexpected end of stream"),
            CodecError::BadMagic => write!(f, "not a measurement-set stream (bad magic)"),
            CodecError::UnsupportedVersion(v) => write!(f, "unsupported format version {v}"),
            CodecError::BadUtf8 => write!(f, "string payload is not UTF-8"),
            CodecError::BadValue(what) => write!(f, "invalid value: {what}"),
            CodecError::BadSection(tag) => write!(f, "unknown or out-of-order section tag {tag}"),
            CodecError::TrailingBytes => write!(f, "trailing bytes after the end marker"),
            CodecError::ChecksumMismatch => write!(f, "checksum mismatch (corrupted stream)"),
            CodecError::Topology(e) => write!(f, "decoded topology failed validation: {e}"),
        }
    }
}

impl std::error::Error for CodecError {}

impl From<TopologyError> for CodecError {
    fn from(e: TopologyError) -> CodecError {
        CodecError::Topology(e)
    }
}

// ---------------------------------------------------------------- writing

/// Writes a section: tag, payload length, payload — the byte primitives
/// themselves live in [`crate::wire`], shared with every codec in the tree.
fn section(out: &mut WireWriter, tag: u8, payload: impl FnOnce(&mut WireWriter)) {
    let mut w = WireWriter::new();
    payload(&mut w);
    out.u8(tag);
    out.u64(w.bytes().len() as u64);
    out.raw(w.bytes());
}

/// Encodes a measurement set into the versioned binary format: version 1
/// when the log is loss-only (bit-identical to pre-delay builds), version 2
/// when it carries a delay grid.
pub fn encode(set: &MeasurementSet) -> Vec<u8> {
    let mut w = WireWriter::new();
    w.raw(MAGIC);
    w.u8(if set.log.has_delay() {
        VERSION_V2
    } else {
        VERSION_V1
    });
    section(&mut w, TAG_PROVENANCE, |w| {
        w.str(&set.provenance.scenario);
        w.u64(set.provenance.scenario_fingerprint);
        w.u64(set.provenance.seed);
        w.str(&set.provenance.build);
    });
    section(&mut w, TAG_TOPOLOGY, |w| {
        let g = &set.topology;
        w.vu(g.nodes().len() as u64);
        for n in g.nodes() {
            w.u8(matches!(n.kind, NodeKind::Relay) as u8);
            w.str(&n.name);
        }
        w.vu(g.link_count() as u64);
        for l in g.links() {
            w.vu(l.src.index() as u64);
            w.vu(l.dst.index() as u64);
            w.f64(l.capacity_bps);
            w.f64(l.delay_s);
            w.str(&l.name);
        }
        w.vu(g.path_count() as u64);
        for p in g.paths() {
            w.str(p.name());
            w.vu(p.len() as u64);
            for l in p.links() {
                w.vu(l.index() as u64);
            }
        }
    });
    section(&mut w, TAG_CLASSES, |w| {
        w.vu(set.classes.len() as u64);
        for class in &set.classes {
            w.vu(class.len() as u64);
            for p in class {
                w.vu(p.index() as u64);
            }
        }
    });
    section(&mut w, TAG_LOG, |w| {
        let log = &set.log;
        w.f64(log.interval_s());
        w.vu(log.path_count() as u64);
        w.vu(log.interval_count() as u64);
        for t in 0..log.interval_count() {
            for p in 0..log.path_count() {
                w.vu(log.sent(t, PathId(p)));
                w.vu(log.lost(t, PathId(p)));
            }
        }
    });
    if set.log.has_delay() {
        section(&mut w, TAG_DELAY, |w| {
            let log = &set.log;
            for t in 0..log.interval_count() {
                for p in 0..log.path_count() {
                    match log.delay(t, PathId(p)) {
                        Some(stats) => {
                            w.u8(1);
                            w.vu(stats.count);
                            w.f64(stats.p50_s);
                            w.f64(stats.p90_s);
                            w.f64(stats.p99_s);
                        }
                        None => w.u8(0),
                    }
                }
            }
        });
    }
    w.u8(TAG_END);
    let mut h = Fnv::new();
    for &b in w.bytes() {
        h.byte(b);
    }
    let checksum = h.0;
    w.u64(checksum);
    w.into_bytes()
}

// ---------------------------------------------------------------- reading

/// Decodes a measurement set (either format version), verifying the
/// checksum and re-validating the topology through [`TopologyBuilder`].
pub fn decode(bytes: &[u8]) -> Result<MeasurementSet, CodecError> {
    let provenance = decode_prefix(bytes)?;
    // decode_prefix validated magic + version, so the version byte sits
    // right after the magic.
    let version = bytes[MAGIC.len()];
    let mut r = WireReader::at(bytes, provenance.1);

    // TOPOLOGY.
    expect_section(&mut r, TAG_TOPOLOGY)?;
    let mut b = TopologyBuilder::new();
    let n_nodes = r.len()?;
    for _ in 0..n_nodes {
        let kind = r.u8()?;
        let name = r.str()?;
        match kind {
            0 => b.host(&name),
            1 => b.relay(&name),
            _ => return Err(CodecError::BadValue("node kind")),
        };
    }
    let n_links = r.len()?;
    for _ in 0..n_links {
        let src = r.vu()? as usize;
        let dst = r.vu()? as usize;
        let capacity = r.f64()?;
        let delay = r.f64()?;
        let name = r.str()?;
        b.link_with(
            &name,
            nni_topology::NodeId(src),
            nni_topology::NodeId(dst),
            capacity,
            delay,
        )?;
    }
    let n_paths = r.len()?;
    for _ in 0..n_paths {
        let name = r.str()?;
        let n = r.len()?;
        let mut links = Vec::with_capacity(n);
        for _ in 0..n {
            links.push(nni_topology::LinkId(r.vu()? as usize));
        }
        b.path(&name, links)?;
    }
    let topology = b.build();

    // CLASSES.
    expect_section(&mut r, TAG_CLASSES)?;
    let n_classes = r.len()?;
    let mut classes = Vec::with_capacity(n_classes);
    for _ in 0..n_classes {
        let n = r.len()?;
        let mut class = Vec::with_capacity(n);
        for _ in 0..n {
            let p = r.vu()? as usize;
            if p >= topology.path_count() {
                return Err(CodecError::BadValue("class member path id"));
            }
            class.push(PathId(p));
        }
        classes.push(class);
    }

    // LOG.
    expect_section(&mut r, TAG_LOG)?;
    let interval_s = r.f64()?;
    if interval_s.is_nan() || interval_s <= 0.0 {
        return Err(CodecError::BadValue("non-positive interval"));
    }
    let n_paths = r.len()?;
    if n_paths == 0 {
        return Err(CodecError::BadValue("log with zero paths"));
    }
    // Structural consistency across sections: inference indexes the log by
    // the topology's path ids, so a width mismatch must be a decode error,
    // not a later panic. (The checksum only detects corruption — a
    // self-consistent but inconsistent stream passes it.)
    if n_paths != topology.path_count() {
        return Err(CodecError::BadValue("log path count != topology paths"));
    }
    let n_intervals = r.len()?;
    let mut log = MeasurementLog::new(n_paths, interval_s);
    for t in 0..n_intervals {
        for p in 0..n_paths {
            let sent = r.vu()?;
            let lost = r.vu()?;
            // Zero-count records still materialize the interval, so
            // trailing all-idle intervals survive the round trip.
            log.record_sent(t, PathId(p), sent);
            log.record_lost(t, PathId(p), lost);
        }
    }

    // DELAY (v2 only): the grid's dimensions are the LOG section's.
    if version == VERSION_V2 {
        expect_section(&mut r, TAG_DELAY)?;
        let mut rows = Vec::with_capacity(n_intervals);
        for _ in 0..n_intervals {
            let mut row = Vec::with_capacity(n_paths);
            for _ in 0..n_paths {
                row.push(match r.u8()? {
                    0 => None,
                    1 => {
                        let count = r.vu()?;
                        if count == 0 {
                            return Err(CodecError::BadValue("delay cell with zero samples"));
                        }
                        let p50_s = r.f64()?;
                        let p90_s = r.f64()?;
                        let p99_s = r.f64()?;
                        Some(DelayStats {
                            count,
                            p50_s,
                            p90_s,
                            p99_s,
                        })
                    }
                    _ => return Err(CodecError::BadValue("delay cell presence flag")),
                });
            }
            rows.push(row);
        }
        log.set_delay(rows);
    }

    // Trailer: end marker, then the checksum over everything before it.
    if r.u8()? != TAG_END {
        return Err(CodecError::BadValue("missing end marker"));
    }
    let mut h = Fnv::new();
    for &byte in &bytes[..r.pos()] {
        h.byte(byte);
    }
    let expect = h.0;
    if r.u64()? != expect {
        return Err(CodecError::ChecksumMismatch);
    }
    if !r.is_empty() {
        return Err(CodecError::TrailingBytes);
    }

    Ok(MeasurementSet {
        topology,
        classes,
        log,
        provenance: provenance.0,
    })
}

/// Decodes a measurement set through the **frozen version-1 reader**: the
/// exact compatibility surface of a pre-delay build. A version-2 stream is
/// rejected with [`CodecError::UnsupportedVersion`]`(2)` — the typed error
/// old readers raise on new corpora — instead of being silently truncated
/// to its loss half.
pub fn decode_v1(bytes: &[u8]) -> Result<MeasurementSet, CodecError> {
    let mut r = WireReader::new(bytes);
    if r.take(MAGIC.len())? != MAGIC {
        return Err(CodecError::BadMagic);
    }
    let version = r.u8()?;
    if version != VERSION_V1 {
        return Err(CodecError::UnsupportedVersion(version));
    }
    decode(bytes)
}

/// Decodes only the header and provenance section — how a corpus lists its
/// entries' [`SetKey`](crate::SetKey)s without paying for full decodes.
/// Returns the provenance and the stream offset of the next section.
pub fn decode_prefix(bytes: &[u8]) -> Result<(Provenance, usize), CodecError> {
    let mut r = WireReader::new(bytes);
    if r.take(MAGIC.len())? != MAGIC {
        return Err(CodecError::BadMagic);
    }
    let version = r.u8()?;
    if version != VERSION_V1 && version != VERSION_V2 {
        return Err(CodecError::UnsupportedVersion(version));
    }
    expect_section(&mut r, TAG_PROVENANCE)?;
    let scenario = r.str()?;
    let scenario_fingerprint = r.u64()?;
    let seed = r.u64()?;
    let build = r.str()?;
    Ok((
        Provenance {
            scenario,
            scenario_fingerprint,
            seed,
            build,
        },
        r.pos(),
    ))
}

/// Reads a section header, checking the tag; the payload length is
/// validated against the remaining bytes (decoding then proceeds through
/// the typed readers, which re-check every primitive).
fn expect_section(r: &mut WireReader<'_>, tag: u8) -> Result<(), CodecError> {
    let got = r.u8()?;
    if got != tag {
        return Err(CodecError::BadSection(got));
    }
    let len = r.u64()?;
    if len > r.remaining() as u64 {
        return Err(CodecError::UnexpectedEof);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Provenance;
    use nni_topology::TopologyBuilder;

    fn sample() -> MeasurementSet {
        let mut b = TopologyBuilder::new();
        let h0 = b.host("h0");
        let h1 = b.host("h1");
        let r0 = b.relay("r0");
        let l0 = b.link_with("l0", h0, r0, 100e6, 0.005).unwrap();
        let l1 = b.link_with("l1", r0, h1, 50e6, 0.1).unwrap();
        b.path("p0", vec![l0, l1]).unwrap();
        let mut log = MeasurementLog::new(1, 0.1);
        log.record_sent(0, PathId(0), 1234);
        log.record_lost(0, PathId(0), 7);
        log.record_sent(3, PathId(0), u64::MAX); // varint edge
        MeasurementSet {
            topology: b.build(),
            classes: vec![vec![PathId(0)], vec![]],
            log,
            provenance: Provenance {
                scenario: "sample scenario ⟨l1⟩".into(),
                scenario_fingerprint: 0xDEAD_BEEF_CAFE_F00D,
                seed: u64::MAX,
                build: "nni-emu test".into(),
            },
        }
    }

    fn sample_with_delay() -> MeasurementSet {
        let mut set = sample();
        let n = set.log.interval_count();
        let mut rows = vec![vec![None; 1]; n];
        rows[0][0] = crate::record::DelayStats::from_sorted_ns(&[5_000_000, 9_000_000]);
        rows[3][0] = crate::record::DelayStats::from_sorted_ns(&[1_250_000_000]);
        set.log.set_delay(rows);
        set
    }

    #[test]
    fn round_trip_is_bit_identical() {
        let set = sample();
        let bytes = encode(&set);
        let back = decode(&bytes).expect("decodes");
        assert_eq!(set, back);
        assert_eq!(set.fingerprint(), back.fingerprint());
    }

    #[test]
    fn loss_only_sets_still_encode_as_version_1() {
        // The pre-delay compatibility surface: a loss-only set's bytes are
        // version 1 and the frozen v1 reader accepts them.
        let set = sample();
        let bytes = encode(&set);
        assert_eq!(bytes[MAGIC.len()], VERSION_V1);
        assert_eq!(decode_v1(&bytes).expect("v1 reader decodes"), set);
    }

    #[test]
    fn delay_sets_round_trip_as_version_2() {
        let set = sample_with_delay();
        let bytes = encode(&set);
        assert_eq!(bytes[MAGIC.len()], VERSION_V2);
        let back = decode(&bytes).expect("decodes");
        assert_eq!(set, back);
        assert!(back.log.has_delay());
        assert_eq!(back.log.delay(0, PathId(0)).unwrap().count, 2);
        assert_eq!(back.log.delay(3, PathId(0)).unwrap().p99_s, 1.25);
        assert_eq!(back.log.delay(1, PathId(0)), None);
    }

    #[test]
    fn v1_reader_rejects_v2_streams_with_typed_version_error() {
        let bytes = encode(&sample_with_delay());
        assert_eq!(
            decode_v1(&bytes).unwrap_err(),
            CodecError::UnsupportedVersion(VERSION_V2)
        );
        // The prefix reader (corpus listing) accepts both versions.
        assert!(decode_prefix(&bytes).is_ok());
    }

    #[test]
    fn delay_section_is_validated() {
        // A present cell claiming zero samples is structurally impossible
        // (DelayStats::from_sorted_ns never yields one) — the decoder
        // rejects it with a typed error instead of admitting it.
        let mut poisoned = sample_with_delay();
        let mut rows = vec![vec![None; 1]; poisoned.log.interval_count()];
        rows[0][0] = Some(crate::record::DelayStats {
            count: 0,
            p50_s: 0.0,
            p90_s: 0.0,
            p99_s: 0.0,
        });
        poisoned.log.set_delay(rows);
        assert_eq!(
            decode(&encode(&poisoned)).unwrap_err(),
            CodecError::BadValue("delay cell with zero samples")
        );
    }

    #[test]
    fn prefix_reads_provenance_without_full_decode() {
        let set = sample();
        let bytes = encode(&set);
        let (prov, offset) = decode_prefix(&bytes).expect("prefix decodes");
        assert_eq!(prov, set.provenance);
        assert!(offset < bytes.len());
    }

    #[test]
    fn corruption_is_detected() {
        let set = sample();
        let bytes = encode(&set);
        // Bad magic.
        let mut b = bytes.clone();
        b[0] ^= 0xFF;
        assert_eq!(decode(&b).unwrap_err(), CodecError::BadMagic);
        // Future version.
        let mut b = bytes.clone();
        b[7] = 99;
        assert_eq!(decode(&b).unwrap_err(), CodecError::UnsupportedVersion(99));
        // Truncation anywhere fails loudly.
        for cut in [9, bytes.len() / 2, bytes.len() - 1] {
            assert!(decode(&bytes[..cut]).is_err(), "truncated at {cut}");
        }
        // A flipped payload byte trips the checksum (or a typed check).
        let mut b = bytes.clone();
        let mid = b.len() / 2;
        b[mid] ^= 0x01;
        assert!(decode(&b).is_err());
        // Trailing garbage is rejected.
        let mut b = bytes.clone();
        b.push(0);
        assert_eq!(decode(&b).unwrap_err(), CodecError::TrailingBytes);
    }

    #[test]
    fn rejects_log_width_inconsistent_with_topology() {
        // A structurally inconsistent stream (self-consistent checksum,
        // log wider than the topology's path set) must be a decode error,
        // not a later out-of-bounds panic inside inference.
        let mut set = sample();
        set.log = MeasurementLog::new(3, 0.1);
        let err = decode(&encode(&set)).unwrap_err();
        assert_eq!(
            err,
            CodecError::BadValue("log path count != topology paths")
        );
    }

    #[test]
    fn varints_cover_the_u64_range() {
        let mut w = WireWriter::new();
        let values = [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX];
        for &v in &values {
            w.vu(v);
        }
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        for &v in &values {
            assert_eq!(r.vu().unwrap(), v);
        }
        assert!(r.is_empty());
    }
}
