//! Streaming measurement state: interval-at-a-time acquisition
//! ([`StreamingLog`]) and the incremental half of Algorithm 2
//! ([`SlidingCounts`]).
//!
//! The batch pipeline recomputes every per-interval indicator each time it
//! infers; over a growing log of `T` intervals that is `O(T²)` indicator
//! work. Streaming exploits two determinisms instead:
//!
//! * the discounting draw is seeded per `(seed, interval, path)` — a closed
//!   interval's indicator column never changes as later intervals arrive
//!   (see [`interval_indicators`]);
//! * the performance number is a pure function of two *integers* — the
//!   congestion-free and informative interval counts
//!   ([`perf_from_counts`]).
//!
//! So [`SlidingCounts`] folds each closed interval into per-pathset integer
//! counters exactly once, and every verdict derived from those counters is
//! bit-identical to batch inference over the same closed prefix. An
//! optional sliding window bounds the counters to the last `W` intervals by
//! remembering one 2-bit outcome per interval per pathset.

use std::collections::{HashMap, VecDeque};

use crate::normalize::{interval_indicators, perf_from_counts, NormalizeConfig};
use crate::record::MeasurementLog;
use nni_topology::{PathId, PathSet};

/// Why a streaming append was refused.
#[derive(Debug, Clone, PartialEq)]
pub enum StreamError {
    /// A record landed in an interval that was already closed — its
    /// indicator column has been consumed, so the count must not change.
    IntervalClosed {
        /// The offending interval.
        t: usize,
        /// Number of closed intervals (everything below is frozen).
        closed: usize,
    },
    /// An appended interval row had the wrong number of paths.
    PathCountMismatch {
        /// The log's path count.
        ours: usize,
        /// The row's length.
        theirs: usize,
    },
}

impl std::fmt::Display for StreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamError::IntervalClosed { t, closed } => {
                write!(f, "interval {t} is closed (watermark {closed})")
            }
            StreamError::PathCountMismatch { ours, theirs } => {
                write!(f, "path count mismatch: log has {ours}, row has {theirs}")
            }
        }
    }
}

impl std::error::Error for StreamError {}

/// A [`MeasurementLog`] with a close watermark: intervals below `closed()`
/// are frozen (their Algorithm 2 columns may have been consumed), intervals
/// at or above it still accumulate records.
///
/// Producers either record timestamped packets into open intervals
/// ([`record_sent_at`](StreamingLog::record_sent_at)) and close them as the
/// clock passes their boundary ([`close_through`](StreamingLog::close_through)),
/// or append whole pre-closed interval rows
/// ([`append_interval`](StreamingLog::append_interval)) — the shape a
/// segment tail delivers.
#[derive(Debug, Clone)]
pub struct StreamingLog {
    log: MeasurementLog,
    closed: usize,
}

impl StreamingLog {
    /// An empty streaming log (no intervals, watermark zero).
    pub fn new(n_paths: usize, interval_s: f64) -> StreamingLog {
        StreamingLog {
            log: MeasurementLog::new(n_paths, interval_s),
            closed: 0,
        }
    }

    /// Wraps an existing log with everything it currently holds open.
    pub fn from_log(log: MeasurementLog) -> StreamingLog {
        StreamingLog { log, closed: 0 }
    }

    /// The underlying log. Consumers must only trust intervals below
    /// [`closed`](StreamingLog::closed).
    pub fn log(&self) -> &MeasurementLog {
        &self.log
    }

    /// Unwraps into the underlying log.
    pub fn into_log(self) -> MeasurementLog {
        self.log
    }

    /// Number of closed (frozen) intervals.
    pub fn closed(&self) -> usize {
        self.closed
    }

    /// Records `n` packets sent on `path` at time `time_s`, binning with
    /// the shared [`crate::interval`] rule. Refused once the interval is
    /// closed.
    pub fn record_sent_at(&mut self, time_s: f64, path: PathId, n: u64) -> Result<(), StreamError> {
        let t = self.log.interval_of(time_s);
        self.check_open(t)?;
        self.log.record_sent(t, path, n);
        Ok(())
    }

    /// Records `n` lost packets on `path` at time `time_s`.
    pub fn record_lost_at(&mut self, time_s: f64, path: PathId, n: u64) -> Result<(), StreamError> {
        let t = self.log.interval_of(time_s);
        self.check_open(t)?;
        self.log.record_lost(t, path, n);
        Ok(())
    }

    /// Appends one already-closed interval: `sent[p]` / `lost[p]` per path.
    /// The row lands immediately below the watermark; any open records in
    /// that interval slot must not exist (the slot is created by the
    /// append). Returns the interval index.
    pub fn append_interval(&mut self, sent: &[u64], lost: &[u64]) -> Result<usize, StreamError> {
        let n = self.log.path_count();
        if sent.len() != n || lost.len() != n {
            return Err(StreamError::PathCountMismatch {
                ours: n,
                theirs: if sent.len() != n {
                    sent.len()
                } else {
                    lost.len()
                },
            });
        }
        let t = self.closed;
        for (p, (&s, &l)) in sent.iter().zip(lost).enumerate() {
            if s > 0 {
                self.log.record_sent(t, PathId(p), s);
            }
            if l > 0 {
                self.log.record_lost(t, PathId(p), l);
            }
        }
        // An all-zero row must still materialize the interval slot.
        if self.log.interval_count() <= t {
            self.log.record_sent(t, PathId(0), 0);
        }
        self.closed = t + 1;
        Ok(t)
    }

    /// Closes every interval strictly before the one containing `time_s`
    /// (a packet stamped `time_s` proves those intervals are over). Returns
    /// how many intervals were newly closed.
    pub fn close_through(&mut self, time_s: f64) -> usize {
        let boundary = self.log.interval_of(time_s);
        if boundary <= self.closed {
            return 0;
        }
        // Materialize silent intervals so consumers can read them.
        if self.log.interval_count() < boundary {
            self.log.record_sent(boundary - 1, PathId(0), 0);
        }
        let newly = boundary - self.closed;
        self.closed = boundary;
        newly
    }

    /// Closes everything currently recorded (end of stream).
    pub fn close_all(&mut self) -> usize {
        let newly = self.log.interval_count().saturating_sub(self.closed);
        self.closed = self.log.interval_count();
        newly
    }

    fn check_open(&self, t: usize) -> Result<(), StreamError> {
        if t < self.closed {
            return Err(StreamError::IntervalClosed {
                t,
                closed: self.closed,
            });
        }
        Ok(())
    }
}

/// Opaque handle to a registered pathset (group index + set index).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PathsetHandle {
    group: usize,
    set: usize,
}

/// Per-interval outcome of a pathset, packed for the window ring.
const OUT_UNINFORMATIVE: u8 = 0;
const OUT_CONGESTED: u8 = 1;
const OUT_CF: u8 = 2;

#[derive(Debug, Clone)]
struct SetState {
    /// Member rows into the group's (sorted, deduplicated) path list.
    rows: Vec<usize>,
    cf: usize,
    informative: usize,
    /// Per-interval outcomes, kept only in windowed mode (eviction needs
    /// to know what each expiring interval contributed).
    history: VecDeque<u8>,
}

#[derive(Debug, Clone)]
struct GroupState {
    /// Sorted, deduplicated — the same canonical key
    /// `MeasuredObservations` caches under, so the discounting draws match.
    paths: Vec<PathId>,
    sets: Vec<SetState>,
}

/// The incremental half of Algorithm 2: per-pathset congestion-free and
/// informative interval counters, folded forward one closed interval at a
/// time.
///
/// Register every normalization group and pathset the caller will query,
/// then [`advance`](SlidingCounts::advance) over closed intervals as they
/// arrive; [`perf`](SlidingCounts::perf) is at all times exactly
/// [`perf_from_counts`] of the accumulated integers — bit-identical to a
/// batch pass over the same prefix (unwindowed), or over the last `W`
/// intervals (windowed).
#[derive(Debug, Clone)]
pub struct SlidingCounts {
    cfg: NormalizeConfig,
    window: Option<usize>,
    groups: Vec<GroupState>,
    index: HashMap<Vec<PathId>, usize>,
    consumed: usize,
}

impl SlidingCounts {
    /// Unwindowed counts: counters cover every consumed interval, so the
    /// derived verdict equals batch inference over the full closed prefix.
    pub fn new(cfg: NormalizeConfig) -> SlidingCounts {
        SlidingCounts {
            cfg,
            window: None,
            groups: Vec::new(),
            index: HashMap::new(),
            consumed: 0,
        }
    }

    /// Sliding-window counts over the last `window` intervals.
    pub fn with_window(cfg: NormalizeConfig, window: usize) -> SlidingCounts {
        assert!(window > 0, "window must be non-empty");
        SlidingCounts {
            window: Some(window),
            ..SlidingCounts::new(cfg)
        }
    }

    /// The active window, if any.
    pub fn window(&self) -> Option<usize> {
        self.window
    }

    /// Intervals consumed so far.
    pub fn consumed(&self) -> usize {
        self.consumed
    }

    /// Registers a normalization group (deduplicated by canonical path
    /// list) and returns its id for pathset registration.
    pub fn register_group(&mut self, group: &[PathId]) -> usize {
        let mut paths = group.to_vec();
        paths.sort();
        paths.dedup();
        if let Some(&id) = self.index.get(&paths) {
            return id;
        }
        assert_eq!(self.consumed, 0, "register groups before advancing");
        let id = self.groups.len();
        self.index.insert(paths.clone(), id);
        self.groups.push(GroupState {
            paths,
            sets: Vec::new(),
        });
        id
    }

    /// Registers a pathset under a group; all members must belong to the
    /// group.
    pub fn register_pathset(&mut self, group: usize, pathset: &PathSet) -> PathsetHandle {
        assert_eq!(self.consumed, 0, "register pathsets before advancing");
        let g = &mut self.groups[group];
        let rows: Vec<usize> = pathset
            .paths()
            .iter()
            .map(|p| {
                g.paths
                    .binary_search(p)
                    .expect("pathset members must belong to the normalization group")
            })
            .collect();
        assert!(!rows.is_empty(), "pathsets are non-empty");
        let set = g.sets.len();
        g.sets.push(SetState {
            rows,
            cf: 0,
            informative: 0,
            history: VecDeque::new(),
        });
        PathsetHandle { group, set }
    }

    /// Folds closed intervals `consumed..through` of `log` into the
    /// counters. Each interval is evaluated once per registered group —
    /// the incremental work unit the speedup gate counts.
    pub fn advance(&mut self, log: &MeasurementLog, through: usize) {
        assert!(
            through <= log.interval_count(),
            "cannot advance past the recorded log"
        );
        assert!(through >= self.consumed, "the closed prefix only grows");
        for t in self.consumed..through {
            for g in &mut self.groups {
                let col = interval_indicators(log, &g.paths, t, self.cfg);
                for s in &mut g.sets {
                    let states: Option<Vec<bool>> = s.rows.iter().map(|&r| col[r]).collect();
                    let outcome = match states {
                        None => OUT_UNINFORMATIVE,
                        Some(v) if v.iter().all(|&b| b) => OUT_CF,
                        Some(_) => OUT_CONGESTED,
                    };
                    s.apply(outcome);
                    if let Some(w) = self.window {
                        s.history.push_back(outcome);
                        while s.history.len() > w {
                            let old = s.history.pop_front().expect("non-empty history");
                            s.retract(old);
                        }
                    }
                }
            }
        }
        self.consumed = through;
    }

    /// Congestion-free / informative counts of a pathset (over the window,
    /// or everything consumed).
    pub fn counts(&self, h: PathsetHandle) -> (usize, usize) {
        let s = &self.groups[h.group].sets[h.set];
        (s.cf, s.informative)
    }

    /// The performance number `y = -ln P(congestion-free)` of a pathset —
    /// exactly [`perf_from_counts`] over [`counts`](SlidingCounts::counts).
    pub fn perf(&self, h: PathsetHandle) -> f64 {
        let (cf, informative) = self.counts(h);
        perf_from_counts(cf, informative)
    }

    /// Forgets every consumed interval but keeps the registered structure —
    /// the exact-fallback reset used when a multi-vantage merge rewrites
    /// history (merged counts in frozen intervals changed, so the stream
    /// re-advances from zero over the merged log).
    pub fn rebase(&mut self) {
        self.consumed = 0;
        for g in &mut self.groups {
            for s in &mut g.sets {
                s.cf = 0;
                s.informative = 0;
                s.history.clear();
            }
        }
    }
}

impl SetState {
    fn apply(&mut self, outcome: u8) {
        if outcome != OUT_UNINFORMATIVE {
            self.informative += 1;
        }
        if outcome == OUT_CF {
            self.cf += 1;
        }
    }

    fn retract(&mut self, outcome: u8) {
        if outcome != OUT_UNINFORMATIVE {
            self.informative -= 1;
        }
        if outcome == OUT_CF {
            self.cf -= 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::normalize::{group_indicators, pathset_cf_counts};

    fn lossy_log(t_max: usize) -> MeasurementLog {
        let mut log = MeasurementLog::new(3, 0.1);
        for t in 0..t_max {
            for p in 0..3 {
                if p == 2 && t % 7 == 3 {
                    // Starved path: uninformative interval for any group
                    // containing it.
                    continue;
                }
                log.record_sent(t, PathId(p), 200 + 50 * p as u64);
                log.record_lost(t, PathId(p), ((t * (p + 2)) % 9) as u64);
            }
            if t % 5 == 0 {
                log.record_lost(t, PathId(0), 40);
                log.record_lost(t, PathId(1), 40);
            }
        }
        // A trailing fully silent interval.
        log.record_sent(t_max, PathId(0), 0);
        log
    }

    #[test]
    fn incremental_counts_match_batch() {
        let log = lossy_log(40);
        let cfg = NormalizeConfig::default();
        let group = [PathId(0), PathId(1), PathId(2)];
        let sets = [
            PathSet::single(PathId(0)),
            PathSet::pair(PathId(0), PathId(1)),
            PathSet::new(vec![PathId(0), PathId(1), PathId(2)]),
        ];

        let mut inc = SlidingCounts::new(cfg);
        let gid = inc.register_group(&group);
        let handles: Vec<PathsetHandle> =
            sets.iter().map(|s| inc.register_pathset(gid, s)).collect();

        let batch_ind = group_indicators(&log, &group, cfg);
        // Advance one interval at a time; at every prefix the counts match
        // a batch recount of that prefix.
        for through in 0..=log.interval_count() {
            inc.advance(&log, through);
            for (set, &h) in sets.iter().zip(&handles) {
                let rows: Vec<usize> = set.paths().iter().map(|p| p.index()).collect();
                let truncated: Vec<Vec<Option<bool>>> = batch_ind
                    .iter()
                    .map(|row| row[..through].to_vec())
                    .collect();
                let want = pathset_cf_counts(&truncated, &rows);
                assert_eq!(inc.counts(h), want, "prefix {through}");
                assert_eq!(inc.perf(h), perf_from_counts(want.0, want.1));
            }
        }
    }

    #[test]
    fn windowed_counts_cover_last_w_intervals() {
        let log = lossy_log(50);
        let cfg = NormalizeConfig::default();
        let group = [PathId(0), PathId(1)];
        let w = 12;
        let mut inc = SlidingCounts::with_window(cfg, w);
        let gid = inc.register_group(&group);
        let h = inc.register_pathset(gid, &PathSet::pair(PathId(0), PathId(1)));
        let ind = group_indicators(&log, &group, cfg);
        for through in 1..=log.interval_count() {
            inc.advance(&log, through);
            let lo = through.saturating_sub(w);
            let windowed: Vec<Vec<Option<bool>>> =
                ind.iter().map(|row| row[lo..through].to_vec()).collect();
            let want = pathset_cf_counts(&windowed, &[0, 1]);
            assert_eq!(inc.counts(h), want, "window ending at {through}");
        }
    }

    #[test]
    fn rebase_replays_merged_history() {
        let mut a = lossy_log(30);
        let mut b = MeasurementLog::new(3, 0.1);
        for t in 0..30 {
            b.record_sent(t, PathId(1), 90);
            b.record_lost(t, PathId(1), (t % 4) as u64);
        }
        let cfg = NormalizeConfig::default();
        let group = [PathId(0), PathId(1), PathId(2)];
        let mut inc = SlidingCounts::new(cfg);
        let gid = inc.register_group(&group);
        let h = inc.register_pathset(gid, &PathSet::single(PathId(1)));
        inc.advance(&a, a.interval_count());

        // Second vantage arrives: merged history invalidates the counters.
        a.merge(&b).unwrap();
        inc.rebase();
        inc.advance(&a, a.interval_count());

        let ind = group_indicators(&a, &group, cfg);
        let want = pathset_cf_counts(&ind, &[1]);
        assert_eq!(inc.counts(h), want);
    }

    #[test]
    fn group_registration_deduplicates() {
        let mut inc = SlidingCounts::new(NormalizeConfig::default());
        let a = inc.register_group(&[PathId(1), PathId(0), PathId(1)]);
        let b = inc.register_group(&[PathId(0), PathId(1)]);
        assert_eq!(a, b);
    }

    #[test]
    fn streaming_log_freezes_closed_intervals() {
        let mut s = StreamingLog::new(2, 0.1);
        s.record_sent_at(0.05, PathId(0), 10).unwrap();
        s.record_sent_at(0.15, PathId(0), 10).unwrap();
        assert_eq!(s.close_through(0.15), 1);
        assert_eq!(s.closed(), 1);
        // Interval 0 is frozen now.
        assert_eq!(
            s.record_sent_at(0.06, PathId(0), 1),
            Err(StreamError::IntervalClosed { t: 0, closed: 1 })
        );
        // Interval 1 still accepts records.
        s.record_lost_at(0.19, PathId(0), 2).unwrap();
        assert_eq!(s.close_all(), 1);
        assert_eq!(s.closed(), 2);
        let log = s.into_log();
        assert_eq!(log.sent(0, PathId(0)), 10);
        assert_eq!(log.lost(1, PathId(0)), 2);
    }

    #[test]
    fn append_interval_rows() {
        let mut s = StreamingLog::new(2, 0.1);
        assert_eq!(s.append_interval(&[5, 7], &[1, 0]), Ok(0));
        assert_eq!(s.append_interval(&[0, 0], &[0, 0]), Ok(1));
        assert_eq!(s.append_interval(&[3, 4], &[0, 2]), Ok(2));
        assert_eq!(s.closed(), 3);
        assert_eq!(s.log().interval_count(), 3);
        assert_eq!(s.log().sent(2, PathId(1)), 4);
        assert_eq!(s.log().lost(0, PathId(0)), 1);
        assert_eq!(
            s.append_interval(&[1, 2, 3], &[0, 0, 0]),
            Err(StreamError::PathCountMismatch { ours: 2, theirs: 3 })
        );
    }

    #[test]
    fn close_through_materializes_silent_intervals() {
        let mut s = StreamingLog::new(1, 0.1);
        assert_eq!(s.close_through(0.55), 5);
        assert_eq!(s.closed(), 5);
        assert_eq!(s.log().interval_count(), 5);
        assert_eq!(s.log().sent(4, PathId(0)), 0);
        // Closing backwards is a no-op.
        assert_eq!(s.close_through(0.3), 0);
        assert_eq!(s.closed(), 5);
    }
}
