//! The append-friendly on-disk segment format (`.nniseg`) — how a live
//! producer spills a measurement set *while it grows*.
//!
//! A corpus entry (`.nniset`) is a single checksummed blob: appending an
//! interval means rewriting the file, and a reader catching it mid-rewrite
//! sees garbage. A segment is instead a chunk log — each chunk is written
//! once, checksummed individually, and never touched again — so a follower
//! can consume closed intervals while the producer is still appending.
//!
//! # Format (version 1)
//!
//! ```text
//! magic     7 bytes  b"NNISEGS"
//! version   u8       1
//! chunks    each:  tag u8, payload length u64 LE, payload bytes,
//!                  checksum u64 LE (FNV-1a over tag + length + payload)
//!   tag 1  HEADER     a full codec-v1 encoding of the set with an *empty*
//!                     log — provenance, topology, classes, interval grid
//!   tag 2  INTERVALS  first interval vu, interval count vu, then per
//!                     interval per path: sent vu, lost vu
//! ```
//!
//! Interval chunks are contiguous: each chunk's first interval equals the
//! number of intervals in all chunks before it. A reader that finds fewer
//! bytes than a chunk claims simply stops — the chunk is still being
//! written — and resumes from the same offset next poll; a checksum
//! mismatch on a *complete* chunk is real corruption.

use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

use crate::codec::{self, CodecError};
use crate::dataset::{Fnv, MeasurementSet};
use crate::record::MeasurementLog;
use crate::wire::{WireReader, WireWriter};
use nni_topology::PathId;

/// File extension of segment files.
pub const SEGMENT_EXT: &str = "nniseg";

/// Magic prefix of every segment file.
pub const MAGIC: &[u8; 7] = b"NNISEGS";

/// Current segment format version.
pub const VERSION: u8 = 1;

const TAG_HEADER: u8 = 1;
const TAG_INTERVALS: u8 = 2;

/// Why a segment failed to write or parse.
#[derive(Debug)]
pub enum SegmentError {
    /// A filesystem failure.
    Io(std::io::Error),
    /// The file does not start with [`MAGIC`].
    BadMagic,
    /// The version byte is newer than this reader.
    UnsupportedVersion(u8),
    /// The header chunk's embedded measurement set failed to decode.
    Codec(CodecError),
    /// A structural violation (context in the message).
    Corrupt(&'static str),
    /// A complete chunk's checksum does not match its content.
    ChecksumMismatch,
}

impl std::fmt::Display for SegmentError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SegmentError::Io(e) => write!(f, "i/o error: {e}"),
            SegmentError::BadMagic => write!(f, "not a segment file (bad magic)"),
            SegmentError::UnsupportedVersion(v) => {
                write!(f, "unsupported segment version {v}")
            }
            SegmentError::Codec(e) => write!(f, "segment header: {e}"),
            SegmentError::Corrupt(what) => write!(f, "corrupt segment: {what}"),
            SegmentError::ChecksumMismatch => {
                write!(f, "segment chunk checksum mismatch")
            }
        }
    }
}

impl std::error::Error for SegmentError {}

impl From<std::io::Error> for SegmentError {
    fn from(e: std::io::Error) -> SegmentError {
        SegmentError::Io(e)
    }
}

impl From<CodecError> for SegmentError {
    fn from(e: CodecError) -> SegmentError {
        SegmentError::Codec(e)
    }
}

/// Strips the log from a set, keeping the interval grid — the payload of a
/// header chunk.
fn header_set(set: &MeasurementSet) -> MeasurementSet {
    MeasurementSet {
        topology: set.topology.clone(),
        classes: set.classes.clone(),
        log: MeasurementLog::new(set.log.path_count(), set.log.interval_s()),
        provenance: set.provenance.clone(),
    }
}

/// Frames one chunk: tag, length, payload, trailing FNV over all of it.
fn chunk_bytes(tag: u8, payload: &[u8]) -> Vec<u8> {
    let mut w = WireWriter::new();
    w.u8(tag);
    w.u64(payload.len() as u64);
    w.raw(payload);
    let mut h = Fnv::new();
    for &b in w.bytes() {
        h.byte(b);
    }
    let checksum = h.0;
    w.u64(checksum);
    w.into_bytes()
}

/// Append-only segment producer. Every write is one whole chunk followed
/// by a flush, so a concurrent [`SegmentFollower`] only ever sees a clean
/// prefix plus (at worst) one incomplete trailing chunk.
#[derive(Debug)]
pub struct SegmentWriter {
    file: File,
    n_paths: usize,
    written: usize,
}

impl SegmentWriter {
    /// Creates (truncating) a segment at `path` and writes the header
    /// chunk describing `set` (its log's intervals are *not* written —
    /// append them explicitly).
    pub fn create(
        path: impl AsRef<Path>,
        set: &MeasurementSet,
    ) -> Result<SegmentWriter, SegmentError> {
        let mut file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(path.as_ref())?;
        let mut prefix = Vec::with_capacity(MAGIC.len() + 1);
        prefix.extend_from_slice(MAGIC);
        prefix.push(VERSION);
        file.write_all(&prefix)?;
        file.write_all(&chunk_bytes(TAG_HEADER, &codec::encode(&header_set(set))))?;
        file.flush()?;
        Ok(SegmentWriter {
            file,
            n_paths: set.log.path_count(),
            written: 0,
        })
    }

    /// Intervals appended so far.
    pub fn written(&self) -> usize {
        self.written
    }

    /// Appends intervals `[from, to)` of `log` as one chunk. The range
    /// must continue exactly where the segment left off.
    pub fn append_intervals(
        &mut self,
        log: &MeasurementLog,
        from: usize,
        to: usize,
    ) -> Result<(), SegmentError> {
        if log.path_count() != self.n_paths {
            return Err(SegmentError::Corrupt("log width != segment header"));
        }
        if from != self.written {
            return Err(SegmentError::Corrupt("non-contiguous interval append"));
        }
        if to < from || to > log.interval_count() {
            return Err(SegmentError::Corrupt("interval range out of bounds"));
        }
        if to == from {
            return Ok(());
        }
        let mut w = WireWriter::new();
        w.vu(from as u64);
        w.vu((to - from) as u64);
        for t in from..to {
            for p in 0..self.n_paths {
                w.vu(log.sent(t, PathId(p)));
                w.vu(log.lost(t, PathId(p)));
            }
        }
        self.file
            .write_all(&chunk_bytes(TAG_INTERVALS, w.bytes()))?;
        self.file.flush()?;
        self.written = to;
        Ok(())
    }
}

/// One poll's worth of newly landed segment content.
#[derive(Debug, Default)]
pub struct SegmentBatch {
    /// The decoded header (empty-log set) — present on the poll that first
    /// completed it, `None` afterwards.
    pub header: Option<MeasurementSet>,
    /// Newly complete interval rows, in interval order: `(sent, lost)` per
    /// path.
    pub intervals: Vec<(Vec<u64>, Vec<u64>)>,
}

/// Offset-tracking reader of a (possibly still growing) segment file.
///
/// [`poll`](SegmentFollower::poll) re-reads the file, parses every chunk
/// that is complete beyond the last consumed offset, and tolerates an
/// incomplete trailing chunk (the producer is mid-append) by leaving the
/// offset at the chunk boundary.
#[derive(Debug)]
pub struct SegmentFollower {
    path: PathBuf,
    offset: usize,
    n_paths: Option<usize>,
    seen_intervals: usize,
}

impl SegmentFollower {
    /// Starts following `path`. No I/O happens until the first poll, so a
    /// follower can be created before the producer's first byte.
    pub fn open(path: impl Into<PathBuf>) -> SegmentFollower {
        SegmentFollower {
            path: path.into(),
            offset: 0,
            n_paths: None,
            seen_intervals: 0,
        }
    }

    /// The file being followed.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Complete intervals consumed so far.
    pub fn intervals_seen(&self) -> usize {
        self.seen_intervals
    }

    /// Whether the header chunk has been consumed.
    pub fn has_header(&self) -> bool {
        self.n_paths.is_some()
    }

    /// Reads everything newly complete. An empty batch means nothing new
    /// landed (or the producer is mid-chunk); an error is terminal for
    /// this follower.
    pub fn poll(&mut self) -> Result<SegmentBatch, SegmentError> {
        let bytes = match std::fs::read(&self.path) {
            Ok(b) => b,
            // Not created yet: nothing to report.
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Ok(SegmentBatch::default())
            }
            Err(e) => return Err(e.into()),
        };
        let mut batch = SegmentBatch::default();

        if self.offset == 0 {
            // The fixed prefix: magic + version.
            if bytes.len() < MAGIC.len() + 1 {
                return Ok(batch); // still being written
            }
            if &bytes[..MAGIC.len()] != MAGIC {
                return Err(SegmentError::BadMagic);
            }
            let version = bytes[MAGIC.len()];
            if version != VERSION {
                return Err(SegmentError::UnsupportedVersion(version));
            }
            self.offset = MAGIC.len() + 1;
        }

        while let Some((tag, payload, next)) = complete_chunk(&bytes, self.offset)? {
            match tag {
                TAG_HEADER => {
                    if self.n_paths.is_some() {
                        return Err(SegmentError::Corrupt("duplicate header chunk"));
                    }
                    let set = codec::decode(payload)?;
                    if set.log.interval_count() != 0 {
                        return Err(SegmentError::Corrupt("header log must be empty"));
                    }
                    self.n_paths = Some(set.log.path_count());
                    batch.header = Some(set);
                }
                TAG_INTERVALS => {
                    let Some(n_paths) = self.n_paths else {
                        return Err(SegmentError::Corrupt("intervals before header"));
                    };
                    let mut r = WireReader::new(payload);
                    let first = r.vu().map_err(|_| SegmentError::Corrupt("chunk prefix"))?;
                    let count = r.vu().map_err(|_| SegmentError::Corrupt("chunk prefix"))?;
                    if first as usize != self.seen_intervals {
                        return Err(SegmentError::Corrupt("interval chunk out of order"));
                    }
                    for _ in 0..count {
                        let mut sent = Vec::with_capacity(n_paths);
                        let mut lost = Vec::with_capacity(n_paths);
                        for _ in 0..n_paths {
                            sent.push(r.vu().map_err(|_| SegmentError::Corrupt("short row"))?);
                            lost.push(r.vu().map_err(|_| SegmentError::Corrupt("short row"))?);
                        }
                        batch.intervals.push((sent, lost));
                        self.seen_intervals += 1;
                    }
                    if !r.is_empty() {
                        return Err(SegmentError::Corrupt("trailing bytes in chunk"));
                    }
                }
                _ => return Err(SegmentError::Corrupt("unknown chunk tag")),
            }
            self.offset = next;
        }
        Ok(batch)
    }
}

/// A fully-present chunk: `(tag, payload, next_offset)` — or `None` when
/// the bytes run out before the chunk does (still being written).
type ChunkAt<'a> = Option<(u8, &'a [u8], usize)>;

/// Parses the chunk at `offset` if it is completely present. Verifies the
/// chunk checksum.
fn complete_chunk(bytes: &[u8], offset: usize) -> Result<ChunkAt<'_>, SegmentError> {
    let rest = &bytes[offset.min(bytes.len())..];
    if rest.len() < 1 + 8 {
        return Ok(None);
    }
    let tag = rest[0];
    let len = u64::from_le_bytes(rest[1..9].try_into().expect("8 bytes")) as usize;
    let total = 1 + 8 + len + 8;
    if rest.len() < total {
        return Ok(None);
    }
    let payload = &rest[9..9 + len];
    let mut h = Fnv::new();
    for &b in &rest[..9 + len] {
        h.byte(b);
    }
    let expect = h.0;
    let got = u64::from_le_bytes(rest[9 + len..total].try_into().expect("8 bytes"));
    if got != expect {
        return Err(SegmentError::ChecksumMismatch);
    }
    Ok(Some((tag, payload, offset + total)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Provenance;
    use nni_topology::TopologyBuilder;

    fn sample_set(intervals: usize) -> MeasurementSet {
        let mut b = TopologyBuilder::new();
        let h0 = b.host("h0");
        let h1 = b.host("h1");
        let l0 = b.link("l0", h0, h1).unwrap();
        b.path("p0", vec![l0]).unwrap();
        b.path("p1", vec![l0]).unwrap();
        let mut log = MeasurementLog::new(2, 0.1);
        for t in 0..intervals {
            log.record_sent(t, PathId(0), 100 + t as u64);
            log.record_lost(t, PathId(0), (t % 3) as u64);
            log.record_sent(t, PathId(1), 90);
        }
        MeasurementSet {
            topology: b.build(),
            classes: vec![vec![PathId(0), PathId(1)]],
            log,
            provenance: Provenance {
                scenario: "segment sample".into(),
                scenario_fingerprint: 0xFEED,
                seed: 9,
                build: "test".into(),
            },
        }
    }

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "nni-segment-test-{tag}-{}.{SEGMENT_EXT}",
            std::process::id()
        ))
    }

    #[test]
    fn chunked_write_reassembles_the_log() {
        let set = sample_set(25);
        let path = temp_path("roundtrip");
        let mut w = SegmentWriter::create(&path, &set).unwrap();
        // Three uneven chunks.
        w.append_intervals(&set.log, 0, 10).unwrap();
        w.append_intervals(&set.log, 10, 11).unwrap();
        w.append_intervals(&set.log, 11, 25).unwrap();

        let mut f = SegmentFollower::open(&path);
        let batch = f.poll().unwrap();
        let header = batch.header.expect("header on first poll");
        assert_eq!(header.provenance, set.provenance);
        assert_eq!(header.log.interval_count(), 0);
        assert_eq!(batch.intervals.len(), 25);
        // Reassemble and compare cell-wise.
        let mut log = MeasurementLog::new(2, header.log.interval_s());
        for (t, (sent, lost)) in batch.intervals.iter().enumerate() {
            for p in 0..2 {
                log.record_sent(t, PathId(p), sent[p]);
                log.record_lost(t, PathId(p), lost[p]);
            }
        }
        assert_eq!(log, set.log);
        // Nothing new on the next poll.
        let again = f.poll().unwrap();
        assert!(again.header.is_none() && again.intervals.is_empty());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn follower_tolerates_partial_trailing_chunk() {
        let set = sample_set(8);
        let path = temp_path("partial");
        let mut w = SegmentWriter::create(&path, &set).unwrap();
        w.append_intervals(&set.log, 0, 4).unwrap();
        let complete = std::fs::read(&path).unwrap();

        // Truncate mid-chunk: the follower must stop at the clean prefix.
        w.append_intervals(&set.log, 4, 8).unwrap();
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..complete.len() + 5]).unwrap();

        let mut f = SegmentFollower::open(&path);
        let batch = f.poll().unwrap();
        assert!(batch.header.is_some());
        assert_eq!(batch.intervals.len(), 4);

        // The producer finishes the chunk: the follower resumes.
        std::fs::write(&path, &full).unwrap();
        let batch = f.poll().unwrap();
        assert!(batch.header.is_none());
        assert_eq!(batch.intervals.len(), 4);
        assert_eq!(f.intervals_seen(), 8);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn follower_survives_a_missing_file() {
        let path = temp_path("missing");
        let _ = std::fs::remove_file(&path);
        let mut f = SegmentFollower::open(&path);
        let batch = f.poll().unwrap();
        assert!(batch.header.is_none() && batch.intervals.is_empty());
    }

    #[test]
    fn corruption_is_detected() {
        let set = sample_set(6);
        let path = temp_path("corrupt");
        let mut w = SegmentWriter::create(&path, &set).unwrap();
        w.append_intervals(&set.log, 0, 6).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip one payload byte in the last chunk.
        let n = bytes.len();
        bytes[n - 12] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        let mut f = SegmentFollower::open(&path);
        assert!(matches!(
            f.poll(),
            Err(SegmentError::ChecksumMismatch) | Err(SegmentError::Corrupt(_))
        ));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn writer_rejects_non_contiguous_appends() {
        let set = sample_set(5);
        let path = temp_path("contiguous");
        let mut w = SegmentWriter::create(&path, &set).unwrap();
        w.append_intervals(&set.log, 0, 2).unwrap();
        assert!(matches!(
            w.append_intervals(&set.log, 3, 5),
            Err(SegmentError::Corrupt("non-contiguous interval append"))
        ));
        assert!(matches!(
            w.append_intervals(&set.log, 2, 9),
            Err(SegmentError::Corrupt("interval range out of bounds"))
        ));
        w.append_intervals(&set.log, 2, 5).unwrap();
        assert_eq!(w.written(), 5);
        std::fs::remove_file(&path).unwrap();
    }
}
