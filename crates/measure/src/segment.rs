//! The append-friendly on-disk segment format (`.nniseg`) — how a live
//! producer spills a measurement set *while it grows*.
//!
//! A corpus entry (`.nniset`) is a single checksummed blob: appending an
//! interval means rewriting the file, and a reader catching it mid-rewrite
//! sees garbage. A segment is instead a chunk log — each chunk is written
//! once, checksummed individually, and never touched again — so a follower
//! can consume closed intervals while the producer is still appending.
//!
//! # Format (version 2)
//!
//! ```text
//! magic     7 bytes  b"NNISEGS"
//! version   u8       2
//! chunks    each:  sync 8 bytes (wire::SYNC_MARKER), tag u8,
//!                  payload length u64 LE, payload bytes,
//!                  checksum u64 LE (FNV-1a over sync + tag + length +
//!                  payload)
//!   tag 1  HEADER     a full codec-v1 encoding of the set with an *empty*
//!                     log — provenance, topology, classes, interval grid
//!   tag 2  INTERVALS  first interval vu, interval count vu, then per
//!                     interval per path: sent vu, lost vu
//! ```
//!
//! Version 1 is the same layout without the per-chunk sync marker. The
//! follower reads both; the writer emits v2 ([`SegmentWriter::create_v1`]
//! still writes v1 for compatibility tests), and a deployed v1 reader
//! meeting a v2 file stops at the version byte with
//! [`SegmentError::UnsupportedVersion`]`(2)`.
//!
//! Interval chunks are contiguous: each chunk's first interval equals the
//! number of intervals in all chunks before it. A reader that finds fewer
//! bytes than a chunk claims simply stops — the chunk is still being
//! written — and resumes from the same offset next poll; a checksum
//! mismatch on a *complete* chunk is real corruption.
//!
//! # Corruption and resync
//!
//! By default a follower treats corruption as terminal (strict mode: the
//! archival contract). With [`SegmentFollower::with_resync`] it instead
//! *scans forward* for the next complete, checksum-valid, in-order
//! intervals chunk, reports the skipped range as a [`SegmentItem::Gap`],
//! and resumes — the behavior a live consumer wants, where one flipped
//! byte must not end a session. Each chunk carries its own first-interval
//! index precisely so a reader can re-anchor after losing bytes. The one
//! unrecoverable region is the header: without it a reader cannot even
//! size an interval row, so header corruption stays terminal.
//!
//! The sync marker is what makes v2 resync *honest about lengths*. In v1
//! a corrupt *length* field can masquerade as an incomplete trailing
//! chunk forever (lengths above [`MAX_CHUNK_BYTES`] are rejected, but a
//! plausible corrupt length stalls the follower on a tail that will never
//! complete). In v2 the claim is falsifiable: an append-only producer
//! writes chunks in order, so bytes after a genuinely in-flight chunk
//! cannot contain a complete chunk — if the follower finds a complete,
//! checksum-valid, in-order intervals chunk at a *later* sync marker, the
//! trailing chunk's length was a lie, and the follower reports the loss
//! as a gap (resync mode) or fails loudly (strict mode) instead of
//! waiting forever. Scanning is marker-to-marker rather than v1's
//! byte-by-byte trial decode.

use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

use crate::codec::{self, CodecError};
use crate::dataset::{Fnv, MeasurementSet};
use crate::record::MeasurementLog;
use crate::wire::{WireReader, WireWriter, SYNC_MARKER};
use nni_topology::PathId;

/// File extension of segment files.
pub const SEGMENT_EXT: &str = "nniseg";

/// Magic prefix of every segment file.
pub const MAGIC: &[u8; 7] = b"NNISEGS";

/// Current segment format version: sync-marker chunks.
pub const VERSION: u8 = 2;

/// The frozen version-1 segment format (chunks without sync markers).
pub const VERSION_V1: u8 = 1;

const TAG_HEADER: u8 = 1;
const TAG_INTERVALS: u8 = 2;

/// Upper bound on a single chunk's payload length. A length field above
/// this is treated as corruption rather than an in-flight chunk, so a
/// flipped length byte cannot stall a follower forever.
pub const MAX_CHUNK_BYTES: u64 = 1 << 30;

/// Why a segment failed to write or parse.
#[derive(Debug)]
pub enum SegmentError {
    /// A filesystem failure.
    Io(std::io::Error),
    /// The file does not start with [`MAGIC`].
    BadMagic,
    /// The version byte is newer than this reader.
    UnsupportedVersion(u8),
    /// The header chunk's embedded measurement set failed to decode.
    Codec(CodecError),
    /// A structural violation (context in the message).
    Corrupt(&'static str),
    /// A complete chunk's checksum does not match its content.
    ChecksumMismatch,
}

impl std::fmt::Display for SegmentError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SegmentError::Io(e) => write!(f, "i/o error: {e}"),
            SegmentError::BadMagic => write!(f, "not a segment file (bad magic)"),
            SegmentError::UnsupportedVersion(v) => {
                write!(f, "unsupported segment version {v}")
            }
            SegmentError::Codec(e) => write!(f, "segment header: {e}"),
            SegmentError::Corrupt(what) => write!(f, "corrupt segment: {what}"),
            SegmentError::ChecksumMismatch => {
                write!(f, "segment chunk checksum mismatch")
            }
        }
    }
}

impl std::error::Error for SegmentError {}

impl From<std::io::Error> for SegmentError {
    fn from(e: std::io::Error) -> SegmentError {
        SegmentError::Io(e)
    }
}

impl From<CodecError> for SegmentError {
    fn from(e: CodecError) -> SegmentError {
        SegmentError::Codec(e)
    }
}

/// Strips the log from a set, keeping the interval grid — the payload of a
/// header chunk.
fn header_set(set: &MeasurementSet) -> MeasurementSet {
    MeasurementSet {
        topology: set.topology.clone(),
        classes: set.classes.clone(),
        log: MeasurementLog::new(set.log.path_count(), set.log.interval_s()),
        provenance: set.provenance.clone(),
    }
}

/// Frames one v2 chunk: sync marker, tag, length, payload, trailing FNV
/// over all of it.
fn chunk_bytes(tag: u8, payload: &[u8]) -> Vec<u8> {
    let mut w = WireWriter::new();
    w.raw(&SYNC_MARKER);
    w.u8(tag);
    w.u64(payload.len() as u64);
    w.raw(payload);
    let mut h = Fnv::new();
    for &b in w.bytes() {
        h.byte(b);
    }
    let checksum = h.0;
    w.u64(checksum);
    w.into_bytes()
}

/// Frames one frozen v1 chunk (no sync marker) — what pre-v2 writers
/// emitted.
fn chunk_bytes_v1(tag: u8, payload: &[u8]) -> Vec<u8> {
    let mut w = WireWriter::new();
    w.u8(tag);
    w.u64(payload.len() as u64);
    w.raw(payload);
    let mut h = Fnv::new();
    for &b in w.bytes() {
        h.byte(b);
    }
    let checksum = h.0;
    w.u64(checksum);
    w.into_bytes()
}

/// Append-only segment producer. Every write is one whole chunk followed
/// by a flush, so a concurrent [`SegmentFollower`] only ever sees a clean
/// prefix plus (at worst) one incomplete trailing chunk.
#[derive(Debug)]
pub struct SegmentWriter {
    file: File,
    n_paths: usize,
    written: usize,
    version: u8,
}

impl SegmentWriter {
    /// Creates (truncating) a segment at `path` and writes the header
    /// chunk describing `set` (its log's intervals are *not* written —
    /// append them explicitly).
    pub fn create(
        path: impl AsRef<Path>,
        set: &MeasurementSet,
    ) -> Result<SegmentWriter, SegmentError> {
        SegmentWriter::create_with_version(path, set, VERSION)
    }

    /// Creates a frozen version-1 segment — what every pre-v2 producer
    /// wrote. Kept so interop tests can generate genuine v1 files and pin
    /// both that the follower still reads them bit-identically and the v1
    /// length-field stall this format cannot avoid.
    pub fn create_v1(
        path: impl AsRef<Path>,
        set: &MeasurementSet,
    ) -> Result<SegmentWriter, SegmentError> {
        SegmentWriter::create_with_version(path, set, VERSION_V1)
    }

    fn create_with_version(
        path: impl AsRef<Path>,
        set: &MeasurementSet,
        version: u8,
    ) -> Result<SegmentWriter, SegmentError> {
        let mut file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(path.as_ref())?;
        let mut prefix = Vec::with_capacity(MAGIC.len() + 1);
        prefix.extend_from_slice(MAGIC);
        prefix.push(version);
        file.write_all(&prefix)?;
        let header = codec::encode(&header_set(set));
        let chunk = match version {
            VERSION_V1 => chunk_bytes_v1(TAG_HEADER, &header),
            _ => chunk_bytes(TAG_HEADER, &header),
        };
        file.write_all(&chunk)?;
        file.flush()?;
        Ok(SegmentWriter {
            file,
            n_paths: set.log.path_count(),
            written: 0,
            version,
        })
    }

    /// Intervals appended so far.
    pub fn written(&self) -> usize {
        self.written
    }

    /// Appends intervals `[from, to)` of `log` as one chunk. The range
    /// must continue exactly where the segment left off.
    pub fn append_intervals(
        &mut self,
        log: &MeasurementLog,
        from: usize,
        to: usize,
    ) -> Result<(), SegmentError> {
        if log.path_count() != self.n_paths {
            return Err(SegmentError::Corrupt("log width != segment header"));
        }
        if from != self.written {
            return Err(SegmentError::Corrupt("non-contiguous interval append"));
        }
        if to < from || to > log.interval_count() {
            return Err(SegmentError::Corrupt("interval range out of bounds"));
        }
        if to == from {
            return Ok(());
        }
        let mut w = WireWriter::new();
        w.vu(from as u64);
        w.vu((to - from) as u64);
        for t in from..to {
            for p in 0..self.n_paths {
                w.vu(log.sent(t, PathId(p)));
                w.vu(log.lost(t, PathId(p)));
            }
        }
        let chunk = match self.version {
            VERSION_V1 => chunk_bytes_v1(TAG_INTERVALS, w.bytes()),
            _ => chunk_bytes(TAG_INTERVALS, w.bytes()),
        };
        self.file.write_all(&chunk)?;
        self.file.flush()?;
        self.written = to;
        Ok(())
    }
}

/// The interval range lost to a corrupt region, and how wide that region
/// was on disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentGap {
    /// First interval index covered by the gap (the count of intervals
    /// consumed before corruption struck).
    pub from_interval: usize,
    /// One past the last missing interval — the recovered chunk's first.
    pub to_interval: usize,
    /// Bytes between the corrupt chunk's start and the recovered chunk's
    /// start.
    pub bytes_skipped: usize,
}

/// Decoded interval rows: `(sent, lost)` per path, one entry per interval.
pub type IntervalRows = Vec<(Vec<u64>, Vec<u64>)>;

/// One decoded unit of segment content, in file order.
#[derive(Debug)]
pub enum SegmentItem {
    /// The decoded header (empty-log set) — once per segment, on the poll
    /// that first completed it.
    Header(Box<MeasurementSet>),
    /// A run of complete interval rows starting at interval `first_t`:
    /// `(sent, lost)` per path.
    Intervals {
        /// Interval index of `rows[0]`.
        first_t: usize,
        /// `(sent, lost)` per path, one entry per interval.
        rows: IntervalRows,
    },
    /// Intervals lost to a corrupt region (resync mode only).
    Gap(SegmentGap),
}

/// One poll's worth of newly landed segment content.
#[derive(Debug, Default)]
pub struct SegmentBatch {
    /// Decoded items, in file order.
    pub items: Vec<SegmentItem>,
}

impl SegmentBatch {
    /// No new content landed this poll.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The header, if this poll completed it.
    pub fn header(&self) -> Option<&MeasurementSet> {
        self.items.iter().find_map(|i| match i {
            SegmentItem::Header(set) => Some(set.as_ref()),
            _ => None,
        })
    }

    /// All interval rows in this batch, in file order.
    pub fn rows(&self) -> impl Iterator<Item = &(Vec<u64>, Vec<u64>)> {
        self.items.iter().flat_map(|i| match i {
            SegmentItem::Intervals { rows, .. } => rows.as_slice(),
            _ => &[],
        })
    }
}

/// Offset-tracking reader of a (possibly still growing) segment file.
///
/// [`poll`](SegmentFollower::poll) re-reads the file, parses every chunk
/// that is complete beyond the last consumed offset, and tolerates an
/// incomplete trailing chunk (the producer is mid-append) by leaving the
/// offset at the chunk boundary.
#[derive(Debug)]
pub struct SegmentFollower {
    path: PathBuf,
    offset: usize,
    /// The file's format version, learned from the prefix on first poll.
    version: Option<u8>,
    n_paths: Option<usize>,
    seen_intervals: usize,
    resync: bool,
    scanning: bool,
    /// Offset of the corrupt chunk that armed the current scan.
    scan_from: usize,
    /// Next candidate offset the scan will try.
    scan_at: usize,
}

impl SegmentFollower {
    /// Starts following `path`. No I/O happens until the first poll, so a
    /// follower can be created before the producer's first byte.
    pub fn open(path: impl Into<PathBuf>) -> SegmentFollower {
        SegmentFollower {
            path: path.into(),
            offset: 0,
            version: None,
            n_paths: None,
            seen_intervals: 0,
            resync: false,
            scanning: false,
            scan_from: 0,
            scan_at: 0,
        }
    }

    /// Switches corrupt-chunk handling from terminal (strict, the
    /// default) to forward-scan resync: skip ahead to the next complete,
    /// checksum-valid, in-order intervals chunk and report the loss as a
    /// [`SegmentItem::Gap`]. Corruption before the header stays terminal
    /// either way — without the header a reader cannot even size an
    /// interval row.
    pub fn with_resync(mut self, resync: bool) -> SegmentFollower {
        self.resync = resync;
        self
    }

    /// Whether the follower is mid-scan, skipping a corrupt region in
    /// search of the next valid chunk.
    pub fn is_resyncing(&self) -> bool {
        self.scanning
    }

    /// The file being followed.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Complete intervals consumed so far.
    pub fn intervals_seen(&self) -> usize {
        self.seen_intervals
    }

    /// Whether the header chunk has been consumed.
    pub fn has_header(&self) -> bool {
        self.n_paths.is_some()
    }

    /// Reads everything newly complete. An empty batch means nothing new
    /// landed (or the producer is mid-chunk); an error is terminal for
    /// this follower.
    pub fn poll(&mut self) -> Result<SegmentBatch, SegmentError> {
        let bytes = match std::fs::read(&self.path) {
            Ok(b) => b,
            // Not created yet: nothing to report.
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Ok(SegmentBatch::default())
            }
            Err(e) => return Err(e.into()),
        };
        self.poll_bytes(&bytes)
    }

    /// The core of [`poll`](SegmentFollower::poll), over a caller-supplied
    /// snapshot of the segment bytes — the entry point for remote
    /// followers fed over a socket instead of a local file. Each call's
    /// buffer must extend the previous call's (append-only), exactly as a
    /// growing file would.
    pub fn poll_bytes(&mut self, bytes: &[u8]) -> Result<SegmentBatch, SegmentError> {
        let mut batch = SegmentBatch::default();

        if self.version.is_none() {
            // The fixed prefix: magic + version.
            if bytes.len() < MAGIC.len() + 1 {
                return Ok(batch); // still being written
            }
            if &bytes[..MAGIC.len()] != MAGIC {
                return Err(SegmentError::BadMagic);
            }
            let version = bytes[MAGIC.len()];
            if version != VERSION && version != VERSION_V1 {
                return Err(SegmentError::UnsupportedVersion(version));
            }
            self.version = Some(version);
            self.offset = MAGIC.len() + 1;
        }
        let version = self.version.expect("version parsed above");

        loop {
            if self.scanning {
                if !self.scan(bytes, &mut batch) {
                    break; // nothing valid completed yet; resume next poll
                }
                continue;
            }
            let (tag, payload, next) = match complete_chunk(bytes, self.offset, version) {
                Ok(Some(chunk)) => chunk,
                Ok(None) => {
                    // In v2 an "in-flight" trailing chunk is a falsifiable
                    // claim: an append-only producer cannot have completed
                    // a later chunk while this one is short, so a valid
                    // in-order chunk at a later sync marker means the
                    // trailing length field is corrupt — the v1 stall this
                    // version exists to fix. `corrupted` arms the scan
                    // (resync) or fails loudly (strict); the scan then
                    // recovers at the chunk that disproved the claim.
                    if version >= VERSION && self.disproven(bytes) {
                        self.corrupted(SegmentError::Corrupt(
                            "trailing chunk disproven by a later sync marker",
                        ))?;
                        continue;
                    }
                    break; // trailing chunk still being written
                }
                Err(e) => {
                    self.corrupted(e)?;
                    continue;
                }
            };
            match self.consume(tag, payload) {
                Ok(item) => {
                    self.offset = next;
                    batch.items.push(item);
                }
                Err(e) => self.corrupted(e)?,
            }
        }
        Ok(batch)
    }

    /// Whether an apparently in-flight trailing chunk at `offset` is
    /// disproven by a complete, checksum-valid, in-order intervals chunk
    /// at a later sync marker (v2 only; pre-header there is nothing to
    /// validate a later chunk against, so header corruption stays
    /// terminal-or-waiting as documented).
    fn disproven(&self, bytes: &[u8]) -> bool {
        let Some(n_paths) = self.n_paths else {
            return false;
        };
        // Skip the trailing chunk's own marker: only *later* markers can
        // contradict it.
        let mut at = self.offset + 1;
        while let Some(pos) = find_sync(bytes, at) {
            if let Ok(Some((TAG_INTERVALS, payload, _))) = complete_chunk(bytes, pos, VERSION) {
                if let Ok((first, _)) = parse_intervals(payload, n_paths) {
                    if first >= self.seen_intervals {
                        return true;
                    }
                }
            }
            at = pos + 1;
        }
        false
    }

    /// Decodes one complete chunk into an item, advancing follower state.
    fn consume(&mut self, tag: u8, payload: &[u8]) -> Result<SegmentItem, SegmentError> {
        match tag {
            TAG_HEADER => {
                if self.n_paths.is_some() {
                    return Err(SegmentError::Corrupt("duplicate header chunk"));
                }
                let set: MeasurementSet = codec::decode(payload)?;
                if set.log.interval_count() != 0 {
                    return Err(SegmentError::Corrupt("header log must be empty"));
                }
                self.n_paths = Some(set.log.path_count());
                Ok(SegmentItem::Header(Box::new(set)))
            }
            TAG_INTERVALS => {
                let Some(n_paths) = self.n_paths else {
                    return Err(SegmentError::Corrupt("intervals before header"));
                };
                let (first, rows) = parse_intervals(payload, n_paths)?;
                if first != self.seen_intervals {
                    return Err(SegmentError::Corrupt("interval chunk out of order"));
                }
                self.seen_intervals += rows.len();
                Ok(SegmentItem::Intervals {
                    first_t: first,
                    rows,
                })
            }
            _ => Err(SegmentError::Corrupt("unknown chunk tag")),
        }
    }

    /// Routes a corrupt-chunk error: terminal in strict mode (or before
    /// the header), otherwise arms the forward scan one byte past the bad
    /// chunk's start.
    fn corrupted(&mut self, e: SegmentError) -> Result<(), SegmentError> {
        if !self.resync || self.n_paths.is_none() {
            return Err(e);
        }
        self.scanning = true;
        self.scan_from = self.offset;
        self.scan_at = self.offset + 1;
        Ok(())
    }

    /// Accepts a recovery candidate found at `at`: emits the gap and the
    /// chunk, reanchors the follower after it, and disarms the scan.
    fn recover(
        &mut self,
        batch: &mut SegmentBatch,
        at: usize,
        first: usize,
        rows: IntervalRows,
        next: usize,
    ) {
        batch.items.push(SegmentItem::Gap(SegmentGap {
            from_interval: self.seen_intervals,
            to_interval: first,
            bytes_skipped: at - self.scan_from,
        }));
        self.seen_intervals = first + rows.len();
        batch.items.push(SegmentItem::Intervals {
            first_t: first,
            rows,
        });
        self.offset = next;
        self.scanning = false;
    }

    /// Advances the forward scan. The first complete, checksum-valid
    /// intervals chunk with an in-order first interval wins (recovery —
    /// emits the gap and the chunk, returns `true`); otherwise the scan
    /// pauses and resumes next poll (returns `false`). In v2 the scan
    /// hops from sync marker to sync marker; in v1 — no markers on the
    /// wire — it must trial-decode at every byte offset.
    fn scan(&mut self, bytes: &[u8], batch: &mut SegmentBatch) -> bool {
        match self.version {
            Some(VERSION_V1) => self.scan_v1(bytes, batch),
            _ => self.scan_v2(bytes, batch),
        }
    }

    /// v2 scan: candidates are exactly the sync-marker positions from
    /// `scan_at` on. A candidate that is short of bytes could be a chunk
    /// in flight — the scan pauses there (and re-checks it next poll) but
    /// keeps sweeping past it, since a later complete chunk disproves it.
    fn scan_v2(&mut self, bytes: &[u8], batch: &mut SegmentBatch) -> bool {
        let n_paths = self.n_paths.expect("scan is only armed after the header");
        let mut pending: Option<usize> = None;
        let mut at = self.scan_at;
        while let Some(pos) = find_sync(bytes, at) {
            match complete_chunk(bytes, pos, VERSION) {
                Ok(None) => {
                    pending.get_or_insert(pos);
                }
                Ok(Some((TAG_INTERVALS, payload, next))) => {
                    if let Ok((first, rows)) = parse_intervals(payload, n_paths) {
                        if first >= self.seen_intervals {
                            self.recover(batch, pos, first, rows, next);
                            return true;
                        }
                    }
                }
                Ok(Some(_)) | Err(_) => {}
            }
            at = pos + 1;
        }
        // Resume at the paused candidate, or just before the buffer end —
        // a marker can straddle the append boundary.
        self.scan_at = pending.unwrap_or_else(|| {
            bytes
                .len()
                .saturating_sub(SYNC_MARKER.len() - 1)
                .max(self.scan_at)
        });
        false
    }

    /// v1 scan: tries every byte offset from `scan_at` to the end of the
    /// buffer. If nothing validates the scan pauses at the earliest
    /// offset that still *could* be a chunk in flight — garbage can
    /// masquerade as an incomplete chunk (e.g. a window onto a later
    /// chunk's small LE length field), so a single "not enough bytes yet"
    /// candidate must not stop the sweep — and resumes there next poll.
    fn scan_v1(&mut self, bytes: &[u8], batch: &mut SegmentBatch) -> bool {
        let n_paths = self.n_paths.expect("scan is only armed after the header");
        let mut pending: Option<usize> = None;
        let mut at = self.scan_at;
        while at < bytes.len() {
            match complete_chunk(bytes, at, VERSION_V1) {
                Ok(None) => {
                    pending.get_or_insert(at);
                    at += 1;
                }
                Ok(Some((TAG_INTERVALS, payload, next))) => {
                    if let Ok((first, rows)) = parse_intervals(payload, n_paths) {
                        if first >= self.seen_intervals {
                            self.recover(batch, at, first, rows, next);
                            return true;
                        }
                    }
                    at += 1;
                }
                Ok(Some(_)) | Err(_) => at += 1,
            }
        }
        self.scan_at = pending.unwrap_or(bytes.len());
        false
    }
}

/// Position of the next [`SYNC_MARKER`] at or after `from`.
fn find_sync(bytes: &[u8], from: usize) -> Option<usize> {
    if bytes.len() < SYNC_MARKER.len() {
        return None;
    }
    (from..=bytes.len() - SYNC_MARKER.len())
        .find(|&i| bytes[i..i + SYNC_MARKER.len()] == SYNC_MARKER)
}

/// Decodes an intervals-chunk payload into `(first_interval, rows)`.
fn parse_intervals(payload: &[u8], n_paths: usize) -> Result<(usize, IntervalRows), SegmentError> {
    let mut r = WireReader::new(payload);
    let first = r.vu().map_err(|_| SegmentError::Corrupt("chunk prefix"))? as usize;
    let count = r.vu().map_err(|_| SegmentError::Corrupt("chunk prefix"))?;
    let mut rows = Vec::new();
    for _ in 0..count {
        let mut sent = Vec::with_capacity(n_paths);
        let mut lost = Vec::with_capacity(n_paths);
        for _ in 0..n_paths {
            sent.push(r.vu().map_err(|_| SegmentError::Corrupt("short row"))?);
            lost.push(r.vu().map_err(|_| SegmentError::Corrupt("short row"))?);
        }
        rows.push((sent, lost));
    }
    if !r.is_empty() {
        return Err(SegmentError::Corrupt("trailing bytes in chunk"));
    }
    Ok((first, rows))
}

/// A fully-present chunk: `(tag, payload, next_offset)` — or `None` when
/// the bytes run out before the chunk does (still being written).
type ChunkAt<'a> = Option<(u8, &'a [u8], usize)>;

/// Parses the chunk at `offset` if it is completely present, in the given
/// format version (v2 chunks lead with the sync marker). Verifies the
/// chunk checksum.
fn complete_chunk(bytes: &[u8], offset: usize, version: u8) -> Result<ChunkAt<'_>, SegmentError> {
    let rest = &bytes[offset.min(bytes.len())..];
    let sync = if version == VERSION_V1 {
        0
    } else {
        SYNC_MARKER.len()
    };
    // Validate the marker as its bytes arrive (like the wire magic): a
    // tail that already disagrees with the marker prefix is corruption,
    // not a chunk in flight, however short it is.
    let have = rest.len().min(sync);
    if rest[..have] != SYNC_MARKER[..have] {
        return Err(SegmentError::Corrupt("chunk sync marker mismatch"));
    }
    if rest.len() < sync + 1 + 8 {
        return Ok(None);
    }
    let tag = rest[sync];
    let len64 = u64::from_le_bytes(rest[sync + 1..sync + 9].try_into().expect("8 bytes"));
    if len64 > MAX_CHUNK_BYTES {
        return Err(SegmentError::Corrupt("chunk length implausible"));
    }
    let len = len64 as usize;
    let head = sync + 1 + 8;
    let total = head + len + 8;
    if rest.len() < total {
        return Ok(None);
    }
    let payload = &rest[head..head + len];
    let mut h = Fnv::new();
    for &b in &rest[..head + len] {
        h.byte(b);
    }
    let expect = h.0;
    let got = u64::from_le_bytes(rest[head + len..total].try_into().expect("8 bytes"));
    if got != expect {
        return Err(SegmentError::ChecksumMismatch);
    }
    Ok(Some((tag, payload, offset + total)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Provenance;
    use nni_topology::TopologyBuilder;

    fn sample_set(intervals: usize) -> MeasurementSet {
        let mut b = TopologyBuilder::new();
        let h0 = b.host("h0");
        let h1 = b.host("h1");
        let l0 = b.link("l0", h0, h1).unwrap();
        b.path("p0", vec![l0]).unwrap();
        b.path("p1", vec![l0]).unwrap();
        let mut log = MeasurementLog::new(2, 0.1);
        for t in 0..intervals {
            log.record_sent(t, PathId(0), 100 + t as u64);
            log.record_lost(t, PathId(0), (t % 3) as u64);
            log.record_sent(t, PathId(1), 90);
        }
        MeasurementSet {
            topology: b.build(),
            classes: vec![vec![PathId(0), PathId(1)]],
            log,
            provenance: Provenance {
                scenario: "segment sample".into(),
                scenario_fingerprint: 0xFEED,
                seed: 9,
                build: "test".into(),
            },
        }
    }

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "nni-segment-test-{tag}-{}.{SEGMENT_EXT}",
            std::process::id()
        ))
    }

    #[test]
    fn chunked_write_reassembles_the_log() {
        let set = sample_set(25);
        let path = temp_path("roundtrip");
        let mut w = SegmentWriter::create(&path, &set).unwrap();
        // Three uneven chunks.
        w.append_intervals(&set.log, 0, 10).unwrap();
        w.append_intervals(&set.log, 10, 11).unwrap();
        w.append_intervals(&set.log, 11, 25).unwrap();

        let mut f = SegmentFollower::open(&path);
        let batch = f.poll().unwrap();
        let header = batch.header().expect("header on first poll");
        assert_eq!(header.provenance, set.provenance);
        assert_eq!(header.log.interval_count(), 0);
        let interval_s = header.log.interval_s();
        assert_eq!(batch.rows().count(), 25);
        // Reassemble and compare cell-wise.
        let mut log = MeasurementLog::new(2, interval_s);
        for (t, (sent, lost)) in batch.rows().enumerate() {
            for p in 0..2 {
                log.record_sent(t, PathId(p), sent[p]);
                log.record_lost(t, PathId(p), lost[p]);
            }
        }
        assert_eq!(log, set.log);
        // Nothing new on the next poll.
        let again = f.poll().unwrap();
        assert!(again.is_empty());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn follower_tolerates_partial_trailing_chunk() {
        let set = sample_set(8);
        let path = temp_path("partial");
        let mut w = SegmentWriter::create(&path, &set).unwrap();
        w.append_intervals(&set.log, 0, 4).unwrap();
        let complete = std::fs::read(&path).unwrap();

        // Truncate mid-chunk: the follower must stop at the clean prefix.
        w.append_intervals(&set.log, 4, 8).unwrap();
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..complete.len() + 5]).unwrap();

        let mut f = SegmentFollower::open(&path);
        let batch = f.poll().unwrap();
        assert!(batch.header().is_some());
        assert_eq!(batch.rows().count(), 4);

        // The producer finishes the chunk: the follower resumes.
        std::fs::write(&path, &full).unwrap();
        let batch = f.poll().unwrap();
        assert!(batch.header().is_none());
        assert_eq!(batch.rows().count(), 4);
        assert_eq!(f.intervals_seen(), 8);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn follower_survives_a_missing_file() {
        let path = temp_path("missing");
        let _ = std::fs::remove_file(&path);
        let mut f = SegmentFollower::open(&path);
        let batch = f.poll().unwrap();
        assert!(batch.is_empty());
    }

    #[test]
    fn corruption_is_detected() {
        let set = sample_set(6);
        let path = temp_path("corrupt");
        let mut w = SegmentWriter::create(&path, &set).unwrap();
        w.append_intervals(&set.log, 0, 6).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip one payload byte in the last chunk.
        let n = bytes.len();
        bytes[n - 12] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        let mut f = SegmentFollower::open(&path);
        assert!(matches!(
            f.poll(),
            Err(SegmentError::ChecksumMismatch) | Err(SegmentError::Corrupt(_))
        ));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn resync_skips_a_corrupt_chunk_and_reports_the_gap() {
        let set = sample_set(30);
        let path = temp_path("resync");
        let mut w = SegmentWriter::create(&path, &set).unwrap();
        w.append_intervals(&set.log, 0, 10).unwrap();
        let clean = std::fs::read(&path).unwrap().len();
        w.append_intervals(&set.log, 10, 20).unwrap();
        let after_second = std::fs::read(&path).unwrap().len();
        w.append_intervals(&set.log, 20, 30).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[clean + 20] ^= 0x40; // flip one payload byte in the middle chunk
        std::fs::write(&path, &bytes).unwrap();

        let mut f = SegmentFollower::open(&path).with_resync(true);
        let batch = f.poll().unwrap();
        assert!(batch.header().is_some());
        let gaps: Vec<&SegmentGap> = batch
            .items
            .iter()
            .filter_map(|i| match i {
                SegmentItem::Gap(g) => Some(g),
                _ => None,
            })
            .collect();
        assert_eq!(gaps.len(), 1);
        assert_eq!((gaps[0].from_interval, gaps[0].to_interval), (10, 20));
        assert_eq!(gaps[0].bytes_skipped, after_second - clean);
        assert_eq!(f.intervals_seen(), 30);
        assert!(!f.is_resyncing());
        // Recovered rows are genuine: chunk 1 plus chunk 3, not the
        // corrupted middle.
        let runs: Vec<(usize, usize)> = batch
            .items
            .iter()
            .filter_map(|i| match i {
                SegmentItem::Intervals { first_t, rows } => Some((*first_t, rows.len())),
                _ => None,
            })
            .collect();
        assert_eq!(runs, vec![(0, 10), (20, 10)]);
        for (i, (sent, lost)) in batch.rows().enumerate() {
            let t = if i < 10 { i } else { i + 10 };
            for p in 0..2 {
                assert_eq!(sent[p], set.log.sent(t, PathId(p)));
                assert_eq!(lost[p], set.log.lost(t, PathId(p)));
            }
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn resync_pauses_on_a_corrupt_tail_until_a_valid_chunk_lands() {
        let set = sample_set(30);
        let path = temp_path("resync-tail");
        let mut w = SegmentWriter::create(&path, &set).unwrap();
        w.append_intervals(&set.log, 0, 10).unwrap();
        let clean = std::fs::read(&path).unwrap().len();
        w.append_intervals(&set.log, 10, 20).unwrap();
        let after_second = std::fs::read(&path).unwrap().len();
        w.append_intervals(&set.log, 20, 30).unwrap();
        let mut full = std::fs::read(&path).unwrap();
        full[clean + 20] ^= 0x40; // corrupt the middle chunk's payload

        // Only the corrupt chunk is on disk: the scan must pause, not
        // fail and not fabricate a recovery.
        std::fs::write(&path, &full[..after_second]).unwrap();
        let mut f = SegmentFollower::open(&path).with_resync(true);
        let batch = f.poll().unwrap();
        assert!(batch.header().is_some());
        assert_eq!(batch.rows().count(), 10);
        assert!(f.is_resyncing());

        // The next valid chunk lands: the scan recovers.
        std::fs::write(&path, &full).unwrap();
        let batch = f.poll().unwrap();
        assert!(!f.is_resyncing());
        assert_eq!(batch.rows().count(), 10);
        assert_eq!(f.intervals_seen(), 30);
        assert!(batch
            .items
            .iter()
            .any(|i| matches!(i, SegmentItem::Gap(g) if g.to_interval == 20)));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn implausible_chunk_length_is_corruption_not_backpressure() {
        let set = sample_set(4);
        let path = temp_path("implausible");
        let mut w = SegmentWriter::create(&path, &set).unwrap();
        w.append_intervals(&set.log, 0, 4).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        // A "chunk" whose length field says 2^60: a strict follower must
        // call it corrupt instead of waiting forever for the bytes.
        bytes.extend_from_slice(&SYNC_MARKER);
        bytes.push(TAG_INTERVALS);
        bytes.extend_from_slice(&(1u64 << 60).to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        let mut f = SegmentFollower::open(&path);
        assert!(matches!(
            f.poll(),
            Err(SegmentError::Corrupt("chunk length implausible"))
        ));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn trailing_garbage_that_cannot_be_a_marker_is_corruption() {
        let set = sample_set(4);
        let path = temp_path("garbage-tail");
        let mut w = SegmentWriter::create(&path, &set).unwrap();
        w.append_intervals(&set.log, 0, 4).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        // Three bytes that disagree with the sync marker's prefix: too
        // short to be a header, but already provably not a chunk start.
        bytes.extend_from_slice(b"zzz");
        std::fs::write(&path, &bytes).unwrap();
        let mut f = SegmentFollower::open(&path);
        assert!(matches!(
            f.poll(),
            Err(SegmentError::Corrupt("chunk sync marker mismatch"))
        ));
        std::fs::remove_file(&path).unwrap();
    }

    /// The headline regression for protocol v2: corrupt the *length
    /// field* of the final in-flight chunk — plausible (below
    /// `MAX_CHUNK_BYTES`) but wrong, so the chunk forever claims to be
    /// incomplete. The v2 follower disproves the claim at the next sync
    /// marker, reports the loss as a gap, and consumes the following
    /// chunk.
    #[test]
    fn v2_recovers_from_a_corrupt_length_field_via_the_sync_marker() {
        let set = sample_set(30);
        let path = temp_path("length-stall-v2");
        let mut w = SegmentWriter::create(&path, &set).unwrap();
        w.append_intervals(&set.log, 0, 10).unwrap();
        let clean = std::fs::read(&path).unwrap().len();
        w.append_intervals(&set.log, 10, 20).unwrap();
        let after_second = std::fs::read(&path).unwrap().len();
        w.append_intervals(&set.log, 20, 30).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        // The middle chunk's length field starts after its sync marker
        // and tag. Add 2^24 bytes: plausible, but the file ends first —
        // in v1 this claims "still being written" forever.
        bytes[clean + SYNC_MARKER.len() + 1 + 3] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();

        let mut f = SegmentFollower::open(&path).with_resync(true);
        let batch = f.poll().unwrap();
        assert!(batch.header().is_some());
        let gaps: Vec<&SegmentGap> = batch
            .items
            .iter()
            .filter_map(|i| match i {
                SegmentItem::Gap(g) => Some(g),
                _ => None,
            })
            .collect();
        assert_eq!(gaps.len(), 1, "items: {:?}", batch.items);
        assert_eq!((gaps[0].from_interval, gaps[0].to_interval), (10, 20));
        assert_eq!(gaps[0].bytes_skipped, after_second - clean);
        // No forged rows: chunk 1 and chunk 3, nothing in between.
        let runs: Vec<(usize, usize)> = batch
            .items
            .iter()
            .filter_map(|i| match i {
                SegmentItem::Intervals { first_t, rows } => Some((*first_t, rows.len())),
                _ => None,
            })
            .collect();
        assert_eq!(runs, vec![(0, 10), (20, 10)]);
        assert_eq!(f.intervals_seen(), 30);
        assert!(!f.is_resyncing());
        std::fs::remove_file(&path).unwrap();
    }

    /// The same length-field corruption in strict (no-resync) mode fails
    /// loudly instead of stalling: a later valid chunk disproves the
    /// "still being written" claim, and strict mode treats disproof as
    /// the corruption it is.
    #[test]
    fn v2_strict_mode_fails_loudly_on_a_disproven_trailing_chunk() {
        let set = sample_set(30);
        let path = temp_path("length-stall-strict");
        let mut w = SegmentWriter::create(&path, &set).unwrap();
        w.append_intervals(&set.log, 0, 10).unwrap();
        let clean = std::fs::read(&path).unwrap().len();
        w.append_intervals(&set.log, 10, 20).unwrap();
        w.append_intervals(&set.log, 20, 30).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[clean + SYNC_MARKER.len() + 1 + 3] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        let mut f = SegmentFollower::open(&path); // strict
        assert!(matches!(
            f.poll(),
            Err(SegmentError::Corrupt(
                "trailing chunk disproven by a later sync marker"
            ))
        ));
        std::fs::remove_file(&path).unwrap();
    }

    /// The frozen v1 format cannot fix the stall: the same corruption
    /// leaves the follower waiting forever even after a later chunk
    /// lands. Pinned as a documented limitation — this test is the
    /// motivation for version 2, not a bug to fix in v1.
    #[test]
    fn v1_stalls_forever_on_a_corrupt_length_field_documented_limitation() {
        let set = sample_set(30);
        let path = temp_path("length-stall-v1");
        let mut w = SegmentWriter::create_v1(&path, &set).unwrap();
        w.append_intervals(&set.log, 0, 10).unwrap();
        let clean = std::fs::read(&path).unwrap().len();
        w.append_intervals(&set.log, 10, 20).unwrap();
        w.append_intervals(&set.log, 20, 30).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        // v1 chunk layout: tag, then the length field.
        bytes[clean + 1 + 3] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();

        let mut f = SegmentFollower::open(&path).with_resync(true);
        let batch = f.poll().unwrap();
        assert_eq!(batch.rows().count(), 10);
        // The third chunk is on disk and valid, but the follower cannot
        // see past the lying length field: every further poll is empty.
        for _ in 0..5 {
            let again = f.poll().unwrap();
            assert!(again.is_empty(), "v1 unexpectedly recovered");
        }
        assert_eq!(f.intervals_seen(), 10);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn v2_follower_reads_v1_files_bit_identically() {
        let set = sample_set(12);
        let p1 = temp_path("interop-v1");
        let p2 = temp_path("interop-v2");
        let mut w1 = SegmentWriter::create_v1(&p1, &set).unwrap();
        let mut w2 = SegmentWriter::create(&p2, &set).unwrap();
        for w in [&mut w1, &mut w2] {
            w.append_intervals(&set.log, 0, 5).unwrap();
            w.append_intervals(&set.log, 5, 12).unwrap();
        }
        let mut f1 = SegmentFollower::open(&p1);
        let mut f2 = SegmentFollower::open(&p2);
        let b1 = f1.poll().unwrap();
        let b2 = f2.poll().unwrap();
        assert_eq!(b1.header().unwrap(), b2.header().unwrap());
        let rows1: Vec<_> = b1.rows().cloned().collect();
        let rows2: Vec<_> = b2.rows().cloned().collect();
        assert_eq!(rows1, rows2);
        assert_eq!(rows1.len(), 12);
        std::fs::remove_file(&p1).unwrap();
        std::fs::remove_file(&p2).unwrap();
    }

    #[test]
    fn future_segment_version_is_rejected_at_the_version_byte() {
        let set = sample_set(3);
        let path = temp_path("future-version");
        let mut w = SegmentWriter::create(&path, &set).unwrap();
        w.append_intervals(&set.log, 0, 3).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[MAGIC.len()] = 3;
        std::fs::write(&path, &bytes).unwrap();
        let mut f = SegmentFollower::open(&path);
        assert!(matches!(f.poll(), Err(SegmentError::UnsupportedVersion(3))));
        // A deployed v1 reader's prefix check was `version != 1` →
        // UnsupportedVersion(version): a v2 file fails it at the version
        // byte, before any length is interpreted — negotiation, never a
        // checksum or allocation error.
        bytes[MAGIC.len()] = VERSION;
        assert_eq!(bytes[MAGIC.len()], 2);
        assert_ne!(bytes[MAGIC.len()], VERSION_V1);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn writer_rejects_non_contiguous_appends() {
        let set = sample_set(5);
        let path = temp_path("contiguous");
        let mut w = SegmentWriter::create(&path, &set).unwrap();
        w.append_intervals(&set.log, 0, 2).unwrap();
        assert!(matches!(
            w.append_intervals(&set.log, 3, 5),
            Err(SegmentError::Corrupt("non-contiguous interval append"))
        ));
        assert!(matches!(
            w.append_intervals(&set.log, 2, 9),
            Err(SegmentError::Corrupt("interval range out of bounds"))
        ));
        w.append_intervals(&set.log, 2, 5).unwrap();
        assert_eq!(w.written(), 5);
        std::fs::remove_file(&path).unwrap();
    }
}
