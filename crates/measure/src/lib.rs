//! # nni-measure
//!
//! Measurement processing for neutrality inference (§6.2 and Appendix
//! Algorithm 2 of the paper):
//!
//! * [`record`] — the raw per-interval, per-path send/loss log produced by
//!   the emulator (or any measurement platform).
//! * [`normalize`] — Algorithm 2: per-interval discounting of every path's
//!   packets to the normalization group's common budget (hypergeometric
//!   retention draw), loss-threshold congestion-free indicators, and pathset
//!   performance numbers `y_Θ = -ln P(Θ congestion-free)`.
//! * [`observer`] — [`MeasuredObservations`], the measured implementation of
//!   `nni_core::Observations` that Algorithm 1 consumes.
//! * [`dataset`] — the acquisition/inference seam: [`MeasurementSet`] (the
//!   serializable bundle inference consumes), the [`MeasurementSource`]
//!   trait, and the [`MeasurementCache`].
//! * [`codec`] / [`jsonl`] — the hand-rolled binary and JSON-lines
//!   serializations of a measurement set (no serde; the tree is vendored).
//! * [`corpus`] — on-disk corpora of encoded sets ([`Corpus`],
//!   [`CorpusEntry`]).
//! * [`interval`] — the one measurement-interval binning rule, shared with
//!   the emulator's cached interval index.
//! * [`stream`] — streaming acquisition: [`StreamingLog`] (closed-interval
//!   watermark) and [`SlidingCounts`] (incremental Algorithm 2 counters,
//!   optional sliding window).
//! * [`segment`] — the append-friendly `.nniseg` on-disk segment format
//!   ([`SegmentWriter`]/[`SegmentFollower`]): a codec-v1 header chunk plus
//!   checksummed interval chunks, readable while being written, with
//!   optional corrupt-chunk resync (skip to the next valid chunk and
//!   report the loss as a [`SegmentGap`]).
//! * [`tail`] — [`CorpusTail`], a poll-based watcher over a growing corpus
//!   directory yielding complete entries, live segment intervals, and
//!   resync gaps.
//! * [`relay`] — the segment relay: [`RelaySource`] streams a directory's
//!   raw `.nniseg` bytes as checksummed frames (over a socket), and
//!   [`RemoteTail`] replays them through the same follower state machine
//!   a local tail runs — remote monitoring with identical resync and
//!   degraded-stream semantics.
//! * [`wire`] — the shared byte-level primitives every codec folds through
//!   ([`WireWriter`]/[`WireReader`]) plus checksummed stream framing
//!   ([`wire::write_frame`]/[`wire::read_frame`]) for the worker protocol.

pub mod codec;
pub mod corpus;
pub mod dataset;
pub mod interval;
pub mod jsonl;
pub mod normalize;
pub mod observer;
pub mod record;
pub mod relay;
pub mod segment;
pub mod stream;
pub mod tail;
pub mod wire;

pub use corpus::{
    entry_file_name, entry_order_key, segment_file_name, Corpus, CorpusEntry, CORPUS_EXT,
};
pub use dataset::{
    Cached, Fnv, MeasurementCache, MeasurementSet, MeasurementSource, Provenance, SetKey,
    SourceError,
};
pub use normalize::{
    delay_baselines, group_indicators, hypergeometric, interval_eval_count, interval_indicators,
    pathset_cf_counts, perf_from_counts, NormalizeConfig,
};
pub use observer::MeasuredObservations;
pub use record::{DelayStats, MeasurementLog, MergeError};
pub use relay::{decode_relay, relay_frame, RelaySource, RemoteTail, RELAY_MAGIC};
pub use segment::{
    IntervalRows, SegmentBatch, SegmentError, SegmentFollower, SegmentGap, SegmentItem,
    SegmentWriter, MAX_CHUNK_BYTES, SEGMENT_EXT, VERSION as SEGMENT_VERSION,
    VERSION_V1 as SEGMENT_VERSION_V1,
};
pub use stream::{PathsetHandle, SlidingCounts, StreamError, StreamingLog};
pub use tail::{CorpusTail, TailEvent};
pub use wire::{
    frame_bytes, frame_bytes_v1, read_frame, read_frame_v1, write_frame, FrameError, WireReader,
    WireWriter, FRAME_VERSION, FRAME_VERSION_V1, SYNC_MARKER,
};
