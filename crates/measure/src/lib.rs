//! # nni-measure
//!
//! Measurement processing for neutrality inference (§6.2 and Appendix
//! Algorithm 2 of the paper):
//!
//! * [`record`] — the raw per-interval, per-path send/loss log produced by
//!   the emulator (or any measurement platform).
//! * [`normalize`] — Algorithm 2: per-interval discounting of every path's
//!   packets to the normalization group's common budget (hypergeometric
//!   retention draw), loss-threshold congestion-free indicators, and pathset
//!   performance numbers `y_Θ = -ln P(Θ congestion-free)`.
//! * [`observer`] — [`MeasuredObservations`], the measured implementation of
//!   `nni_core::Observations` that Algorithm 1 consumes.

pub mod normalize;
pub mod observer;
pub mod record;

pub use normalize::{
    group_indicators, hypergeometric, pathset_cf_counts, perf_from_counts, NormalizeConfig,
};
pub use observer::MeasuredObservations;
pub use record::MeasurementLog;
