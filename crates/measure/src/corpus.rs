//! On-disk measurement corpora: a directory of binary-encoded
//! [`MeasurementSet`]s (extension `.nniset`), each entry a lazily decoded
//! [`MeasurementSource`].
//!
//! Recording a set writes `encode(set)` under a name derived from its
//! provenance (`<scenario>-<fingerprint>-s<seed>.nniset`, scenario
//! sanitized); listing reads only each file's provenance prefix, so a sweep
//! can enumerate keys over a large corpus without decoding any log.

use std::fs;
use std::path::{Path, PathBuf};

use crate::codec::{self, CodecError};
use crate::dataset::{MeasurementSet, MeasurementSource, Provenance, SetKey, SourceError};

/// File extension of corpus entries.
pub const CORPUS_EXT: &str = "nniset";

/// A directory of encoded measurement sets.
#[derive(Debug, Clone)]
pub struct Corpus {
    dir: PathBuf,
}

impl Corpus {
    /// Opens (and creates, if needed) a corpus directory.
    pub fn open(dir: impl Into<PathBuf>) -> std::io::Result<Corpus> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(Corpus { dir })
    }

    /// The corpus directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Stores one set; returns the file it was written to. Re-recording the
    /// same `(scenario fingerprint, seed)` overwrites the entry.
    pub fn store(&self, set: &MeasurementSet) -> std::io::Result<PathBuf> {
        let path = self.dir.join(entry_file_name(&set.provenance));
        fs::write(&path, codec::encode(set))?;
        Ok(path)
    }

    /// Lists the entries in stable replay order: by name prefix, then by
    /// seed compared *numerically* — `s10` never precedes `s2`, even in
    /// legacy unpadded file names ([`entry_order_key`]).
    pub fn entries(&self) -> Result<Vec<CorpusEntry>, SourceError> {
        let mut files: Vec<PathBuf> = fs::read_dir(&self.dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|e| e == CORPUS_EXT))
            .collect();
        files.sort_by_key(|p| entry_order_key(p));
        files.into_iter().map(CorpusEntry::open).collect()
    }

    /// Loads every entry eagerly, in entry order.
    pub fn load_all(&self) -> Result<Vec<MeasurementSet>, SourceError> {
        self.entries()?.iter().map(CorpusEntry::acquire).collect()
    }
}

/// Builds the canonical file name for a set's provenance. The seed is
/// zero-padded so lexicographic listings agree with numeric replay order
/// for any corpus recorded from here on; [`entry_order_key`] keeps legacy
/// unpadded names ordered correctly too.
pub fn entry_file_name(p: &Provenance) -> String {
    format!("{}.{CORPUS_EXT}", entry_stem(p))
}

/// The canonical file name of a *live segment* spill of the same
/// provenance (see [`crate::segment`]): one corpus slot, two extensions.
pub fn segment_file_name(p: &Provenance) -> String {
    format!("{}.{}", entry_stem(p), crate::segment::SEGMENT_EXT)
}

fn entry_stem(p: &Provenance) -> String {
    let slug: String = p
        .scenario
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .take(48)
        .collect();
    format!("{slug}-{:016x}-s{:06}", p.scenario_fingerprint, p.seed)
}

/// Replay/tail sort key of a corpus file: the name prefix, then the
/// trailing `-s<digits>` seed as an *integer* (entry 10 must not precede
/// entry 2), then the raw name as a tiebreak. Files without a parseable
/// seed suffix order by name alone.
pub fn entry_order_key(path: &Path) -> (String, Option<u64>, String) {
    let name = path
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_default();
    if let Some((prefix, seed)) = name.rsplit_once("-s") {
        if !seed.is_empty() && seed.bytes().all(|b| b.is_ascii_digit()) {
            if let Ok(n) = seed.parse::<u64>() {
                return (prefix.to_string(), Some(n), name);
            }
        }
    }
    (name.clone(), None, name)
}

/// One corpus file: provenance read eagerly (cheap prefix decode), the log
/// decoded only on [`acquire`](MeasurementSource::acquire).
#[derive(Debug, Clone)]
pub struct CorpusEntry {
    path: PathBuf,
    provenance: Provenance,
}

impl CorpusEntry {
    /// Opens one file, decoding only the provenance prefix.
    pub fn open(path: impl Into<PathBuf>) -> Result<CorpusEntry, SourceError> {
        let path = path.into();
        let bytes = fs::read(&path)?;
        let (provenance, _) = codec::decode_prefix(&bytes)?;
        Ok(CorpusEntry { path, provenance })
    }

    /// The file backing this entry.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The entry's provenance (from the prefix, no full decode).
    pub fn provenance(&self) -> &Provenance {
        &self.provenance
    }
}

impl MeasurementSource for CorpusEntry {
    fn key(&self) -> SetKey {
        SetKey {
            fingerprint: self.provenance.scenario_fingerprint,
            seed: self.provenance.seed,
        }
    }

    fn acquire(&self) -> Result<MeasurementSet, SourceError> {
        let bytes = fs::read(&self.path)?;
        let set = codec::decode(&bytes)?;
        if set.provenance != self.provenance {
            // The file changed between open() and acquire().
            return Err(SourceError::Codec(CodecError::BadValue(
                "provenance changed under the entry",
            )));
        }
        Ok(set)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::MeasurementLog;
    use nni_topology::{PathId, TopologyBuilder};

    fn tiny_set(name: &str, seed: u64) -> MeasurementSet {
        let mut b = TopologyBuilder::new();
        let h0 = b.host("h0");
        let h1 = b.host("h1");
        let l0 = b.link("l0", h0, h1).unwrap();
        b.path("p0", vec![l0]).unwrap();
        let mut log = MeasurementLog::new(1, 0.1);
        log.record_sent(0, PathId(0), seed + 5);
        MeasurementSet {
            topology: b.build(),
            classes: vec![vec![PathId(0)]],
            log,
            provenance: Provenance {
                scenario: name.into(),
                scenario_fingerprint: 0x1234,
                seed,
                build: "test".into(),
            },
        }
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("nni-corpus-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn store_list_load_round_trip() {
        let dir = temp_dir("roundtrip");
        let corpus = Corpus::open(&dir).unwrap();
        let a = tiny_set("alpha scenario", 1);
        let b = tiny_set("beta", 2);
        corpus.store(&b).unwrap();
        corpus.store(&a).unwrap();
        let entries = corpus.entries().unwrap();
        assert_eq!(entries.len(), 2);
        // Sorted by file name: "alpha_scenario-…" before "beta-…".
        assert_eq!(entries[0].provenance().scenario, "alpha scenario");
        assert_eq!(entries[0].key().seed, 1);
        let loaded = entries[1].acquire().unwrap();
        assert_eq!(loaded, b);
        assert_eq!(corpus.load_all().unwrap().len(), 2);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn restore_overwrites_same_key() {
        let dir = temp_dir("overwrite");
        let corpus = Corpus::open(&dir).unwrap();
        let a = tiny_set("gamma", 3);
        let p1 = corpus.store(&a).unwrap();
        let p2 = corpus.store(&a).unwrap();
        assert_eq!(p1, p2);
        assert_eq!(corpus.entries().unwrap().len(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn entries_order_numerically_by_seed() {
        let dir = temp_dir("order");
        let corpus = Corpus::open(&dir).unwrap();
        for seed in [10, 2, 1] {
            corpus.store(&tiny_set("delta", seed)).unwrap();
        }
        // A legacy unpadded name must interleave numerically, not
        // lexicographically (s7 after s2, before s10).
        let legacy = tiny_set("delta", 7);
        fs::write(
            dir.join("delta-0000000000001234-s7.nniset"),
            crate::codec::encode(&legacy),
        )
        .unwrap();
        let seeds: Vec<u64> = corpus
            .entries()
            .unwrap()
            .iter()
            .map(|e| e.key().seed)
            .collect();
        assert_eq!(seeds, vec![1, 2, 7, 10]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn non_corpus_files_are_ignored() {
        let dir = temp_dir("ignore");
        let corpus = Corpus::open(&dir).unwrap();
        fs::write(dir.join("README.md"), "not a set").unwrap();
        assert!(corpus.entries().unwrap().is_empty());
        fs::remove_dir_all(&dir).unwrap();
    }
}
