//! Per-interval, per-path packet accounting — the raw input of Algorithm 2.
//!
//! The emulator (or any measurement platform) records, for every measurement
//! interval `t` and path `p`, the number of packets sent `|M[t][p]|` and the
//! number of those lost `|L[t][p]|`. That is all the inference ever sees: no
//! link-level information crosses this boundary.

use nni_topology::PathId;

/// Per-(interval, path) one-way delay summary: the sample count and
/// nearest-rank percentiles of the delays of packets *sent* in that
/// interval (the same send-interval attribution the sent/lost counts use).
///
/// Percentiles are folded from integer-nanosecond samples, so they are
/// bit-deterministic across executors and platforms.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DelayStats {
    /// Number of delivered packets the percentiles summarize.
    pub count: u64,
    /// Median one-way delay in seconds.
    pub p50_s: f64,
    /// 90th-percentile one-way delay in seconds.
    pub p90_s: f64,
    /// 99th-percentile one-way delay in seconds.
    pub p99_s: f64,
}

impl DelayStats {
    /// Nearest-rank percentiles over ascending-sorted nanosecond samples.
    /// Returns `None` for an empty sample set.
    pub fn from_sorted_ns(sorted_ns: &[u64]) -> Option<DelayStats> {
        if sorted_ns.is_empty() {
            return None;
        }
        debug_assert!(sorted_ns.windows(2).all(|w| w[0] <= w[1]));
        let n = sorted_ns.len();
        let rank = |q: f64| {
            let idx = ((q * n as f64).ceil() as usize).clamp(1, n) - 1;
            sorted_ns[idx] as f64 / 1e9
        };
        Some(DelayStats {
            count: n as u64,
            p50_s: rank(0.50),
            p90_s: rank(0.90),
            p99_s: rank(0.99),
        })
    }
}

/// Raw measurement log: packets sent and lost per interval per path, plus
/// an optional per-cell one-way delay summary grid (recorded only when the
/// measurement platform was asked to — see `SimConfig::record_delay`).
#[derive(Debug, Clone, PartialEq)]
pub struct MeasurementLog {
    interval_s: f64,
    n_paths: usize,
    /// `sent[t][p]`, `lost[t][p]`.
    sent: Vec<Vec<u64>>,
    lost: Vec<Vec<u64>>,
    /// `delay[t][p]` when delay was recorded; `None` cells are intervals
    /// with no delivered packets on that path.
    delay: Option<Vec<Vec<Option<DelayStats>>>>,
}

impl MeasurementLog {
    /// Creates an empty log for `n_paths` paths with the given measurement
    /// interval (Table 1: 100 ms default).
    pub fn new(n_paths: usize, interval_s: f64) -> MeasurementLog {
        assert!(interval_s > 0.0, "interval must be positive");
        assert!(n_paths > 0, "need at least one path");
        MeasurementLog {
            interval_s,
            n_paths,
            sent: Vec::new(),
            lost: Vec::new(),
            delay: None,
        }
    }

    /// Measurement interval in seconds.
    pub fn interval_s(&self) -> f64 {
        self.interval_s
    }

    /// Number of paths.
    pub fn path_count(&self) -> usize {
        self.n_paths
    }

    /// Number of recorded intervals `T`.
    pub fn interval_count(&self) -> usize {
        self.sent.len()
    }

    /// Interval index for a timestamp — the same binning rule as the
    /// emulator's cached interval index (see [`crate::interval`]): a
    /// timestamp landing exactly on `k * interval_s` goes to interval `k`
    /// in both layers.
    pub fn interval_of(&self, time_s: f64) -> usize {
        crate::interval::interval_index(time_s, self.interval_s)
    }

    fn ensure(&mut self, t: usize) {
        while self.sent.len() <= t {
            self.sent.push(vec![0; self.n_paths]);
            self.lost.push(vec![0; self.n_paths]);
            if let Some(delay) = &mut self.delay {
                delay.push(vec![None; self.n_paths]);
            }
        }
    }

    /// Records `n` packets sent on `path` during interval `t`.
    pub fn record_sent(&mut self, t: usize, path: PathId, n: u64) {
        self.ensure(t);
        self.sent[t][path.index()] += n;
    }

    /// Records `n` packets lost on `path` that were sent during interval `t`.
    pub fn record_lost(&mut self, t: usize, path: PathId, n: u64) {
        self.ensure(t);
        self.lost[t][path.index()] += n;
    }

    /// `|M[t][p]|`.
    pub fn sent(&self, t: usize, path: PathId) -> u64 {
        self.sent[t][path.index()]
    }

    /// `|L[t][p]|`.
    pub fn lost(&self, t: usize, path: PathId) -> u64 {
        self.lost[t][path.index()]
    }

    /// Whether this log carries a one-way delay grid.
    pub fn has_delay(&self) -> bool {
        self.delay.is_some()
    }

    /// The delay summary of `(t, path)`, when delay was recorded and the
    /// cell saw delivered packets.
    pub fn delay(&self, t: usize, path: PathId) -> Option<DelayStats> {
        self.delay.as_ref().and_then(|d| d[t][path.index()])
    }

    /// Installs a complete delay grid (rows per interval, cells per path).
    /// Rows shorter than the log's current interval count are padded with
    /// empty cells; extra rows grow the log like `record_sent` would.
    ///
    /// # Panics
    ///
    /// Panics when a row's width is not the log's path count.
    pub fn set_delay(&mut self, mut rows: Vec<Vec<Option<DelayStats>>>) {
        for row in &rows {
            assert_eq!(row.len(), self.n_paths, "delay row width != path count");
        }
        if rows.len() > self.sent.len() {
            self.ensure(rows.len() - 1);
        }
        while rows.len() < self.sent.len() {
            rows.push(vec![None; self.n_paths]);
        }
        self.delay = Some(rows);
    }

    /// The path's delay baseline: its minimum per-interval p50 across the
    /// log — the least-queued view of the propagation + transmission floor
    /// that the delay feature measures inflation against. `None` when the
    /// log has no delay grid or the path never delivered a packet.
    pub fn delay_baseline(&self, path: PathId) -> Option<f64> {
        let rows = self.delay.as_ref()?;
        rows.iter()
            .filter_map(|row| row[path.index()].map(|s| s.p50_s))
            .min_by(|a, b| a.total_cmp(b))
    }

    /// Drops the first `k` intervals (warm-up: slow-start transients).
    pub fn drop_warmup(&mut self, k: usize) {
        let k = k.min(self.sent.len());
        self.sent.drain(0..k);
        self.lost.drain(0..k);
        if let Some(delay) = &mut self.delay {
            delay.drain(0..k.min(delay.len()));
        }
    }

    /// The *unnormalized* per-path congestion probability: the fraction of
    /// intervals in which the path lost more than `loss_threshold` of its
    /// packets — the quantity Figure 8 plots.
    ///
    /// Intervals with no traffic on the path are skipped.
    pub fn congestion_probability(&self, path: PathId, loss_threshold: f64) -> f64 {
        let mut active = 0usize;
        let mut congested = 0usize;
        for t in 0..self.interval_count() {
            let m = self.sent(t, path);
            if m == 0 {
                continue;
            }
            active += 1;
            if self.lost(t, path) as f64 > loss_threshold * m as f64 {
                congested += 1;
            }
        }
        if active == 0 {
            0.0
        } else {
            congested as f64 / active as f64
        }
    }

    /// Total packets sent on a path over the whole log.
    pub fn total_sent(&self, path: PathId) -> u64 {
        (0..self.interval_count()).map(|t| self.sent(t, path)).sum()
    }

    /// Total packets lost on a path over the whole log.
    pub fn total_lost(&self, path: PathId) -> u64 {
        (0..self.interval_count()).map(|t| self.lost(t, path)).sum()
    }

    /// Merges another log into this one by summing counts cell-wise — the
    /// multi-vantage aggregation primitive: several collectors observing the
    /// same paths over the same interval grid combine into one log.
    ///
    /// Both logs must use the *bit-identical* interval length and the same
    /// path count; interval counts may differ (the shorter log contributes
    /// zeros to the tail).
    pub fn merge(&mut self, other: &MeasurementLog) -> Result<(), MergeError> {
        if self.delay.is_some() || other.delay.is_some() {
            // Percentiles are order statistics: two cells' p90s cannot be
            // combined into the union's p90 without the raw samples, so a
            // cell-wise merge of delay-carrying logs would fabricate data.
            return Err(MergeError::DelayNotMergeable);
        }
        if self.interval_s.to_bits() != other.interval_s.to_bits() {
            return Err(MergeError::IntervalMismatch {
                ours: self.interval_s,
                theirs: other.interval_s,
            });
        }
        if self.n_paths != other.n_paths {
            return Err(MergeError::PathCountMismatch {
                ours: self.n_paths,
                theirs: other.n_paths,
            });
        }
        if other.sent.len() > self.sent.len() {
            self.ensure(other.sent.len() - 1);
        }
        for t in 0..other.sent.len() {
            for p in 0..self.n_paths {
                self.sent[t][p] += other.sent[t][p];
                self.lost[t][p] += other.lost[t][p];
            }
        }
        Ok(())
    }
}

/// Why two measurement logs refused to merge.
#[derive(Debug, Clone, PartialEq)]
pub enum MergeError {
    /// The interval lengths differ (compared bit-for-bit: logs binned on
    /// different grids cannot be summed cell-wise).
    IntervalMismatch {
        /// This log's interval.
        ours: f64,
        /// The other log's interval.
        theirs: f64,
    },
    /// The path counts differ.
    PathCountMismatch {
        /// This log's path count.
        ours: usize,
        /// The other log's path count.
        theirs: usize,
    },
    /// At least one side carries a delay grid. Delay percentiles are order
    /// statistics and cannot be summed cell-wise; multi-vantage aggregation
    /// is a loss-only operation.
    DelayNotMergeable,
}

impl std::fmt::Display for MergeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MergeError::IntervalMismatch { ours, theirs } => {
                write!(f, "interval mismatch: {ours} s vs {theirs} s")
            }
            MergeError::PathCountMismatch { ours, theirs } => {
                write!(f, "path count mismatch: {ours} vs {theirs}")
            }
            MergeError::DelayNotMergeable => {
                write!(
                    f,
                    "logs carrying delay percentiles cannot be merged cell-wise"
                )
            }
        }
    }
}

impl std::error::Error for MergeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_accumulate() {
        let mut log = MeasurementLog::new(2, 0.1);
        log.record_sent(0, PathId(0), 10);
        log.record_sent(0, PathId(0), 5);
        log.record_lost(0, PathId(0), 2);
        assert_eq!(log.sent(0, PathId(0)), 15);
        assert_eq!(log.lost(0, PathId(0)), 2);
        assert_eq!(log.sent(0, PathId(1)), 0);
    }

    #[test]
    fn intervals_grow_on_demand() {
        let mut log = MeasurementLog::new(1, 0.1);
        log.record_sent(4, PathId(0), 1);
        assert_eq!(log.interval_count(), 5);
        assert_eq!(log.sent(2, PathId(0)), 0);
    }

    #[test]
    fn interval_of_maps_time() {
        let log = MeasurementLog::new(1, 0.1);
        assert_eq!(log.interval_of(0.0), 0);
        assert_eq!(log.interval_of(0.05), 0);
        assert_eq!(log.interval_of(0.1), 1);
        assert_eq!(log.interval_of(1.234), 12);
    }

    #[test]
    fn congestion_probability_thresholds() {
        let mut log = MeasurementLog::new(1, 0.1);
        let p = PathId(0);
        // Interval 0: 100 sent, 5 lost (5% > 1%) -> congested.
        log.record_sent(0, p, 100);
        log.record_lost(0, p, 5);
        // Interval 1: 100 sent, 0 lost -> congestion-free.
        log.record_sent(1, p, 100);
        // Interval 2: idle -> skipped.
        log.record_sent(3, p, 100);
        log.record_lost(3, p, 1); // exactly 1%: NOT above threshold
        assert!((log.congestion_probability(p, 0.01) - 1.0 / 3.0).abs() < 1e-12);
        // With a 10% threshold nothing is congested.
        assert_eq!(log.congestion_probability(p, 0.10), 0.0);
    }

    #[test]
    fn interval_of_agrees_with_the_emulator_boundary_walk() {
        // A timestamp landing exactly on a ULP-walked interval boundary
        // must bin into that interval — the regression this satellite
        // exists for: `interval_of` and the emulator's cached index now
        // share one rule (`crate::interval`), so a boundary packet can
        // never be logged into interval k by one layer and k-1 by the
        // other.
        use crate::interval::{interval_boundary_ns, interval_index_ns};
        for interval_s in [0.1, 0.05, 0.3, 1.0 / 3.0, 0.123456789] {
            let log = MeasurementLog::new(1, interval_s);
            for k in 1u64..200 {
                let boundary_ns = interval_boundary_ns(interval_s, k);
                let time_s = boundary_ns as f64 / 1e9;
                assert_eq!(
                    log.interval_of(time_s),
                    interval_index_ns(boundary_ns, interval_s),
                    "boundary {k} at interval {interval_s}"
                );
                assert_eq!(log.interval_of(time_s), k as usize);
                // One nanosecond earlier belongs to the previous interval.
                assert_eq!(
                    log.interval_of((boundary_ns - 1) as f64 / 1e9),
                    (k - 1) as usize
                );
            }
        }
    }

    #[test]
    fn merge_sums_counts_cell_wise() {
        let mut a = MeasurementLog::new(2, 0.1);
        a.record_sent(0, PathId(0), 10);
        a.record_lost(0, PathId(0), 1);
        let mut b = MeasurementLog::new(2, 0.1);
        b.record_sent(0, PathId(0), 5);
        b.record_lost(0, PathId(0), 2);
        b.record_sent(3, PathId(1), 7); // longer log grows the target
        a.merge(&b).expect("compatible logs merge");
        assert_eq!(a.sent(0, PathId(0)), 15);
        assert_eq!(a.lost(0, PathId(0)), 3);
        assert_eq!(a.interval_count(), 4);
        assert_eq!(a.sent(3, PathId(1)), 7);
        // Merging a shorter log leaves the tail untouched.
        let mut c = MeasurementLog::new(2, 0.1);
        c.record_sent(0, PathId(1), 1);
        a.merge(&c).unwrap();
        assert_eq!(a.sent(0, PathId(1)), 1);
        assert_eq!(a.interval_count(), 4);
    }

    #[test]
    fn merge_rejects_mismatched_shapes() {
        let mut a = MeasurementLog::new(2, 0.1);
        let b = MeasurementLog::new(3, 0.1);
        assert_eq!(
            a.merge(&b),
            Err(MergeError::PathCountMismatch { ours: 2, theirs: 3 })
        );
        let c = MeasurementLog::new(2, 0.2);
        assert_eq!(
            a.merge(&c),
            Err(MergeError::IntervalMismatch {
                ours: 0.1,
                theirs: 0.2
            })
        );
    }

    #[test]
    fn warmup_dropping() {
        let mut log = MeasurementLog::new(1, 0.1);
        log.record_sent(0, PathId(0), 7);
        log.record_sent(1, PathId(0), 9);
        log.drop_warmup(1);
        assert_eq!(log.interval_count(), 1);
        assert_eq!(log.sent(0, PathId(0)), 9);
        assert_eq!(log.total_sent(PathId(0)), 9);
        assert_eq!(log.total_lost(PathId(0)), 0);
    }

    #[test]
    fn delay_stats_nearest_rank() {
        assert_eq!(DelayStats::from_sorted_ns(&[]), None);
        let s = DelayStats::from_sorted_ns(&[1_000_000]).unwrap();
        assert_eq!(s.count, 1);
        assert_eq!(s.p50_s, 0.001);
        assert_eq!(s.p90_s, 0.001);
        assert_eq!(s.p99_s, 0.001);
        // Ten samples 1..=10 ms: p50 = 5 ms, p90 = 9 ms, p99 = 10 ms.
        let ns: Vec<u64> = (1..=10).map(|k| k * 1_000_000).collect();
        let s = DelayStats::from_sorted_ns(&ns).unwrap();
        assert_eq!(s.count, 10);
        assert_eq!(s.p50_s, 0.005);
        assert_eq!(s.p90_s, 0.009);
        assert_eq!(s.p99_s, 0.010);
    }

    fn stats(ms: u64) -> DelayStats {
        DelayStats::from_sorted_ns(&[ms * 1_000_000]).unwrap()
    }

    #[test]
    fn delay_grid_follows_the_log() {
        let mut log = MeasurementLog::new(2, 0.1);
        log.record_sent(0, PathId(0), 10);
        log.record_sent(2, PathId(0), 10);
        assert!(!log.has_delay());
        assert_eq!(log.delay(0, PathId(0)), None);
        log.set_delay(vec![vec![Some(stats(5)), None], vec![None, Some(stats(7))]]);
        assert!(log.has_delay());
        // The short grid was padded to the log's three intervals …
        assert_eq!(log.delay(2, PathId(0)), None);
        assert_eq!(log.delay(0, PathId(0)), Some(stats(5)));
        assert_eq!(log.delay(1, PathId(1)), Some(stats(7)));
        // … and subsequent growth extends both grids.
        log.record_sent(4, PathId(1), 1);
        assert_eq!(log.interval_count(), 5);
        assert_eq!(log.delay(4, PathId(1)), None);
        // Warm-up dropping drains delay rows in lockstep.
        log.drop_warmup(1);
        assert_eq!(log.delay(0, PathId(1)), Some(stats(7)));
        assert_eq!(log.delay_baseline(PathId(1)), Some(0.007));
        assert_eq!(log.delay_baseline(PathId(0)), None);
    }

    #[test]
    fn delay_baseline_is_min_p50() {
        let mut log = MeasurementLog::new(1, 0.1);
        log.record_sent(2, PathId(0), 1);
        log.set_delay(vec![
            vec![Some(stats(9))],
            vec![Some(stats(4))],
            vec![Some(stats(30))],
        ]);
        assert_eq!(log.delay_baseline(PathId(0)), Some(0.004));
    }

    #[test]
    fn merge_refuses_delay_grids() {
        let mut a = MeasurementLog::new(1, 0.1);
        a.record_sent(0, PathId(0), 1);
        let mut b = a.clone();
        b.set_delay(vec![vec![Some(stats(5))]]);
        assert_eq!(a.merge(&b), Err(MergeError::DelayNotMergeable));
        assert_eq!(
            b.merge(&a.clone()),
            Err(MergeError::DelayNotMergeable),
            "a delay-carrying target must refuse loss-only input too"
        );
        // Loss-only logs still merge.
        let mut c = a.clone();
        c.merge(&a).unwrap();
        assert_eq!(c.sent(0, PathId(0)), 2);
    }
}
