//! Segment relay: ship a growing corpus directory's live `.nniseg` bytes
//! over any byte stream — in practice a TCP socket — so a *remote*
//! follower sees exactly the bytes a local [`CorpusTail`](crate::CorpusTail)
//! would read from disk.
//!
//! The design goal is semantic transparency: the relay moves **raw file
//! bytes**, not decoded items. The receiving [`RemoteTail`] reassembles
//! each file into an append-only buffer and runs the very same
//! [`SegmentFollower::poll_bytes`] state machine a local tail runs, in
//! resync mode — so corrupt chunks degrade to
//! [`TailEvent::SegmentGap`]s, header corruption is terminal per file,
//! and the v2 sync-marker recovery semantics hold bit-for-bit, *by
//! construction* rather than by reimplementation.
//!
//! # Protocol
//!
//! One relay message is one standard v2 [`wire`](crate::wire) frame with
//! magic [`RELAY_MAGIC`] whose payload is:
//!
//! ```text
//! name    str       relative file name (e.g. "pol-02-s000007.nniseg")
//! offset  varint    byte offset of `data` within the file
//! data    …         the newly appended raw bytes (rest of the payload)
//! ```
//!
//! Within one connection a server sends each file's bytes contiguously
//! (`offset` always equals the bytes already sent for that file), so a
//! client treats a discontinuity as a broken connection, not a gap —
//! segment-level loss is the follower's job to classify, transport-level
//! loss is a transport error.
//!
//! The server side is [`RelaySource`]: per-connection cursors over the
//! directory, a [`pump`](RelaySource::pump) that frames whatever newly
//! landed, and a [`serve`](RelaySource::serve) loop that pumps until the
//! peer goes away. Only `.nniseg` traffic is relayed: complete `.nniset`
//! entries are batch artifacts — remote *monitoring* is about live
//! segments (this is `nni-serviced --serve-segments` / `nni-live
//! --connect`).

use std::collections::{HashMap, HashSet};
use std::fs;
use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::mpsc::{Receiver, TryRecvError};
use std::time::Duration;

use crate::codec::CodecError;
use crate::corpus::entry_order_key;
use crate::segment::{SegmentFollower, SegmentItem, SEGMENT_EXT};
use crate::tail::TailEvent;
use crate::wire::{frame_bytes, read_frame, FrameError, WireReader, WireWriter};

/// Frame magic of the segment-relay protocol.
pub const RELAY_MAGIC: &[u8; 7] = b"NNISEGR";

/// Serializes one relay message: `data` landed at byte `offset` of the
/// segment file `name`.
pub fn relay_frame(name: &str, offset: u64, data: &[u8]) -> Vec<u8> {
    let mut w = WireWriter::new();
    w.str(name);
    w.vu(offset);
    w.raw(data);
    frame_bytes(RELAY_MAGIC, w.bytes())
}

/// Decodes one relay frame payload back into `(name, offset, data)`.
pub fn decode_relay(payload: &[u8]) -> Result<(String, u64, Vec<u8>), CodecError> {
    let mut r = WireReader::new(payload);
    let name = r.str()?;
    let offset = r.vu()?;
    let data = r.take(r.remaining())?.to_vec();
    Ok((name, offset, data))
}

/// Server side of the relay: per-connection send cursors over one corpus
/// directory's `.nniseg` files. One instance serves one connection (each
/// client gets the full history from byte zero).
#[derive(Debug)]
pub struct RelaySource {
    dir: PathBuf,
    /// Bytes already sent per file.
    sent: HashMap<PathBuf, usize>,
}

impl RelaySource {
    /// A source over `dir` that has sent nothing yet.
    pub fn new(dir: impl Into<PathBuf>) -> RelaySource {
        RelaySource {
            dir: dir.into(),
            sent: HashMap::new(),
        }
    }

    /// Scans the directory once and writes one frame per segment file
    /// that grew, in stable replay order. Returns how many frames went
    /// out. Stream errors surface; a directory that does not exist yet
    /// is an empty scan (a relay can be serving before its producer
    /// first spills), and a file that vanished mid-scan is skipped (its
    /// cursor survives in case it reappears).
    pub fn pump(&mut self, out: &mut impl Write) -> std::io::Result<usize> {
        let entries = match fs::read_dir(&self.dir) {
            Ok(entries) => entries,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(0),
            Err(e) => return Err(e),
        };
        let mut files: Vec<PathBuf> = entries
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|e| e == SEGMENT_EXT))
            .collect();
        files.sort_by_key(|p| entry_order_key(p));

        let mut frames = 0;
        for path in files {
            let Ok(bytes) = fs::read(&path) else {
                continue;
            };
            let sent = self.sent.entry(path.clone()).or_insert(0);
            if bytes.len() <= *sent {
                continue;
            }
            let name = path
                .file_name()
                .expect("segment files have names")
                .to_string_lossy()
                .into_owned();
            out.write_all(&relay_frame(&name, *sent as u64, &bytes[*sent..]))?;
            *sent = bytes.len();
            frames += 1;
        }
        Ok(frames)
    }

    /// Pumps in a loop until the stream dies (the peer disconnecting is
    /// the normal way a relay connection ends — its error is returned so
    /// a server can log it). Sleeps `poll` between empty scans.
    pub fn serve(&mut self, out: &mut impl Write, poll: Duration) -> std::io::Error {
        loop {
            match self.pump(out).and_then(|n| {
                out.flush()?;
                Ok(n)
            }) {
                Ok(0) => std::thread::sleep(poll.max(Duration::from_millis(1))),
                Ok(_) => {}
                Err(e) => return e,
            }
        }
    }
}

/// One relayed file on the client: its reassembled byte buffer and the
/// follower state machine running over it.
#[derive(Debug)]
struct RemoteFile {
    buffer: Vec<u8>,
    follower: SegmentFollower,
}

/// What the reader thread delivers per relay frame: `(name, offset,
/// data)` on success, the terminal frame error otherwise.
type RelayMsg = Result<(String, u64, Vec<u8>), FrameError>;

/// Client side of the relay: a [`CorpusTail`](crate::CorpusTail)-shaped
/// poll surface over a relay connection. A background thread reads
/// frames; [`poll`](RemoteTail::poll) drains them, reassembles per-file
/// buffers, and yields the same [`TailEvent`]s a local tail would — with
/// resync enabled, so the degraded-stream semantics match exactly.
#[derive(Debug)]
pub struct RemoteTail {
    rx: Receiver<RelayMsg>,
    files: HashMap<String, RemoteFile>,
    /// Files that hit a terminal follower error (reported once).
    dead: HashSet<String>,
    /// The connection ended (clean EOF or error, already reported).
    finished: bool,
}

impl RemoteTail {
    /// A tail over any frame-carrying byte stream. The reader thread owns
    /// `input` and runs until end-of-stream or a frame error.
    pub fn from_reader(mut input: impl Read + Send + 'static) -> RemoteTail {
        let (tx, rx) = std::sync::mpsc::channel();
        std::thread::spawn(move || loop {
            match read_frame(&mut input, RELAY_MAGIC) {
                Ok(Some(payload)) => {
                    let msg = decode_relay(&payload).map_err(FrameError::from);
                    let bad = msg.is_err();
                    if tx.send(msg).is_err() || bad {
                        return;
                    }
                }
                Ok(None) => return, // clean shutdown: channel hangs up
                Err(e) => {
                    let _ = tx.send(Err(e));
                    return;
                }
            }
        });
        RemoteTail {
            rx,
            files: HashMap::new(),
            dead: HashSet::new(),
            finished: false,
        }
    }

    /// Connects to a relay server (`nni-serviced --serve-segments`).
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<RemoteTail> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        Ok(RemoteTail::from_reader(stream))
    }

    /// Whether the connection is over: no more events will ever arrive.
    /// (Events already received still drain through [`poll`]
    /// first — `finished` flips only once the queue is empty.)
    ///
    /// [`poll`]: RemoteTail::poll
    pub fn finished(&self) -> bool {
        self.finished
    }

    /// Drains everything the connection has delivered since the last
    /// call, in arrival order. An empty vector means no change (or a
    /// finished connection). Transport-level failures — a dead stream,
    /// an undecodable frame, an offset discontinuity — surface as `Err`
    /// once; per-file segment corruption degrades exactly as a local
    /// tail's would ([`TailEvent::SegmentGap`] / [`TailEvent::Corrupt`]).
    pub fn poll(&mut self) -> std::io::Result<Vec<TailEvent>> {
        let mut events = Vec::new();
        loop {
            match self.rx.try_recv() {
                Ok(Ok((name, offset, data))) => self.apply(name, offset, &data, &mut events)?,
                Ok(Err(e)) => {
                    self.finished = true;
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        format!("relay connection failed: {e}"),
                    ));
                }
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => {
                    self.finished = true;
                    break;
                }
            }
        }
        Ok(events)
    }

    fn apply(
        &mut self,
        name: String,
        offset: u64,
        data: &[u8],
        events: &mut Vec<TailEvent>,
    ) -> std::io::Result<()> {
        if self.dead.contains(&name) {
            return Ok(()); // terminal per-file error already reported
        }
        let file = self.files.entry(name.clone()).or_insert_with(|| {
            RemoteFile {
                buffer: Vec::new(),
                // Resync mode, like CorpusTail: a remote consumer wants a
                // degraded stream, not a dead one. The path is a label —
                // this follower is only ever fed bytes, never the disk.
                follower: SegmentFollower::open(&name).with_resync(true),
            }
        });
        if offset != file.buffer.len() as u64 {
            self.finished = true;
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!(
                    "relay offset discontinuity for {name:?}: got {offset}, expected {}",
                    file.buffer.len()
                ),
            ));
        }
        file.buffer.extend_from_slice(data);
        let path = PathBuf::from(&name);
        match file.follower.poll_bytes(&file.buffer) {
            Ok(batch) => {
                for item in batch.items {
                    events.push(match item {
                        SegmentItem::Header(set) => TailEvent::SegmentHeader {
                            path: path.clone(),
                            set: *set,
                        },
                        SegmentItem::Intervals { first_t, rows } => TailEvent::SegmentIntervals {
                            path: path.clone(),
                            first_t,
                            rows,
                        },
                        SegmentItem::Gap(gap) => TailEvent::SegmentGap {
                            path: path.clone(),
                            from_interval: gap.from_interval,
                            to_interval: gap.to_interval,
                            bytes_skipped: gap.bytes_skipped,
                        },
                    });
                }
            }
            Err(e) => {
                self.files.remove(&name);
                self.dead.insert(name);
                events.push(TailEvent::Corrupt {
                    path,
                    message: e.to_string(),
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::segment_file_name;
    use crate::dataset::{MeasurementSet, Provenance};
    use crate::record::MeasurementLog;
    use crate::segment::SegmentWriter;
    use nni_topology::{PathId, TopologyBuilder};

    fn tiny_set(name: &str, seed: u64, intervals: usize) -> MeasurementSet {
        let mut b = TopologyBuilder::new();
        let h0 = b.host("h0");
        let h1 = b.host("h1");
        let l0 = b.link("l0", h0, h1).unwrap();
        b.path("p0", vec![l0]).unwrap();
        let mut log = MeasurementLog::new(1, 0.1);
        for t in 0..intervals {
            log.record_sent(t, PathId(0), 100 + seed + t as u64);
        }
        MeasurementSet {
            topology: b.build(),
            classes: vec![vec![PathId(0)]],
            log,
            provenance: Provenance {
                scenario: name.into(),
                scenario_fingerprint: 0xAB,
                seed,
                build: "test".into(),
            },
        }
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "nni-relay-test-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    /// A tail with no live connection: tests drive [`RemoteTail::apply`]
    /// synchronously (the reader thread in real use does exactly this,
    /// one frame at a time).
    fn bare_tail() -> RemoteTail {
        RemoteTail::from_reader(std::io::empty())
    }

    /// Pumps `src` once and applies every resulting frame to `tail`,
    /// returning the events — one deterministic relay round trip.
    fn relay_once(src: &mut RelaySource, tail: &mut RemoteTail) -> Vec<TailEvent> {
        let mut wire = Vec::new();
        src.pump(&mut wire).unwrap();
        let mut cursor = std::io::Cursor::new(wire);
        let mut events = Vec::new();
        while let Some(payload) = read_frame(&mut cursor, RELAY_MAGIC).unwrap() {
            let (name, offset, data) = decode_relay(&payload).unwrap();
            tail.apply(name, offset, &data, &mut events).unwrap();
        }
        events
    }

    /// Structural fingerprint of an event stream, for local-vs-remote
    /// parity assertions (paths differ by construction: local events
    /// carry absolute paths, relayed ones the relative name).
    fn shape(events: &[TailEvent]) -> Vec<String> {
        events
            .iter()
            .map(|e| match e {
                TailEvent::Entry(_) => "entry".into(),
                TailEvent::SegmentHeader { set, .. } => {
                    format!("header seed={}", set.provenance.seed)
                }
                TailEvent::SegmentIntervals { first_t, rows, .. } => {
                    format!("intervals {first_t}+{} {:?}", rows.len(), rows)
                }
                TailEvent::SegmentGap {
                    from_interval,
                    to_interval,
                    bytes_skipped,
                    ..
                } => format!("gap {from_interval}..{to_interval} ({bytes_skipped}B)"),
                TailEvent::Corrupt { message, .. } => format!("corrupt {message}"),
            })
            .collect()
    }

    #[test]
    fn relay_frames_round_trip() {
        let frame = relay_frame("a.nniseg", 42, b"payload bytes");
        let mut cursor = std::io::Cursor::new(frame);
        let payload = read_frame(&mut cursor, RELAY_MAGIC).unwrap().unwrap();
        let (name, offset, data) = decode_relay(&payload).unwrap();
        assert_eq!(name, "a.nniseg");
        assert_eq!(offset, 42);
        assert_eq!(data, b"payload bytes");
    }

    #[test]
    fn remote_tail_matches_local_tail_on_a_growing_segment() {
        let dir = temp_dir("grow");
        let set = tiny_set("grow", 3, 9);
        let path = dir.join(segment_file_name(&set.provenance));
        let mut w = SegmentWriter::create(&path, &set).unwrap();

        let mut local = crate::CorpusTail::open(&dir).unwrap();
        let mut src = RelaySource::new(&dir);
        let mut remote = bare_tail();

        w.append_intervals(&set.log, 0, 4).unwrap();
        let l1 = local.poll().unwrap();
        let r1 = relay_once(&mut src, &mut remote);
        assert_eq!(shape(&l1), shape(&r1));
        assert!(!r1.is_empty(), "header + first rows crossed the relay");

        w.append_intervals(&set.log, 4, 9).unwrap();
        let l2 = local.poll().unwrap();
        let r2 = relay_once(&mut src, &mut remote);
        assert_eq!(shape(&l2), shape(&r2));

        // Quiescent: neither side invents traffic.
        assert!(local.poll().unwrap().is_empty());
        assert!(relay_once(&mut src, &mut remote).is_empty());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_chunk_degrades_identically_on_both_sides() {
        let dir = temp_dir("parity-gap");
        let set = tiny_set("parity", 5, 12);
        let path = dir.join(segment_file_name(&set.provenance));
        let mut w = SegmentWriter::create(&path, &set).unwrap();
        w.append_intervals(&set.log, 0, 4).unwrap();
        let clean = fs::read(&path).unwrap().len();
        w.append_intervals(&set.log, 4, 8).unwrap();
        w.append_intervals(&set.log, 8, 12).unwrap();
        let mut bytes = fs::read(&path).unwrap();
        bytes[clean + 20] ^= 0x10; // middle chunk's payload
        fs::write(&path, &bytes).unwrap();

        let local = crate::CorpusTail::open(&dir).unwrap().poll();
        let remote = relay_once(&mut RelaySource::new(&dir), &mut bare_tail());
        let local = local.unwrap();
        assert_eq!(shape(&local), shape(&remote));
        assert!(
            shape(&remote).iter().any(|s| s.starts_with("gap 4..8")),
            "the corrupt middle chunk degrades to the same gap remotely: {:?}",
            shape(&remote)
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_length_field_recovers_remotely_via_the_sync_marker() {
        // The headline v2 fix, over the wire: a trailing chunk whose
        // *length* field is corrupted is disproven by the next sync
        // marker and the remote stream resumes — no stall.
        let dir = temp_dir("parity-len");
        let set = tiny_set("len", 6, 12);
        let path = dir.join(segment_file_name(&set.provenance));
        let mut w = SegmentWriter::create(&path, &set).unwrap();
        w.append_intervals(&set.log, 0, 4).unwrap();
        let clean = fs::read(&path).unwrap().len();
        w.append_intervals(&set.log, 4, 8).unwrap();
        w.append_intervals(&set.log, 8, 12).unwrap();
        let mut bytes = fs::read(&path).unwrap();
        // Flip a high byte of the middle chunk's length field.
        bytes[clean + crate::wire::SYNC_MARKER.len() + 1 + 3] ^= 0x01;
        fs::write(&path, &bytes).unwrap();

        let local = crate::CorpusTail::open(&dir).unwrap().poll().unwrap();
        let remote = relay_once(&mut RelaySource::new(&dir), &mut bare_tail());
        assert_eq!(shape(&local), shape(&remote));
        let shapes = shape(&remote);
        assert!(
            shapes.iter().any(|s| s.starts_with("gap ")),
            "length corruption resynced instead of stalling: {shapes:?}"
        );
        assert!(
            shapes.iter().any(|s| s.starts_with("intervals 8+")),
            "the stream resumed after the gap: {shapes:?}"
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn header_corruption_is_terminal_and_reported_once() {
        let dir = temp_dir("parity-header");
        let set = tiny_set("hdr", 7, 6);
        let path = dir.join(segment_file_name(&set.provenance));
        let mut w = SegmentWriter::create(&path, &set).unwrap();
        w.append_intervals(&set.log, 0, 3).unwrap();
        let mut bytes = fs::read(&path).unwrap();
        bytes[40] ^= 0xFF; // deep inside the header chunk
        fs::write(&path, &bytes).unwrap();

        let mut src = RelaySource::new(&dir);
        let mut remote = bare_tail();
        let events = relay_once(&mut src, &mut remote);
        assert!(
            matches!(&events[..], [TailEvent::Corrupt { .. }]),
            "{:?}",
            shape(&events)
        );
        // Later growth of a dead file is ignored, not re-reported.
        w.append_intervals(&set.log, 3, 6).unwrap();
        assert!(relay_once(&mut src, &mut remote).is_empty());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn offset_discontinuity_is_a_transport_error() {
        let mut tail = bare_tail();
        let mut events = Vec::new();
        tail.apply("x.nniseg".into(), 0, b"abc", &mut events)
            .unwrap();
        let err = tail
            .apply("x.nniseg".into(), 7, b"later", &mut events)
            .unwrap_err();
        assert!(err.to_string().contains("offset discontinuity"), "{err}");
        assert!(tail.finished());
    }

    #[test]
    fn reader_thread_delivers_and_finishes_on_clean_eof() {
        // The threaded path end to end: frames through a real reader
        // thread, drained by poll, then a clean EOF finishes the tail.
        let dir = temp_dir("threaded");
        let set = tiny_set("thread", 9, 5);
        let path = dir.join(segment_file_name(&set.provenance));
        let mut w = SegmentWriter::create(&path, &set).unwrap();
        w.append_intervals(&set.log, 0, 5).unwrap();
        let mut wire = Vec::new();
        RelaySource::new(&dir).pump(&mut wire).unwrap();

        let mut tail = RemoteTail::from_reader(std::io::Cursor::new(wire));
        let mut events = Vec::new();
        while !tail.finished() {
            events.extend(tail.poll().unwrap());
            std::thread::yield_now();
        }
        events.extend(tail.poll().unwrap());
        let shapes = shape(&events);
        assert!(shapes[0].starts_with("header"), "{shapes:?}");
        assert!(shapes[1].starts_with("intervals 0+5"), "{shapes:?}");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn garbage_on_the_wire_surfaces_as_a_connection_error() {
        let mut tail = RemoteTail::from_reader(std::io::Cursor::new(b"not frames".to_vec()));
        let err = loop {
            match tail.poll() {
                Ok(_) if !tail.finished() => std::thread::yield_now(),
                Ok(_) => panic!("a garbage stream must fail, not finish cleanly"),
                Err(e) => break e,
            }
        };
        assert!(err.to_string().contains("relay connection failed"), "{err}");
        assert!(tail.finished());
    }
}
