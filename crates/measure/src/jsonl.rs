//! Human-readable JSON-lines dump of a [`MeasurementSet`] — the greppable
//! twin of the binary codec (see [`crate::codec`]), hand-rolled for the same
//! offline-vendored reason.
//!
//! One JSON object per line:
//!
//! ```text
//! {"type":"meta","version":1,"scenario":…,"fingerprint":…,"seed":…,"build":…}
//! {"type":"node","kind":"host","name":"h1"}            (one per node)
//! {"type":"link","src":0,"dst":2,"capacity_bps":…,…}   (one per link)
//! {"type":"path","name":"p1","links":[0,3]}            (one per path)
//! {"type":"classes","classes":[[0,1],[2,3]]}
//! {"type":"log","interval_s":0.1,"paths":4,"intervals":120}
//! {"type":"interval","t":0,"sent":[…],"lost":[…]}      (one per interval)
//! ```
//!
//! Version 2 (emitted only when the log carries a one-way delay grid, same
//! rule as the binary codec) appends one `"delay"` array per interval line
//! — `null` per no-sample cell, else
//! `{"count":…,"p50_s":…,"p90_s":…,"p99_s":…}`:
//!
//! ```text
//! {"type":"interval","t":0,"sent":[…],"lost":[…],"delay":[null,{"count":12,…}]}
//! ```
//!
//! Round trips are bit-identical: floats are printed with Rust's shortest
//! round-trip formatting and parsed back with `str::parse::<f64>`, and
//! `u64`s (seeds, fingerprints, counts) are kept as raw digit strings until
//! the consumer knows the target type, so values above 2^53 never pass
//! through an f64.

use crate::codec::CodecError;
use crate::dataset::{MeasurementSet, Provenance};
use crate::record::{DelayStats, MeasurementLog};
use nni_topology::{NodeId, NodeKind, PathId, TopologyBuilder};

/// The loss-only format version.
pub const JSONL_VERSION_V1: u64 = 1;

/// The delay-carrying format version.
pub const JSONL_VERSION_V2: u64 = 2;

/// Newest `meta`-line version this parser understands.
pub const JSONL_VERSION: u64 = JSONL_VERSION_V2;

// ---------------------------------------------------------------- writing

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// `{:?}` on finite f64 is Rust's shortest exact round-trip form.
fn num(x: f64) -> String {
    debug_assert!(x.is_finite(), "measurement floats are finite");
    format!("{x:?}")
}

fn u64_list(vals: impl Iterator<Item = u64>) -> String {
    let items: Vec<String> = vals.map(|v| v.to_string()).collect();
    format!("[{}]", items.join(","))
}

/// Dumps a measurement set as JSON lines (trailing newline included).
pub fn to_jsonl(set: &MeasurementSet) -> String {
    let mut out = String::new();
    let p = &set.provenance;
    let version = if set.log.has_delay() {
        JSONL_VERSION_V2
    } else {
        JSONL_VERSION_V1
    };
    out.push_str(&format!(
        "{{\"type\":\"meta\",\"version\":{version},\"scenario\":\"{}\",\
         \"fingerprint\":{},\"seed\":{},\"build\":\"{}\"}}\n",
        esc(&p.scenario),
        p.scenario_fingerprint,
        p.seed,
        esc(&p.build),
    ));
    for n in set.topology.nodes() {
        let kind = match n.kind {
            NodeKind::Host => "host",
            NodeKind::Relay => "relay",
        };
        out.push_str(&format!(
            "{{\"type\":\"node\",\"kind\":\"{kind}\",\"name\":\"{}\"}}\n",
            esc(&n.name)
        ));
    }
    for l in set.topology.links() {
        out.push_str(&format!(
            "{{\"type\":\"link\",\"src\":{},\"dst\":{},\"capacity_bps\":{},\
             \"delay_s\":{},\"name\":\"{}\"}}\n",
            l.src.index(),
            l.dst.index(),
            num(l.capacity_bps),
            num(l.delay_s),
            esc(&l.name),
        ));
    }
    for path in set.topology.paths() {
        out.push_str(&format!(
            "{{\"type\":\"path\",\"name\":\"{}\",\"links\":{}}}\n",
            esc(path.name()),
            u64_list(path.links().iter().map(|l| l.index() as u64)),
        ));
    }
    let classes: Vec<String> = set
        .classes
        .iter()
        .map(|c| u64_list(c.iter().map(|p| p.index() as u64)))
        .collect();
    out.push_str(&format!(
        "{{\"type\":\"classes\",\"classes\":[{}]}}\n",
        classes.join(",")
    ));
    let log = &set.log;
    out.push_str(&format!(
        "{{\"type\":\"log\",\"interval_s\":{},\"paths\":{},\"intervals\":{}}}\n",
        num(log.interval_s()),
        log.path_count(),
        log.interval_count(),
    ));
    for t in 0..log.interval_count() {
        let delay = if log.has_delay() {
            let cells: Vec<String> = (0..log.path_count())
                .map(|p| match log.delay(t, PathId(p)) {
                    Some(s) => format!(
                        "{{\"count\":{},\"p50_s\":{},\"p90_s\":{},\"p99_s\":{}}}",
                        s.count,
                        num(s.p50_s),
                        num(s.p90_s),
                        num(s.p99_s),
                    ),
                    None => "null".to_string(),
                })
                .collect();
            format!(",\"delay\":[{}]", cells.join(","))
        } else {
            String::new()
        };
        out.push_str(&format!(
            "{{\"type\":\"interval\",\"t\":{t},\"sent\":{},\"lost\":{}{delay}}}\n",
            u64_list((0..log.path_count()).map(|p| log.sent(t, PathId(p)))),
            u64_list((0..log.path_count()).map(|p| log.lost(t, PathId(p)))),
        ));
    }
    out
}

// ---------------------------------------------------------------- parsing

/// A parsed JSON value. Numbers keep their raw text so integers up to
/// `u64::MAX` and exact float bit patterns both survive.
#[derive(Debug, Clone, PartialEq)]
enum Json {
    Str(String),
    Num(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
    Bool(bool),
    Null,
}

impl Json {
    fn get<'a>(&'a self, key: &str) -> Result<&'a Json, CodecError> {
        match self {
            Json::Obj(fields) => fields
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .ok_or(CodecError::BadValue("missing object key")),
            _ => Err(CodecError::BadValue("expected object")),
        }
    }

    fn str(&self) -> Result<&str, CodecError> {
        match self {
            Json::Str(s) => Ok(s),
            _ => Err(CodecError::BadValue("expected string")),
        }
    }

    fn u64(&self) -> Result<u64, CodecError> {
        match self {
            Json::Num(s) => s.parse().map_err(|_| CodecError::BadValue("expected u64")),
            _ => Err(CodecError::BadValue("expected number")),
        }
    }

    fn f64(&self) -> Result<f64, CodecError> {
        match self {
            Json::Num(s) => s.parse().map_err(|_| CodecError::BadValue("expected f64")),
            _ => Err(CodecError::BadValue("expected number")),
        }
    }

    fn arr(&self) -> Result<&[Json], CodecError> {
        match self {
            Json::Arr(items) => Ok(items),
            _ => Err(CodecError::BadValue("expected array")),
        }
    }

    fn u64_arr(&self) -> Result<Vec<u64>, CodecError> {
        self.arr()?.iter().map(Json::u64).collect()
    }
}

/// Minimal recursive-descent JSON parser over one line.
struct Parser<'a> {
    s: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Parser<'a> {
        Parser {
            s: s.as_bytes(),
            pos: 0,
        }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.s.len() && matches!(self.s[self.pos], b' ' | b'\t' | b'\r' | b'\n') {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Result<u8, CodecError> {
        self.skip_ws();
        self.s
            .get(self.pos)
            .copied()
            .ok_or(CodecError::UnexpectedEof)
    }

    fn expect(&mut self, c: u8) -> Result<(), CodecError> {
        if self.peek()? != c {
            return Err(CodecError::BadValue("unexpected character"));
        }
        self.pos += 1;
        Ok(())
    }

    fn value(&mut self) -> Result<Json, CodecError> {
        match self.peek()? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(Json::Str(self.string()?)),
            b't' => self.literal("true", Json::Bool(true)),
            b'f' => self.literal("false", Json::Bool(false)),
            b'n' => self.literal("null", Json::Null),
            _ => self.number(),
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, CodecError> {
        if self.s[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(CodecError::BadValue("bad literal"))
        }
    }

    fn object(&mut self) -> Result<Json, CodecError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            let key = {
                self.skip_ws();
                self.string()?
            };
            self.expect(b':')?;
            fields.push((key, self.value()?));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(CodecError::BadValue("expected , or }")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, CodecError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(CodecError::BadValue("expected , or ]")),
            }
        }
    }

    fn string(&mut self) -> Result<String, CodecError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let c = *self.s.get(self.pos).ok_or(CodecError::UnexpectedEof)?;
            self.pos += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let e = *self.s.get(self.pos).ok_or(CodecError::UnexpectedEof)?;
                    self.pos += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .s
                                .get(self.pos..self.pos + 4)
                                .ok_or(CodecError::UnexpectedEof)?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| CodecError::BadUtf8)?,
                                16,
                            )
                            .map_err(|_| CodecError::BadValue("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or(CodecError::BadValue("bad \\u code point"))?,
                            );
                        }
                        _ => return Err(CodecError::BadValue("bad escape")),
                    }
                }
                _ => {
                    // Re-synchronize on UTF-8 boundaries: back up and take
                    // the whole multi-byte character from the source.
                    let start = self.pos - 1;
                    let tail =
                        std::str::from_utf8(&self.s[start..]).map_err(|_| CodecError::BadUtf8)?;
                    let ch = tail.chars().next().ok_or(CodecError::UnexpectedEof)?;
                    out.push(ch);
                    self.pos = start + ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, CodecError> {
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.s.len()
            && matches!(
                self.s[self.pos],
                b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E'
            )
        {
            self.pos += 1;
        }
        if start == self.pos {
            return Err(CodecError::BadValue("expected a number"));
        }
        let text =
            std::str::from_utf8(&self.s[start..self.pos]).map_err(|_| CodecError::BadUtf8)?;
        // Validate now so consumers can trust the raw text.
        text.parse::<f64>()
            .map_err(|_| CodecError::BadValue("malformed number"))?;
        Ok(Json::Num(text.to_string()))
    }

    fn finish(&mut self) -> Result<(), CodecError> {
        self.skip_ws();
        if self.pos != self.s.len() {
            return Err(CodecError::TrailingBytes);
        }
        Ok(())
    }
}

fn parse_line(line: &str) -> Result<Json, CodecError> {
    let mut p = Parser::new(line);
    let v = p.value()?;
    p.finish()?;
    Ok(v)
}

/// Parses a JSON-lines dump back into a measurement set (bit-identical to
/// the dumped one; see the round-trip tests).
pub fn from_jsonl(text: &str) -> Result<MeasurementSet, CodecError> {
    let mut lines = text.lines().filter(|l| !l.trim().is_empty());

    let meta = parse_line(lines.next().ok_or(CodecError::UnexpectedEof)?)?;
    if meta.get("type")?.str()? != "meta" {
        return Err(CodecError::BadValue("first line must be meta"));
    }
    let version = meta.get("version")?.u64()?;
    if version != JSONL_VERSION_V1 && version != JSONL_VERSION_V2 {
        return Err(CodecError::UnsupportedVersion(version.min(255) as u8));
    }
    let provenance = Provenance {
        scenario: meta.get("scenario")?.str()?.to_string(),
        scenario_fingerprint: meta.get("fingerprint")?.u64()?,
        seed: meta.get("seed")?.u64()?,
        build: meta.get("build")?.str()?.to_string(),
    };

    let mut b = TopologyBuilder::new();
    let mut classes: Option<Vec<Vec<PathId>>> = None;
    let mut log: Option<MeasurementLog> = None;
    let mut expected_intervals = 0usize;
    let mut delay_rows: Vec<Vec<Option<DelayStats>>> = Vec::new();

    for line in lines {
        let v = parse_line(line)?;
        match v.get("type")?.str()? {
            "node" => {
                let name = v.get("name")?.str()?;
                match v.get("kind")?.str()? {
                    "host" => b.host(name),
                    "relay" => b.relay(name),
                    _ => return Err(CodecError::BadValue("node kind")),
                };
            }
            "link" => {
                b.link_with(
                    v.get("name")?.str()?,
                    NodeId(v.get("src")?.u64()? as usize),
                    NodeId(v.get("dst")?.u64()? as usize),
                    v.get("capacity_bps")?.f64()?,
                    v.get("delay_s")?.f64()?,
                )?;
            }
            "path" => {
                let links = v
                    .get("links")?
                    .u64_arr()?
                    .into_iter()
                    .map(|l| nni_topology::LinkId(l as usize))
                    .collect();
                b.path(v.get("name")?.str()?, links)?;
            }
            "classes" => {
                classes = Some(
                    v.get("classes")?
                        .arr()?
                        .iter()
                        .map(|c| {
                            Ok(c.u64_arr()?
                                .into_iter()
                                .map(|p| PathId(p as usize))
                                .collect())
                        })
                        .collect::<Result<_, CodecError>>()?,
                );
            }
            "log" => {
                let interval_s = v.get("interval_s")?.f64()?;
                if interval_s.is_nan() || interval_s <= 0.0 {
                    return Err(CodecError::BadValue("non-positive interval"));
                }
                let paths = v.get("paths")?.u64()? as usize;
                if paths == 0 {
                    return Err(CodecError::BadValue("log with zero paths"));
                }
                expected_intervals = v.get("intervals")?.u64()? as usize;
                log = Some(MeasurementLog::new(paths, interval_s));
            }
            "interval" => {
                let log = log
                    .as_mut()
                    .ok_or(CodecError::BadValue("interval before log header"))?;
                let t = v.get("t")?.u64()? as usize;
                // Interval lines must be sequential from 0: a duplicated or
                // dropped line (an easy edit accident in a "greppable"
                // format) would otherwise sum rows or leave silent zero
                // gaps while still matching the header's interval count.
                if t != log.interval_count() {
                    return Err(CodecError::BadValue("interval lines must be sequential"));
                }
                let sent = v.get("sent")?.u64_arr()?;
                let lost = v.get("lost")?.u64_arr()?;
                if sent.len() != log.path_count() || lost.len() != log.path_count() {
                    return Err(CodecError::BadValue("interval row width"));
                }
                for (p, (&s, &l)) in sent.iter().zip(&lost).enumerate() {
                    log.record_sent(t, PathId(p), s);
                    log.record_lost(t, PathId(p), l);
                }
                if version == JSONL_VERSION_V2 {
                    let cells = v.get("delay")?.arr()?;
                    if cells.len() != log.path_count() {
                        return Err(CodecError::BadValue("delay row width"));
                    }
                    let row = cells
                        .iter()
                        .map(|cell| match cell {
                            Json::Null => Ok(None),
                            cell => {
                                let count = cell.get("count")?.u64()?;
                                if count == 0 {
                                    return Err(CodecError::BadValue(
                                        "delay cell with zero samples",
                                    ));
                                }
                                Ok(Some(DelayStats {
                                    count,
                                    p50_s: cell.get("p50_s")?.f64()?,
                                    p90_s: cell.get("p90_s")?.f64()?,
                                    p99_s: cell.get("p99_s")?.f64()?,
                                }))
                            }
                        })
                        .collect::<Result<_, CodecError>>()?;
                    delay_rows.push(row);
                }
            }
            _ => return Err(CodecError::BadValue("unknown line type")),
        }
    }

    let mut log = log.ok_or(CodecError::BadValue("missing log header"))?;
    if log.interval_count() != expected_intervals {
        return Err(CodecError::BadValue("interval count mismatch"));
    }
    if version == JSONL_VERSION_V2 {
        log.set_delay(delay_rows);
    }
    let topology = b.build();
    // Same structural check as the binary decoder: the log's width must be
    // the topology's path count, or inference would index out of bounds.
    if log.path_count() != topology.path_count() {
        return Err(CodecError::BadValue("log path count != topology paths"));
    }
    Ok(MeasurementSet {
        topology,
        classes: classes.ok_or(CodecError::BadValue("missing classes line"))?,
        log,
        provenance,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec;

    fn sample() -> MeasurementSet {
        let mut b = TopologyBuilder::new();
        let h0 = b.host("h0 \"quoted\"");
        let h1 = b.host("h1\nnewline");
        let r = b.relay("r ⟨l5⟩");
        let l0 = b.link_with("l0", h0, r, 100e6, 0.005).unwrap();
        let l1 = b.link_with("l1", r, h1, 0.1 + 0.2, 1.0 / 3.0).unwrap();
        b.path("p0", vec![l0, l1]).unwrap();
        let mut log = MeasurementLog::new(1, 0.1);
        log.record_sent(0, PathId(0), 100);
        log.record_lost(0, PathId(0), 3);
        log.record_sent(2, PathId(0), u64::MAX);
        MeasurementSet {
            topology: b.build(),
            classes: vec![vec![PathId(0)], vec![]],
            log,
            provenance: Provenance {
                scenario: "jsonl sample".into(),
                scenario_fingerprint: u64::MAX - 1,
                seed: 1 << 60,
                build: "test".into(),
            },
        }
    }

    #[test]
    fn round_trip_is_bit_identical() {
        // Awkward floats (0.1+0.2, 1/3), u64s beyond 2^53, escapes, and
        // non-ASCII names all survive the text round trip exactly.
        let set = sample();
        let text = to_jsonl(&set);
        let back = from_jsonl(&text).expect("parses");
        assert_eq!(set, back);
        assert_eq!(set.fingerprint(), back.fingerprint());
    }

    fn sample_with_delay() -> MeasurementSet {
        let mut set = sample();
        let mut rows = vec![vec![None; 1]; set.log.interval_count()];
        rows[0][0] = DelayStats::from_sorted_ns(&[5_000_000, 7_000_000, 9_000_000]);
        rows[2][0] = DelayStats::from_sorted_ns(&[333_333_333]);
        set.log.set_delay(rows);
        set
    }

    #[test]
    fn jsonl_and_binary_agree() {
        let set = sample();
        let via_binary = codec::decode(&codec::encode(&set)).unwrap();
        let via_text = from_jsonl(&to_jsonl(&set)).unwrap();
        assert_eq!(via_binary, via_text);
    }

    #[test]
    fn delay_sets_round_trip_as_version_2() {
        let set = sample_with_delay();
        let text = to_jsonl(&set);
        assert!(text.starts_with("{\"type\":\"meta\",\"version\":2,"));
        assert!(text.contains("\"delay\":["));
        let back = from_jsonl(&text).expect("parses");
        assert_eq!(set, back);
        assert_eq!(set.fingerprint(), back.fingerprint());
        // The text and binary forms still agree cell-for-cell.
        assert_eq!(back, codec::decode(&codec::encode(&set)).unwrap());
        // Loss-only dumps keep the version-1 meta line bit-for-bit.
        assert!(to_jsonl(&sample()).starts_with("{\"type\":\"meta\",\"version\":1,"));
    }

    #[test]
    fn version_2_interval_lines_require_the_delay_array() {
        let text = to_jsonl(&sample_with_delay());
        // Stripping the delay arrays while keeping the v2 meta line must
        // fail loudly, not parse into a loss-only set.
        let stripped: String = text
            .lines()
            .map(|l| match l.find(",\"delay\":") {
                Some(i) => format!("{}}}\n", &l[..i]),
                None => format!("{l}\n"),
            })
            .collect();
        assert_eq!(
            from_jsonl(&stripped).unwrap_err(),
            CodecError::BadValue("missing object key")
        );
    }

    #[test]
    fn malformed_input_is_rejected() {
        assert!(from_jsonl("").is_err());
        assert!(from_jsonl("{\"type\":\"meta\"}").is_err());
        let set = sample();
        let text = to_jsonl(&set);
        // Dropping the classes line is an error.
        let without: String = text
            .lines()
            .filter(|l| !l.contains("\"classes\""))
            .map(|l| format!("{l}\n"))
            .collect();
        assert_eq!(
            from_jsonl(&without).unwrap_err(),
            CodecError::BadValue("missing classes line")
        );
        // Truncating the intervals is an error (count mismatch).
        let truncated: String = text
            .lines()
            .take_while(|l| !l.contains("\"interval\""))
            .map(|l| format!("{l}\n"))
            .collect();
        assert_eq!(
            from_jsonl(&truncated).unwrap_err(),
            CodecError::BadValue("interval count mismatch")
        );
    }

    #[test]
    fn rejects_duplicated_or_inconsistent_lines() {
        let set = sample();
        let text = to_jsonl(&set);
        // Duplicating an interval line (easy edit accident) is an error —
        // not a silent double count.
        let first_interval = text
            .lines()
            .find(|l| l.contains("\"interval\""))
            .unwrap()
            .to_string();
        let duplicated: String = text
            .lines()
            .flat_map(|l| {
                let dup = l.contains("\"interval\"") && l == first_interval;
                std::iter::once(format!("{l}\n")).chain(dup.then(|| format!("{l}\n")))
            })
            .collect();
        assert_eq!(
            from_jsonl(&duplicated).unwrap_err(),
            CodecError::BadValue("interval lines must be sequential")
        );
        // A log header wider than the topology's path set is an error.
        let widened = text.replace("\"paths\":1", "\"paths\":2");
        let err = from_jsonl(&widened).unwrap_err();
        assert!(
            matches!(err, CodecError::BadValue(_)),
            "widened log must fail, got {err:?}"
        );
    }

    #[test]
    fn parser_handles_json_syntax() {
        let v = parse_line("{\"a\":[1,2.5,\"x\"],\"b\":{\"c\":true},\"d\":null}").unwrap();
        assert_eq!(v.get("a").unwrap().arr().unwrap().len(), 3);
        assert_eq!(v.get("b").unwrap().get("c").unwrap(), &Json::Bool(true));
        assert_eq!(v.get("d").unwrap(), &Json::Null);
        assert!(parse_line("{\"a\":}").is_err());
        assert!(parse_line("{} extra").is_err());
    }
}
