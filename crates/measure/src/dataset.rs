//! The dataset seam between measurement acquisition and inference.
//!
//! Algorithm 2 (and everything downstream of it) consumes only per-interval,
//! per-path sent/lost counts plus the path structure of the network — no
//! link-level information crosses the boundary. A [`MeasurementSet`] makes
//! that boundary a first-class, serializable artifact: the measurement log,
//! the topology/path metadata, the per-class path partition, and provenance.
//! Anything that can produce one — a live emulator, an on-disk corpus file,
//! a remote collector — is a [`MeasurementSource`]; a [`MeasurementCache`]
//! memoizes acquisition by [`SetKey`] so sweeps that revisit a member never
//! re-measure.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use crate::record::MeasurementLog;
use nni_topology::{PathId, Topology};

/// Where a measurement set came from: enough to reproduce it (scenario
/// fingerprint + seed) and to audit it (names, build).
#[derive(Debug, Clone, PartialEq)]
pub struct Provenance {
    /// Human-readable scenario name.
    pub scenario: String,
    /// Fingerprint of the measurement-relevant scenario axes (topology,
    /// traffic, differentiation, window — everything that shapes the counts
    /// *except* the seed). Together with `seed` it identifies the
    /// measurement uniquely.
    pub scenario_fingerprint: u64,
    /// Simulation / collection seed.
    pub seed: u64,
    /// Build fingerprint of the producer (e.g. emulator crate version and
    /// event-queue implementation), for cross-version corpus audits.
    pub build: String,
}

/// Everything inference needs and nothing it doesn't: the raw measurement
/// log, the topology whose paths the log indexes, the per-class path
/// partition, and provenance.
#[derive(Debug, Clone, PartialEq)]
pub struct MeasurementSet {
    /// The network's path structure (inference enumerates slices over it;
    /// link capacities/delays ride along as metadata).
    pub topology: Topology,
    /// Performance-class partition of the measured paths.
    pub classes: Vec<Vec<PathId>>,
    /// Per-interval, per-path sent/lost counts.
    pub log: MeasurementLog,
    /// Where the measurements came from.
    pub provenance: Provenance,
}

impl MeasurementSet {
    /// The `(scenario fingerprint, seed)` identity of this set.
    pub fn key(&self) -> SetKey {
        SetKey {
            fingerprint: self.provenance.scenario_fingerprint,
            seed: self.provenance.seed,
        }
    }

    /// FNV-1a over every field — log cells, topology structure, classes,
    /// and provenance. Two sets are `==` iff their fingerprints match (up
    /// to hash collisions); the golden-corpus CI gate pins these values.
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv::new();
        h.str(&self.provenance.scenario);
        h.word(self.provenance.scenario_fingerprint);
        h.word(self.provenance.seed);
        h.str(&self.provenance.build);
        // Topology: nodes, links (f64 bit patterns), paths.
        h.word(self.topology.nodes().len() as u64);
        for n in self.topology.nodes() {
            h.word(matches!(n.kind, nni_topology::NodeKind::Host) as u64);
            h.str(&n.name);
        }
        h.word(self.topology.link_count() as u64);
        for l in self.topology.links() {
            h.word(l.src.index() as u64);
            h.word(l.dst.index() as u64);
            h.word(l.capacity_bps.to_bits());
            h.word(l.delay_s.to_bits());
            h.str(&l.name);
        }
        h.word(self.topology.path_count() as u64);
        for p in self.topology.paths() {
            h.str(p.name());
            h.word(p.len() as u64);
            for l in p.links() {
                h.word(l.index() as u64);
            }
        }
        h.word(self.classes.len() as u64);
        for class in &self.classes {
            h.word(class.len() as u64);
            for p in class {
                h.word(p.index() as u64);
            }
        }
        // Log: every (interval, path) cell.
        h.word(self.log.interval_s().to_bits());
        h.word(self.log.path_count() as u64);
        h.word(self.log.interval_count() as u64);
        for t in 0..self.log.interval_count() {
            for p in 0..self.log.path_count() {
                h.word(self.log.sent(t, PathId(p)));
                h.word(self.log.lost(t, PathId(p)));
            }
        }
        // Delay grid: folded only when present, so loss-only sets keep the
        // exact pre-delay fingerprints the golden-corpus CI gate pins.
        if self.log.has_delay() {
            h.word(1);
            for t in 0..self.log.interval_count() {
                for p in 0..self.log.path_count() {
                    match self.log.delay(t, PathId(p)) {
                        Some(s) => {
                            h.word(1);
                            h.word(s.count);
                            h.word(s.p50_s.to_bits());
                            h.word(s.p90_s.to_bits());
                            h.word(s.p99_s.to_bits());
                        }
                        None => h.word(0),
                    }
                }
            }
        }
        h.0
    }
}

/// The repo's fingerprinting workhorse (same constants as the golden
/// `SimReport` fingerprints) — the shared implementation lives in
/// `nni-core` so every fingerprint family folds through one FNV-1a.
pub use nni_core::Fnv;

/// Identity of a measurement set: which scenario (fingerprint over its
/// measurement-relevant axes) at which seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SetKey {
    /// Scenario fingerprint (seed excluded).
    pub fingerprint: u64,
    /// Acquisition seed.
    pub seed: u64,
}

impl std::fmt::Display for SetKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}-s{}", self.fingerprint, self.seed)
    }
}

/// Why a source failed to produce its measurement set.
#[derive(Debug)]
pub enum SourceError {
    /// Underlying I/O failure (corpus files).
    Io(std::io::Error),
    /// The stored bytes did not decode (corpus files).
    Codec(crate::codec::CodecError),
}

impl std::fmt::Display for SourceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SourceError::Io(e) => write!(f, "i/o error: {e}"),
            SourceError::Codec(e) => write!(f, "codec error: {e}"),
        }
    }
}

impl std::error::Error for SourceError {}

impl From<std::io::Error> for SourceError {
    fn from(e: std::io::Error) -> SourceError {
        SourceError::Io(e)
    }
}

impl From<crate::codec::CodecError> for SourceError {
    fn from(e: crate::codec::CodecError) -> SourceError {
        SourceError::Codec(e)
    }
}

/// Anything that can produce a [`MeasurementSet`]: the live emulator (an
/// `Experiment` in `nni-scenario`), an on-disk corpus entry, or a cached
/// wrapper around either.
pub trait MeasurementSource {
    /// The `(scenario fingerprint, seed)` identity of the set this source
    /// yields — known *without* acquiring, so caches can hit first.
    fn key(&self) -> SetKey;

    /// Produces (simulates, loads, …) the measurement set.
    fn acquire(&self) -> Result<MeasurementSet, SourceError>;
}

/// In-memory memoization of measurement acquisition, keyed by [`SetKey`].
///
/// Thread-safe (a `Mutex` map handing out `Arc`s), so a sharded executor
/// can fill it from worker threads while re-inference consumers read it.
#[derive(Debug, Default)]
pub struct MeasurementCache {
    map: Mutex<HashMap<SetKey, Arc<MeasurementSet>>>,
    hits: Mutex<u64>,
}

impl MeasurementCache {
    /// An empty cache.
    pub fn new() -> MeasurementCache {
        MeasurementCache::default()
    }

    /// The set for `source.key()`, acquiring and storing it on first use.
    pub fn get_or_acquire(
        &self,
        source: &dyn MeasurementSource,
    ) -> Result<Arc<MeasurementSet>, SourceError> {
        let key = source.key();
        if let Some(set) = self.get(key) {
            return Ok(set);
        }
        // Acquire outside the lock: acquisition can be seconds of
        // simulation, and concurrent callers for *different* keys must not
        // serialize on it. A racing duplicate acquisition for the same key
        // is wasted work, not an error — insert() keeps the first.
        let set = Arc::new(source.acquire()?);
        Ok(self.insert(key, set))
    }

    /// Cache lookup (bumps the hit counter when found).
    pub fn get(&self, key: SetKey) -> Option<Arc<MeasurementSet>> {
        let found = self
            .map
            .lock()
            .expect("unpoisoned cache")
            .get(&key)
            .cloned();
        if found.is_some() {
            *self.hits.lock().expect("unpoisoned counter") += 1;
        }
        found
    }

    /// Stores a set under `key`; returns the cached value (the existing one
    /// if a concurrent insert won the race).
    pub fn insert(&self, key: SetKey, set: Arc<MeasurementSet>) -> Arc<MeasurementSet> {
        self.map
            .lock()
            .expect("unpoisoned cache")
            .entry(key)
            .or_insert(set)
            .clone()
    }

    /// Number of distinct cached sets.
    pub fn len(&self) -> usize {
        self.map.lock().expect("unpoisoned cache").len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// How many lookups were served from memory.
    pub fn hits(&self) -> u64 {
        *self.hits.lock().expect("unpoisoned counter")
    }
}

/// A [`MeasurementSource`] that consults a [`MeasurementCache`] before its
/// inner source — acquisition through the wrapper populates the cache, and
/// revisiting a key never re-acquires.
pub struct Cached<'c, S: MeasurementSource> {
    inner: S,
    cache: &'c MeasurementCache,
}

impl<'c, S: MeasurementSource> Cached<'c, S> {
    /// Wraps `inner` with `cache`.
    pub fn new(inner: S, cache: &'c MeasurementCache) -> Cached<'c, S> {
        Cached { inner, cache }
    }

    /// The zero-copy path: the cached (or freshly acquired) set as a
    /// shared handle. Prefer this over the trait's [`acquire`] when the
    /// caller can hold an `Arc` — the trait method must return an owned
    /// set and therefore clones out of the cache.
    ///
    /// [`acquire`]: MeasurementSource::acquire
    pub fn get(&self) -> Result<Arc<MeasurementSet>, SourceError> {
        self.cache.get_or_acquire(&self.inner)
    }
}

impl<S: MeasurementSource> MeasurementSource for Cached<'_, S> {
    fn key(&self) -> SetKey {
        self.inner.key()
    }

    /// Owned-set acquisition through the cache: memoized, but clones the
    /// cached value to satisfy the trait signature — use
    /// [`Cached::get`] for the shared-handle path.
    fn acquire(&self) -> Result<MeasurementSet, SourceError> {
        Ok((*self.get()?).clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nni_topology::TopologyBuilder;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn tiny_set(seed: u64) -> MeasurementSet {
        let mut b = TopologyBuilder::new();
        let h0 = b.host("h0");
        let h1 = b.host("h1");
        let l0 = b.link("l0", h0, h1).unwrap();
        b.path("p0", vec![l0]).unwrap();
        let mut log = MeasurementLog::new(1, 0.1);
        log.record_sent(0, PathId(0), 10 + seed);
        log.record_lost(0, PathId(0), 1);
        MeasurementSet {
            topology: b.build(),
            classes: vec![vec![PathId(0)]],
            log,
            provenance: Provenance {
                scenario: "tiny".into(),
                scenario_fingerprint: 0xABCD,
                seed,
                build: "test".into(),
            },
        }
    }

    struct CountingSource {
        seed: u64,
        acquisitions: AtomicUsize,
    }

    impl MeasurementSource for CountingSource {
        fn key(&self) -> SetKey {
            SetKey {
                fingerprint: 0xABCD,
                seed: self.seed,
            }
        }

        fn acquire(&self) -> Result<MeasurementSet, SourceError> {
            self.acquisitions.fetch_add(1, Ordering::Relaxed);
            Ok(tiny_set(self.seed))
        }
    }

    #[test]
    fn fingerprint_tracks_equality() {
        let a = tiny_set(1);
        let b = tiny_set(1);
        assert_eq!(a, b);
        assert_eq!(a.fingerprint(), b.fingerprint());
        let c = tiny_set(2);
        assert_ne!(a, c);
        assert_ne!(a.fingerprint(), c.fingerprint());
        assert_eq!(
            a.key(),
            SetKey {
                fingerprint: 0xABCD,
                seed: 1
            }
        );
    }

    #[test]
    fn delay_grid_changes_the_fingerprint() {
        let a = tiny_set(1);
        let mut b = tiny_set(1);
        b.log
            .set_delay(vec![vec![crate::record::DelayStats::from_sorted_ns(&[
                1_000_000,
            ])]]);
        assert_ne!(a, b);
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn cache_acquires_each_key_once() {
        let cache = MeasurementCache::new();
        let s1 = CountingSource {
            seed: 1,
            acquisitions: AtomicUsize::new(0),
        };
        let s2 = CountingSource {
            seed: 2,
            acquisitions: AtomicUsize::new(0),
        };
        let a = cache.get_or_acquire(&s1).unwrap();
        let b = cache.get_or_acquire(&s1).unwrap();
        let c = cache.get_or_acquire(&s2).unwrap();
        assert_eq!(s1.acquisitions.load(Ordering::Relaxed), 1);
        assert_eq!(s2.acquisitions.load(Ordering::Relaxed), 1);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(*c, tiny_set(2));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.hits(), 1);
    }

    #[test]
    fn cached_wrapper_is_a_source() {
        let cache = MeasurementCache::new();
        let src = CountingSource {
            seed: 7,
            acquisitions: AtomicUsize::new(0),
        };
        let cached = Cached::new(src, &cache);
        assert_eq!(cached.key().seed, 7);
        let a = cached.acquire().unwrap();
        let b = cached.acquire().unwrap();
        assert_eq!(a, b);
        assert_eq!(cached.inner.acquisitions.load(Ordering::Relaxed), 1);
    }
}
