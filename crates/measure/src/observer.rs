//! The measured implementation of [`nni_core::Observations`].
//!
//! Bridges a [`MeasurementLog`] to Algorithm 1: every slice queries the
//! performance numbers of its pathsets in the normalization context of
//! `Paths(τ)`; this type runs Algorithm 2 on demand and caches per-group
//! indicator series (the discounting draw is deterministic per
//! `(seed, interval, path)`, so caching never changes results).

use std::cell::RefCell;
use std::collections::HashMap;

use crate::normalize::{group_indicators, pathset_cf_counts, perf_from_counts, NormalizeConfig};
use crate::record::MeasurementLog;
use nni_core::Observations;
use nni_topology::{PathId, PathSet};

/// Per-path indicator rows, as produced by [`group_indicators`].
type IndicatorRows = Vec<Vec<Option<bool>>>;

/// Measured observation source.
pub struct MeasuredObservations<'a> {
    log: &'a MeasurementLog,
    cfg: NormalizeConfig,
    /// Cache: normalization group -> per-path indicator rows.
    cache: RefCell<HashMap<Vec<PathId>, IndicatorRows>>,
}

impl<'a> MeasuredObservations<'a> {
    /// Wraps a measurement log.
    pub fn new(log: &'a MeasurementLog, cfg: NormalizeConfig) -> MeasuredObservations<'a> {
        MeasuredObservations {
            log,
            cfg,
            cache: RefCell::new(HashMap::new()),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> NormalizeConfig {
        self.cfg
    }

    fn with_indicators<R>(&self, group: &[PathId], f: impl FnOnce(&[Vec<Option<bool>>]) -> R) -> R {
        let mut key: Vec<PathId> = group.to_vec();
        key.sort();
        key.dedup();
        let mut cache = self.cache.borrow_mut();
        let ind = cache
            .entry(key.clone())
            .or_insert_with(|| group_indicators(self.log, &key, self.cfg));
        f(ind)
    }

    /// Congestion-free probability of a pathset under the group
    /// normalization (exposed for the experiment reports).
    pub fn pathset_cf_probability(&self, group: &[PathId], pathset: &PathSet) -> f64 {
        self.with_indicators(group, |ind| {
            let rows = Self::rows_of(group, pathset);
            let (cf, total) = pathset_cf_counts(ind, &rows);
            if total == 0 {
                1.0
            } else {
                cf as f64 / total as f64
            }
        })
    }

    fn rows_of(group: &[PathId], pathset: &PathSet) -> Vec<usize> {
        let mut key: Vec<PathId> = group.to_vec();
        key.sort();
        key.dedup();
        pathset
            .paths()
            .iter()
            .map(|p| {
                key.binary_search(p)
                    .expect("pathset members must belong to the normalization group")
            })
            .collect()
    }
}

impl Observations for MeasuredObservations<'_> {
    fn pathset_perf(&self, group: &[PathId], pathset: &PathSet) -> f64 {
        self.with_indicators(group, |ind| {
            let rows = Self::rows_of(group, pathset);
            let (cf, total) = pathset_cf_counts(ind, &rows);
            perf_from_counts(cf, total)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds a log in which paths 0 and 1 congest together in 25% of
    /// intervals and path 2 never congests.
    fn correlated_log() -> MeasurementLog {
        let mut log = MeasurementLog::new(3, 0.1);
        for t in 0..400 {
            for p in 0..3 {
                log.record_sent(t, PathId(p), 500);
            }
            if t % 4 == 0 {
                log.record_lost(t, PathId(0), 50);
                log.record_lost(t, PathId(1), 50);
            }
        }
        log
    }

    #[test]
    fn singleton_perf_matches_frequency() {
        let log = correlated_log();
        let obs = MeasuredObservations::new(&log, NormalizeConfig::default());
        let group = [PathId(0), PathId(1), PathId(2)];
        let y0 = obs.pathset_perf(&group, &PathSet::single(PathId(0)));
        assert!((y0 + (0.75f64).ln()).abs() < 1e-9, "y0 = {y0}");
        let y2 = obs.pathset_perf(&group, &PathSet::single(PathId(2)));
        assert_eq!(y2, 0.0);
    }

    #[test]
    fn correlated_pair_shows_joint_congestion() {
        // p0 and p1 congest in the SAME intervals: y({p0,p1}) == y({p0}),
        // the §3.3 signature of shared congestion.
        let log = correlated_log();
        let obs = MeasuredObservations::new(&log, NormalizeConfig::default());
        let group = [PathId(0), PathId(1), PathId(2)];
        let y0 = obs.pathset_perf(&group, &PathSet::single(PathId(0)));
        let y01 = obs.pathset_perf(&group, &PathSet::pair(PathId(0), PathId(1)));
        assert!((y01 - y0).abs() < 1e-9);
        // And pairing with the clean path adds nothing.
        let y02 = obs.pathset_perf(&group, &PathSet::pair(PathId(0), PathId(2)));
        assert!((y02 - y0).abs() < 1e-9);
    }

    #[test]
    fn cf_probability_reported() {
        let log = correlated_log();
        let obs = MeasuredObservations::new(&log, NormalizeConfig::default());
        let group = [PathId(0), PathId(2)];
        let p = obs.pathset_cf_probability(&group, &PathSet::single(PathId(0)));
        assert!((p - 0.75).abs() < 1e-9);
    }

    #[test]
    fn caching_is_transparent() {
        let log = correlated_log();
        let obs = MeasuredObservations::new(&log, NormalizeConfig::default());
        let group = [PathId(0), PathId(1)];
        let a = obs.pathset_perf(&group, &PathSet::single(PathId(0)));
        let b = obs.pathset_perf(&group, &PathSet::single(PathId(0)));
        assert_eq!(a, b);
    }
}
