//! Shared wire primitives: the byte-level writer/reader the binary codecs
//! build on, plus stream framing for the worker protocol.
//!
//! The [`codec`](crate::codec) module (measurement sets), the `SimReport`
//! codec in `nni-emu`, and the `Scenario` codec in `nni-scenario` all fold
//! through these primitives, so every format in the tree shares one
//! definition of varints, strings, and f64 bit patterns — and one checksum.
//!
//! # Frame layout (version 2)
//!
//! A *frame* is one length-prefixed, checksummed message on a byte stream
//! (worker stdin/stdout, a spool file, a socket):
//!
//! ```text
//! magic     7 bytes   frame-type magic (e.g. b"NNIWJOB")
//! version   u8        2
//! sync      8 bytes   SYNC_MARKER — the self-delimiting resync boundary
//! length    u64 LE    payload byte count
//! payload   …         codec-specific bytes
//! checksum  u64 LE    FNV-1a over every preceding byte (magic included)
//! ```
//!
//! Version 1 is the same layout without the sync marker. The marker is
//! what makes v2 streams recoverable without trusting the length field: a
//! reader that loses framing scans for the next marker instead of
//! trial-decoding at every byte offset, so a corrupted *length* can no
//! longer masquerade as an in-flight message forever.
//!
//! # Negotiation
//!
//! The magic and version byte lead both layouts, so the version byte is
//! the compatibility gate in both directions: this (v2) reader accepts v1
//! frames bit-identically, and a deployed v1 reader that meets a v2 frame
//! stops at the version byte with [`CodecError::UnsupportedVersion`]`(2)` —
//! never a checksum or allocation error, because it rejects before ever
//! interpreting a length. Readers reject bad magic, newer versions, and
//! checksum mismatches with typed [`CodecError`]s; a clean end-of-stream
//! *between* frames reads as `Ok(None)`, while a stream that dies mid-frame
//! is [`CodecError::UnexpectedEof`].

use std::io::{Read, Write};

use crate::codec::CodecError;
use crate::dataset::Fnv;

/// Current frame-format version (all frame magics): sync-marker frames.
pub const FRAME_VERSION: u8 = 2;

/// The frozen version-1 frame format (no sync marker). Still fully
/// readable; [`frame_bytes_v1`] still writes it for compatibility tests.
pub const FRAME_VERSION_V1: u8 = 1;

/// The 8-byte synchronization marker that leads every v2 frame and every
/// v2 segment chunk. Chosen like the PNG signature: a high bit set (so
/// 7-bit-clean transports corrupt it loudly), the protocol name, and a
/// CR-LF tail that newline-translating transports would mangle.
pub const SYNC_MARKER: [u8; 8] = [0xC5, b'N', b'N', b'I', b'2', 0x96, 0x0D, 0x0A];

/// Append-only byte sink with the codec primitives: little-endian
/// `u64`/`f64` (bit patterns), LEB128 varints, length-prefixed strings.
#[derive(Debug, Default)]
pub struct WireWriter {
    buf: Vec<u8>,
}

impl WireWriter {
    /// An empty writer.
    pub fn new() -> WireWriter {
        WireWriter::default()
    }

    /// The bytes written so far.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Borrowed view of the bytes written so far.
    pub fn bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Appends one raw byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends raw bytes verbatim.
    pub fn raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Appends a `u64`, little-endian.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` as its bit pattern (round trips are bit-identical).
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Appends a LEB128 varint (7 bits per byte, high bit = continue).
    pub fn vu(&mut self, mut v: u64) {
        loop {
            let byte = (v & 0x7F) as u8;
            v >>= 7;
            if v == 0 {
                self.buf.push(byte);
                return;
            }
            self.buf.push(byte | 0x80);
        }
    }

    /// Appends a varint-length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.vu(s.len() as u64);
        self.buf.extend_from_slice(s.as_bytes());
    }
}

/// Cursor over a byte slice with the matching read primitives; every read
/// is bounds-checked and fails with [`CodecError::UnexpectedEof`] instead
/// of panicking on truncated input.
#[derive(Debug)]
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// A reader over `buf`, starting at offset 0.
    pub fn new(buf: &'a [u8]) -> WireReader<'a> {
        WireReader { buf, pos: 0 }
    }

    /// A reader starting at `pos` (e.g. after a prefix decode).
    pub fn at(buf: &'a [u8], pos: usize) -> WireReader<'a> {
        WireReader { buf, pos }
    }

    /// Current offset into the buffer.
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Takes `n` raw bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.pos + n > self.buf.len() {
            return Err(CodecError::UnexpectedEof);
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, CodecError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    /// Reads an `f64` bit pattern.
    pub fn f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a LEB128 varint.
    pub fn vu(&mut self) -> Result<u64, CodecError> {
        let mut out: u64 = 0;
        for shift in (0..64).step_by(7) {
            let byte = self.u8()?;
            out |= ((byte & 0x7F) as u64) << shift;
            if byte & 0x80 == 0 {
                return Ok(out);
            }
        }
        Err(CodecError::BadValue("varint longer than 64 bits"))
    }

    /// Reads a varint as a collection length, rejecting counts that exceed
    /// the remaining bytes — a corrupted count fails with a clear error
    /// instead of an OOM.
    pub fn len(&mut self) -> Result<usize, CodecError> {
        let v = self.vu()?;
        if v > self.remaining() as u64 {
            return Err(CodecError::UnexpectedEof);
        }
        Ok(v as usize)
    }

    /// Reads a varint-length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, CodecError> {
        let n = self.len()?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| CodecError::BadUtf8)
    }
}

/// Why a frame failed to cross a stream: transport failure or codec
/// failure. The distinction matters to the worker pool — an I/O error (or
/// mid-frame EOF) means a worker died and the job can be retried; a codec
/// error means the bytes themselves are bad and retrying cannot help.
#[derive(Debug)]
pub enum FrameError {
    /// The underlying stream failed.
    Io(std::io::Error),
    /// The bytes arrived but did not decode.
    Codec(CodecError),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "frame i/o error: {e}"),
            FrameError::Codec(e) => write!(f, "frame codec error: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<std::io::Error> for FrameError {
    fn from(e: std::io::Error) -> FrameError {
        FrameError::Io(e)
    }
}

impl From<CodecError> for FrameError {
    fn from(e: CodecError) -> FrameError {
        FrameError::Codec(e)
    }
}

/// Serializes one v2 frame: magic, version byte, sync marker, payload
/// length, payload, and the trailing FNV-1a checksum over everything
/// before it.
pub fn frame_bytes(magic: &[u8; 7], payload: &[u8]) -> Vec<u8> {
    let mut w = WireWriter::new();
    w.raw(magic);
    w.u8(FRAME_VERSION);
    w.raw(&SYNC_MARKER);
    w.u64(payload.len() as u64);
    w.raw(payload);
    let mut h = Fnv::new();
    for &b in w.bytes() {
        h.byte(b);
    }
    let checksum = h.0;
    w.u64(checksum);
    w.into_bytes()
}

/// Serializes one frozen version-1 frame (no sync marker) — what every
/// pre-v2 binary wrote. Kept so interop tests can generate genuine v1
/// streams and pin that [`read_frame`] accepts them bit-identically.
pub fn frame_bytes_v1(magic: &[u8; 7], payload: &[u8]) -> Vec<u8> {
    let mut w = WireWriter::new();
    w.raw(magic);
    w.u8(FRAME_VERSION_V1);
    w.u64(payload.len() as u64);
    w.raw(payload);
    let mut h = Fnv::new();
    for &b in w.bytes() {
        h.byte(b);
    }
    let checksum = h.0;
    w.u64(checksum);
    w.into_bytes()
}

/// Writes one frame to a stream and flushes it (the consumer on the other
/// end of a pipe is waiting on exactly this message).
pub fn write_frame(
    out: &mut impl Write,
    magic: &[u8; 7],
    payload: &[u8],
) -> Result<(), FrameError> {
    out.write_all(&frame_bytes(magic, payload))?;
    out.flush()?;
    Ok(())
}

/// `read_exact` with mid-frame EOF mapped to the codec error it is.
fn read_frame_bytes(input: &mut impl Read, buf: &mut [u8]) -> Result<(), FrameError> {
    input.read_exact(buf).map_err(|e| match e.kind() {
        std::io::ErrorKind::UnexpectedEof => FrameError::Codec(CodecError::UnexpectedEof),
        _ => FrameError::Io(e),
    })
}

/// Reads one frame (version 1 or 2) from a stream, verifying magic,
/// version, sync marker (v2), and checksum.
///
/// Returns `Ok(None)` on a clean end-of-stream (no bytes before EOF) — how
/// a worker recognizes an orderly shutdown; an EOF *inside* a frame is
/// [`CodecError::UnexpectedEof`] (a peer died mid-message). The magic is
/// validated as its bytes arrive, so input that was never a frame — even
/// input shorter than a full header — classifies as
/// [`CodecError::BadMagic`] at the first disagreeing byte rather than
/// `UnexpectedEof` at the end of a header read that could not succeed.
pub fn read_frame(input: &mut impl Read, magic: &[u8; 7]) -> Result<Option<Vec<u8>>, FrameError> {
    let mut head = [0u8; 7];
    let mut got = 0usize;
    while got < head.len() {
        let n = input.read(&mut head[got..])?;
        if n == 0 {
            if got == 0 {
                return Ok(None); // clean EOF between frames
            }
            // A true prefix of the magic, then silence: a peer died
            // mid-frame, not a stream of non-frame bytes.
            return Err(CodecError::UnexpectedEof.into());
        }
        got += n;
        if head[..got] != magic[..got] {
            return Err(CodecError::BadMagic.into());
        }
    }
    let mut version = [0u8; 1];
    read_frame_bytes(input, &mut version)?;
    let version = version[0];
    // Everything before the payload participates in the checksum.
    let mut header: Vec<u8> = Vec::with_capacity(7 + 1 + 8 + 8);
    header.extend_from_slice(&head);
    header.push(version);
    match version {
        FRAME_VERSION_V1 => {}
        FRAME_VERSION => {
            let mut sync = [0u8; 8];
            read_frame_bytes(input, &mut sync)?;
            if sync != SYNC_MARKER {
                return Err(CodecError::BadValue("frame sync marker mismatch").into());
            }
            header.extend_from_slice(&sync);
        }
        other => return Err(CodecError::UnsupportedVersion(other).into()),
    }
    let mut len_bytes = [0u8; 8];
    read_frame_bytes(input, &mut len_bytes)?;
    header.extend_from_slice(&len_bytes);
    let len = u64::from_le_bytes(len_bytes);
    // A frame is one in-flight message, not a corpus: cap the payload so a
    // corrupted length fails loudly instead of attempting a huge allocation.
    const MAX_FRAME: u64 = 1 << 32;
    if len > MAX_FRAME {
        return Err(CodecError::BadValue("frame payload over 4 GiB").into());
    }
    let mut payload = vec![0u8; len as usize];
    read_frame_bytes(input, &mut payload)?;
    let mut trailer = [0u8; 8];
    read_frame_bytes(input, &mut trailer)?;
    let mut h = Fnv::new();
    for &b in header.iter().chain(&payload) {
        h.byte(b);
    }
    if u64::from_le_bytes(trailer) != h.0 {
        return Err(CodecError::ChecksumMismatch.into());
    }
    Ok(Some(payload))
}

/// The frozen version-1 reader, byte-for-byte what every pre-v2 binary
/// runs: reads the full 16-byte header before validating anything and
/// accepts only version 1. Kept so interop tests can pin how deployed v1
/// readers classify v2 input ([`CodecError::UnsupportedVersion`]`(2)`,
/// never a checksum or allocation error) — including its documented
/// rough edge that short garbage reads as `UnexpectedEof`.
pub fn read_frame_v1(
    input: &mut impl Read,
    magic: &[u8; 7],
) -> Result<Option<Vec<u8>>, FrameError> {
    let mut header = [0u8; 16]; // magic + version + length
    let mut got = 0usize;
    while got < header.len() {
        let n = input.read(&mut header[got..])?;
        if n == 0 {
            if got == 0 {
                return Ok(None); // clean EOF between frames
            }
            return Err(CodecError::UnexpectedEof.into());
        }
        got += n;
    }
    if &header[..7] != magic {
        return Err(CodecError::BadMagic.into());
    }
    if header[7] != FRAME_VERSION_V1 {
        return Err(CodecError::UnsupportedVersion(header[7]).into());
    }
    let len = u64::from_le_bytes(header[8..16].try_into().expect("8 bytes"));
    const MAX_FRAME: u64 = 1 << 32;
    if len > MAX_FRAME {
        return Err(CodecError::BadValue("frame payload over 4 GiB").into());
    }
    let mut payload = vec![0u8; len as usize];
    read_frame_bytes(input, &mut payload)?;
    let mut trailer = [0u8; 8];
    read_frame_bytes(input, &mut trailer)?;
    let mut h = Fnv::new();
    for &b in header.iter().chain(&payload) {
        h.byte(b);
    }
    if u64::from_le_bytes(trailer) != h.0 {
        return Err(CodecError::ChecksumMismatch.into());
    }
    Ok(Some(payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    const MAGIC: &[u8; 7] = b"NNITEST";

    #[test]
    fn primitives_round_trip() {
        let mut w = WireWriter::new();
        w.u8(7);
        w.u64(u64::MAX);
        w.f64(-0.0);
        w.vu(300);
        w.str("héllo");
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u64().unwrap(), u64::MAX);
        assert_eq!(r.f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(r.vu().unwrap(), 300);
        assert_eq!(r.str().unwrap(), "héllo");
        assert!(r.is_empty());
    }

    #[test]
    fn frames_round_trip_over_a_stream() {
        let mut stream = Vec::new();
        write_frame(&mut stream, MAGIC, b"first").unwrap();
        write_frame(&mut stream, MAGIC, b"").unwrap();
        write_frame(&mut stream, MAGIC, &[0xFFu8; 1000]).unwrap();
        let mut cursor = std::io::Cursor::new(stream);
        assert_eq!(read_frame(&mut cursor, MAGIC).unwrap().unwrap(), b"first");
        assert_eq!(read_frame(&mut cursor, MAGIC).unwrap().unwrap(), b"");
        assert_eq!(
            read_frame(&mut cursor, MAGIC).unwrap().unwrap(),
            vec![0xFFu8; 1000]
        );
        // Clean EOF between frames is an orderly shutdown, not an error.
        assert!(read_frame(&mut cursor, MAGIC).unwrap().is_none());
    }

    #[test]
    fn corrupted_frames_fail_loudly() {
        let mut bytes = frame_bytes(MAGIC, b"payload");
        // Wrong magic.
        let mut b = bytes.clone();
        b[0] ^= 0xFF;
        let err = read_frame(&mut b.as_slice(), MAGIC).unwrap_err();
        assert!(matches!(err, FrameError::Codec(CodecError::BadMagic)));
        // Future version.
        let mut b = bytes.clone();
        b[7] = 9;
        let err = read_frame(&mut b.as_slice(), MAGIC).unwrap_err();
        assert!(matches!(
            err,
            FrameError::Codec(CodecError::UnsupportedVersion(9))
        ));
        // Damaged sync marker.
        let mut b = bytes.clone();
        b[10] ^= 0x20;
        let err = read_frame(&mut b.as_slice(), MAGIC).unwrap_err();
        assert!(matches!(
            err,
            FrameError::Codec(CodecError::BadValue("frame sync marker mismatch"))
        ));
        // Flipped payload byte trips the checksum (v2 payload starts at
        // magic + version + sync + length = 24).
        let mut b = bytes.clone();
        b[24] ^= 0x01;
        let err = read_frame(&mut b.as_slice(), MAGIC).unwrap_err();
        assert!(matches!(
            err,
            FrameError::Codec(CodecError::ChecksumMismatch)
        ));
        // Truncation mid-frame is an EOF error, not a clean end.
        bytes.truncate(bytes.len() - 3);
        let err = read_frame(&mut bytes.as_slice(), MAGIC).unwrap_err();
        assert!(matches!(err, FrameError::Codec(CodecError::UnexpectedEof)));
    }

    #[test]
    fn oversized_length_is_rejected_before_allocating() {
        let mut bytes = frame_bytes(MAGIC, b"x");
        bytes[16..24].copy_from_slice(&u64::MAX.to_le_bytes());
        let err = read_frame(&mut bytes.as_slice(), MAGIC).unwrap_err();
        assert!(matches!(
            err,
            FrameError::Codec(CodecError::BadValue("frame payload over 4 GiB"))
        ));
    }

    #[test]
    fn v2_reader_accepts_v1_frames() {
        let mut stream = Vec::new();
        stream.extend_from_slice(&frame_bytes_v1(MAGIC, b"legacy"));
        stream.extend_from_slice(&frame_bytes(MAGIC, b"modern"));
        let mut cursor = std::io::Cursor::new(stream);
        assert_eq!(read_frame(&mut cursor, MAGIC).unwrap().unwrap(), b"legacy");
        assert_eq!(read_frame(&mut cursor, MAGIC).unwrap().unwrap(), b"modern");
        assert!(read_frame(&mut cursor, MAGIC).unwrap().is_none());
    }

    #[test]
    fn v1_reader_rejects_v2_frames_at_the_version_byte() {
        let bytes = frame_bytes(MAGIC, b"from the future");
        let err = read_frame_v1(&mut bytes.as_slice(), MAGIC).unwrap_err();
        assert!(matches!(
            err,
            FrameError::Codec(CodecError::UnsupportedVersion(FRAME_VERSION))
        ));
    }

    #[test]
    fn short_garbage_is_bad_magic_not_eof() {
        // Fewer bytes than a header, none of them magic: the stream was
        // never a frame, and the error must say so.
        for garbage in [&b"x"[..], b"junk", b"NNIXXXX", b"\x00\x00\x00"] {
            let err = read_frame(&mut &garbage[..], MAGIC).unwrap_err();
            assert!(
                matches!(err, FrameError::Codec(CodecError::BadMagic)),
                "{garbage:?} -> {err:?}"
            );
        }
        // A true prefix of the magic, then EOF: a peer died mid-frame.
        let err = read_frame(&mut &MAGIC[..3], MAGIC).unwrap_err();
        assert!(matches!(err, FrameError::Codec(CodecError::UnexpectedEof)));
    }
}
