//! [`CorpusTail`]: a poll-based watcher over a growing corpus directory —
//! the acquisition front-end of live inference.
//!
//! A tail yields two kinds of arrivals, in stable replay order
//! ([`crate::corpus::entry_order_key`]):
//!
//! * **complete entries** (`.nniset`) — a whole measurement set landed
//!   (e.g. `exp_corpus record --append` or a drain-mode daemon). Corpus
//!   stores are not atomic, so a file that fails to decode is treated as
//!   *still being written* and retried on later polls, up to a bounded
//!   budget; only then is it reported corrupt.
//! * **segment traffic** (`.nniseg`) — a live producer is spilling closed
//!   intervals as it runs ([`SegmentWriter`](crate::segment::SegmentWriter));
//!   the tail surfaces the header once and every newly complete interval
//!   row after it. Segment followers run in resync mode: a corrupt chunk
//!   becomes a [`TailEvent::SegmentGap`] and the stream continues from the
//!   next valid chunk instead of dying.

use std::collections::{HashMap, HashSet};
use std::fs;
use std::path::{Path, PathBuf};

use crate::corpus::{entry_order_key, CorpusEntry, CORPUS_EXT};
use crate::dataset::MeasurementSet;
use crate::segment::{SegmentFollower, SegmentItem, SEGMENT_EXT};

/// Default number of failed polls before a pending `.nniset` is declared
/// corrupt rather than still-being-written.
pub const DEFAULT_RETRY_BUDGET: u32 = 200;

/// One arrival surfaced by [`CorpusTail::poll`].
// Events are produced one at a time and consumed immediately, never stored
// in bulk, so the size spread between variants costs nothing in practice.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
pub enum TailEvent {
    /// A complete corpus entry landed (decodes cleanly end to end).
    Entry(CorpusEntry),
    /// A live segment's header became readable: the set's identity and
    /// interval grid, with an empty log.
    SegmentHeader {
        /// The segment file.
        path: PathBuf,
        /// The decoded header (zero intervals).
        set: MeasurementSet,
    },
    /// Newly complete interval rows of a live segment.
    SegmentIntervals {
        /// The segment file.
        path: PathBuf,
        /// Interval index of `rows[0]`.
        first_t: usize,
        /// `(sent, lost)` per path, one pair of rows per interval.
        rows: Vec<(Vec<u64>, Vec<u64>)>,
    },
    /// A corrupt region of a live segment was skipped: intervals
    /// `from_interval..to_interval` are lost, the stream continues after
    /// them. Consumers should degrade their verdicts, not die.
    SegmentGap {
        /// The segment file.
        path: PathBuf,
        /// First interval lost.
        from_interval: usize,
        /// One past the last interval lost.
        to_interval: usize,
        /// Width of the skipped byte region on disk.
        bytes_skipped: usize,
    },
    /// A file is genuinely unreadable (retry budget exhausted, or a
    /// terminal segment error such as header corruption). Reported once;
    /// the file is then ignored.
    Corrupt {
        /// The offending file.
        path: PathBuf,
        /// Human-readable cause.
        message: String,
    },
}

/// Poll-based watcher over one corpus directory.
#[derive(Debug)]
pub struct CorpusTail {
    dir: PathBuf,
    retry_budget: u32,
    /// Files fully dealt with: emitted entries and corrupt files.
    done: HashSet<PathBuf>,
    /// Failed decode attempts per still-pending `.nniset`.
    pending: HashMap<PathBuf, u32>,
    /// Live followers per `.nniseg`.
    followers: HashMap<PathBuf, SegmentFollower>,
}

impl CorpusTail {
    /// Starts tailing `dir` (created if missing, so a tail can be set up
    /// before its producer).
    pub fn open(dir: impl Into<PathBuf>) -> std::io::Result<CorpusTail> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(CorpusTail {
            dir,
            retry_budget: DEFAULT_RETRY_BUDGET,
            done: HashSet::new(),
            pending: HashMap::new(),
            followers: HashMap::new(),
        })
    }

    /// Overrides the pending-entry retry budget.
    pub fn with_retry_budget(mut self, polls: u32) -> CorpusTail {
        self.retry_budget = polls.max(1);
        self
    }

    /// The directory being tailed.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Scans the directory once and returns everything that newly landed,
    /// in replay order. An empty vector means no change. I/O errors on the
    /// directory itself surface; per-file problems become
    /// [`TailEvent::Corrupt`] (after the retry budget, for entries).
    pub fn poll(&mut self) -> std::io::Result<Vec<TailEvent>> {
        let mut files: Vec<PathBuf> = fs::read_dir(&self.dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| {
                p.extension()
                    .is_some_and(|e| e == CORPUS_EXT || e == SEGMENT_EXT)
            })
            .collect();
        files.sort_by_key(|p| entry_order_key(p));

        let mut events = Vec::new();
        for path in files {
            if self.done.contains(&path) {
                continue;
            }
            if path.extension().is_some_and(|e| e == CORPUS_EXT) {
                self.poll_entry(path, &mut events);
            } else {
                self.poll_segment(path, &mut events);
            }
        }
        Ok(events)
    }

    fn poll_entry(&mut self, path: PathBuf, events: &mut Vec<TailEvent>) {
        // Full decode, not just the provenance prefix: `Corpus::store` is
        // a plain write, so a reader can catch a file whose prefix is
        // already valid while the log section is still landing.
        let outcome = fs::read(&path)
            .map_err(|e| e.to_string())
            .and_then(|bytes| crate::codec::decode(&bytes).map_err(|e| e.to_string()));
        match outcome {
            Ok(_) => match CorpusEntry::open(&path) {
                Ok(entry) => {
                    self.pending.remove(&path);
                    self.done.insert(path);
                    events.push(TailEvent::Entry(entry));
                }
                Err(e) => self.entry_failed(path, e.to_string(), events),
            },
            Err(msg) => self.entry_failed(path, msg, events),
        }
    }

    fn entry_failed(&mut self, path: PathBuf, message: String, events: &mut Vec<TailEvent>) {
        let attempts = self.pending.entry(path.clone()).or_insert(0);
        *attempts += 1;
        if *attempts >= self.retry_budget {
            self.pending.remove(&path);
            self.done.insert(path.clone());
            events.push(TailEvent::Corrupt { path, message });
        }
        // Otherwise: presumed still being written; retry next poll.
    }

    fn poll_segment(&mut self, path: PathBuf, events: &mut Vec<TailEvent>) {
        let follower = self
            .followers
            .entry(path.clone())
            // Followers resync past corrupt chunks: a live consumer wants
            // a degraded stream, not a dead one. Header corruption is
            // still terminal and lands in the `Err` arm below.
            .or_insert_with(|| SegmentFollower::open(&path).with_resync(true));
        match follower.poll() {
            Ok(batch) => {
                for item in batch.items {
                    match item {
                        SegmentItem::Header(set) => events.push(TailEvent::SegmentHeader {
                            path: path.clone(),
                            set: *set,
                        }),
                        SegmentItem::Intervals { first_t, rows } => {
                            events.push(TailEvent::SegmentIntervals {
                                path: path.clone(),
                                first_t,
                                rows,
                            })
                        }
                        SegmentItem::Gap(gap) => events.push(TailEvent::SegmentGap {
                            path: path.clone(),
                            from_interval: gap.from_interval,
                            to_interval: gap.to_interval,
                            bytes_skipped: gap.bytes_skipped,
                        }),
                    }
                }
            }
            Err(e) => {
                self.followers.remove(&path);
                self.done.insert(path.clone());
                events.push(TailEvent::Corrupt {
                    path,
                    message: e.to_string(),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Provenance;
    use crate::record::MeasurementLog;
    use crate::segment::SegmentWriter;
    use crate::Corpus;
    use nni_topology::{PathId, TopologyBuilder};

    fn tiny_set(name: &str, seed: u64, intervals: usize) -> MeasurementSet {
        let mut b = TopologyBuilder::new();
        let h0 = b.host("h0");
        let h1 = b.host("h1");
        let l0 = b.link("l0", h0, h1).unwrap();
        b.path("p0", vec![l0]).unwrap();
        let mut log = MeasurementLog::new(1, 0.1);
        for t in 0..intervals {
            log.record_sent(t, PathId(0), 100 + seed + t as u64);
        }
        MeasurementSet {
            topology: b.build(),
            classes: vec![vec![PathId(0)]],
            log,
            provenance: Provenance {
                scenario: name.into(),
                scenario_fingerprint: 0xAB,
                seed,
                build: "test".into(),
            },
        }
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("nni-tail-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn entries_surface_once_in_numeric_order() {
        let dir = temp_dir("entries");
        let mut tail = CorpusTail::open(&dir).unwrap();
        assert!(tail.poll().unwrap().is_empty());
        let corpus = Corpus::open(&dir).unwrap();
        for seed in [10, 2] {
            corpus.store(&tiny_set("tail", seed, 3)).unwrap();
        }
        let events = tail.poll().unwrap();
        let seeds: Vec<u64> = events
            .iter()
            .map(|e| match e {
                TailEvent::Entry(entry) => entry.provenance().seed,
                other => panic!("unexpected event {other:?}"),
            })
            .collect();
        assert_eq!(seeds, vec![2, 10]);
        assert!(tail.poll().unwrap().is_empty(), "no re-emission");
        // A later arrival still surfaces.
        corpus.store(&tiny_set("tail", 5, 3)).unwrap();
        let events = tail.poll().unwrap();
        assert_eq!(events.len(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncated_entry_is_pending_until_complete() {
        let dir = temp_dir("pending");
        let mut tail = CorpusTail::open(&dir).unwrap();
        let set = tiny_set("slow", 1, 4);
        let bytes = crate::codec::encode(&set);
        let path = dir.join(crate::corpus::entry_file_name(&set.provenance));
        fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        assert!(tail.poll().unwrap().is_empty(), "half-written: no event");
        fs::write(&path, &bytes).unwrap();
        let events = tail.poll().unwrap();
        assert!(matches!(&events[..], [TailEvent::Entry(_)]));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn persistent_garbage_exhausts_the_budget() {
        let dir = temp_dir("garbage");
        let mut tail = CorpusTail::open(&dir).unwrap().with_retry_budget(3);
        fs::write(dir.join("junk-00-s000001.nniset"), b"not a set").unwrap();
        assert!(tail.poll().unwrap().is_empty());
        assert!(tail.poll().unwrap().is_empty());
        let events = tail.poll().unwrap();
        assert!(matches!(&events[..], [TailEvent::Corrupt { .. }]));
        assert!(tail.poll().unwrap().is_empty(), "reported once");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn segments_stream_header_then_intervals() {
        let dir = temp_dir("segments");
        let mut tail = CorpusTail::open(&dir).unwrap();
        let set = tiny_set("live", 4, 9);
        let path = dir.join(crate::corpus::segment_file_name(&set.provenance));
        let mut w = SegmentWriter::create(&path, &set).unwrap();
        w.append_intervals(&set.log, 0, 3).unwrap();

        let events = tail.poll().unwrap();
        assert_eq!(events.len(), 2);
        assert!(matches!(&events[0], TailEvent::SegmentHeader { set: h, .. }
            if h.provenance == set.provenance));
        match &events[1] {
            TailEvent::SegmentIntervals { first_t, rows, .. } => {
                assert_eq!(*first_t, 0);
                assert_eq!(rows.len(), 3);
                assert_eq!(rows[2].0, vec![set.log.sent(2, PathId(0))]);
            }
            other => panic!("unexpected event {other:?}"),
        }

        w.append_intervals(&set.log, 3, 9).unwrap();
        let events = tail.poll().unwrap();
        match &events[..] {
            [TailEvent::SegmentIntervals { first_t, rows, .. }] => {
                assert_eq!(*first_t, 3);
                assert_eq!(rows.len(), 6);
            }
            other => panic!("unexpected events {other:?}"),
        }
        assert!(tail.poll().unwrap().is_empty());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_segment_chunk_degrades_to_a_gap() {
        let dir = temp_dir("gap");
        let mut tail = CorpusTail::open(&dir).unwrap();
        let set = tiny_set("gap", 7, 12);
        let path = dir.join(crate::corpus::segment_file_name(&set.provenance));
        let mut w = SegmentWriter::create(&path, &set).unwrap();
        w.append_intervals(&set.log, 0, 4).unwrap();
        let clean = fs::read(&path).unwrap().len();
        w.append_intervals(&set.log, 4, 8).unwrap();
        w.append_intervals(&set.log, 8, 12).unwrap();
        let mut bytes = fs::read(&path).unwrap();
        bytes[clean + 12] ^= 0x10; // corrupt the middle chunk's payload
        fs::write(&path, &bytes).unwrap();

        let events = tail.poll().unwrap();
        assert_eq!(events.len(), 4, "header, rows, gap, rows: {events:?}");
        assert!(matches!(&events[0], TailEvent::SegmentHeader { .. }));
        assert!(matches!(
            &events[1],
            TailEvent::SegmentIntervals { first_t: 0, .. }
        ));
        assert!(matches!(
            &events[2],
            TailEvent::SegmentGap {
                from_interval: 4,
                to_interval: 8,
                ..
            }
        ));
        assert!(matches!(
            &events[3],
            TailEvent::SegmentIntervals { first_t: 8, .. }
        ));
        fs::remove_dir_all(&dir).unwrap();
    }
}
