//! Algorithm 2: computation of pathset performance numbers (§6.2, Appendix).
//!
//! Per interval `t`:
//!
//! 1. `m = min_{p ∈ Paths(τ)} |M[t][p]|` — the common packet budget;
//! 2. every path's measurement is *discounted* to `m` random packets
//!    (the retained losses follow a hypergeometric draw);
//! 3. a path is congestion-free when its retained loss fraction is below the
//!    loss threshold (Table 1: 1% default);
//! 4. a pathset is congestion-free when **all** member paths are;
//! 5. `y_Θ = -ln( fraction of intervals in which Θ was congestion-free )`.
//!
//! The normalization is the paper's defence against mistaking TCP dynamics
//! for differentiation: a neutral drop-tail queue drops *different amounts*
//! from flows of different sizes, but it produces loss *events* on all of
//! them in the same intervals; comparing similarly sized aggregates under a
//! frequency metric keeps those observations consistent (§6.5).

use std::sync::atomic::{AtomicU64, Ordering};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::record::MeasurementLog;
use nni_topology::PathId;

/// Process-wide count of per-(group, interval) indicator evaluations — the
/// unit of Algorithm 2 work. A full recompute of a `T`-interval log costs
/// `T` evaluations per group; an incremental consumer pays one per closed
/// interval. The streaming speedup gate reads this to prove the incremental
/// path does asymptotically less work, independent of wall-clock noise.
static INTERVAL_EVALS: AtomicU64 = AtomicU64::new(0);

/// Total [`interval_indicators`] evaluations since process start
/// (monotonic; probe by delta).
pub fn interval_eval_count() -> u64 {
    INTERVAL_EVALS.load(Ordering::Relaxed)
}

/// Exact hypergeometric draw: out of `total` packets of which `marked` are
/// lost, sample `draw` without replacement; returns how many lost packets
/// land in the sample.
///
/// Sequential construction over the marked packets: the probability that the
/// next marked packet falls into the remaining sample slots is
/// `remaining_draw / remaining_total`. Runs in `O(marked)` — loss counts are
/// small, packet counts large, so this is far cheaper than sampling the
/// packets themselves.
pub fn hypergeometric<R: Rng + ?Sized>(rng: &mut R, total: u64, marked: u64, draw: u64) -> u64 {
    assert!(marked <= total, "cannot mark more than total");
    assert!(draw <= total, "cannot draw more than total");
    let mut remaining_total = total;
    let mut remaining_draw = draw;
    let mut hits = 0;
    for _ in 0..marked {
        if remaining_draw == 0 {
            break;
        }
        let p = remaining_draw as f64 / remaining_total as f64;
        if rng.gen::<f64>() < p {
            hits += 1;
            remaining_draw -= 1;
        }
        remaining_total -= 1;
    }
    hits
}

/// Configuration of Algorithm 2.
#[derive(Debug, Clone, Copy)]
pub struct NormalizeConfig {
    /// Loss threshold below which an interval counts as congestion-free
    /// (Table 1: 1% default, 5% and 10% variants).
    pub loss_threshold: f64,
    /// RNG seed for the packet-discounting draws (deterministic runs).
    pub seed: u64,
    /// When set, the congestion-free indicator becomes the **joint
    /// loss+delay feature**: an interval is congestion-free only when the
    /// loss feature passes *and* the path's p90 one-way delay is not
    /// inflated relative to its baseline (see
    /// [`nni_core::DelayFeature`]). Ignored — i.e. pure loss-only,
    /// bit-identical to the paper's feature — when the log carries no
    /// delay grid.
    pub delay: Option<nni_core::DelayFeature>,
}

impl Default for NormalizeConfig {
    fn default() -> Self {
        NormalizeConfig {
            loss_threshold: 0.01,
            seed: 0x5eed,
            delay: None,
        }
    }
}

/// The per-path delay baselines of a group (min per-interval p50, see
/// [`MeasurementLog::delay_baseline`]), in group order. All-`None` when the
/// log has no delay grid.
pub fn delay_baselines(log: &MeasurementLog, group: &[PathId]) -> Vec<Option<f64>> {
    group.iter().map(|&p| log.delay_baseline(p)).collect()
}

/// Per-interval congestion-free indicators `S[t][{p}]` for each path of a
/// normalization group, after discounting to the group's common packet
/// budget.
///
/// Intervals in which some group path sent nothing carry no information
/// (the common budget is zero) and are marked `None`.
pub fn group_indicators(
    log: &MeasurementLog,
    group: &[PathId],
    cfg: NormalizeConfig,
) -> Vec<Vec<Option<bool>>> {
    let t_max = log.interval_count();
    // Baselines are whole-log statistics: computed once per group pass
    // instead of once per interval column.
    let baselines = delay_baselines(log, group);
    let mut out = vec![Vec::with_capacity(t_max); group.len()];
    for t in 0..t_max {
        let col = indicators_with_baselines(log, group, t, cfg, &baselines);
        for (row, s) in out.iter_mut().zip(col) {
            row.push(s);
        }
    }
    out
}

/// One interval's congestion-free indicators for a normalization group —
/// the column `S[t][·]` of [`group_indicators`], computable the moment
/// interval `t` closes.
///
/// The discounting draw is seeded per `(seed, interval, path)`, so the
/// indicator of a closed interval never depends on which intervals exist
/// around it: computing columns one at a time as a stream closes them
/// yields bit-identical indicators to a batch pass over the finished log.
pub fn interval_indicators(
    log: &MeasurementLog,
    group: &[PathId],
    t: usize,
    cfg: NormalizeConfig,
) -> Vec<Option<bool>> {
    let baselines = delay_baselines(log, group);
    indicators_with_baselines(log, group, t, cfg, &baselines)
}

fn indicators_with_baselines(
    log: &MeasurementLog,
    group: &[PathId],
    t: usize,
    cfg: NormalizeConfig,
    baselines: &[Option<f64>],
) -> Vec<Option<bool>> {
    INTERVAL_EVALS.fetch_add(1, Ordering::Relaxed);
    let mut col = vec![None; group.len()];
    let m = group.iter().map(|&p| log.sent(t, p)).min().unwrap_or(0);
    if m == 0 {
        return col;
    }
    for (gi, &p) in group.iter().enumerate() {
        let sent = log.sent(t, p);
        let lost = log.lost(t, p).min(sent);
        // Deterministic per (seed, interval, path): independent of the
        // order in which slices query the oracle.
        let mut rng = StdRng::seed_from_u64(
            cfg.seed
                ^ (t as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
                ^ (p.index() as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F),
        );
        let retained_lost = if sent == m {
            lost
        } else {
            hypergeometric(&mut rng, sent, lost, m)
        };
        // Algorithm 2 line 11: congestion-free iff lost fraction below
        // the threshold of the *common* budget m.
        let mut cf = (retained_lost as f64) < cfg.loss_threshold * m as f64;
        // Joint loss+delay feature: additionally require that the path's
        // p90 delay is not inflated over its baseline. Cells without delay
        // samples carry no delay evidence and fall back to the loss half.
        if let Some(feature) = cfg.delay {
            if let (Some(stats), Some(baseline)) = (log.delay(t, p), baselines[gi]) {
                cf = cf && !feature.inflated(stats.p90_s, baseline);
            }
        }
        col[gi] = Some(cf);
    }
    col
}

/// The congestion-free probability of a *pathset* given the group
/// indicators: the fraction of informative intervals in which all member
/// paths were congestion-free (Algorithm 2 lines 17–23).
///
/// `member_rows` indexes into `indicators` (one row per member path).
/// Returns `(cf_intervals, informative_intervals)`.
pub fn pathset_cf_counts(
    indicators: &[Vec<Option<bool>>],
    member_rows: &[usize],
) -> (usize, usize) {
    assert!(!member_rows.is_empty(), "pathsets are non-empty");
    let t_max = indicators.first().map_or(0, Vec::len);
    let mut cf = 0;
    let mut informative = 0;
    // `t` walks several indicator rows in lockstep; indexing keeps that
    // symmetric across rows.
    #[allow(clippy::needless_range_loop)]
    for t in 0..t_max {
        let states: Option<Vec<bool>> = member_rows.iter().map(|&r| indicators[r][t]).collect();
        if let Some(states) = states {
            informative += 1;
            if states.iter().all(|&s| s) {
                cf += 1;
            }
        }
    }
    (cf, informative)
}

/// Converts congestion-free counts to the performance number
/// `y = -ln P(congestion-free)`.
///
/// A pathset never observed congestion-free would have `y = ∞`; the estimate
/// is clamped by half a count (`0.5 / T`), the usual continuity correction
/// for log-of-frequency estimators. With zero informative intervals the
/// pathset is assumed congestion-free (`y = 0`) — no evidence, no accusation.
pub fn perf_from_counts(cf: usize, informative: usize) -> f64 {
    if informative == 0 {
        return 0.0;
    }
    let p = (cf as f64).max(0.5) / informative as f64;
    -p.min(1.0).ln()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn hypergeometric_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..500 {
            let h = hypergeometric(&mut rng, 100, 10, 30);
            assert!(h <= 10);
        }
        // Degenerate cases.
        assert_eq!(hypergeometric(&mut rng, 50, 0, 20), 0);
        assert_eq!(hypergeometric(&mut rng, 50, 50, 50), 50);
        assert_eq!(hypergeometric(&mut rng, 50, 5, 0), 0);
    }

    #[test]
    fn hypergeometric_mean_converges() {
        // E[h] = draw * marked / total = 30 * 10 / 100 = 3.
        let mut rng = StdRng::seed_from_u64(7);
        let n = 20_000;
        let sum: u64 = (0..n).map(|_| hypergeometric(&mut rng, 100, 10, 30)).sum();
        let mean = sum as f64 / n as f64;
        assert!((mean - 3.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn indicators_skip_empty_intervals() {
        let mut log = MeasurementLog::new(2, 0.1);
        let (p0, p1) = (PathId(0), PathId(1));
        // Interval 0: both active, p1 heavily lossy.
        log.record_sent(0, p0, 100);
        log.record_sent(0, p1, 100);
        log.record_lost(0, p1, 50);
        // Interval 1: p1 silent.
        log.record_sent(1, p0, 100);
        let ind = group_indicators(&log, &[p0, p1], NormalizeConfig::default());
        assert_eq!(ind[0][0], Some(true));
        assert_eq!(ind[1][0], Some(false));
        assert_eq!(ind[0][1], None, "no common budget in interval 1");
        assert_eq!(ind[1][1], None);
    }

    #[test]
    fn normalization_discounts_to_common_budget() {
        // p0 sends 1000 with 500 lost (50%); p1 sends 10. The draw retains
        // ~50% of 10 packets for p0: still far above a 1% threshold.
        let mut log = MeasurementLog::new(2, 0.1);
        let (p0, p1) = (PathId(0), PathId(1));
        log.record_sent(0, p0, 1000);
        log.record_lost(0, p0, 500);
        log.record_sent(0, p1, 10);
        let ind = group_indicators(&log, &[p0, p1], NormalizeConfig::default());
        assert_eq!(
            ind[0][0],
            Some(false),
            "50% loss stays congested after discount"
        );
        assert_eq!(ind[1][0], Some(true));
    }

    #[test]
    fn indicators_deterministic_across_calls_and_group_order() {
        let mut log = MeasurementLog::new(2, 0.1);
        let (p0, p1) = (PathId(0), PathId(1));
        for t in 0..50 {
            log.record_sent(t, p0, 200);
            log.record_lost(t, p0, (t % 7) as u64);
            log.record_sent(t, p1, 100);
            log.record_lost(t, p1, (t % 3) as u64);
        }
        let cfg = NormalizeConfig::default();
        let a = group_indicators(&log, &[p0, p1], cfg);
        let b = group_indicators(&log, &[p1, p0], cfg);
        assert_eq!(a[0], b[1], "p0's indicators must not depend on group order");
        assert_eq!(a[1], b[0]);
    }

    #[test]
    fn pathset_counts_and_perf() {
        // Two paths over 4 intervals; one uninformative interval.
        let ind = vec![
            vec![Some(true), Some(true), Some(false), None],
            vec![Some(true), Some(false), Some(true), None],
        ];
        let (cf, total) = pathset_cf_counts(&ind, &[0]);
        assert_eq!((cf, total), (2, 3));
        let (cf_pair, total_pair) = pathset_cf_counts(&ind, &[0, 1]);
        assert_eq!((cf_pair, total_pair), (1, 3));
        let y = perf_from_counts(cf_pair, total_pair);
        assert!((y + (1.0f64 / 3.0).ln()).abs() < 1e-12);
    }

    #[test]
    fn joint_feature_flags_delay_inflation_without_loss() {
        use crate::record::DelayStats;
        let mut log = MeasurementLog::new(2, 0.1);
        let (p0, p1) = (PathId(0), PathId(1));
        let ms = |k: u64| Some(DelayStats::from_sorted_ns(&[k * 1_000_000]).unwrap());
        for t in 0..4 {
            log.record_sent(t, p0, 100);
            log.record_sent(t, p1, 100);
        }
        // p1's delay balloons from 10 ms to 2 s after interval 0; p0 stays
        // flat. Nobody loses a packet.
        log.set_delay(vec![
            vec![ms(10), ms(10)],
            vec![ms(10), ms(2_000)],
            vec![ms(11), ms(2_100)],
            vec![ms(10), ms(2_200)],
        ]);
        let loss_only = NormalizeConfig::default();
        let ind = group_indicators(&log, &[p0, p1], loss_only);
        assert!(ind.iter().flatten().all(|s| *s == Some(true)));
        // The joint feature sees the inflation, on the inflated path only.
        let joint = NormalizeConfig {
            delay: Some(nni_core::DelayFeature::default()),
            ..loss_only
        };
        let ind = group_indicators(&log, &[p0, p1], joint);
        assert_eq!(ind[0], vec![Some(true); 4]);
        assert_eq!(
            ind[1],
            vec![Some(true), Some(false), Some(false), Some(false)]
        );
    }

    #[test]
    fn joint_feature_without_delay_grid_is_loss_only() {
        let mut log = MeasurementLog::new(1, 0.1);
        log.record_sent(0, PathId(0), 100);
        log.record_lost(0, PathId(0), 50);
        log.record_sent(1, PathId(0), 100);
        let joint = NormalizeConfig {
            delay: Some(nni_core::DelayFeature::default()),
            ..NormalizeConfig::default()
        };
        let a = group_indicators(&log, &[PathId(0)], NormalizeConfig::default());
        let b = group_indicators(&log, &[PathId(0)], joint);
        assert_eq!(a, b, "no delay grid: the joint feature is pure loss");
    }

    #[test]
    fn perf_from_counts_edge_cases() {
        assert_eq!(perf_from_counts(0, 0), 0.0);
        assert_eq!(perf_from_counts(10, 10), 0.0);
        // Zero congestion-free intervals: clamped, finite, large.
        let y = perf_from_counts(0, 100);
        assert!(y.is_finite() && y > 5.0);
    }
}
