//! The one measurement-interval binning rule, shared by every layer.
//!
//! Two implementations used to coexist: [`MeasurementLog::interval_of`]
//! binned timestamps with a bare `floor()` on seconds, while the emulator's
//! cached interval index walked nanosecond boundaries by ULPs. Both must
//! agree — a packet stamped exactly on `k * interval_s` has to land in the
//! same bin no matter which layer asks — so the division and the boundary
//! inversion live here, and both layers call these.
//!
//! [`MeasurementLog::interval_of`]: crate::MeasurementLog::interval_of

/// Measurement-interval index containing a timestamp, as a pure float
/// division: `floor(time_s / interval_s)`, clamped at zero.
///
/// This is the *defining* rule; [`interval_boundary_ns`] is derived from it.
#[inline]
pub fn interval_index(time_s: f64, interval_s: f64) -> usize {
    (time_s / interval_s).floor().max(0.0) as usize
}

/// Same rule for an integer-nanosecond timestamp (the emulator's clock):
/// the nanosecond count is converted to seconds exactly as
/// `SimTime::as_secs_f64` does, then binned by [`interval_index`].
#[inline]
pub fn interval_index_ns(ns: u64, interval_s: f64) -> usize {
    interval_index(ns as f64 / 1e9, interval_s)
}

/// Smallest nanosecond timestamp whose interval index — computed with the
/// same float division as [`interval_index_ns`] — is at least `i`. A float
/// guess plus an exact ULP walk, so an incremental interval cache can never
/// disagree with the division it replaces.
pub fn interval_boundary_ns(interval_s: f64, i: u64) -> u64 {
    let idx = |ns: u64| ((ns as f64 / 1e9) / interval_s).floor();
    let target = i as f64;
    let mut g = (target * interval_s * 1e9).round() as u64;
    while g > 0 && idx(g - 1) >= target {
        g -= 1;
    }
    while idx(g) < target {
        g += 1;
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_is_floor_division() {
        assert_eq!(interval_index(0.0, 0.1), 0);
        assert_eq!(interval_index(0.05, 0.1), 0);
        assert_eq!(interval_index(0.1, 0.1), 1);
        assert_eq!(interval_index(1.234, 0.1), 12);
        assert_eq!(interval_index(-0.5, 0.1), 0, "negative times clamp to 0");
    }

    #[test]
    fn boundary_inverts_the_index() {
        // The boundary must be exact for awkward interval lengths, too:
        // idx(boundary) == i and idx(boundary - 1 ns) == i - 1.
        for interval_s in [0.1, 0.05, 0.25, 0.3, 1.0 / 3.0, 0.123456789] {
            for i in [1u64, 2, 3, 10, 99, 1000, 65536] {
                let b = interval_boundary_ns(interval_s, i);
                assert!(
                    interval_index_ns(b, interval_s) >= i as usize,
                    "boundary too early: {interval_s} {i}"
                );
                assert!(
                    interval_index_ns(b - 1, interval_s) < i as usize,
                    "boundary too late: {interval_s} {i}"
                );
            }
        }
    }

    #[test]
    fn ns_and_seconds_rules_agree_on_boundaries() {
        // A timestamp landing exactly on a computed bin boundary must bin
        // identically whether asked in nanoseconds (emulator clock) or in
        // seconds (log timestamps converted the same way).
        for interval_s in [0.1, 0.05, 0.3, 1.0 / 3.0] {
            for i in 1u64..200 {
                let b = interval_boundary_ns(interval_s, i);
                assert_eq!(
                    interval_index_ns(b, interval_s),
                    interval_index(b as f64 / 1e9, interval_s),
                );
            }
        }
    }
}
