//! Property harness for on-disk corruption: the measurement-set codec,
//! the frame layer, and `.nniseg` segment files under byte soup,
//! truncated tails, and single-bit flips. The contract everywhere is the
//! same — a typed error or honest backpressure, never a panic, and never
//! a fabricated row: any interval a follower delivers (resyncing or not)
//! must be byte-for-byte the one the writer recorded.

use std::io::Cursor;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use nni_measure::codec::{self, CodecError};
use nni_measure::{
    frame_bytes, frame_bytes_v1, read_frame, read_frame_v1, DelayStats, FrameError, MeasurementLog,
    MeasurementSet, Provenance, SegmentFollower, SegmentItem, SegmentWriter, FRAME_VERSION,
};
use nni_topology::{PathId, TopologyBuilder};
use proptest::prelude::*;

const MAGIC: &[u8; 7] = b"NNIPROP";

fn sample_set(intervals: usize, salt: u64) -> MeasurementSet {
    let mut b = TopologyBuilder::new();
    let h0 = b.host("h0");
    let h1 = b.host("h1");
    let l0 = b.link("l0", h0, h1).unwrap();
    b.path("p0", vec![l0]).unwrap();
    b.path("p1", vec![l0]).unwrap();
    let mut log = MeasurementLog::new(2, 0.1);
    for t in 0..intervals {
        log.record_sent(t, PathId(0), 100 + (t as u64 ^ salt) % 97);
        log.record_lost(t, PathId(0), (t as u64 + salt) % 5);
        log.record_sent(t, PathId(1), 90 + (salt % 11));
    }
    MeasurementSet {
        topology: b.build(),
        classes: vec![vec![PathId(0), PathId(1)]],
        log,
        provenance: Provenance {
            scenario: "proptest corruption".into(),
            scenario_fingerprint: 0xF00D ^ salt,
            seed: salt,
            build: "test".into(),
        },
    }
}

/// `sample_set` plus a salt-derived one-way delay grid: a mix of empty and
/// populated cells with awkward nanosecond values, so the v2 DELAY section
/// is exercised across its whole shape space.
fn sample_set_with_delay(intervals: usize, salt: u64) -> MeasurementSet {
    let mut set = sample_set(intervals, salt);
    let n = set.log.interval_count();
    let mut rows = Vec::with_capacity(n);
    for t in 0..n {
        let mut row = Vec::with_capacity(set.log.path_count());
        for p in 0..set.log.path_count() as u64 {
            let x = (t as u64)
                .wrapping_mul(0x9E37_79B9)
                .wrapping_add(salt ^ (p << 17));
            if x.is_multiple_of(3) {
                row.push(None);
            } else {
                let base = 1_000_000 + x % 50_000_000;
                let ns: Vec<u64> = (0..1 + x % 7).map(|k| base + k * 13_337).collect();
                row.push(DelayStats::from_sorted_ns(&ns));
            }
        }
        rows.push(row);
    }
    set.log.set_delay(rows);
    set
}

/// One fresh segment file per proptest case.
fn temp_segment() -> PathBuf {
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    std::env::temp_dir().join(format!(
        "nni-proptest-corruption-{}-{}.nniseg",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed),
    ))
}

/// Maps a unit fraction onto a strict index of an `n`-byte buffer.
fn at(frac: f64, n: usize) -> usize {
    ((frac * n as f64) as usize).min(n - 1)
}

/// Spills `set` as four interval chunks and returns the file bytes plus
/// the byte offset where each chunk *starts* (marks[0] is the header
/// chunk's end, i.e. where the first interval chunk begins).
fn segment_bytes(path: &PathBuf, set: &MeasurementSet) -> (Vec<u8>, Vec<usize>) {
    let total = set.log.interval_count();
    let mut w = SegmentWriter::create(path, set).unwrap();
    let mut marks = vec![std::fs::read(path).unwrap().len()];
    let quarter = total / 4;
    for i in 0..4 {
        let from = i * quarter;
        let to = if i == 3 { total } else { (i + 1) * quarter };
        w.append_intervals(&set.log, from, to).unwrap();
        marks.push(std::fs::read(path).unwrap().len());
    }
    (std::fs::read(path).unwrap(), marks)
}

/// Every `Intervals` item a follower hands out must match the recorded
/// log exactly at its claimed position — degraded means *lossy*, never
/// *wrong*.
fn assert_rows_genuine(items: &[SegmentItem], set: &MeasurementSet) {
    for item in items {
        let SegmentItem::Intervals { first_t, rows } = item else {
            continue;
        };
        for (i, (sent, lost)) in rows.iter().enumerate() {
            let t = first_t + i;
            assert!(t < set.log.interval_count(), "row beyond the log at {t}");
            for p in 0..set.log.path_count() {
                assert_eq!(sent[p], set.log.sent(t, PathId(p)), "sent at ({t},{p})");
                assert_eq!(lost[p], set.log.lost(t, PathId(p)), "lost at ({t},{p})");
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Byte soup into the set codec and the frame reader: typed results
    /// only, whatever the bytes.
    #[test]
    fn set_codec_survives_byte_soup(soup in prop::collection::vec(0u8..=255, 0..512)) {
        let _ = codec::decode(&soup);
        let _ = codec::decode_prefix(&soup);
        let _ = read_frame(&mut Cursor::new(&soup), MAGIC);
        let _ = read_frame_v1(&mut Cursor::new(&soup), MAGIC);
    }

    /// A single flipped bit anywhere in an encoded measurement set is
    /// caught — by a structural check or by the stream checksum — and the
    /// flip never yields a silently different set.
    #[test]
    fn set_bit_flip_is_always_rejected(
        intervals in 1usize..20,
        salt in 0u64..u64::MAX,
        frac in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let set = sample_set(intervals, salt);
        let mut bytes = codec::encode(&set);
        prop_assert_eq!(&codec::decode(&bytes).unwrap(), &set);
        let i = at(frac, bytes.len());
        bytes[i] ^= 1 << bit;
        prop_assert!(codec::decode(&bytes).is_err());
    }

    /// Mid-frame EOF on the measurement wire is `UnexpectedEof`; a clean
    /// cut at zero bytes is a clean end-of-stream.
    #[test]
    fn frame_truncation_is_typed(
        intervals in 1usize..20,
        salt in 0u64..u64::MAX,
        frac in 0.0f64..1.0,
    ) {
        let set = sample_set(intervals, salt);
        let frame = frame_bytes(MAGIC, &codec::encode(&set));
        let k = at(frac, frame.len());
        let got = read_frame(&mut Cursor::new(&frame[..k]), MAGIC);
        if k == 0 {
            prop_assert!(matches!(got, Ok(None)));
        } else {
            prop_assert!(matches!(
                got,
                Err(FrameError::Codec(CodecError::UnexpectedEof))
            ), "cut at {k}: {got:?}");
        }
    }

    /// A truncated `.nniseg` tail is backpressure, not corruption: a
    /// strict follower reports whatever whole chunks landed (all genuine)
    /// and waits for the rest.
    #[test]
    fn truncated_segment_tail_is_backpressure(
        intervals in 4usize..24,
        salt in 0u64..u64::MAX,
        frac in 0.0f64..1.0,
    ) {
        let set = sample_set(intervals, salt);
        let path = temp_segment();
        let (bytes, _) = segment_bytes(&path, &set);
        let k = at(frac, bytes.len());
        std::fs::write(&path, &bytes[..k]).unwrap();

        let mut follower = SegmentFollower::open(&path);
        let batch = follower.poll().expect("a short tail is never an error");
        assert_rows_genuine(&batch.items, &set);
        let rows = batch.rows().count();
        prop_assert!(rows <= intervals);

        // The rest of the file lands: the follower catches up to exactly
        // the full log with no gaps.
        std::fs::write(&path, &bytes).unwrap();
        let tail = follower.poll().expect("the completed file reads clean");
        assert_rows_genuine(&tail.items, &set);
        prop_assert_eq!(rows + tail.rows().count(), intervals);
        prop_assert!(!tail.items.iter().any(|i| matches!(i, SegmentItem::Gap(_))));
        std::fs::remove_file(&path).unwrap();
    }

    /// A single flipped bit in a segment never panics a follower and
    /// never forges a row: strict mode gets a typed error (or honest
    /// backpressure), resync mode additionally only ever skips — every
    /// row it does deliver is genuine and gaps are well-formed.
    #[test]
    fn segment_bit_flip_never_forges_rows(
        intervals in 4usize..24,
        salt in 0u64..u64::MAX,
        frac in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let set = sample_set(intervals, salt);
        let path = temp_segment();
        let (mut bytes, _) = segment_bytes(&path, &set);
        let i = at(frac, bytes.len());
        bytes[i] ^= 1 << bit;
        std::fs::write(&path, &bytes).unwrap();

        let mut strict = SegmentFollower::open(&path);
        if let Ok(batch) = strict.poll() {
            assert_rows_genuine(&batch.items, &set);
        }

        // An `Err` here is damage the resync machinery cannot route
        // around — the header itself — and is a legitimate typed outcome.
        let mut resync = SegmentFollower::open(&path).with_resync(true);
        if let Ok(batch) = resync.poll() {
            assert_rows_genuine(&batch.items, &set);
            for item in &batch.items {
                if let SegmentItem::Gap(gap) = item {
                    prop_assert!(gap.from_interval <= gap.to_interval);
                    prop_assert!(gap.bytes_skipped > 0);
                }
            }
        }
        std::fs::remove_file(&path).unwrap();
    }

    /// Delay-carrying sets round trip bit-identically through the v2
    /// codec — binary and JSONL — and a single flipped bit anywhere in the
    /// v2 stream (including inside the DELAY section) is always rejected.
    #[test]
    fn delay_sets_round_trip_and_reject_flips(
        intervals in 1usize..20,
        salt in 0u64..u64::MAX,
        frac in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let set = sample_set_with_delay(intervals, salt);
        let mut bytes = codec::encode(&set);
        prop_assert_eq!(bytes[7], 2, "delay sets encode as version 2");
        prop_assert_eq!(&codec::decode(&bytes).unwrap(), &set);
        let text = nni_measure::jsonl::to_jsonl(&set);
        prop_assert_eq!(&nni_measure::jsonl::from_jsonl(&text).unwrap(), &set);
        let i = at(frac, bytes.len());
        bytes[i] ^= 1 << bit;
        prop_assert!(codec::decode(&bytes).is_err());
    }

    /// The frozen v1 set reader accepts every loss-only stream (which
    /// still encodes as version 1, bit-identical to pre-delay builds) and
    /// rejects every delay-carrying stream with the typed
    /// `UnsupportedVersion(2)` — the pre-delay compatibility contract.
    #[test]
    fn v1_set_reader_interop(intervals in 1usize..20, salt in 0u64..u64::MAX) {
        let loss_only = sample_set(intervals, salt);
        let bytes = codec::encode(&loss_only);
        prop_assert_eq!(bytes[7], 1, "loss-only sets stay version 1");
        prop_assert_eq!(&codec::decode_v1(&bytes).unwrap(), &loss_only);

        let with_delay = sample_set_with_delay(intervals, salt);
        prop_assert!(matches!(
            codec::decode_v1(&codec::encode(&with_delay)),
            Err(CodecError::UnsupportedVersion(2))
        ));
    }

    /// Interop on the measurement wire: a frozen v1 frame carrying an
    /// encoded set decodes bit-identically through the v2 reader, and a
    /// v2 frame stops a v1 reader at the version byte with the typed
    /// `UnsupportedVersion(2)` — by construction, whatever the payload.
    #[test]
    fn set_frames_interop_across_wire_versions(
        intervals in 1usize..20,
        salt in 0u64..u64::MAX,
    ) {
        let set = sample_set(intervals, salt);
        let encoded = codec::encode(&set);

        let v1 = frame_bytes_v1(MAGIC, &encoded);
        let payload = read_frame(&mut Cursor::new(&v1), MAGIC)
            .expect("v1 frame reads clean in the v2 reader")
            .expect("one frame present");
        prop_assert_eq!(&codec::decode(&payload).unwrap(), &set);

        let v2 = frame_bytes(MAGIC, &encoded);
        prop_assert!(matches!(
            read_frame_v1(&mut Cursor::new(&v2), MAGIC),
            Err(FrameError::Codec(CodecError::UnsupportedVersion(FRAME_VERSION)))
        ));
    }

    /// Marker-adjacent corruption in a segment: a flip inside an interval
    /// chunk's own sync marker costs exactly that chunk. The resync
    /// scanner re-anchors on the next genuine marker, every surviving row
    /// is genuine, and the loss is declared as one well-formed gap — never
    /// silently absorbed.
    #[test]
    fn marker_corruption_costs_exactly_the_damaged_chunk(
        intervals in 8usize..24,
        salt in 0u64..u64::MAX,
        byte in 0usize..8,
        bit in 0u8..8,
    ) {
        let set = sample_set(intervals, salt);
        let path = temp_segment();
        let (mut bytes, marks) = segment_bytes(&path, &set);
        // marks[1] is where the second interval chunk — and therefore its
        // leading sync marker — begins.
        bytes[marks[1] + byte] ^= 1 << bit;
        std::fs::write(&path, &bytes).unwrap();

        let mut resync = SegmentFollower::open(&path).with_resync(true);
        let batch = resync.poll().expect("marker damage is routable");
        assert_rows_genuine(&batch.items, &set);

        let quarter = intervals / 4;
        let mut seen = vec![false; intervals];
        for item in &batch.items {
            if let SegmentItem::Intervals { first_t, rows } = item {
                for i in 0..rows.len() {
                    seen[first_t + i] = true;
                }
            }
        }
        for (t, &got) in seen.iter().enumerate() {
            let damaged = (quarter..2 * quarter).contains(&t);
            prop_assert_eq!(got, !damaged, "interval {}", t);
        }
        let gaps: Vec<_> = batch
            .items
            .iter()
            .filter_map(|i| match i {
                SegmentItem::Gap(g) => Some(g),
                _ => None,
            })
            .collect();
        prop_assert_eq!(gaps.len(), 1, "one declared gap");
        prop_assert_eq!(
            (gaps[0].from_interval, gaps[0].to_interval),
            (quarter, 2 * quarter)
        );
        prop_assert!(gaps[0].bytes_skipped > 0);
        std::fs::remove_file(&path).unwrap();
    }
}
