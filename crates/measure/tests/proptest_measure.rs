//! Property-based tests for Algorithm 2 (measurement processing).

use nni_measure::{
    group_indicators, hypergeometric, pathset_cf_counts, perf_from_counts, MeasurementLog,
    NormalizeConfig,
};
use nni_topology::PathId;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Strategy: a random measurement log for `paths` paths over `t` intervals.
fn log_strategy() -> impl Strategy<Value = MeasurementLog> {
    (2usize..=4, 5usize..=40).prop_flat_map(|(paths, intervals)| {
        prop::collection::vec((0u64..500, 0.0..0.3f64), paths * intervals).prop_map(move |cells| {
            let mut log = MeasurementLog::new(paths, 0.1);
            for (idx, &(sent, loss_frac)) in cells.iter().enumerate() {
                let t = idx / paths;
                let p = PathId(idx % paths);
                log.record_sent(t, p, sent);
                log.record_lost(t, p, (sent as f64 * loss_frac) as u64);
            }
            log
        })
    })
}

/// Strategy: a random log over exactly `paths` paths (shared grid, so the
/// result is mergeable with any sibling from the same `paths`).
fn vantage_strategy(paths: usize) -> impl Strategy<Value = MeasurementLog> {
    (5usize..=30).prop_flat_map(move |intervals| {
        prop::collection::vec((0u64..500, 0.0..0.3f64), paths * intervals).prop_map(move |cells| {
            let mut log = MeasurementLog::new(paths, 0.1);
            for (idx, &(sent, loss_frac)) in cells.iter().enumerate() {
                let t = idx / paths;
                let p = PathId(idx % paths);
                log.record_sent(t, p, sent);
                log.record_lost(t, p, (sent as f64 * loss_frac) as u64);
            }
            log
        })
    })
}

/// Strategy: three mergeable vantage logs (same path count and interval
/// grid; interval counts may differ — merge extends the shorter).
fn vantage_logs() -> impl Strategy<Value = (MeasurementLog, MeasurementLog, MeasurementLog)> {
    (2usize..=4).prop_flat_map(|paths| {
        (
            vantage_strategy(paths),
            vantage_strategy(paths),
            vantage_strategy(paths),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Vantage merging is commutative: which collector reports first must
    /// not change the combined log.
    #[test]
    fn merge_is_commutative((a, b, _) in vantage_logs()) {
        let mut ab = a.clone();
        ab.merge(&b).unwrap();
        let mut ba = b.clone();
        ba.merge(&a).unwrap();
        prop_assert_eq!(ab, ba);
    }

    /// Vantage merging is associative across three logs: any pairing order
    /// lands on the same combined log, so a live monitor may fold vantages
    /// in arrival order.
    #[test]
    fn merge_is_associative((a, b, c) in vantage_logs()) {
        let mut ab_then_c = a.clone();
        ab_then_c.merge(&b).unwrap();
        ab_then_c.merge(&c).unwrap();
        let mut bc = b.clone();
        bc.merge(&c).unwrap();
        let mut a_then_bc = a.clone();
        a_then_bc.merge(&bc).unwrap();
        prop_assert_eq!(ab_then_c, a_then_bc);
    }

    /// Merging an empty log (a vantage that saw nothing) changes nothing.
    #[test]
    fn merge_with_empty_is_identity((a, _, _) in vantage_logs()) {
        let mut merged = a.clone();
        merged.merge(&MeasurementLog::new(a.path_count(), a.interval_s())).unwrap();
        prop_assert_eq!(merged, a);
    }

    /// Hypergeometric draws are bounded by both the marked count and the
    /// draw size, and are deterministic per seed.
    #[test]
    fn hypergeometric_bounds_and_determinism(
        total in 1u64..10_000,
        marked_frac in 0.0..1.0f64,
        draw_frac in 0.0..1.0f64,
        seed in 0u64..1000,
    ) {
        let marked = (total as f64 * marked_frac) as u64;
        let draw = (total as f64 * draw_frac) as u64;
        let mut a = StdRng::seed_from_u64(seed);
        let mut b = StdRng::seed_from_u64(seed);
        let ha = hypergeometric(&mut a, total, marked, draw);
        let hb = hypergeometric(&mut b, total, marked, draw);
        prop_assert_eq!(ha, hb);
        prop_assert!(ha <= marked.min(draw));
        // Everything marked is drawn when we draw everything.
        let mut c = StdRng::seed_from_u64(seed);
        prop_assert_eq!(hypergeometric(&mut c, total, marked, total), marked);
    }

    /// Indicators are independent of the group ordering and of unrelated
    /// query order — the foundation of the observation cache's correctness.
    #[test]
    fn indicators_invariant_under_group_permutation(log in log_strategy()) {
        let n = log.path_count();
        let fwd: Vec<PathId> = (0..n).map(PathId).collect();
        let rev: Vec<PathId> = (0..n).rev().map(PathId).collect();
        let cfg = NormalizeConfig::default();
        let a = group_indicators(&log, &fwd, cfg);
        let b = group_indicators(&log, &rev, cfg);
        for (i, p) in fwd.iter().enumerate() {
            let j = rev.iter().position(|q| q == p).unwrap();
            prop_assert_eq!(&a[i], &b[j], "indicators depend on group order");
        }
    }

    /// Congestion-free counts are antitone in the pathset: adding a member
    /// path can only reduce (or keep) the joint congestion-free count —
    /// Equation 2's monotonicity at the indicator level.
    #[test]
    fn pathset_cf_counts_antitone(log in log_strategy()) {
        let n = log.path_count();
        let group: Vec<PathId> = (0..n).map(PathId).collect();
        let ind = group_indicators(&log, &group, NormalizeConfig::default());
        let (cf_single, t1) = pathset_cf_counts(&ind, &[0]);
        let all: Vec<usize> = (0..n).collect();
        let (cf_all, t2) = pathset_cf_counts(&ind, &all);
        prop_assert_eq!(t1, t2, "informative interval count is group-wide");
        prop_assert!(cf_all <= cf_single);
    }

    /// Performance numbers are non-negative, finite, and antitone in the
    /// congestion-free count.
    #[test]
    fn perf_from_counts_shape(total in 1usize..5000, cf in 0usize..5000) {
        let cf = cf.min(total);
        let y = perf_from_counts(cf, total);
        prop_assert!(y >= 0.0 && y.is_finite());
        if cf < total {
            prop_assert!(perf_from_counts(cf + 1, total) <= y);
        }
    }

    /// Raising the loss threshold can only turn congested intervals into
    /// congestion-free ones (verdict monotonicity behind the §6.5 sweep).
    #[test]
    fn threshold_monotonicity(log in log_strategy()) {
        let n = log.path_count();
        let group: Vec<PathId> = (0..n).map(PathId).collect();
        let lo = group_indicators(
            &log, &group, NormalizeConfig { loss_threshold: 0.01, seed: 9, delay: None });
        let hi = group_indicators(
            &log, &group, NormalizeConfig { loss_threshold: 0.10, seed: 9, delay: None });
        for (row_lo, row_hi) in lo.iter().zip(&hi) {
            for (a, b) in row_lo.iter().zip(row_hi) {
                match (a, b) {
                    (Some(cf_lo), Some(cf_hi)) => {
                        // congestion-free at 1% implies congestion-free at 10%
                        if *cf_lo {
                            prop_assert!(*cf_hi);
                        }
                    }
                    (None, None) => {}
                    _ => prop_assert!(false, "informative-ness must not depend on threshold"),
                }
            }
        }
    }

    /// Congestion probability is within [0, 1] and zero for loss-free logs.
    #[test]
    fn congestion_probability_range(log in log_strategy()) {
        for p in 0..log.path_count() {
            let pr = log.congestion_probability(PathId(p), 0.01);
            prop_assert!((0.0..=1.0).contains(&pr));
        }
    }
}
