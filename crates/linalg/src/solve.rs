//! Solving and consistency-testing linear systems `y = A x`.
//!
//! The inference algorithm never needs a *fast* solver — it needs a *trustworthy
//! verdict* on whether a system is solvable (Lemma 1 / Definition 1 /
//! Definition 2 all hinge on solvability), plus a particular solution and the
//! least-squares residual as a graded "unsolvability" signal for measured data.

use crate::elim::{default_tolerance, rref};
use crate::matrix::{norm2, Matrix};
use crate::qr::lstsq;

/// Outcome of analysing the linear system `A x = y`.
#[derive(Debug, Clone, PartialEq)]
pub enum Solvability {
    /// The system has at least one exact solution (within tolerance).
    Consistent {
        /// A particular solution with free variables set to zero.
        solution: Vec<f64>,
        /// Whether the solution is unique (`rank == cols`).
        unique: bool,
    },
    /// The system has no solution; carries the least-squares residual norm.
    Inconsistent {
        /// Minimum achievable `||A x - y||_2`.
        residual: f64,
        /// The least-squares minimiser.
        least_squares: Vec<f64>,
    },
}

impl Solvability {
    /// `true` for [`Solvability::Consistent`].
    pub fn is_consistent(&self) -> bool {
        matches!(self, Solvability::Consistent { .. })
    }

    /// Residual norm: zero for consistent systems.
    pub fn residual(&self) -> f64 {
        match self {
            Solvability::Consistent { .. } => 0.0,
            Solvability::Inconsistent { residual, .. } => *residual,
        }
    }
}

/// Analyses `A x = y` with tolerance `tol` (entries below `tol` are zero).
///
/// Uses the Rouché–Capelli criterion — the system is consistent iff
/// `rank(A) == rank([A|y])` — computed from a single RREF of the augmented
/// matrix, then extracts a particular solution or the least-squares verdict.
pub fn analyze(a: &Matrix, y: &[f64], tol: f64) -> Solvability {
    assert_eq!(y.len(), a.rows(), "rhs length must equal row count");
    let aug = a.augment_col(y);
    let e = rref(&aug, tol);
    let n = a.cols();
    // Inconsistent iff some pivot lands in the augmented (last) column.
    let inconsistent = e.pivot_cols.contains(&n);
    if inconsistent {
        let ls = lstsq(a, y);
        let residual = {
            let r: Vec<f64> = a
                .matvec(&ls)
                .iter()
                .zip(y)
                .map(|(ax, yy)| ax - yy)
                .collect();
            norm2(&r)
        };
        return Solvability::Inconsistent {
            residual,
            least_squares: ls,
        };
    }
    // Particular solution: pivot variables from RREF, free variables zero.
    let mut solution = vec![0.0; n];
    for (r, &c) in e.pivot_cols.iter().enumerate() {
        solution[c] = e.matrix[(r, n)];
    }
    let unique = e.pivot_cols.len() == n;
    Solvability::Consistent { solution, unique }
}

/// [`analyze`] with the scale-aware default tolerance of the augmented system.
pub fn analyze_default(a: &Matrix, y: &[f64]) -> Solvability {
    let aug = a.augment_col(y);
    analyze(a, y, default_tolerance(&aug))
}

/// Convenience: `true` iff `A x = y` has an exact solution within `tol`.
pub fn is_solvable(a: &Matrix, y: &[f64], tol: f64) -> bool {
    analyze(a, y, tol).is_consistent()
}

/// Least-squares residual norm `min_x ||A x - y||_2`.
pub fn residual_norm(a: &Matrix, y: &[f64]) -> f64 {
    let x = lstsq(a, y);
    let r: Vec<f64> = a.matvec(&x).iter().zip(y).map(|(ax, yy)| ax - yy).collect();
    norm2(&r)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(rows: &[Vec<f64>]) -> Matrix {
        Matrix::from_rows(rows)
    }

    #[test]
    fn unique_solution_found() {
        let a = m(&[vec![2.0, 0.0], vec![0.0, 4.0]]);
        match analyze_default(&a, &[2.0, 8.0]) {
            Solvability::Consistent { solution, unique } => {
                assert!(unique);
                assert!((solution[0] - 1.0).abs() < 1e-12);
                assert!((solution[1] - 2.0).abs() < 1e-12);
            }
            other => panic!("expected consistent, got {other:?}"),
        }
    }

    #[test]
    fn underdetermined_is_consistent_not_unique() {
        let a = m(&[vec![1.0, 1.0]]);
        match analyze_default(&a, &[3.0]) {
            Solvability::Consistent { solution, unique } => {
                assert!(!unique);
                let check = a.matvec(&solution);
                assert!((check[0] - 3.0).abs() < 1e-12);
            }
            other => panic!("expected consistent, got {other:?}"),
        }
    }

    #[test]
    fn inconsistent_detected_with_residual() {
        // x = 0 and x = 1 simultaneously.
        let a = m(&[vec![1.0], vec![1.0]]);
        match analyze_default(&a, &[0.0, 1.0]) {
            Solvability::Inconsistent {
                residual,
                least_squares,
            } => {
                assert!((least_squares[0] - 0.5).abs() < 1e-9);
                assert!((residual - (0.5_f64).sqrt()).abs() < 1e-9);
            }
            other => panic!("expected inconsistent, got {other:?}"),
        }
    }

    #[test]
    fn paper_section_3_1_example_is_unsolvable() {
        // Figure 1 network, pathsets {p1},{p2},{p3}:
        //   y1 = x1 + x2 = 0
        //   y2 = x1 + x3 = 0.69   (p2 occasionally congested)
        //   y3 = x3 + x4 = 0
        // plus the implied nonneg constraints make it inconsistent only with
        // extra pathsets; the raw 3x4 system alone is solvable (x3 = 0.69).
        let a = m(&[
            vec![1.0, 1.0, 0.0, 0.0],
            vec![1.0, 0.0, 1.0, 0.0],
            vec![0.0, 0.0, 1.0, 1.0],
        ]);
        let y = [0.0, 0.69, 0.0];
        assert!(is_solvable(&a, &y, 1e-9));

        // Adding pathset {p2,p3} with y = 0.69 and {p1,p2} with y = 0.69
        // (observed correlations) is still linear-algebra solvable; the
        // *unsolvable* instance from §3.3 (Figure 5) is exercised in
        // nni-core's observability tests. Here we test the mechanism with a
        // directly inconsistent augmentation: p1 says x1 + x2 = 0 while
        // another vantage claims x1 + x2 = 1.
        let a2 = m(&[vec![1.0, 1.0, 0.0, 0.0], vec![1.0, 1.0, 0.0, 0.0]]);
        assert!(!is_solvable(&a2, &[0.0, 1.0], 1e-9));
    }

    #[test]
    fn tolerance_turns_noise_into_consistency() {
        let a = m(&[vec![1.0], vec![1.0]]);
        let y = [1.0, 1.0 + 1e-8];
        assert!(!is_solvable(&a, &y, 1e-12));
        assert!(is_solvable(&a, &y, 1e-6));
    }

    #[test]
    fn residual_norm_zero_for_consistent() {
        let a = m(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let y = a.matvec(&[1.0, -1.0]);
        assert!(residual_norm(&a, &y) < 1e-9);
    }

    #[test]
    fn zero_rows_system_is_trivially_consistent() {
        let a = Matrix::zeros(0, 3);
        match analyze(&a, &[], 1e-9) {
            Solvability::Consistent { solution, unique } => {
                assert_eq!(solution, vec![0.0; 3]);
                assert!(!unique);
            }
            other => panic!("expected consistent, got {other:?}"),
        }
    }
}
