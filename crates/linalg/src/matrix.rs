//! Dense row-major `f64` matrix.
//!
//! The systems the inference algorithm manipulates are tiny (a slice system
//! has a handful of rows and columns; the largest exact-mode system is
//! `|P*| x |L|` for small `|P|`), so a simple contiguous row-major layout is
//! both the fastest and the simplest correct choice.

use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense row-major matrix of `f64` values.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows x cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from a slice of equally sized rows.
    ///
    /// # Panics
    /// Panics if the rows have inconsistent lengths.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        assert!(
            rows.iter().all(|row| row.len() == c),
            "all rows must have identical length"
        );
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            data.extend_from_slice(row);
        }
        Matrix {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Builds a matrix from a flat row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer size mismatch");
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Returns `true` when the matrix has no entries.
    pub fn is_empty(&self) -> bool {
        self.rows == 0 || self.cols == 0
    }

    /// Borrows row `i` as a slice.
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(i < self.rows, "row index out of bounds");
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrows row `i` as a slice.
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        assert!(i < self.rows, "row index out of bounds");
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copies column `j` into a fresh vector.
    pub fn col(&self, j: usize) -> Vec<f64> {
        assert!(j < self.cols, "column index out of bounds");
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Matrix product `self * other`.
    ///
    /// # Panics
    /// Panics if the inner dimensions disagree.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "inner dimensions must agree");
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    out[(i, j)] += a * other[(k, j)];
                }
            }
        }
        out
    }

    /// Matrix-vector product `self * x`.
    ///
    /// # Panics
    /// Panics if `x.len() != self.cols()`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "vector length must equal column count");
        (0..self.rows)
            .map(|i| self.row(i).iter().zip(x).map(|(a, b)| a * b).sum())
            .collect()
    }

    /// Horizontally concatenates `self` with a column vector, producing the
    /// augmented matrix `[A | y]` used in consistency tests.
    ///
    /// # Panics
    /// Panics if `y.len() != self.rows()`.
    pub fn augment_col(&self, y: &[f64]) -> Matrix {
        assert_eq!(y.len(), self.rows, "augmenting column has wrong length");
        let mut out = Matrix::zeros(self.rows, self.cols + 1);
        for i in 0..self.rows {
            out.row_mut(i)[..self.cols].copy_from_slice(self.row(i));
            out[(i, self.cols)] = y[i];
        }
        out
    }

    /// Horizontally concatenates two matrices with equal row counts.
    pub fn hstack(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "row counts must match for hstack");
        let mut out = Matrix::zeros(self.rows, self.cols + other.cols);
        for i in 0..self.rows {
            out.row_mut(i)[..self.cols].copy_from_slice(self.row(i));
            out.row_mut(i)[self.cols..].copy_from_slice(other.row(i));
        }
        out
    }

    /// Returns the matrix restricted to the given columns, in order.
    pub fn select_cols(&self, cols: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(self.rows, cols.len());
        for i in 0..self.rows {
            for (jj, &j) in cols.iter().enumerate() {
                out[(i, jj)] = self[(i, j)];
            }
        }
        out
    }

    /// Largest absolute entry (0 for an empty matrix).
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, v| m.max(v.abs()))
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Swaps rows `a` and `b` in place.
    pub fn swap_rows(&mut self, a: usize, b: usize) {
        if a == b {
            return;
        }
        assert!(a < self.rows && b < self.rows, "row index out of bounds");
        let c = self.cols;
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        let (top, bottom) = self.data.split_at_mut(hi * c);
        top[lo * c..(lo + 1) * c].swap_with_slice(&mut bottom[..c]);
    }

    /// `row(dst) += factor * row(src)` in place.
    pub fn add_scaled_row(&mut self, dst: usize, src: usize, factor: f64) {
        assert!(dst != src, "source and destination rows must differ");
        assert!(
            dst < self.rows && src < self.rows,
            "row index out of bounds"
        );
        let c = self.cols;
        let (src_off, dst_off) = (src * c, dst * c);
        for j in 0..c {
            let v = self.data[src_off + j];
            self.data[dst_off + j] += factor * v;
        }
    }

    /// Scales row `i` by `factor` in place.
    pub fn scale_row(&mut self, i: usize, factor: f64) {
        for v in self.row_mut(i) {
            *v *= factor;
        }
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        assert!(i < self.rows && j < self.cols, "index out of bounds");
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        assert!(i < self.rows && j < self.cols, "index out of bounds");
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows {
            write!(f, "  [")?;
            for j in 0..self.cols {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{:9.4}", self[(i, j)])?;
            }
            writeln!(f, "]")?;
        }
        write!(f, "]")
    }
}

/// Dot product of two equally sized slices.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot product length mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Euclidean norm of a slice.
pub fn norm2(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// Largest absolute entry of a slice (0 for empty input).
pub fn max_abs(a: &[f64]) -> f64 {
    a.iter().fold(0.0_f64, |m, v| m.max(v.abs()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_has_expected_shape_and_content() {
        let m = Matrix::zeros(2, 3);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        assert!(m.row(0).iter().all(|&v| v == 0.0));
        assert!(m.row(1).iter().all(|&v| v == 0.0));
    }

    #[test]
    fn identity_is_diagonal() {
        let m = Matrix::identity(3);
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(m[(i, j)], if i == j { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn from_rows_round_trips() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(m[(0, 1)], 2.0);
        assert_eq!(m[(1, 0)], 3.0);
        assert_eq!(m.row(1), &[3.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "identical length")]
    fn from_rows_rejects_ragged_input() {
        Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]);
    }

    #[test]
    fn transpose_involution() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        let t = m.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.cols(), 2);
        assert_eq!(t[(2, 1)], 6.0);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(m.matmul(&Matrix::identity(2)), m);
        assert_eq!(Matrix::identity(2).matmul(&m), m);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[vec![19.0, 22.0], vec![43.0, 50.0]]));
    }

    #[test]
    fn matvec_matches_manual_computation() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![0.0, 1.0, -1.0]]);
        assert_eq!(a.matvec(&[1.0, 1.0, 1.0]), vec![6.0, 0.0]);
    }

    #[test]
    fn augment_col_appends_vector() {
        let a = Matrix::identity(2);
        let aug = a.augment_col(&[7.0, 8.0]);
        assert_eq!(aug.cols(), 3);
        assert_eq!(aug[(0, 2)], 7.0);
        assert_eq!(aug[(1, 2)], 8.0);
    }

    #[test]
    fn swap_rows_exchanges_contents() {
        let mut m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        m.swap_rows(0, 1);
        assert_eq!(m.row(0), &[3.0, 4.0]);
        assert_eq!(m.row(1), &[1.0, 2.0]);
    }

    #[test]
    fn add_scaled_row_is_elementary_operation() {
        let mut m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        m.add_scaled_row(1, 0, -3.0);
        assert_eq!(m.row(1), &[0.0, -2.0]);
    }

    #[test]
    fn select_cols_projects() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        let s = m.select_cols(&[2, 0]);
        assert_eq!(s, Matrix::from_rows(&[vec![3.0, 1.0], vec![6.0, 4.0]]));
    }

    #[test]
    fn norms_and_dot() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert!((norm2(&[3.0, 4.0]) - 5.0).abs() < 1e-12);
        assert_eq!(max_abs(&[-7.0, 2.0]), 7.0);
        let m = Matrix::from_rows(&[vec![3.0, 0.0], vec![0.0, -4.0]]);
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-12);
        assert_eq!(m.max_abs(), 4.0);
    }
}
