//! Householder QR factorisation and least-squares solves.
//!
//! Least squares gives the algorithm a *graded* unsolvability signal for
//! measured data: a slice system that is "more unsolvable" has a larger
//! residual. QR with column-norm-aware back substitution is numerically far
//! better behaved than normal equations for the nearly rank-deficient routing
//! matrices that slices produce.

use crate::matrix::Matrix;

/// Compact Householder QR of an `m x n` matrix (`m >= n` not required).
#[derive(Debug, Clone)]
pub struct Qr {
    /// Upper triangle holds `R`; the lower part stores the Householder
    /// vectors (below-diagonal part, with implicit leading 1).
    factors: Matrix,
    /// Scalar `tau` coefficients of the Householder reflectors.
    taus: Vec<f64>,
}

impl Qr {
    /// Computes the QR factorisation of `a`.
    pub fn new(a: &Matrix) -> Qr {
        let mut f = a.clone();
        let (m, n) = (f.rows(), f.cols());
        let k = m.min(n);
        let mut taus = vec![0.0; k];

        for j in 0..k {
            // Build the Householder reflector for column j, rows j..m.
            let mut norm_sq = 0.0;
            for i in j..m {
                norm_sq += f[(i, j)] * f[(i, j)];
            }
            let norm = norm_sq.sqrt();
            if norm == 0.0 {
                taus[j] = 0.0;
                continue;
            }
            // alpha takes the opposite sign of the pivot to avoid cancellation,
            // which also guarantees v0 = f[j,j] - alpha is bounded away from 0.
            let alpha = if f[(j, j)] >= 0.0 { -norm } else { norm };
            let v0 = f[(j, j)] - alpha;
            // Normalise so the leading element of v is 1 (stored implicitly).
            for i in j + 1..m {
                f[(i, j)] /= v0;
            }
            let mut vtv = 1.0;
            for i in j + 1..m {
                vtv += f[(i, j)] * f[(i, j)];
            }
            taus[j] = 2.0 / vtv;
            let tau = taus[j];
            f[(j, j)] = alpha;

            // Apply the reflector to the trailing columns.
            for c in j + 1..n {
                let mut s = f[(j, c)];
                for i in j + 1..m {
                    s += f[(i, j)] * f[(i, c)];
                }
                s *= tau;
                f[(j, c)] -= s;
                for i in j + 1..m {
                    let vij = f[(i, j)];
                    f[(i, c)] -= s * vij;
                }
            }
        }
        Qr { factors: f, taus }
    }

    /// Applies `Q^T` to a vector (length `m`), in place.
    fn apply_qt(&self, y: &mut [f64]) {
        let (m, n) = (self.factors.rows(), self.factors.cols());
        let k = m.min(n);
        for j in 0..k {
            let tau = self.taus[j];
            if tau == 0.0 {
                continue;
            }
            let mut s = y[j];
            for (i, yi) in y.iter().enumerate().take(m).skip(j + 1) {
                s += self.factors[(i, j)] * yi;
            }
            s *= tau;
            y[j] -= s;
            for (i, yi) in y.iter_mut().enumerate().take(m).skip(j + 1) {
                *yi -= s * self.factors[(i, j)];
            }
        }
    }

    /// Solves the least-squares problem `min_x ||A x - y||` using this
    /// factorisation. Rank-deficient columns get a zero coefficient.
    pub fn solve(&self, y: &[f64]) -> Vec<f64> {
        let (m, n) = (self.factors.rows(), self.factors.cols());
        assert_eq!(y.len(), m, "rhs length must equal row count");
        let mut rhs = y.to_vec();
        self.apply_qt(&mut rhs);

        // Back substitution on R (k x n upper-triangular block).
        let k = m.min(n);
        let mut x = vec![0.0; n];
        // Tolerance for declaring a diagonal of R "zero" (rank deficiency).
        let rmax = (0..k).fold(0.0_f64, |acc, i| acc.max(self.factors[(i, i)].abs()));
        let tol = rmax.max(1.0) * (n.max(m) as f64) * f64::EPSILON;
        for i in (0..k).rev() {
            let mut s = rhs[i];
            for (j, xj) in x.iter().enumerate().take(n).skip(i + 1) {
                s -= self.factors[(i, j)] * xj;
            }
            let d = self.factors[(i, i)];
            x[i] = if d.abs() <= tol { 0.0 } else { s / d };
        }
        x
    }
}

/// One-shot least squares `min_x ||A x - y||_2`.
pub fn lstsq(a: &Matrix, y: &[f64]) -> Vec<f64> {
    if a.rows() == 0 || a.cols() == 0 {
        return vec![0.0; a.cols()];
    }
    Qr::new(a).solve(y)
}

/// Residual vector `A x - y`.
pub fn residual(a: &Matrix, x: &[f64], y: &[f64]) -> Vec<f64> {
    a.matvec(x).iter().zip(y).map(|(ax, yy)| ax - yy).collect()
}

/// Verifies `Q R == A` by reconstructing the product `Q^T A` and comparing
/// against `R`; exposed for tests and debugging only.
pub fn qr_reconstruction_error(a: &Matrix) -> f64 {
    let qr = Qr::new(a);
    let (m, n) = (a.rows(), a.cols());
    let mut err = 0.0_f64;
    // For each canonical basis vector e_j of R^n, compare A e_j mapped through
    // Q^T with the corresponding column of R.
    for j in 0..n {
        let mut col = a.col(j);
        qr.apply_qt(&mut col);
        // Rows up to the triangle must match R; rows below it must be zero.
        for (i, &ci) in col.iter().enumerate().take(m.min(n)) {
            let want = if i <= j { qr.factors[(i, j)] } else { 0.0 };
            err = err.max((ci - want).abs());
        }
        for &ci in &col[n.min(m)..] {
            err = err.max(ci.abs());
        }
    }
    err
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::{dot, norm2};

    fn m(rows: &[Vec<f64>]) -> Matrix {
        Matrix::from_rows(rows)
    }

    #[test]
    fn exact_system_recovered() {
        let a = m(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]);
        let x_true = [2.0, -1.0];
        let y = a.matvec(&x_true);
        let x = lstsq(&a, &y);
        assert!((x[0] - 2.0).abs() < 1e-9);
        assert!((x[1] + 1.0).abs() < 1e-9);
    }

    #[test]
    fn overdetermined_minimises_residual() {
        // Fit a constant to [0, 1]: best is 0.5 with residual sqrt(0.5).
        let a = m(&[vec![1.0], vec![1.0]]);
        let x = lstsq(&a, &[0.0, 1.0]);
        assert!((x[0] - 0.5).abs() < 1e-9);
        let r = residual(&a, &x, &[0.0, 1.0]);
        assert!((norm2(&r) - 0.5_f64.sqrt()).abs() < 1e-9);
    }

    #[test]
    fn least_squares_residual_is_orthogonal_to_columns() {
        let a = m(&[
            vec![1.0, 0.0],
            vec![1.0, 1.0],
            vec![1.0, 2.0],
            vec![1.0, 3.0],
        ]);
        let y = [0.0, 1.0, 1.0, 3.0];
        let x = lstsq(&a, &y);
        let r = residual(&a, &x, &y);
        for j in 0..a.cols() {
            let c = a.col(j);
            assert!(
                dot(&c, &r).abs() < 1e-9,
                "residual not orthogonal to col {j}"
            );
        }
    }

    #[test]
    fn rank_deficient_columns_get_zero() {
        // Second column is a copy of the first.
        let a = m(&[vec![1.0, 1.0], vec![2.0, 2.0], vec![3.0, 3.0]]);
        let y = [1.0, 2.0, 3.0];
        let x = lstsq(&a, &y);
        let r = residual(&a, &x, &y);
        assert!(norm2(&r) < 1e-9, "consistent system should fit exactly");
    }

    #[test]
    fn wide_system_solves() {
        let a = m(&[vec![1.0, 1.0, 0.0], vec![0.0, 1.0, 1.0]]);
        let y = [2.0, 3.0];
        let x = lstsq(&a, &y);
        let r = residual(&a, &x, &y);
        assert!(norm2(&r) < 1e-9);
    }

    #[test]
    fn zero_matrix_yields_zero_solution() {
        let a = Matrix::zeros(3, 2);
        let x = lstsq(&a, &[1.0, 1.0, 1.0]);
        assert_eq!(x, vec![0.0, 0.0]);
    }
}
