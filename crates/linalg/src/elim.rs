//! Gaussian elimination: row echelon form, RREF, rank, pivot columns.
//!
//! All routines take an explicit absolute tolerance below which an entry is
//! treated as zero. Callers that work with measured (noisy) data pass a
//! tolerance derived from the measurement noise; exact-mode callers use
//! [`default_tolerance`].

use crate::matrix::Matrix;

/// Scale-aware default tolerance for treating a pivot as zero:
/// `max(rows, cols) * eps * max|A|`, floored at `eps`.
pub fn default_tolerance(a: &Matrix) -> f64 {
    let scale = a.max_abs().max(1.0);
    let dim = a.rows().max(a.cols()).max(1) as f64;
    (dim * f64::EPSILON * scale).max(f64::EPSILON)
}

/// Result of reducing a matrix to (reduced) row echelon form.
#[derive(Debug, Clone)]
pub struct Echelon {
    /// The reduced matrix.
    pub matrix: Matrix,
    /// Columns that contain a pivot, in elimination order.
    pub pivot_cols: Vec<usize>,
    /// Rank, i.e. `pivot_cols.len()`.
    pub rank: usize,
}

/// Reduces `a` to **reduced row echelon form** with partial pivoting.
///
/// Entries with absolute value below `tol` are treated as zero.
pub fn rref(a: &Matrix, tol: f64) -> Echelon {
    let mut m = a.clone();
    let (rows, cols) = (m.rows(), m.cols());
    let mut pivot_cols = Vec::new();
    let mut pivot_row = 0usize;

    for col in 0..cols {
        if pivot_row >= rows {
            break;
        }
        // Partial pivoting: pick the largest-magnitude entry in this column.
        let mut best = pivot_row;
        let mut best_val = m[(pivot_row, col)].abs();
        for r in pivot_row + 1..rows {
            let v = m[(r, col)].abs();
            if v > best_val {
                best = r;
                best_val = v;
            }
        }
        if best_val <= tol {
            // Deliberately zero the (numerically zero) tail of the column so
            // later consistency checks are not confused by noise residue.
            for r in pivot_row..rows {
                m[(r, col)] = 0.0;
            }
            continue;
        }
        m.swap_rows(pivot_row, best);
        let inv = 1.0 / m[(pivot_row, col)];
        m.scale_row(pivot_row, inv);
        m[(pivot_row, col)] = 1.0; // kill round-off on the pivot itself
        for r in 0..rows {
            if r != pivot_row {
                let factor = -m[(r, col)];
                if factor != 0.0 {
                    m.add_scaled_row(r, pivot_row, factor);
                    m[(r, col)] = 0.0;
                }
            }
        }
        pivot_cols.push(col);
        pivot_row += 1;
    }

    let rank = pivot_cols.len();
    Echelon {
        matrix: m,
        pivot_cols,
        rank,
    }
}

/// Rank of `a` with tolerance `tol`.
pub fn rank(a: &Matrix, tol: f64) -> usize {
    rref(a, tol).rank
}

/// Rank of `a` with the scale-aware [`default_tolerance`].
pub fn rank_default(a: &Matrix) -> usize {
    rank(a, default_tolerance(a))
}

/// Tests whether the column vector `v` lies in the column space of `a`.
///
/// This is the structural core of Theorem 1: a virtual link's column is
/// "maskable" exactly when it lies in the span of the original links' columns.
pub fn in_column_space(a: &Matrix, v: &[f64], tol: f64) -> bool {
    assert_eq!(v.len(), a.rows(), "vector length must equal row count");
    let aug = a.augment_col(v);
    rank(a, tol) == rank(&aug, tol)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(rows: &[Vec<f64>]) -> Matrix {
        Matrix::from_rows(rows)
    }

    #[test]
    fn rank_of_identity() {
        assert_eq!(rank_default(&Matrix::identity(4)), 4);
    }

    #[test]
    fn rank_of_zero_matrix() {
        assert_eq!(rank_default(&Matrix::zeros(3, 5)), 0);
    }

    #[test]
    fn rank_detects_dependent_rows() {
        let a = m(&[vec![1.0, 2.0], vec![2.0, 4.0], vec![1.0, 0.0]]);
        assert_eq!(rank_default(&a), 2);
    }

    #[test]
    fn rank_detects_dependent_cols() {
        // col2 = col0 + col1
        let a = m(&[
            vec![1.0, 0.0, 1.0],
            vec![0.0, 1.0, 1.0],
            vec![1.0, 1.0, 2.0],
        ]);
        assert_eq!(rank_default(&a), 2);
    }

    #[test]
    fn rref_of_invertible_is_identity() {
        let a = m(&[vec![2.0, 1.0], vec![1.0, 3.0]]);
        let e = rref(&a, default_tolerance(&a));
        assert_eq!(e.rank, 2);
        assert_eq!(e.pivot_cols, vec![0, 1]);
        for i in 0..2 {
            for j in 0..2 {
                let want = if i == j { 1.0 } else { 0.0 };
                assert!((e.matrix[(i, j)] - want).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn rref_known_echelon() {
        let a = m(&[
            vec![1.0, 2.0, 3.0],
            vec![2.0, 4.0, 6.0],
            vec![1.0, 1.0, 1.0],
        ]);
        let e = rref(&a, default_tolerance(&a));
        assert_eq!(e.rank, 2);
        assert_eq!(e.pivot_cols, vec![0, 1]);
        // Third row must be all zeros.
        assert!(e.matrix.row(2).iter().all(|&v| v.abs() < 1e-12));
    }

    #[test]
    fn in_column_space_accepts_span_member() {
        let a = m(&[vec![1.0, 0.0], vec![0.0, 1.0], vec![1.0, 1.0]]);
        // v = 2*c0 + 3*c1
        assert!(in_column_space(&a, &[2.0, 3.0, 5.0], 1e-9));
    }

    #[test]
    fn in_column_space_rejects_outsider() {
        let a = m(&[vec![1.0, 0.0], vec![0.0, 1.0], vec![1.0, 1.0]]);
        assert!(!in_column_space(&a, &[0.0, 0.0, 1.0], 1e-9));
    }

    #[test]
    fn tolerance_scales_with_matrix_magnitude() {
        let small = m(&[vec![1e-3]]);
        let large = m(&[vec![1e9]]);
        assert!(default_tolerance(&large) > default_tolerance(&small));
    }

    #[test]
    fn noisy_rank_collapses_with_generous_tolerance() {
        let a = m(&[vec![1.0, 1.0 + 1e-12], vec![1.0, 1.0]]);
        assert_eq!(rank(&a, 1e-9), 1);
        assert_eq!(rank(&a, 1e-15), 2);
    }
}
