//! # nni-linalg
//!
//! Small, dependency-free dense linear algebra kernel for the network
//! neutrality inference library.
//!
//! The inference theory (Zhang, Mara, Argyraki — *Network Neutrality
//! Inference*, SIGCOMM 2014) reasons entirely in terms of linear systems
//! `y = A(Θ) · x` built from generalized routing matrices:
//!
//! * **Lemma 1 / Definition 1** — a network's neutrality violation is
//!   *observable* when some system is **unsolvable**; consistency checking is
//!   [`solve::analyze`] (Rouché–Capelli via RREF, [`elim::rref`]).
//! * **Theorem 1** — observability reduces to a *column-space membership*
//!   question for virtual links: [`elim::in_column_space`].
//! * **§6.2** — with noisy measurements "no system has a perfect solution";
//!   the graded unsolvability signal is the least-squares residual,
//!   [`qr::lstsq`] / [`solve::residual_norm`].
//!
//! All tolerances are explicit; exact-mode callers use
//! [`elim::default_tolerance`], measurement-mode callers derive a tolerance
//! from their noise floor.

pub mod elim;
pub mod matrix;
pub mod qr;
pub mod solve;

pub use elim::{default_tolerance, in_column_space, rank, rank_default, rref, Echelon};
pub use matrix::{dot, max_abs, norm2, Matrix};
pub use qr::{lstsq, residual, Qr};
pub use solve::{analyze, analyze_default, is_solvable, residual_norm, Solvability};
