//! Property-based tests for the linear algebra kernel.

use nni_linalg::{
    analyze, default_tolerance, dot, in_column_space, lstsq, norm2, rank, residual, Matrix,
    Solvability,
};
use proptest::prelude::*;

/// Strategy: a matrix with entries in [-10, 10] and modest dimensions.
fn matrix_strategy(max_dim: usize) -> impl Strategy<Value = Matrix> {
    (1..=max_dim, 1..=max_dim).prop_flat_map(|(r, c)| {
        prop::collection::vec(-10.0..10.0f64, r * c)
            .prop_map(move |data| Matrix::from_vec(r, c, data))
    })
}

/// Strategy: a 0/1 routing-style matrix (the shape the algorithm actually
/// feeds the kernel).
fn binary_matrix_strategy(max_dim: usize) -> impl Strategy<Value = Matrix> {
    (1..=max_dim, 1..=max_dim).prop_flat_map(|(r, c)| {
        prop::collection::vec(prop::bool::ANY, r * c).prop_map(move |bits| {
            Matrix::from_vec(r, c, bits.into_iter().map(|b| b as u8 as f64).collect())
        })
    })
}

proptest! {
    #[test]
    fn transpose_is_involution(a in matrix_strategy(6)) {
        prop_assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn rank_bounded_by_dimensions(a in matrix_strategy(6)) {
        let r = rank(&a, default_tolerance(&a));
        prop_assert!(r <= a.rows().min(a.cols()));
    }

    #[test]
    fn rank_invariant_under_transpose(a in binary_matrix_strategy(6)) {
        let tol = default_tolerance(&a);
        prop_assert_eq!(rank(&a, tol), rank(&a.transpose(), tol));
    }

    #[test]
    fn consistent_system_from_known_solution(
        a in matrix_strategy(5),
        xs in prop::collection::vec(-5.0..5.0f64, 5),
    ) {
        let x = &xs[..a.cols()];
        let y = a.matvec(x);
        // y was *constructed* from a solution, so the system must be solvable.
        let aug = a.augment_col(&y);
        let tol = default_tolerance(&aug).max(1e-7);
        match analyze(&a, &y, tol) {
            Solvability::Consistent { solution, .. } => {
                let r = residual(&a, &solution, &y);
                prop_assert!(norm2(&r) < 1e-6, "claimed solution must satisfy the system");
            }
            Solvability::Inconsistent { residual, .. } => {
                prop_assert!(residual < 1e-6, "system built from a solution declared unsolvable");
            }
        }
    }

    #[test]
    fn lstsq_residual_orthogonal_to_column_space(
        a in matrix_strategy(5),
        ys in prop::collection::vec(-5.0..5.0f64, 5),
    ) {
        let y = &ys[..a.rows()];
        let x = lstsq(&a, y);
        let r = residual(&a, &x, y);
        let scale = a.max_abs().max(1.0) * norm2(y).max(1.0);
        for j in 0..a.cols() {
            let c = a.col(j);
            prop_assert!(dot(&c, &r).abs() <= 1e-6 * scale,
                "normal equations violated on column {}", j);
        }
    }

    #[test]
    fn lstsq_never_beats_by_perturbation(
        a in matrix_strategy(4),
        ys in prop::collection::vec(-5.0..5.0f64, 4),
        delta in prop::collection::vec(-0.5..0.5f64, 4),
    ) {
        let y = &ys[..a.rows()];
        let x = lstsq(&a, y);
        let base = norm2(&residual(&a, &x, y));
        let perturbed: Vec<f64> =
            x.iter().zip(delta.iter().cycle()).map(|(xi, d)| xi + d).collect();
        let other = norm2(&residual(&a, &perturbed, y));
        prop_assert!(base <= other + 1e-7, "least squares must be a minimiser");
    }

    #[test]
    fn column_of_matrix_is_in_its_own_column_space(a in binary_matrix_strategy(6)) {
        for j in 0..a.cols() {
            let c = a.col(j);
            prop_assert!(in_column_space(&a, &c, 1e-9));
        }
    }

    #[test]
    fn matmul_associative_on_small_matrices(
        data in prop::collection::vec(-3.0..3.0f64, 27),
    ) {
        let a = Matrix::from_vec(3, 3, data[0..9].to_vec());
        let b = Matrix::from_vec(3, 3, data[9..18].to_vec());
        let c = Matrix::from_vec(3, 3, data[18..27].to_vec());
        let left = a.matmul(&b).matmul(&c);
        let right = a.matmul(&b.matmul(&c));
        for i in 0..3 {
            for j in 0..3 {
                prop_assert!((left[(i, j)] - right[(i, j)]).abs() < 1e-9);
            }
        }
    }
}
