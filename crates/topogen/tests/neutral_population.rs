//! The calibration invariant for generated hierarchies: a seeded neutral
//! population (≥16 scenarios over ISP-like generated topologies) is never
//! flagged — under loss-only features AND under joint loss+delay features.
//!
//! The decision config is [`calibrated_config`], recalibrated for this
//! population rather than inherited from the topology-A/B suites: the
//! test additionally pins the population's unsolvability spread under the
//! recalibrated absolute threshold, so a drift in either the generator or
//! the estimator surfaces as a calibration failure, not a silent
//! false-positive rate.
//!
//! CI pins `NNI_INVARIANT_SEED=42`; locally any seed must hold.

use nni_core::{DecisionMode, DelayFeature};
use nni_scenario::{infer_scored, InferenceConfig, ScenarioBuilder};
use nni_topogen::{calibrated_config, neutral_population};

fn invariant_seed() -> u64 {
    std::env::var("NNI_INVARIANT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42)
}

#[test]
fn neutral_generated_population_is_never_flagged_in_either_mode() {
    let seed = invariant_seed();
    let pop = neutral_population(seed, 16);
    assert!(pop.len() >= 16);

    let abs_threshold = match calibrated_config().mode {
        DecisionMode::Clustered { abs_threshold, .. } => abs_threshold,
        DecisionMode::Exact { .. } => unreachable!("calibrated config is clustered"),
    };
    let mut max_unsolvability = 0.0f64;

    for s in &pop {
        // One simulation with delay recording on serves both feature
        // modes: recording is pure observation, so the loss counts are
        // bit-identical to the recording-off run and only the delay grid
        // is added.
        let recorded = ScenarioBuilder::of(s.clone())
            .record_delay(true)
            .build()
            .expect("population scenario re-validates with recording on");
        let set = recorded.compile().simulate();
        assert!(set.log.has_delay());

        let loss_cfg = InferenceConfig::of(s);
        assert!(loss_cfg.delay.is_none(), "population default is loss-only");
        let joint_cfg = InferenceConfig {
            delay: Some(DelayFeature::default()),
            ..loss_cfg
        };

        for (mode, cfg) in [("loss-only", &loss_cfg), ("joint", &joint_cfg)] {
            let out = infer_scored(&set, cfg, &s.expectation);
            assert!(
                !out.flagged_nonneutral,
                "neutral generated scenario `{}` flagged under {mode} features (seed {seed})",
                s.name
            );
            assert!(out.correct);
            for v in &out.inference.verdicts {
                max_unsolvability = max_unsolvability.max(v.unsolvability);
            }
        }
    }

    // The calibration evidence: the population's whole unsolvability
    // spread sits under the recalibrated absolute threshold. If the
    // generator or estimator drifts, this fails before the false-positive
    // rate does.
    assert!(
        max_unsolvability < abs_threshold,
        "population unsolvability spread {max_unsolvability:.4} reaches the \
         calibrated threshold {abs_threshold} (seed {seed}) — recalibrate"
    );
}
