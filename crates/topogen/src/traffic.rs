//! Richer traffic shapes layered on [`TrafficProfile`]: video-like on/off
//! chunk fetches and web request trains. Both are ordinary profiles —
//! size distribution + idle gap + parallel slots — so they compose with
//! `CcFleet` mixes and flow through every executor unchanged.

use nni_emu::{CcKind, SizeDist};
use nni_scenario::TrafficProfile;

/// A video-like on/off source: every `chunk_s` seconds a slot fetches one
/// fixed-size chunk of `chunk_s` seconds of media at `bitrate_bps`, then
/// idles until the next chunk boundary — the classic DASH pattern of
/// line-rate bursts separated by quiet periods.
///
/// The on/off duty cycle is what makes shapers visible in *delay* before
/// loss: each burst momentarily exceeds the shaped rate and queues, but
/// the long off period drains the lane before it overflows.
pub fn video_on_off(
    class: u8,
    cc: CcKind,
    bitrate_bps: f64,
    chunk_s: f64,
    parallel: usize,
) -> TrafficProfile {
    TrafficProfile {
        class,
        cc: cc.into(),
        size: SizeDist::Fixed {
            bytes: ((bitrate_bps * chunk_s / 8.0) as u64).max(1500),
        },
        mean_gap_s: chunk_s,
        parallel,
    }
}

/// A web-like request train: short Pareto-sized objects (heavy tail, mean
/// `mean_object_bytes`) with brief think times — many small transfers
/// that live mostly in slow start.
pub fn web_train(
    class: u8,
    cc: CcKind,
    mean_object_bytes: f64,
    think_s: f64,
    parallel: usize,
) -> TrafficProfile {
    TrafficProfile {
        class,
        cc: cc.into(),
        size: SizeDist::ParetoMean {
            mean_bytes: mean_object_bytes,
            shape: 1.5,
        },
        mean_gap_s: think_s,
        parallel,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn video_chunks_match_bitrate() {
        let p = video_on_off(1, CcKind::Cubic, 4e6, 2.0, 3);
        match p.size {
            SizeDist::Fixed { bytes } => assert_eq!(bytes, 1_000_000), // 4 Mb/s × 2 s / 8
            _ => panic!("video chunks are fixed-size"),
        }
        assert_eq!(p.mean_gap_s, 2.0);
        assert_eq!(p.parallel, 3);
    }

    #[test]
    fn web_trains_are_heavy_tailed_and_small() {
        let p = web_train(0, CcKind::NewReno, 50_000.0, 0.2, 4);
        match p.size {
            SizeDist::ParetoMean { mean_bytes, shape } => {
                assert_eq!(mean_bytes, 50_000.0);
                assert_eq!(shape, 1.5);
            }
            _ => panic!("web objects are pareto-sized"),
        }
        assert!(p.mean_gap_s < 1.0);
    }
}
