//! The hierarchical generator itself: a three-tier ISP-like graph —
//! access switches hanging off aggregation switches hanging off a core
//! ring (with optional chords) — with one source and one sink host per
//! access switch, deterministic shortest-path routing across the core,
//! and per-tier link rates/delays.
//!
//! Everything is a pure function of `(IspParams, seed)`: node order, link
//! order, path order, and the seeded delay jitter are all deterministic,
//! so the emitted [`PaperTopology`] fingerprints identically across
//! processes — the property the executor-identity gates lean on.

use std::collections::{HashMap, VecDeque};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use nni_topology::library::PaperTopology;
use nni_topology::{LinkId, NodeId, TopologyBuilder};

/// Rate/delay/buffer parameters of one tier of links.
///
/// `buffer_bytes` is advisory: the topology layer has no buffer field, so
/// [`crate::scenario::isp_scenario`] turns it into per-link
/// `QueueOverride`s when assembling a runnable scenario.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkTier {
    /// Link capacity in bits per second.
    pub rate_bps: f64,
    /// Nominal one-way propagation delay in seconds (before jitter).
    pub delay_s: f64,
    /// Per-link queue budget applied at scenario assembly, if any.
    pub buffer_bytes: Option<u64>,
}

/// Knobs of the generated hierarchy.
///
/// Sizes compose as: `cores` core switches on a ring (plus chords every
/// `chord_stride` positions when non-zero), `aggs_per_core` aggregation
/// switches per core, `access_per_agg` access switches per aggregation,
/// one source host and one sink host per access switch. Measured paths
/// run source host → access → (aggregation → core …) → access → sink
/// host, with each source reaching `sinks_per_source` distinct sink
/// hosts (round-robin over the access switches after its own).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IspParams {
    /// Core switches on the ring (≥ 2).
    pub cores: usize,
    /// Aggregation switches per core switch (≥ 1).
    pub aggs_per_core: usize,
    /// Access switches per aggregation switch (≥ 1).
    pub access_per_agg: usize,
    /// When non-zero, adds chord links between cores `i` and
    /// `i + chord_stride (mod cores)` in both directions.
    pub chord_stride: usize,
    /// Sink hosts each source host reaches (capped at the number of other
    /// access switches).
    pub sinks_per_source: usize,
    /// First sink offset (≥ 1). [`crate::noise::route_churn`] rotates this
    /// per epoch so the *route set* changes while the graph stays fixed.
    pub sink_offset: usize,
    /// Core ring / chord and aggregation→core links.
    pub core_tier: LinkTier,
    /// Access↔aggregation links.
    pub agg_tier: LinkTier,
    /// Host↔access links (the last mile; usually the path bottleneck).
    pub access_tier: LinkTier,
    /// Fractional uniform jitter applied to every link's delay
    /// (`delay · (1 ± jitter)`), drawn from the generation seed.
    pub delay_jitter: f64,
}

impl IspParams {
    /// Population scale: 3 cores × 1 aggregation × 1 access — 24 links,
    /// 6 paths. What [`crate::scenario::GeneratedTopologies`] draws
    /// variations of for the randomized suites.
    pub fn small() -> IspParams {
        IspParams {
            cores: 3,
            aggs_per_core: 1,
            access_per_agg: 1,
            chord_stride: 0,
            sinks_per_source: 2,
            sink_offset: 1,
            core_tier: LinkTier {
                rate_bps: 1e9,
                delay_s: 0.005,
                buffer_bytes: None,
            },
            agg_tier: LinkTier {
                rate_bps: 400e6,
                delay_s: 0.002,
                buffer_bytes: Some(2_000_000),
            },
            access_tier: LinkTier {
                rate_bps: 100e6,
                delay_s: 0.001,
                buffer_bytes: Some(500_000),
            },
            delay_jitter: 0.2,
        }
    }

    /// The headline preset: 6 cores × 2 aggregations × 4 access switches
    /// with stride-2 chords — 240 links, 48 access switches, and
    /// `48 × 22 = 1056` measured paths. The `topogen/isp_200link_3s`
    /// bench workload and the executor-identity gate both run this.
    pub fn isp_200link() -> IspParams {
        IspParams {
            cores: 6,
            aggs_per_core: 2,
            access_per_agg: 4,
            chord_stride: 2,
            sinks_per_source: 22,
            ..IspParams::small()
        }
    }

    /// Total access switches (= source hosts = sink hosts).
    pub fn access_count(&self) -> usize {
        self.cores * self.aggs_per_core * self.access_per_agg
    }

    /// Measured paths the generator will emit.
    pub fn path_count(&self) -> usize {
        let a = self.access_count();
        a * self.sinks_per_source.min(a.saturating_sub(1))
    }
}

/// Deterministic BFS shortest route over the core adjacency (neighbors
/// ascending, first discovery wins), inclusive of both endpoints.
fn core_route(adj: &[Vec<usize>], src: usize, dst: usize) -> Vec<usize> {
    if src == dst {
        return vec![src];
    }
    let mut prev = vec![usize::MAX; adj.len()];
    prev[src] = src;
    let mut queue = VecDeque::from([src]);
    while let Some(u) = queue.pop_front() {
        for &v in &adj[u] {
            if prev[v] == usize::MAX {
                prev[v] = u;
                queue.push_back(v);
            }
        }
    }
    let mut route = vec![dst];
    let mut cur = dst;
    while cur != src {
        cur = prev[cur];
        route.push(cur);
    }
    route.reverse();
    route
}

/// Generates the hierarchy: a valid [`PaperTopology`] whose class
/// partition alternates paths between two performance classes and whose
/// ground-truth non-neutral set is empty (differentiation is placed at
/// the scenario level, on top of a neutral graph).
///
/// Link names carry their tier as a prefix (`core:`, `agg:`, `acc:`,
/// `host:`), which is how the scenario assembly maps
/// [`LinkTier::buffer_bytes`] back onto links.
pub fn generate(params: &IspParams, seed: u64) -> PaperTopology {
    assert!(params.cores >= 2, "need at least two core switches");
    assert!(params.aggs_per_core >= 1 && params.access_per_agg >= 1);
    assert!(params.sink_offset >= 1, "sink_offset starts at 1");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = TopologyBuilder::new();

    let jittered = |tier: &LinkTier, rng: &mut StdRng| {
        let u: f64 = rng.gen();
        tier.delay_s * (1.0 + params.delay_jitter * (2.0 * u - 1.0))
    };

    // Nodes, tier by tier.
    let cores: Vec<NodeId> = (0..params.cores)
        .map(|i| b.relay(&format!("C{i}")))
        .collect();
    let mut aggs = Vec::new(); // (node, core index)
    let mut access = Vec::new(); // (node, agg index, core index)
    for c in 0..params.cores {
        for a in 0..params.aggs_per_core {
            let agg = b.relay(&format!("G{c}.{a}"));
            let agg_idx = aggs.len();
            aggs.push((agg, c));
            for x in 0..params.access_per_agg {
                access.push((b.relay(&format!("A{c}.{a}.{x}")), agg_idx, c));
            }
        }
    }
    let hosts: Vec<(NodeId, NodeId)> = (0..access.len())
        .map(|g| (b.host(&format!("src{g}")), b.host(&format!("dst{g}"))))
        .collect();

    // Core mesh: the ring plus chords, both directions per adjacency.
    let mut core_adj = vec![Vec::new(); params.cores];
    let mut core_links: HashMap<(usize, usize), LinkId> = HashMap::new();
    let mut mesh = |i: usize, j: usize| {
        if i == j || core_links.contains_key(&(i, j)) {
            return;
        }
        core_adj[i].push(j);
        core_adj[j].push(i);
        for (s, d) in [(i, j), (j, i)] {
            let delay = jittered(&params.core_tier, &mut rng);
            let l = b
                .link_with(
                    &format!("core:{s}>{d}"),
                    cores[s],
                    cores[d],
                    params.core_tier.rate_bps,
                    delay,
                )
                .expect("core nodes exist");
            core_links.insert((s, d), l);
        }
    };
    for i in 0..params.cores {
        mesh(i, (i + 1) % params.cores);
    }
    if params.chord_stride > 0 {
        for i in 0..params.cores {
            mesh(i, (i + params.chord_stride) % params.cores);
        }
    }
    for adj in &mut core_adj {
        adj.sort_unstable();
    }

    // Aggregation→core and back, then access and host links, in the node
    // creation order.
    let mut agg_up = Vec::new();
    let mut agg_dn = Vec::new();
    for (i, &(agg, c)) in aggs.iter().enumerate() {
        let d_up = jittered(&params.core_tier, &mut rng);
        let d_dn = jittered(&params.core_tier, &mut rng);
        agg_up.push(
            b.link_with(
                &format!("agg:up{i}"),
                agg,
                cores[c],
                params.core_tier.rate_bps,
                d_up,
            )
            .expect("agg nodes exist"),
        );
        agg_dn.push(
            b.link_with(
                &format!("agg:dn{i}"),
                cores[c],
                agg,
                params.core_tier.rate_bps,
                d_dn,
            )
            .expect("agg nodes exist"),
        );
    }
    let mut acc_up = Vec::new();
    let mut acc_dn = Vec::new();
    let mut host_up = Vec::new();
    let mut host_dn = Vec::new();
    for (g, &(acc, a, _)) in access.iter().enumerate() {
        let d_up = jittered(&params.agg_tier, &mut rng);
        let d_dn = jittered(&params.agg_tier, &mut rng);
        acc_up.push(
            b.link_with(
                &format!("acc:up{g}"),
                acc,
                aggs[a].0,
                params.agg_tier.rate_bps,
                d_up,
            )
            .expect("access nodes exist"),
        );
        acc_dn.push(
            b.link_with(
                &format!("acc:dn{g}"),
                aggs[a].0,
                acc,
                params.agg_tier.rate_bps,
                d_dn,
            )
            .expect("access nodes exist"),
        );
        let (src, dst) = hosts[g];
        let d_src = jittered(&params.access_tier, &mut rng);
        let d_dst = jittered(&params.access_tier, &mut rng);
        host_up.push(
            b.link_with(
                &format!("host:src{g}"),
                src,
                acc,
                params.access_tier.rate_bps,
                d_src,
            )
            .expect("host nodes exist"),
        );
        host_dn.push(
            b.link_with(
                &format!("host:dst{g}"),
                acc,
                dst,
                params.access_tier.rate_bps,
                d_dst,
            )
            .expect("host nodes exist"),
        );
    }

    // Measured paths: each source reaches `sinks_per_source` sinks,
    // starting `sink_offset` access switches after its own (the modulus
    // over `A − 1` keeps every sink distinct from the source).
    let a_total = access.len();
    let fan = params.sinks_per_source.min(a_total.saturating_sub(1));
    let mut classes = vec![Vec::new(), Vec::new()];
    for s in 0..a_total {
        for k in 0..fan {
            let off = 1 + (params.sink_offset - 1 + k) % (a_total - 1);
            let d = (s + off) % a_total;
            let (_, agg_s, core_s) = access[s];
            let (_, agg_d, core_d) = access[d];
            let mut links = vec![host_up[s]];
            if agg_s == agg_d {
                links.extend([acc_up[s], acc_dn[d]]);
            } else {
                links.extend([acc_up[s], agg_up[agg_s]]);
                for w in core_route(&core_adj, core_s, core_d).windows(2) {
                    links.push(core_links[&(w[0], w[1])]);
                }
                links.extend([agg_dn[agg_d], acc_dn[d]]);
            }
            links.push(host_dn[d]);
            let p = b
                .path(&format!("p{s}>{d}"), links)
                .expect("generated route is connected and loop-free");
            classes[p.index() % 2].push(p);
        }
    }

    PaperTopology {
        topology: b.build(),
        classes,
        nonneutral_links: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nni_topology::NodeKind;

    #[test]
    fn small_preset_counts() {
        let p = IspParams::small();
        let t = generate(&p, 7);
        assert_eq!(t.topology.link_count(), 24);
        assert_eq!(t.topology.path_count(), 6);
        assert_eq!(t.topology.path_count(), p.path_count());
        // Every path is classified, no overlap.
        let total: usize = t.classes.iter().map(Vec::len).sum();
        assert_eq!(total, 6);
        assert!(t.nonneutral_links.is_empty());
    }

    #[test]
    fn headline_preset_clears_the_floors() {
        let p = IspParams::isp_200link();
        assert_eq!(p.access_count(), 48);
        let t = generate(&p, 42);
        assert!(
            t.topology.link_count() >= 200,
            "headline preset must have ≥200 links, got {}",
            t.topology.link_count()
        );
        assert!(
            t.topology.path_count() >= 1000,
            "headline preset must have ≥1000 paths, got {}",
            t.topology.path_count()
        );
        assert_eq!(t.topology.path_count(), p.path_count());
    }

    #[test]
    fn generation_is_deterministic_in_seed() {
        let p = IspParams::small();
        assert_eq!(generate(&p, 3).topology, generate(&p, 3).topology);
        // A different seed moves the jittered delays but not the shape.
        let a = generate(&p, 3).topology;
        let b = generate(&p, 4).topology;
        assert_ne!(a, b);
        assert_eq!(a.link_count(), b.link_count());
        assert_eq!(a.path_count(), b.path_count());
    }

    #[test]
    fn tiers_shape_rates_and_endpoints() {
        let p = IspParams::small();
        let t = generate(&p, 1).topology;
        for l in t.links() {
            let expected = match l.name.split(':').next().unwrap() {
                "core" | "agg" => p.core_tier.rate_bps,
                "acc" => p.agg_tier.rate_bps,
                "host" => p.access_tier.rate_bps,
                other => panic!("unknown tier prefix {other}"),
            };
            assert_eq!(l.capacity_bps, expected, "link {}", l.name);
            assert!(l.delay_s > 0.0);
        }
        for path in t.paths() {
            let first = t.link(path.links()[0]);
            let last = t.link(*path.links().last().unwrap());
            assert_eq!(t.node(first.src).kind, NodeKind::Host);
            assert_eq!(t.node(last.dst).kind, NodeKind::Host);
        }
    }

    #[test]
    fn inter_core_paths_cross_the_mesh() {
        let t = generate(&IspParams::small(), 5);
        let crossing = t
            .topology
            .paths()
            .iter()
            .filter(|p| {
                p.links()
                    .iter()
                    .any(|&l| t.topology.link(l).name.starts_with("core:"))
            })
            .count();
        assert!(crossing > 0, "some paths must traverse core links");
    }
}
