//! # nni-topogen
//!
//! Seeded parametric generation of Internet-scale topologies — the
//! "scenario diversity" subsystem: hierarchical ISP-like graphs
//! (access → aggregation → core tiers) far beyond the paper's hand-built
//! topologies A/B, plus the noise models and richer traffic shapes that
//! make them behave like real networks.
//!
//! * [`gen`] — [`IspParams`] / [`generate`]: the three-tier hierarchy
//!   (core ring with chords, per-tier rates/delays/buffers, seeded delay
//!   jitter, deterministic shortest-path routing). The
//!   [`IspParams::isp_200link`] preset emits ≥200 links and ≥1000
//!   measured paths.
//! * [`noise`] — [`lossy_link_background`] (seeded interior background
//!   load) and [`route_churn`] (an epoch schedule rotating the route set
//!   over a fixed graph).
//! * [`traffic`] — [`video_on_off`] bursts and [`web_train`] request
//!   trains as ordinary `TrafficProfile`s.
//! * [`scenario`](mod@scenario) — [`GeneratedTopologies`] (a
//!   `TopologySource` feeding `ScenarioGen`), the [`isp_scenario`]
//!   assembly, the seeded [`neutral_population`] behind the calibration
//!   invariant, and the population's recalibrated [`calibrated_config`].
//!
//! Everything is deterministic in `(params, seed)`: the same inputs
//! produce bit-identical topologies, scenarios, and measurement sets on
//! every executor — which is exactly what the service-level
//! executor-identity gate checks at ISP scale.
//!
//! ```
//! use nni_topogen::{generate, IspParams};
//!
//! let small = generate(&IspParams::small(), 7);
//! assert_eq!(small.topology.link_count(), 24);
//! let big = generate(&IspParams::isp_200link(), 42);
//! assert!(big.topology.link_count() >= 200);
//! assert!(big.topology.path_count() >= 1000);
//! ```

pub mod gen;
pub mod noise;
pub mod scenario;
pub mod traffic;

pub use gen::{generate, IspParams, LinkTier};
pub use noise::{lossy_link_background, route_churn, LossyLinkNoise};
pub use scenario::{
    calibrated_config, isp_scenario, neutral_population, tier_queue_overrides, GeneratedTopologies,
};
pub use traffic::{video_on_off, web_train};
