//! Assembling generated hierarchies into runnable scenarios: the
//! [`TopologySource`] that plugs this crate into `ScenarioGen`, the
//! headline ISP-scale scenario, the seeded neutral population behind the
//! calibration invariant, and the population's recalibrated decision
//! config.

use rand::rngs::StdRng;
use rand::Rng;

use nni_core::{Config, DecisionMode};
use nni_emu::CcKind;
use nni_scenario::{
    Expectation, GenConfig, MeasurementConfig, QueueOverride, Scenario, ScenarioGen, TopologySource,
};
use nni_topology::library::PaperTopology;

use crate::gen::{generate, IspParams};
use crate::traffic::web_train;

/// A [`TopologySource`] drawing small seeded ISP hierarchies — the
/// generated-topology counterpart of the library source, for the
/// randomized suites.
#[derive(Debug, Clone, Copy, Default)]
pub struct GeneratedTopologies;

impl TopologySource for GeneratedTopologies {
    fn draw(&mut self, rng: &mut StdRng) -> (PaperTopology, String) {
        let cores = rng.gen_range(3usize..=4);
        let aggs_per_core = rng.gen_range(1usize..=2);
        let sinks_per_source = rng.gen_range(1usize..=2);
        let params = IspParams {
            cores,
            aggs_per_core,
            sinks_per_source,
            ..IspParams::small()
        };
        let seed = rng.gen::<u64>();
        (
            generate(&params, seed),
            format!("isp-{cores}x{aggs_per_core}"),
        )
    }
}

/// The decision config recalibrated for generated hierarchies.
///
/// Generated ISP graphs produce *many* slices with small normalization
/// groups (most path pairs share only a short tier segment), so the pair
/// estimates carry more sampling spread than topology A/B's single wide
/// slice. The absolute unsolvability threshold moves from the hand-built
/// topologies' 0.04 to 0.06 — re-derived against the
/// [`neutral_population`] spread (see `tests/neutral_population.rs`),
/// not copied from the topology-A/B calibration.
pub fn calibrated_config() -> Config {
    let mut cfg = Config::clustered();
    match &mut cfg.mode {
        DecisionMode::Clustered { abs_threshold, .. } => *abs_threshold = 0.06,
        DecisionMode::Exact { .. } => unreachable!("clustered() is clustered"),
    }
    cfg
}

/// Applies the per-tier queue budgets of `params` to every link of a
/// generated topology, as builder-ready overrides. Links whose tier has
/// no budget keep the emulator default.
pub fn tier_queue_overrides(
    params: &IspParams,
    paper: &PaperTopology,
) -> Vec<(nni_topology::LinkId, QueueOverride)> {
    let g = &paper.topology;
    g.link_ids()
        .filter_map(|l| {
            let tier = match g.link(l).name.split(':').next().unwrap_or("") {
                "core" | "agg" => &params.core_tier,
                "acc" => &params.agg_tier,
                "host" => &params.access_tier,
                _ => return None,
            };
            tier.buffer_bytes.map(|b| (l, QueueOverride::Bytes(b)))
        })
        .collect()
}

/// A neutral web-browsing scenario over a generated hierarchy: light
/// request trains on a deterministic subset of the measured paths (every
/// `stride`-th path, class-symmetric because the partition alternates),
/// with the per-tier queue budgets applied.
///
/// With [`IspParams::isp_200link`] this is the `topogen/isp_200link_3s`
/// bench workload and the subject of the service-level executor-identity
/// gate: ≥200 links and ≥1000 measured paths end to end.
pub fn isp_scenario(params: &IspParams, duration_s: f64, seed: u64) -> Scenario {
    let paper = generate(params, seed);
    let g = paper.topology.clone();
    let n_paths = g.path_count();
    // Aim for ~32 loaded paths regardless of scale; always at least one.
    let stride = (n_paths / 32).max(1);
    let mut b = Scenario::builder(
        format!(
            "topogen isp {}x{}x{} ({} links, {} paths)",
            params.cores,
            params.aggs_per_core,
            params.access_per_agg,
            g.link_count(),
            n_paths
        ),
        g.clone(),
    )
    .classes(paper.classes.clone())
    .measurement(MeasurementConfig {
        duration_s,
        warmup_s: Some(0.2),
        seed,
        ..MeasurementConfig::default()
    })
    .inference(calibrated_config());
    for (l, q) in tier_queue_overrides(params, &paper) {
        b = b.queue_override(l, q);
    }
    for path in g.path_ids().step_by(stride) {
        let class = paper.class_of(path).min(1) as u8;
        b = b.path_traffic(path, web_train(class, CcKind::Cubic, 200_000.0, 0.3, 2));
    }
    b.expect(Expectation::neutral())
        .build()
        .expect("generated scenario is valid")
}

/// The seeded neutral population behind the calibration invariant:
/// `n` differentiation-free scenarios over generated hierarchies, all
/// carrying [`calibrated_config`]. The invariant test runs the population
/// under both loss-only and joint loss+delay features and requires that
/// no scenario is ever flagged.
pub fn neutral_population(seed: u64, n: usize) -> Vec<Scenario> {
    let cfg = GenConfig {
        differentiation_prob: 0.0,
        max_parallel: 6,
        ..GenConfig::default()
    };
    ScenarioGen::with_source(seed, cfg, GeneratedTopologies)
        .scenarios(n)
        .into_iter()
        .map(|s| {
            nni_scenario::ScenarioBuilder::of(s)
                .inference(calibrated_config())
                .build()
                .expect("population scenarios re-validate")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_source_feeds_scenario_gen() {
        let mut g = ScenarioGen::with_source(11, GenConfig::default(), GeneratedTopologies);
        let pop = g.scenarios(6);
        assert!(pop.iter().all(|s| s.name.contains("isp-")));
        // Determinism through the seam: same seed, same stream.
        let again =
            ScenarioGen::with_source(11, GenConfig::default(), GeneratedTopologies).scenarios(6);
        for (a, b) in pop.iter().zip(&again) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.measurement_fingerprint(), b.measurement_fingerprint());
        }
    }

    #[test]
    fn isp_scenario_loads_the_headline_preset() {
        let params = IspParams::isp_200link();
        let s = isp_scenario(&params, 3.0, 42);
        assert!(s.topology.link_count() >= 200);
        assert!(s.topology.path_count() >= 1000);
        assert!(!s.path_traffic.is_empty());
        assert!(s.differentiation.is_empty());
        // Both classes carry load (the partition alternates, stride keeps
        // the symmetry).
        let classes: std::collections::BTreeSet<u8> =
            s.path_traffic.iter().map(|(_, p)| p.class).collect();
        assert_eq!(classes.len(), 2);
        // Queue budgets landed as overrides.
        assert!(!s.queue_overrides.is_empty());
    }

    #[test]
    fn neutral_population_is_neutral_by_construction() {
        let pop = neutral_population(42, 4);
        assert_eq!(pop.len(), 4);
        for s in &pop {
            assert!(s.differentiation.is_empty());
            assert!(!s.expectation.expect_flagged);
            assert_eq!(
                format!("{:?}", s.inference),
                format!("{:?}", calibrated_config())
            );
        }
    }
}
