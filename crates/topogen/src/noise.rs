//! Noise models for generated topologies: lossy-link background load and
//! a route-churn schedule.
//!
//! Both are deterministic in their seed, like everything else in this
//! crate: the same `(params, seed)` yields the same background routes and
//! the same epoch sequence.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use nni_emu::CcKind;
use nni_scenario::{BackgroundTraffic, TrafficProfile};
use nni_topology::library::PaperTopology;

use crate::gen::{generate, IspParams};

/// Background load dropped onto a seeded selection of interior links.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LossyLinkNoise {
    /// How many distinct interior (non-host) links to load.
    pub links: usize,
    /// Mean burst size in bits per background flow.
    pub mean_bits: f64,
    /// Mean idle gap between bursts (seconds).
    pub mean_gap_s: f64,
    /// Parallel background slots per loaded link.
    pub parallel: usize,
}

impl Default for LossyLinkNoise {
    fn default() -> Self {
        LossyLinkNoise {
            links: 2,
            mean_bits: 10e6,
            mean_gap_s: 0.5,
            parallel: 4,
        }
    }
}

/// Picks `noise.links` distinct interior links (aggregation/access tier —
/// the ones measured paths share) and returns one unmeasured background
/// source per pick. The background class is 0 on even picks and 1 on odd
/// ones, so the load stays class-symmetric on average and a neutral
/// network under noise still reads as neutral.
pub fn lossy_link_background(
    paper: &PaperTopology,
    noise: &LossyLinkNoise,
    seed: u64,
) -> Vec<BackgroundTraffic> {
    let g = &paper.topology;
    let mut interior: Vec<_> = g
        .link_ids()
        .filter(|&l| !g.link(l).name.starts_with("host:"))
        .filter(|&l| !g.paths_through(l).is_empty())
        .collect();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::new();
    for i in 0..noise.links.min(interior.len()) {
        let pick = interior.remove(rng.gen_range(0..interior.len()));
        out.push(BackgroundTraffic {
            links: vec![pick],
            profiles: vec![TrafficProfile::pareto_bits(
                (i % 2) as u8,
                CcKind::Cubic,
                noise.mean_bits,
                noise.mean_gap_s,
                noise.parallel,
            )],
        });
    }
    out
}

/// A route-churn schedule: `epochs` topologies over the *same* graph
/// whose route sets rotate — epoch `e` shifts every source's first sink
/// by `e` access switches. Consumers run one scenario per epoch to model
/// paths re-routing under them mid-study; within an epoch routes are
/// stable (the measurement layer's steady-routing assumption holds per
/// epoch).
pub fn route_churn(params: &IspParams, seed: u64, epochs: usize) -> Vec<PaperTopology> {
    (0..epochs)
        .map(|e| {
            let p = IspParams {
                sink_offset: params.sink_offset + e,
                ..*params
            };
            generate(&p, seed)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn background_targets_interior_links_deterministically() {
        let paper = generate(&IspParams::small(), 9);
        let noise = LossyLinkNoise::default();
        let a = lossy_link_background(&paper, &noise, 1);
        let b = lossy_link_background(&paper, &noise, 1);
        assert_eq!(a.len(), 2);
        assert_eq!(a[0].links, b[0].links);
        assert_eq!(a[1].links, b[1].links);
        assert_ne!(a[0].links, a[1].links, "picks are distinct");
        for bg in &a {
            let name = &paper.topology.link(bg.links[0]).name;
            assert!(
                !name.starts_with("host:"),
                "interior links only, got {name}"
            );
        }
        let c = lossy_link_background(&paper, &noise, 2);
        assert!(
            a[0].links != c[0].links || a[1].links != c[1].links,
            "a different seed should usually move the picks"
        );
    }

    #[test]
    fn churn_rotates_routes_on_a_fixed_graph() {
        let params = IspParams::small();
        let epochs = route_churn(&params, 5, 3);
        assert_eq!(epochs.len(), 3);
        let links: Vec<_> = epochs.iter().map(|t| t.topology.links().to_vec()).collect();
        assert_eq!(links[0], links[1], "the graph itself does not churn");
        assert_eq!(links[1], links[2]);
        let routes = |t: &PaperTopology| -> Vec<Vec<_>> {
            t.topology
                .paths()
                .iter()
                .map(|p| p.links().to_vec())
                .collect()
        };
        assert_ne!(
            routes(&epochs[0]),
            routes(&epochs[1]),
            "routes rotate per epoch"
        );
        assert_eq!(
            epochs[0].topology.path_count(),
            epochs[1].topology.path_count()
        );
    }
}
