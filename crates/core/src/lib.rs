//! # nni-core
//!
//! The primary contribution of *Network Neutrality Inference* (Zhang, Mara,
//! Argyraki — SIGCOMM 2014): detecting and localizing traffic
//! differentiation from external observations by hunting for **unsolvable**
//! systems of equations, where classic tomography hunts for solvable ones.
//!
//! Map from paper to module:
//!
//! | Paper | Module |
//! |---|---|
//! | §2.3 performance classes | [`class`] |
//! | §2.3 performance numbers / metric | [`perf`] |
//! | §2.3 generalized routing matrix, System 3 | [`routing`] |
//! | §3.2 equivalent neutral network `G⁺` | [`equivalent`] |
//! | §3.3 Theorem 1 (observability) | [`observability`] |
//! | §4.1 network slices, System 4 | [`slice`](mod@slice) |
//! | §4.2 Lemmas 2–3 (identifiability) | [`identifiability`] |
//! | §5 Algorithm 1 + redundancy removal | [`algorithm`] |
//! | §5 FN / FP / granularity metrics | [`metrics`] |
//! | observation sources (oracle vs measured) | [`obs`] |
//! | joint loss+delay feature definitions (beyond the paper) | [`features`] |
//!
//! ## Quick start
//!
//! ```
//! use nni_core::{Classes, Config, EquivalentNetwork, ExactOracle, identify,
//!                LinkPerf, NetworkPerf};
//! use nni_topology::library::figure5;
//!
//! // Figure 5 of the paper: link l1 congests class-2 traffic w.p. 0.5.
//! let t = figure5();
//! let classes = Classes::new(&t.topology, t.classes.clone()).unwrap();
//! let l1 = t.topology.link_by_name("l1").unwrap();
//! let perf = NetworkPerf::congestion_free(&t.topology, 2)
//!     .with_link(l1, LinkPerf::per_class(vec![0.0, (2.0_f64).ln()]));
//!
//! let oracle = ExactOracle::new(EquivalentNetwork::build(&t.topology, &classes, &perf));
//! let result = identify(&t.topology, &oracle, Config::exact());
//! assert!(result.network_is_nonneutral());
//! ```

pub mod algorithm;
pub mod class;
pub mod equivalent;
pub mod features;
pub mod fnv;
pub mod identifiability;
pub mod metrics;
pub mod obs;
pub mod observability;
pub mod perf;
pub mod routing;
pub mod slice;

pub use algorithm::{
    identify, identify_scores, identify_with_plan, remove_redundant, Config, DecisionMode,
    IdentifyPlan, InferenceResult, PairEstimate, SliceVerdict,
};
pub use class::{ClassError, Classes};
pub use equivalent::{EquivalentNetwork, VirtualLink, VirtualRole};
pub use features::DelayFeature;
pub use fnv::Fnv;
pub use identifiability::{lemma3_condition, seq_nonneutral, seq_top_class, system4_unsolvable};
pub use metrics::{evaluate, Quality};
pub use obs::{ExactOracle, Observations};
pub use observability::{theorem1, unsolvable_over_power_set, ObservabilityReport};
pub use perf::{perf_from_prob, prob_from_perf, LinkPerf, NetworkPerf};
pub use routing::{neutral_predictions, routing_matrix};
pub use slice::{enumerate_slices, normalization_group, slice_for, Slice};
