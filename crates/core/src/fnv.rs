//! FNV-1a — the repo's one fingerprinting primitive.
//!
//! Golden tests across the workspace (SimReport identity, measurement-set
//! corpora, inference replays) all pin FNV-1a values; a single shared
//! implementation keeps a constant typo in one place from silently
//! diverging the fingerprint families. `nni-measure` re-exports this type.

/// Incremental FNV-1a over a stream of bytes, u64 words, and strings.
#[derive(Debug, Clone)]
pub struct Fnv(pub u64);

impl Fnv {
    /// The FNV-1a offset basis.
    pub fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    /// Folds one byte (the canonical FNV-1a step).
    #[inline]
    pub fn byte(&mut self, b: u8) {
        self.0 ^= b as u64;
        self.0 = self.0.wrapping_mul(0x0000_0100_0000_01B3);
    }

    /// Folds one u64 as its 8 little-endian bytes.
    pub fn word(&mut self, w: u64) {
        for byte in w.to_le_bytes() {
            self.byte(byte);
        }
    }

    /// Folds an `f64` as its bit pattern (bit-exact, NaN-safe).
    pub fn f64(&mut self, x: f64) {
        self.word(x.to_bits());
    }

    /// Folds a length-prefixed string.
    pub fn str(&mut self, s: &str) {
        self.word(s.len() as u64);
        for byte in s.bytes() {
            self.byte(byte);
        }
    }
}

impl Default for Fnv {
    fn default() -> Self {
        Fnv::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_reference_vectors() {
        // FNV-1a of the empty input is the offset basis; "a" and "foobar"
        // are the classic published vectors.
        assert_eq!(Fnv::new().0, 0xcbf29ce484222325);
        let mut h = Fnv::new();
        h.byte(b'a');
        assert_eq!(h.0, 0xaf63dc4c8601ec8c);
        let mut h = Fnv::new();
        for b in b"foobar" {
            h.byte(*b);
        }
        assert_eq!(h.0, 0x85944171f73967e8);
    }

    #[test]
    fn word_is_le_byte_fold() {
        let mut a = Fnv::new();
        a.word(0x0102_0304_0506_0708);
        let mut b = Fnv::new();
        for byte in [0x08, 0x07, 0x06, 0x05, 0x04, 0x03, 0x02, 0x01] {
            b.byte(byte);
        }
        assert_eq!(a.0, b.0);
    }
}
