//! Performance numbers (§2.3).
//!
//! The paper's metric: time is divided into intervals; a link / link sequence
//! / path is *congestion-free* in an interval when it introduces (or
//! experiences) negligible packet loss. The performance number for class
//! `c_n` is
//!
//! ```text
//! x(n) = -ln P(cf for class n per interval)
//! ```
//!
//! so `x = 0` means always congestion-free and larger is worse. The metric is
//! additive in the sense of Equations 1 and 2, which is what makes the
//! linear-system machinery work.

use crate::class::Classes;
use nni_topology::{LinkId, Topology};

/// Converts a congestion-free probability to a performance number.
///
/// # Panics
/// Panics when `p` is outside `(0, 1]` — a zero probability has an infinite
/// performance number and is rejected rather than silently propagated.
pub fn perf_from_prob(p: f64) -> f64 {
    assert!(
        p > 0.0 && p <= 1.0,
        "congestion-free probability must be in (0, 1]"
    );
    -p.ln()
}

/// Converts a performance number back to a congestion-free probability.
pub fn prob_from_perf(x: f64) -> f64 {
    assert!(x >= 0.0, "performance numbers are non-negative");
    (-x).exp()
}

/// Per-class performance numbers of one link: `{x(n) | n = 1..|C|}`.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkPerf {
    per_class: Vec<f64>,
}

impl LinkPerf {
    /// A neutral link: the same number for every class.
    pub fn neutral(x: f64, class_count: usize) -> LinkPerf {
        assert!(x >= 0.0, "performance numbers are non-negative");
        LinkPerf {
            per_class: vec![x; class_count],
        }
    }

    /// A (possibly) non-neutral link from explicit per-class numbers.
    pub fn per_class(xs: Vec<f64>) -> LinkPerf {
        assert!(!xs.is_empty(), "at least one class required");
        assert!(
            xs.iter().all(|&x| x >= 0.0),
            "performance numbers are non-negative"
        );
        LinkPerf { per_class: xs }
    }

    /// Number of classes this link knows about.
    pub fn class_count(&self) -> usize {
        self.per_class.len()
    }

    /// `x(n)`.
    pub fn for_class(&self, n: usize) -> f64 {
        self.per_class[n]
    }

    /// Whether the link is neutral: identical numbers for all classes (§2.3).
    pub fn is_neutral(&self) -> bool {
        self.per_class
            .windows(2)
            .all(|w| (w[0] - w[1]).abs() < 1e-12)
    }

    /// The *top-priority class*: the class with the highest performance,
    /// i.e. the smallest `x` (§2.3). Ties break toward the lowest index.
    pub fn top_class(&self) -> usize {
        let mut best = 0;
        for (n, &x) in self.per_class.iter().enumerate() {
            if x < self.per_class[best] {
                best = n;
            }
        }
        best
    }
}

/// Ground-truth performance numbers of every link in a network.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkPerf {
    links: Vec<LinkPerf>,
    class_count: usize,
}

impl NetworkPerf {
    /// A fully neutral network where link `l` has performance `xs[l]`.
    pub fn neutral(xs: &[f64], class_count: usize) -> NetworkPerf {
        NetworkPerf {
            links: xs
                .iter()
                .map(|&x| LinkPerf::neutral(x, class_count))
                .collect(),
            class_count,
        }
    }

    /// Builds from explicit per-link [`LinkPerf`]s.
    ///
    /// # Panics
    /// Panics if links disagree on the class count.
    pub fn from_links(links: Vec<LinkPerf>) -> NetworkPerf {
        assert!(!links.is_empty(), "a network has at least one link");
        let class_count = links[0].class_count();
        assert!(
            links.iter().all(|l| l.class_count() == class_count),
            "all links must agree on |C|"
        );
        NetworkPerf { links, class_count }
    }

    /// A neutral baseline (all zeros) that callers then override per link.
    pub fn congestion_free(topology: &Topology, class_count: usize) -> NetworkPerf {
        NetworkPerf::neutral(&vec![0.0; topology.link_count()], class_count)
    }

    /// Overrides one link's performance numbers; returns `self` for chaining.
    pub fn with_link(mut self, l: LinkId, perf: LinkPerf) -> NetworkPerf {
        assert_eq!(
            perf.class_count(),
            self.class_count,
            "class count mismatch on override"
        );
        self.links[l.index()] = perf;
        self
    }

    /// Number of classes `|C|`.
    pub fn class_count(&self) -> usize {
        self.class_count
    }

    /// Number of links.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// Per-link accessor.
    pub fn link(&self, l: LinkId) -> &LinkPerf {
        &self.links[l.index()]
    }

    /// Ground-truth non-neutral links `L_n̄`.
    pub fn nonneutral_links(&self) -> Vec<LinkId> {
        (0..self.links.len())
            .filter(|&i| !self.links[i].is_neutral())
            .map(LinkId)
            .collect()
    }

    /// Whether the whole network is neutral.
    pub fn is_neutral(&self) -> bool {
        self.links.iter().all(LinkPerf::is_neutral)
    }

    /// Performance of link sequence `σ` for class `n` (Equation 1: the sum of
    /// member links' numbers for that class).
    pub fn seq_perf(&self, seq: &[LinkId], n: usize) -> f64 {
        seq.iter().map(|&l| self.link(l).for_class(n)).sum()
    }
}

/// Consistency guard between a class partition and performance numbers.
pub fn check_consistent(classes: &Classes, perf: &NetworkPerf) -> Result<(), String> {
    if classes.count() != perf.class_count() {
        return Err(format!(
            "classes has |C| = {} but perf has |C| = {}",
            classes.count(),
            perf.class_count()
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perf_prob_round_trip() {
        for p in [1.0, 0.5, 0.25, 0.9] {
            let x = perf_from_prob(p);
            assert!((prob_from_perf(x) - p).abs() < 1e-12);
        }
        assert_eq!(perf_from_prob(1.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn zero_probability_rejected() {
        perf_from_prob(0.0);
    }

    #[test]
    fn neutral_link_detection() {
        assert!(LinkPerf::neutral(0.3, 3).is_neutral());
        assert!(LinkPerf::per_class(vec![0.1, 0.1]).is_neutral());
        assert!(!LinkPerf::per_class(vec![0.1, 0.2]).is_neutral());
    }

    #[test]
    fn top_class_is_smallest_x() {
        // Smaller x = higher congestion-free probability = better service.
        let l = LinkPerf::per_class(vec![0.5, 0.0, 0.7]);
        assert_eq!(l.top_class(), 1);
        // Neutral link: top class is class 0 by convention.
        assert_eq!(LinkPerf::neutral(0.2, 3).top_class(), 0);
    }

    #[test]
    fn network_overrides() {
        let xs = [0.0, 0.0, 0.0];
        let net =
            NetworkPerf::neutral(&xs, 2).with_link(LinkId(1), LinkPerf::per_class(vec![0.0, 0.69]));
        assert!(net.link(LinkId(0)).is_neutral());
        assert!(!net.link(LinkId(1)).is_neutral());
        assert_eq!(net.nonneutral_links(), vec![LinkId(1)]);
        assert!(!net.is_neutral());
    }

    #[test]
    fn seq_perf_is_additive() {
        // Figure 1(a) example: sequence ⟨l1, l3⟩ has perf x1(n) + x3.
        let net = NetworkPerf::neutral(&[0.0, 0.0, 0.2, 0.0], 2)
            .with_link(LinkId(0), LinkPerf::per_class(vec![0.1, 0.4]));
        let seq = [LinkId(0), LinkId(2)];
        assert!((net.seq_perf(&seq, 0) - 0.3).abs() < 1e-12);
        assert!((net.seq_perf(&seq, 1) - 0.6).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "class count mismatch")]
    fn override_class_count_checked() {
        let _ = NetworkPerf::neutral(&[0.0], 2).with_link(LinkId(0), LinkPerf::neutral(0.0, 3));
    }
}
