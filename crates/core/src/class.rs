//! Performance classes (§2.3).
//!
//! A performance class is a set of paths the network treats "the same"; the
//! set `C` of all classes partitions the measured paths `P`. The inference
//! algorithm never *uses* the classes — it does not assume any knowledge of
//! the differentiation criteria (§2.1) — but the ground-truth model, the
//! equivalent neutral network, and the evaluation metrics do.

use nni_topology::{PathId, Topology};

/// Errors raised when validating a class partition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClassError {
    /// A path appears in more than one class.
    Overlapping(PathId),
    /// A path appears in no class.
    Unclassified(PathId),
    /// A class references a path id outside the topology.
    UnknownPath(PathId),
    /// There are no classes at all.
    Empty,
}

impl std::fmt::Display for ClassError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClassError::Overlapping(p) => write!(f, "path {p} is in two classes"),
            ClassError::Unclassified(p) => write!(f, "path {p} has no class"),
            ClassError::UnknownPath(p) => write!(f, "path {p} does not exist"),
            ClassError::Empty => write!(f, "a partition needs at least one class"),
        }
    }
}

impl std::error::Error for ClassError {}

/// A validated partition of the paths `P` into performance classes `C`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Classes {
    /// `members[n]` = sorted paths of class `n`.
    members: Vec<Vec<PathId>>,
    /// `class_of[p]` = class index of path `p`.
    class_of: Vec<usize>,
}

impl Classes {
    /// Validates and builds a partition. `members[n]` lists the paths of the
    /// `n`-th class; together the classes must cover every path of the
    /// topology exactly once.
    pub fn new(topology: &Topology, members: Vec<Vec<PathId>>) -> Result<Classes, ClassError> {
        if members.is_empty() {
            return Err(ClassError::Empty);
        }
        let n_paths = topology.path_count();
        let mut class_of = vec![usize::MAX; n_paths];
        for (n, class) in members.iter().enumerate() {
            for &p in class {
                if p.index() >= n_paths {
                    return Err(ClassError::UnknownPath(p));
                }
                if class_of[p.index()] != usize::MAX {
                    return Err(ClassError::Overlapping(p));
                }
                class_of[p.index()] = n;
            }
        }
        if let Some(i) = class_of.iter().position(|&c| c == usize::MAX) {
            return Err(ClassError::Unclassified(PathId(i)));
        }
        let members = members
            .into_iter()
            .map(|mut v| {
                v.sort();
                v
            })
            .collect();
        Ok(Classes { members, class_of })
    }

    /// The trivial single-class partition (a neutral network's view: with one
    /// class, by definition all links are neutral, §2.3).
    pub fn single(topology: &Topology) -> Classes {
        let all: Vec<PathId> = topology.path_ids().collect();
        Classes::new(topology, vec![all]).expect("single class always valid")
    }

    /// Number of classes `|C|`.
    pub fn count(&self) -> usize {
        self.members.len()
    }

    /// Class index of a path.
    pub fn class_of(&self, p: PathId) -> usize {
        self.class_of[p.index()]
    }

    /// Member paths of class `n` (sorted).
    pub fn members(&self, n: usize) -> &[PathId] {
        &self.members[n]
    }

    /// Whether every path of `paths` belongs to class `n`.
    pub fn all_in_class(&self, paths: &[PathId], n: usize) -> bool {
        paths.iter().all(|&p| self.class_of(p) == n)
    }

    /// The set of class indices represented among `paths`.
    pub fn classes_of(&self, paths: &[PathId]) -> Vec<usize> {
        let mut cs: Vec<usize> = paths.iter().map(|&p| self.class_of(p)).collect();
        cs.sort_unstable();
        cs.dedup();
        cs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nni_topology::library::dumbbell;

    #[test]
    fn valid_partition_accepted() {
        let t = dumbbell(2, 2);
        let c = Classes::new(&t.topology, t.classes.clone()).unwrap();
        assert_eq!(c.count(), 2);
        assert_eq!(c.class_of(PathId(0)), 0);
        assert_eq!(c.class_of(PathId(3)), 1);
        assert_eq!(c.members(0), &[PathId(0), PathId(1)]);
    }

    #[test]
    fn overlap_rejected() {
        let t = dumbbell(2, 1);
        let err = Classes::new(
            &t.topology,
            vec![vec![PathId(0), PathId(1)], vec![PathId(1), PathId(2)]],
        )
        .unwrap_err();
        assert_eq!(err, ClassError::Overlapping(PathId(1)));
    }

    #[test]
    fn uncovered_path_rejected() {
        let t = dumbbell(2, 1);
        let err = Classes::new(&t.topology, vec![vec![PathId(0)], vec![PathId(2)]]).unwrap_err();
        assert_eq!(err, ClassError::Unclassified(PathId(1)));
    }

    #[test]
    fn unknown_path_rejected() {
        let t = dumbbell(1, 1);
        let err = Classes::new(
            &t.topology,
            vec![vec![PathId(0), PathId(9)], vec![PathId(1)]],
        )
        .unwrap_err();
        assert_eq!(err, ClassError::UnknownPath(PathId(9)));
    }

    #[test]
    fn empty_partition_rejected() {
        let t = dumbbell(1, 1);
        assert_eq!(
            Classes::new(&t.topology, vec![]).unwrap_err(),
            ClassError::Empty
        );
    }

    #[test]
    fn single_class_covers_everything() {
        let t = dumbbell(3, 2);
        let c = Classes::single(&t.topology);
        assert_eq!(c.count(), 1);
        for p in t.topology.path_ids() {
            assert_eq!(c.class_of(p), 0);
        }
    }

    #[test]
    fn class_queries() {
        let t = dumbbell(2, 2);
        let c = Classes::new(&t.topology, t.classes.clone()).unwrap();
        assert!(c.all_in_class(&[PathId(0), PathId(1)], 0));
        assert!(!c.all_in_class(&[PathId(0), PathId(2)], 0));
        assert_eq!(c.classes_of(&[PathId(0), PathId(3), PathId(2)]), vec![0, 1]);
    }
}
