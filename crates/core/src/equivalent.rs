//! The equivalent neutral network `G⁺` (§3.2).
//!
//! From the end-hosts' point of view, any non-neutral network is equivalent
//! to a neutral one with more links: each non-neutral link `l` with top
//! class `c_{n*}` becomes
//!
//! * a **common-queue** virtual link `l⁺(n*)` with performance `x(n*)`,
//!   traversed by `Paths(l)` — bad performance inflicted on the top class is
//!   necessarily inflicted on everyone (assumption #3, §2.2); and
//! * one **regulation** virtual link `l⁺(n)` per lower-priority class `n`,
//!   with performance `x(n) − x(n*)`, traversed by `Paths(l) ∩ c_n` — the
//!   *extra* bad performance inflicted on class `n`.
//!
//! Neutral links map to themselves. `G⁺` doubles as the exact-mode
//! **observation oracle**: the ground-truth performance number of any pathset
//! is `y_Θ = A⁺(Θ) · x⁺`, because the virtual links are independent neutral
//! links by construction.

use crate::class::Classes;
use crate::perf::NetworkPerf;
use nni_linalg::Matrix;
use nni_topology::{LinkId, PathId, PathSet, Topology};

/// Role of a virtual link in the equivalent neutral network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VirtualRole {
    /// Image of a neutral link (identity mapping).
    Neutral,
    /// `l⁺(n*)`: the common queue of a non-neutral link.
    CommonQueue,
    /// `l⁺(n)`, `n ≠ n*`: regulation of lower-priority class `n`.
    Regulation {
        /// The regulated class.
        class: usize,
    },
}

/// One link of `G⁺`.
#[derive(Debug, Clone)]
pub struct VirtualLink {
    /// The original link this virtual link derives from.
    pub origin: LinkId,
    /// Role in the construction.
    pub role: VirtualRole,
    /// Performance number `x⁺` of this (neutral) virtual link.
    pub perf: f64,
    /// `Paths(l⁺)`: sorted paths traversing this virtual link.
    pub paths: Vec<PathId>,
}

/// The equivalent neutral network `G⁺ = (V⁺, L⁺, P)`.
#[derive(Debug, Clone)]
pub struct EquivalentNetwork {
    links: Vec<VirtualLink>,
}

impl EquivalentNetwork {
    /// Builds `G⁺` from the original network's ground truth.
    ///
    /// # Panics
    /// Panics if `classes` and `perf` disagree on `|C|`.
    pub fn build(topology: &Topology, classes: &Classes, perf: &NetworkPerf) -> EquivalentNetwork {
        assert_eq!(
            classes.count(),
            perf.class_count(),
            "classes and perf must agree on |C|"
        );
        let mut links = Vec::new();
        for l in topology.link_ids() {
            let lp = perf.link(l);
            let paths: Vec<PathId> = topology.paths_through(l).to_vec();
            if lp.is_neutral() {
                links.push(VirtualLink {
                    origin: l,
                    role: VirtualRole::Neutral,
                    perf: lp.for_class(0),
                    paths,
                });
                continue;
            }
            let n_star = lp.top_class();
            links.push(VirtualLink {
                origin: l,
                role: VirtualRole::CommonQueue,
                perf: lp.for_class(n_star),
                paths: paths.clone(),
            });
            for n in 0..classes.count() {
                if n == n_star {
                    continue;
                }
                let members = classes.members(n);
                let regulated: Vec<PathId> = paths
                    .iter()
                    .copied()
                    .filter(|p| members.contains(p))
                    .collect();
                links.push(VirtualLink {
                    origin: l,
                    role: VirtualRole::Regulation { class: n },
                    perf: lp.for_class(n) - lp.for_class(n_star),
                    paths: regulated,
                });
            }
        }
        EquivalentNetwork { links }
    }

    /// The virtual links `L⁺`.
    pub fn links(&self) -> &[VirtualLink] {
        &self.links
    }

    /// The ground-truth performance vector `x⁺`.
    pub fn perf_vector(&self) -> Vec<f64> {
        self.links.iter().map(|v| v.perf).collect()
    }

    /// Generalized routing matrix `A⁺(Θ)` over the virtual links.
    pub fn routing_matrix(&self, pathsets: &[PathSet]) -> Matrix {
        let mut a = Matrix::zeros(pathsets.len(), self.links.len());
        for (i, theta) in pathsets.iter().enumerate() {
            for (k, v) in self.links.iter().enumerate() {
                if theta.paths().iter().any(|p| v.paths.contains(p)) {
                    a[(i, k)] = 1.0;
                }
            }
        }
        a
    }

    /// Exact-mode oracle: the ground-truth performance number of a pathset,
    /// `y_Θ = A⁺({Θ}) · x⁺`.
    pub fn pathset_perf(&self, theta: &PathSet) -> f64 {
        self.links
            .iter()
            .filter(|v| theta.paths().iter().any(|p| v.paths.contains(p)))
            .map(|v| v.perf)
            .sum()
    }

    /// Virtual links that are *regulation* links with a non-zero performance
    /// delta — the candidates for Theorem 1's witness.
    pub fn active_regulations(&self) -> impl Iterator<Item = &VirtualLink> {
        self.links
            .iter()
            .filter(|v| matches!(v.role, VirtualRole::Regulation { .. }) && v.perf > 1e-12)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::perf::LinkPerf;
    use nni_topology::library::{figure1, figure2, figure5};
    use nni_topology::power_set;

    /// Ground truth for Figure 5: `x1(1) = 0`, `x1(2) = -ln 0.5`, rest 0.
    fn figure5_truth() -> (nni_topology::PaperTopology, Classes, NetworkPerf) {
        let t = figure5();
        let classes = Classes::new(&t.topology, t.classes.clone()).unwrap();
        let perf = NetworkPerf::congestion_free(&t.topology, 2).with_link(
            t.topology.link_by_name("l1").unwrap(),
            LinkPerf::per_class(vec![0.0, (2.0_f64).ln()]),
        );
        (t, classes, perf)
    }

    #[test]
    fn neutral_network_maps_to_itself() {
        let t = figure1();
        let classes = Classes::new(&t.topology, t.classes.clone()).unwrap();
        let perf = NetworkPerf::neutral(&[0.1, 0.2, 0.3, 0.4], 2);
        let eq = EquivalentNetwork::build(&t.topology, &classes, &perf);
        assert_eq!(eq.links().len(), 4);
        for (k, v) in eq.links().iter().enumerate() {
            assert_eq!(v.role, VirtualRole::Neutral);
            assert_eq!(v.origin, LinkId(k));
            assert_eq!(v.paths, t.topology.paths_through(LinkId(k)));
        }
    }

    #[test]
    fn figure3_structure_of_figure1_equivalent() {
        // §3.2: the neutral equivalent of Figure 1 maps l1 to l1+(1), l1+(2);
        // the rest map to themselves — 5 virtual links total.
        let t = figure1();
        let classes = Classes::new(&t.topology, t.classes.clone()).unwrap();
        let l1 = t.topology.link_by_name("l1").unwrap();
        let perf = NetworkPerf::congestion_free(&t.topology, 2)
            .with_link(l1, LinkPerf::per_class(vec![0.1, 0.5]));
        let eq = EquivalentNetwork::build(&t.topology, &classes, &perf);
        assert_eq!(eq.links().len(), 5);
        let common = &eq.links()[0];
        assert_eq!(common.role, VirtualRole::CommonQueue);
        assert!((common.perf - 0.1).abs() < 1e-12);
        assert_eq!(common.paths.len(), 2); // p1, p2 traverse l1
        let reg = &eq.links()[1];
        assert_eq!(reg.role, VirtualRole::Regulation { class: 1 });
        assert!((reg.perf - 0.4).abs() < 1e-12);
        // l1's regulation of class 2 = {p2}: only p2 traverses it.
        assert_eq!(reg.paths, vec![PathId(1)]);
    }

    #[test]
    fn figure2d_routing_matrix() {
        // The paper gives A+ for Figure 2 verbatim (Figure 2(d)).
        let t = figure2();
        let classes = Classes::new(&t.topology, t.classes.clone()).unwrap();
        let l1 = t.topology.link_by_name("l1").unwrap();
        let perf = NetworkPerf::congestion_free(&t.topology, 2)
            .with_link(l1, LinkPerf::per_class(vec![0.0, 0.3]));
        let eq = EquivalentNetwork::build(&t.topology, &classes, &perf);
        // Virtual order: l1+(1), l1+(2), l2+, l3+.
        let pathsets = vec![PathSet::single(PathId(0)), PathSet::single(PathId(1))];
        let a = eq.routing_matrix(&pathsets);
        let expected = [
            [1.0, 0.0, 1.0, 0.0], // {p1}
            [1.0, 1.0, 0.0, 1.0], // {p2}
        ];
        for i in 0..2 {
            for k in 0..4 {
                assert_eq!(a[(i, k)], expected[i][k], "A+[{i}][{k}]");
            }
        }
    }

    #[test]
    fn figure5_oracle_reproduces_section_3_3() {
        // §3.3 observable violation #2: y{p1} = 0; y{p2} = y{p3} = y{p2,p3}
        // = -ln 0.5.
        let (t, classes, perf) = figure5_truth();
        let eq = EquivalentNetwork::build(&t.topology, &classes, &perf);
        let ln2 = (2.0_f64).ln();
        let y1 = eq.pathset_perf(&PathSet::single(PathId(0)));
        let y2 = eq.pathset_perf(&PathSet::single(PathId(1)));
        let y3 = eq.pathset_perf(&PathSet::single(PathId(2)));
        let y23 = eq.pathset_perf(&PathSet::pair(PathId(1), PathId(2)));
        assert!(y1.abs() < 1e-12);
        assert!((y2 - ln2).abs() < 1e-12);
        assert!((y3 - ln2).abs() < 1e-12);
        assert!((y23 - ln2).abs() < 1e-12, "p2 and p3 congest *together*");
    }

    #[test]
    fn oracle_matches_routing_matrix_product() {
        let (t, classes, perf) = figure5_truth();
        let eq = EquivalentNetwork::build(&t.topology, &classes, &perf);
        let pathsets = power_set(t.topology.path_count());
        let a = eq.routing_matrix(&pathsets);
        let y = a.matvec(&eq.perf_vector());
        for (i, theta) in pathsets.iter().enumerate() {
            assert!((eq.pathset_perf(theta) - y[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn active_regulations_skip_zero_deltas() {
        // A "non-neutral" link whose class-2 delta is zero in one class and
        // positive in another (3 classes).
        let t = figure5();
        let members = vec![vec![PathId(0)], vec![PathId(1)], vec![PathId(2)]];
        let classes = Classes::new(&t.topology, members).unwrap();
        let l1 = t.topology.link_by_name("l1").unwrap();
        let perf = NetworkPerf::congestion_free(&t.topology, 3)
            .with_link(l1, LinkPerf::per_class(vec![0.0, 0.0, 0.4]));
        let eq = EquivalentNetwork::build(&t.topology, &classes, &perf);
        let active: Vec<_> = eq.active_regulations().collect();
        assert_eq!(active.len(), 1);
        assert_eq!(active[0].role, VirtualRole::Regulation { class: 2 });
    }
}
