//! Identifiability of non-neutral link sequences (§4.2).
//!
//! * **Lemma 2** — if System 4 for `τ` has no solution, `τ` is non-neutral.
//! * **Definition 2** — a non-neutral `τ` is *identifiable* when System 4 is
//!   unsolvable.
//! * **Lemma 3** — a sufficient structural condition: `τ` (non-neutral, top
//!   class `c_{n*}`) is identifiable when `Θ_τ` contains a path pair entirely
//!   inside some lower-priority class `c_n` and another pair not entirely
//!   inside `c_n`.

use crate::class::Classes;
use crate::obs::Observations;
use crate::perf::NetworkPerf;
use crate::slice::{normalization_group, Slice};
use nni_linalg::{analyze, default_tolerance};
use nni_topology::Topology;

/// Whether System 4 for this slice is unsolvable given exact observations —
/// by Lemma 2 this certifies that `τ` is non-neutral, and by Definition 2
/// that it is identifiable.
pub fn system4_unsolvable(
    topology: &Topology,
    slice: &Slice,
    obs: &impl Observations,
    tol: f64,
) -> bool {
    let group = normalization_group(topology, &slice.tau);
    let y = obs.observe_all(&group, &slice.pathsets);
    let a = slice.routing_matrix();
    let tol = tol.max(default_tolerance(&a.augment_col(&y)));
    !analyze(&a, &y, tol).is_consistent()
}

/// Lemma 3's sufficient condition, checked structurally.
///
/// `top_class` is the top-priority class `n*` of `τ` (from ground truth);
/// the condition needs a lower-priority class `c_n` (`n != n*`), one pair
/// `σ_i ⊆ c_n`, and one pair `σ_j ⊄ c_n`.
pub fn lemma3_condition(slice: &Slice, classes: &Classes, top_class: usize) -> bool {
    if slice.pair_count() < 2 {
        return false;
    }
    for n in 0..classes.count() {
        if n == top_class {
            continue;
        }
        let members = classes.members(n);
        let inside = |&(a, b): &(nni_topology::PathId, nni_topology::PathId)| {
            members.contains(&a) && members.contains(&b)
        };
        let has_inside = slice.pairs.iter().any(inside);
        let has_outside = slice.pairs.iter().any(|p| !inside(p));
        if has_inside && has_outside {
            return true;
        }
    }
    false
}

/// Ground-truth helper: the top-priority class of a link sequence — the
/// class with the smallest summed performance number over `τ`'s links
/// (Equation 1).
pub fn seq_top_class(perf: &NetworkPerf, tau: &nni_topology::LinkSeq) -> usize {
    let mut best = 0;
    let mut best_x = f64::INFINITY;
    for n in 0..perf.class_count() {
        let x = perf.seq_perf(tau.links(), n);
        if x < best_x {
            best_x = x;
            best = n;
        }
    }
    best
}

/// Ground truth: is the link sequence non-neutral (contains a non-neutral
/// link, §2.3 "definition of network neutrality")?
pub fn seq_nonneutral(perf: &NetworkPerf, tau: &nni_topology::LinkSeq) -> bool {
    tau.links().iter().any(|&l| !perf.link(l).is_neutral())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::class::Classes;
    use crate::equivalent::EquivalentNetwork;
    use crate::obs::ExactOracle;
    use crate::perf::LinkPerf;
    use crate::slice::slice_for;
    use nni_topology::library::{figure4, figure5};
    use nni_topology::LinkSeq;

    fn figure4_truth() -> (nni_topology::PaperTopology, Classes, NetworkPerf) {
        let t = figure4();
        let classes = Classes::new(&t.topology, t.classes.clone()).unwrap();
        let l1 = t.topology.link_by_name("l1").unwrap();
        let l2 = t.topology.link_by_name("l2").unwrap();
        let perf = NetworkPerf::congestion_free(&t.topology, 2)
            .with_link(l1, LinkPerf::per_class(vec![0.0, 0.4]))
            .with_link(l2, LinkPerf::per_class(vec![0.0, 0.2]));
        (t, classes, perf)
    }

    #[test]
    fn lemma3_holds_for_l1_in_figure4() {
        // §4.2: {p2,p4} is entirely in c2 while {p1,p4} is not → ⟨l1⟩
        // identifiable.
        let (t, classes, perf) = figure4_truth();
        let l1 = t.topology.link_by_name("l1").unwrap();
        let s = slice_for(&t.topology, &LinkSeq::single(l1)).unwrap();
        let top = seq_top_class(&perf, &s.tau);
        assert_eq!(top, 0);
        assert!(lemma3_condition(&s, &classes, top));
    }

    #[test]
    fn lemma3_implies_unsolvable_system4() {
        let (t, classes, perf) = figure4_truth();
        let oracle = ExactOracle::new(EquivalentNetwork::build(&t.topology, &classes, &perf));
        let l1 = t.topology.link_by_name("l1").unwrap();
        let s = slice_for(&t.topology, &LinkSeq::single(l1)).unwrap();
        assert!(system4_unsolvable(&t.topology, &s, &oracle, 1e-9));
    }

    #[test]
    fn neutral_tau_always_solvable() {
        // Lemma 2 contrapositive: a fully neutral network's System 4 must be
        // solvable for every slice.
        let t = figure4();
        let classes = Classes::new(&t.topology, t.classes.clone()).unwrap();
        let perf = NetworkPerf::neutral(&[0.1, 0.2, 0.3, 0.1, 0.05, 0.2], 2);
        let oracle = ExactOracle::new(EquivalentNetwork::build(&t.topology, &classes, &perf));
        for s in crate::slice::enumerate_slices(&t.topology) {
            assert!(
                !system4_unsolvable(&t.topology, &s, &oracle, 1e-9),
                "neutral slice {} flagged unsolvable",
                s.tau
            );
        }
    }

    #[test]
    fn figure5_slice_unsolvable() {
        let t = figure5();
        let classes = Classes::new(&t.topology, t.classes.clone()).unwrap();
        let l1 = t.topology.link_by_name("l1").unwrap();
        let perf = NetworkPerf::congestion_free(&t.topology, 2)
            .with_link(l1, LinkPerf::per_class(vec![0.0, (2.0_f64).ln()]));
        let oracle = ExactOracle::new(EquivalentNetwork::build(&t.topology, &classes, &perf));
        let s = slice_for(&t.topology, &LinkSeq::single(l1)).unwrap();
        assert!(lemma3_condition(&s, &classes, 0));
        assert!(system4_unsolvable(&t.topology, &s, &oracle, 1e-9));
    }

    #[test]
    fn lemma3_fails_with_single_pair() {
        let (t, classes, _perf) = figure4_truth();
        let l1 = t.topology.link_by_name("l1").unwrap();
        let s = slice_for(&t.topology, &LinkSeq::single(l1)).unwrap();
        let reduced = Slice::new(s.tau.clone(), vec![s.pairs[0]]);
        assert!(!lemma3_condition(&reduced, &classes, 0));
    }

    #[test]
    fn seq_helpers() {
        let (t, _classes, perf) = figure4_truth();
        let l1 = t.topology.link_by_name("l1").unwrap();
        let l3 = t.topology.link_by_name("l3").unwrap();
        assert!(seq_nonneutral(&perf, &LinkSeq::single(l1)));
        assert!(!seq_nonneutral(&perf, &LinkSeq::single(l3)));
        assert_eq!(seq_top_class(&perf, &LinkSeq::single(l1)), 0);
    }
}
