//! Network slices and System 4 (§4.1, Appendix "Construct System 4 for σ").
//!
//! To reason about the neutrality of a link sequence `τ` we do not need the
//! whole network — only the paths that pairwise share *exactly* `τ`:
//!
//! 1. find all path pairs `{p_i, p_j}` with `Links(p_i) ∩ Links(p_j) = τ`;
//! 2. `Θ_τ` = those pairs plus their individual paths;
//! 3. the slice graph `G_τ` is a two-level logical tree: one logical link for
//!    `τ` and one logical link `δ_p` for each involved path's remaining links
//!    `Links(p) \ τ`;
//! 4. System 4 is `y = A_τ(Θ_τ) · x` over the logical links.
//!
//! The slice's key property (§4.1): once `Θ_τ` is fixed, the rest of the
//! topology is irrelevant — only the performance numbers of the paths and
//! path pairs in `Θ_τ` enter the system.

use nni_linalg::Matrix;
use nni_topology::{LinkSeq, PathId, PathSet, Topology};
use std::collections::BTreeMap;

/// The slice for one candidate link sequence `τ`.
#[derive(Debug, Clone)]
pub struct Slice {
    /// The candidate link sequence.
    pub tau: LinkSeq,
    /// Path pairs whose shared links are exactly `τ`.
    pub pairs: Vec<(PathId, PathId)>,
    /// The distinct paths participating in pairs (sorted) — the logical
    /// `δ_p` link index space.
    pub paths: Vec<PathId>,
    /// `Θ_τ`: the individual paths first (aligned with `paths`), then the
    /// pairs (aligned with `pairs`).
    pub pathsets: Vec<PathSet>,
}

impl Slice {
    /// Builds the slice for `tau` given its path pairs.
    ///
    /// # Panics
    /// Panics when `pairs` is empty (an empty `Θ_τ` means `τ` cannot be
    /// reasoned about, like `⟨l2⟩` in Figure 4).
    pub fn new(tau: LinkSeq, pairs: Vec<(PathId, PathId)>) -> Slice {
        assert!(!pairs.is_empty(), "a slice needs at least one path pair");
        let mut paths: Vec<PathId> = pairs.iter().flat_map(|&(a, b)| [a, b]).collect();
        paths.sort();
        paths.dedup();
        let mut pathsets: Vec<PathSet> = paths.iter().map(|&p| PathSet::single(p)).collect();
        pathsets.extend(pairs.iter().map(|&(a, b)| PathSet::pair(a, b)));
        Slice {
            tau,
            pairs,
            paths,
            pathsets,
        }
    }

    /// `|Θ_τ|` — Algorithm 1 keeps slices with at least 5 pathsets, which is
    /// equivalent to at least 2 path pairs.
    pub fn pathset_count(&self) -> usize {
        self.pathsets.len()
    }

    /// Number of path pairs.
    pub fn pair_count(&self) -> usize {
        self.pairs.len()
    }

    /// The routing matrix `A_τ(Θ_τ)` of the slice graph.
    ///
    /// Column 0 is the logical link `τ`; column `1 + i` is the logical link
    /// `δ_{p}` for `self.paths[i]`. Row order matches `self.pathsets`.
    pub fn routing_matrix(&self) -> Matrix {
        let cols = 1 + self.paths.len();
        let mut a = Matrix::zeros(self.pathsets.len(), cols);
        let col_of = |p: PathId| -> usize {
            1 + self
                .paths
                .binary_search(&p)
                .expect("pathsets reference known paths")
        };
        for (i, theta) in self.pathsets.iter().enumerate() {
            a[(i, 0)] = 1.0; // every pathset crosses τ by construction
            for &p in theta.paths() {
                a[(i, col_of(p))] = 1.0;
            }
        }
        a
    }

    /// Per-pair estimate of `x_τ` from an observation vector `y` aligned with
    /// `self.pathsets`: the unique solution of the pair's 3-equation
    /// sub-system is `x_τ = y_i + y_j − y_{ij}` (Appendix, Equation 14).
    pub fn pair_estimates(&self, y: &[f64]) -> Vec<f64> {
        assert_eq!(
            y.len(),
            self.pathsets.len(),
            "observation vector misaligned"
        );
        let idx_of = |p: PathId| -> usize {
            self.paths
                .binary_search(&p)
                .expect("pairs reference known paths")
        };
        self.pairs
            .iter()
            .enumerate()
            .map(|(k, &(a, b))| {
                let yi = y[idx_of(a)];
                let yj = y[idx_of(b)];
                let yij = y[self.paths.len() + k];
                yi + yj - yij
            })
            .collect()
    }

    /// The paper's §6.2 unsolvability: the spread (max − min) of the
    /// per-pair estimates of `x_τ`.
    pub fn unsolvability(&self, y: &[f64]) -> f64 {
        let est = self.pair_estimates(y);
        let max = est.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let min = est.iter().cloned().fold(f64::INFINITY, f64::min);
        (max - min).max(0.0)
    }
}

/// Enumerates every candidate slice of the network: path pairs are grouped
/// by their shared link set (Algorithm 1, lines 2–8). Pairs sharing nothing
/// are skipped. Slices are returned sorted by `τ` for determinism.
pub fn enumerate_slices(topology: &Topology) -> Vec<Slice> {
    let paths = topology.paths();
    let mut groups: BTreeMap<LinkSeq, Vec<(PathId, PathId)>> = BTreeMap::new();
    for i in 0..paths.len() {
        for j in i + 1..paths.len() {
            let shared = paths[i].shared_links(&paths[j]);
            if shared.is_empty() {
                continue;
            }
            groups
                .entry(shared)
                .or_default()
                .push((paths[i].id(), paths[j].id()));
        }
    }
    groups
        .into_iter()
        .map(|(tau, pairs)| Slice::new(tau, pairs))
        .collect()
}

/// The slice for a specific `τ`, if any path pair shares exactly `τ`.
pub fn slice_for(topology: &Topology, tau: &LinkSeq) -> Option<Slice> {
    enumerate_slices(topology)
        .into_iter()
        .find(|s| &s.tau == tau)
}

/// `Paths(τ)` — the normalization group for Algorithm 2 (§6.2): every path
/// that traverses *all* links of `τ`.
pub fn normalization_group(topology: &Topology, tau: &LinkSeq) -> Vec<PathId> {
    topology.paths_through_all(tau.links())
}

#[cfg(test)]
mod tests {
    use super::*;
    use nni_topology::library::{figure4, figure5, topology_b};
    use nni_topology::LinkId;

    #[test]
    fn figure4_slices_match_section_5_example() {
        // §5: Σ̃ = {⟨l1⟩, ⟨l1,l2⟩}; ⟨l2⟩ has no pairs.
        let t = figure4();
        let g = &t.topology;
        let l1 = g.link_by_name("l1").unwrap();
        let l2 = g.link_by_name("l2").unwrap();
        let slices = enumerate_slices(g);
        let taus: Vec<&LinkSeq> = slices.iter().map(|s| &s.tau).collect();
        assert_eq!(slices.len(), 2);
        assert!(taus.contains(&&LinkSeq::single(l1)));
        assert!(taus.contains(&&LinkSeq::new(vec![l1, l2])));
        assert!(slice_for(g, &LinkSeq::single(l2)).is_none());

        // ⟨l1⟩ has the pairs {p1,p4}, {p2,p4}, {p3,p4} (paths 0-indexed).
        let s1 = slice_for(g, &LinkSeq::single(l1)).unwrap();
        assert_eq!(s1.pair_count(), 3);
        assert!(s1.pairs.iter().all(|&(_, b)| b == PathId(3)));
        // Θ_⟨l1⟩ = 4 singletons + 3 pairs = 7 pathsets (§4.1).
        assert_eq!(s1.pathset_count(), 7);

        // ⟨l1,l2⟩ has the pairs among {p1,p2,p3}.
        let s12 = slice_for(g, &LinkSeq::new(vec![l1, l2])).unwrap();
        assert_eq!(s12.pair_count(), 3);
        assert_eq!(s12.pathset_count(), 6);
    }

    #[test]
    fn figure6_system_structure() {
        // Figure 6(b): System 4 for τ = ⟨l1⟩ of the Figure-4-like network has
        // 7 equations over 1 + 4 logical links; each singleton row has two
        // ones, each pair row three.
        let t = figure4();
        let l1 = t.topology.link_by_name("l1").unwrap();
        let s = slice_for(&t.topology, &LinkSeq::single(l1)).unwrap();
        let a = s.routing_matrix();
        assert_eq!(a.rows(), 7);
        assert_eq!(a.cols(), 5);
        for i in 0..4 {
            let ones: f64 = a.row(i).iter().sum();
            assert_eq!(ones, 2.0, "singleton row {i}");
        }
        for i in 4..7 {
            let ones: f64 = a.row(i).iter().sum();
            assert_eq!(ones, 3.0, "pair row {i}");
        }
        // Every row crosses τ.
        for i in 0..7 {
            assert_eq!(a[(i, 0)], 1.0);
        }
    }

    #[test]
    fn pair_estimates_recover_consistent_tau() {
        // Neutral ground truth: x_τ = 0.2, deltas 0.1/0.3/0.05/0.15 — every
        // pair estimate must equal x_τ exactly.
        let t = figure5();
        let l1 = t.topology.link_by_name("l1").unwrap();
        let s = slice_for(&t.topology, &LinkSeq::single(l1)).unwrap();
        let x_tau = 0.2;
        let deltas = [0.1, 0.3, 0.05];
        let mut y = Vec::new();
        for (i, _) in s.paths.iter().enumerate() {
            y.push(x_tau + deltas[i]);
        }
        for &(a, b) in &s.pairs {
            let ia = s.paths.binary_search(&a).unwrap();
            let ib = s.paths.binary_search(&b).unwrap();
            y.push(x_tau + deltas[ia] + deltas[ib]);
        }
        let est = s.pair_estimates(&y);
        for e in est {
            assert!((e - x_tau).abs() < 1e-12);
        }
        assert!(s.unsolvability(&y) < 1e-12);
    }

    #[test]
    fn unsolvability_positive_for_inconsistent_y() {
        let t = figure5();
        let l1 = t.topology.link_by_name("l1").unwrap();
        let s = slice_for(&t.topology, &LinkSeq::single(l1)).unwrap();
        // Figure 5 ground truth: y{p1}=0, y{p2}=y{p3}=ln2, y{p1,p2}=ln2,
        // y{p1,p3}=ln2, y{p2,p3}=ln2.
        let ln2 = (2.0_f64).ln();
        // paths sorted = [p0, p1, p2]; pairs = [(0,1),(0,2),(1,2)].
        let y = vec![0.0, ln2, ln2, ln2, ln2, ln2];
        let est = s.pair_estimates(&y);
        // (p1,p2): 0 + ln2 - ln2 = 0; (p2,p3): ln2 + ln2 - ln2 = ln2.
        assert!((est[0] - 0.0).abs() < 1e-12);
        assert!((est[2] - ln2).abs() < 1e-12);
        assert!((s.unsolvability(&y) - ln2).abs() < 1e-12);
    }

    #[test]
    fn normalization_group_is_paths_of_tau() {
        let t = figure4();
        let g = &t.topology;
        let l1 = g.link_by_name("l1").unwrap();
        let group = normalization_group(g, &LinkSeq::single(l1));
        assert_eq!(group.len(), 4, "all four paths traverse l1");
    }

    #[test]
    fn topology_b_has_rich_slice_population() {
        let t = topology_b();
        let slices = enumerate_slices(&t.topology);
        let analyzable: Vec<&Slice> = slices.iter().filter(|s| s.pair_count() >= 2).collect();
        assert!(
            analyzable.len() >= 12,
            "expected a rich population, got {}",
            analyzable.len()
        );
        // Every policer participates in at least one analyzable slice.
        for &pol in &t.nonneutral_links {
            assert!(
                analyzable.iter().any(|s| s.tau.contains(pol)),
                "policer {pol} not covered"
            );
        }
    }

    #[test]
    fn slices_are_deterministically_ordered() {
        let t = topology_b();
        let a = enumerate_slices(&t.topology);
        let b = enumerate_slices(&t.topology);
        let taus_a: Vec<&LinkSeq> = a.iter().map(|s| &s.tau).collect();
        let taus_b: Vec<&LinkSeq> = b.iter().map(|s| &s.tau).collect();
        assert_eq!(taus_a, taus_b);
        let mut sorted = taus_a.clone();
        sorted.sort();
        assert_eq!(taus_a, sorted, "slices sorted by τ");
    }

    #[test]
    #[should_panic(expected = "at least one path pair")]
    fn empty_slice_rejected() {
        Slice::new(LinkSeq::single(LinkId(0)), vec![]);
    }
}
