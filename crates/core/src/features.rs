//! Feature definitions for the congestion-free indicator — the axis along
//! which Algorithm 1/2 "see" differentiation.
//!
//! The paper's evaluation uses a **loss** feature: an interval is
//! congestion-free for a path when the retained loss fraction stays below a
//! threshold. That feature is blind to a shaper whose lane buffer is deep
//! enough to absorb the excess without dropping: the lane's queue grows,
//! one-way delay inflates by orders of magnitude, and not a single packet
//! is lost inside the measurement window.
//!
//! [`DelayFeature`] defines the complementary **delay** half of a joint
//! loss+delay feature vector: an interval is congestion-free only when the
//! loss feature says so *and* the path's p90 one-way delay is not inflated
//! relative to its own baseline (the minimum per-interval median across the
//! run, i.e. the least-queued view of the path's propagation + transmission
//! floor). A neutral congested queue inflates delay for *every* path through
//! it in the *same* intervals, so joint indicators stay class-symmetric and
//! the slice systems stay solvable — only class-asymmetric inflation (a
//! per-class shaper lane) makes them unsolvable.
//!
//! The feature is defined here, in `nni-core`, because it is part of the
//! inference contract (what "congestion-free" means), not of any particular
//! measurement platform; `nni-measure`'s Algorithm 2 normalization consumes
//! it.

/// Parameters of the delay half of a joint loss+delay congestion-free
/// feature.
///
/// A path is **delay-inflated** in an interval when its p90 one-way delay
/// exceeds `rel_factor × baseline + abs_floor_s`, where `baseline` is the
/// path's minimum per-interval p50 across the run. The relative factor
/// tolerates self-induced queueing (a TCP flow standing its own queue); the
/// absolute floor keeps short-baseline paths (sub-millisecond propagation)
/// from tripping on scheduling noise.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DelayFeature {
    /// Multiple of the per-path baseline p50 above which p90 counts as
    /// inflated.
    pub rel_factor: f64,
    /// Absolute slack in seconds added on top of the relative threshold.
    pub abs_floor_s: f64,
}

impl Default for DelayFeature {
    /// The calibrated default for the generated-topology regime (see the
    /// `topogen_population` suite): tolerant enough that neutral BDP-sized
    /// drop-tail queues — which can stand ~200 ms of class-symmetric
    /// queueing — never flag, tight enough that a deep shaper lane
    /// (seconds of class-asymmetric queueing) always does.
    fn default() -> Self {
        DelayFeature {
            rel_factor: 8.0,
            abs_floor_s: 0.25,
        }
    }
}

impl DelayFeature {
    /// Whether a p90 one-way delay is inflated relative to the path
    /// baseline under this feature.
    pub fn inflated(&self, p90_s: f64, baseline_p50_s: f64) -> bool {
        p90_s > self.rel_factor * baseline_p50_s + self.abs_floor_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inflation_thresholds() {
        let f = DelayFeature {
            rel_factor: 3.0,
            abs_floor_s: 0.015,
        };
        // Baseline 10 ms: threshold is 45 ms.
        assert!(!f.inflated(0.045, 0.010));
        assert!(f.inflated(0.046, 0.010));
        // The absolute floor protects near-zero baselines.
        assert!(!f.inflated(0.014, 0.0));
        assert!(f.inflated(0.016, 0.0));
    }

    #[test]
    fn default_tolerates_bdp_queueing() {
        let f = DelayFeature::default();
        // A neutral 100 Mb/s BDP queue stands at most ~200 ms on top of a
        // ~25 ms baseline — not inflated under the default.
        assert!(!f.inflated(0.225, 0.025));
        // A deep shaper lane standing multiple seconds is.
        assert!(f.inflated(2.0, 0.025));
    }
}
