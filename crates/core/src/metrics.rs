//! The three quality metrics of §5.
//!
//! * **False-negative rate** — fraction of (ground-truth) non-neutral links
//!   that participate in *no* link sequence of `Σ_n̄`.
//! * **Granularity** — average size of the sequences in `Σ_n̄` (1 is ideal:
//!   every violation localized to a single link).
//! * **False-positive rate** — fraction of neutral links that participate in
//!   a *neutral* link sequence incorrectly present in `Σ_n̄` (a sequence with
//!   no non-neutral member at all).

use nni_topology::{LinkId, LinkSeq, Topology};
use std::collections::HashSet;

/// Quality of an inference result against ground truth.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Quality {
    /// Fraction of non-neutral links missing from every identified sequence.
    pub false_negative_rate: f64,
    /// Fraction of neutral links implicated by incorrectly identified
    /// (fully neutral) sequences.
    pub false_positive_rate: f64,
    /// Average identified-sequence length (0 when nothing was identified).
    pub granularity: f64,
}

/// Evaluates an identified set `Σ_n̄` against the ground-truth non-neutral
/// links.
pub fn evaluate(
    topology: &Topology,
    identified: &[LinkSeq],
    truth_nonneutral: &[LinkId],
) -> Quality {
    let truth: HashSet<LinkId> = truth_nonneutral.iter().copied().collect();

    // False negatives.
    let covered: HashSet<LinkId> = identified
        .iter()
        .flat_map(|s| s.links().iter().copied())
        .collect();
    let fn_count = truth.iter().filter(|l| !covered.contains(l)).count();
    let false_negative_rate = if truth.is_empty() {
        0.0
    } else {
        fn_count as f64 / truth.len() as f64
    };

    // False positives: neutral links inside *fully neutral* identified
    // sequences.
    let incorrectly_present: Vec<&LinkSeq> = identified
        .iter()
        .filter(|s| s.links().iter().all(|l| !truth.contains(l)))
        .collect();
    let implicated: HashSet<LinkId> = incorrectly_present
        .iter()
        .flat_map(|s| s.links().iter().copied())
        .collect();
    let neutral_count = topology.link_count() - truth.len();
    let false_positive_rate = if neutral_count == 0 {
        0.0
    } else {
        implicated.len() as f64 / neutral_count as f64
    };

    // Granularity.
    let granularity = if identified.is_empty() {
        0.0
    } else {
        identified.iter().map(|s| s.len() as f64).sum::<f64>() / identified.len() as f64
    };

    Quality {
        false_negative_rate,
        false_positive_rate,
        granularity,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nni_topology::library::figure4;

    fn fig4_ids() -> (Topology, LinkId, LinkId, LinkId) {
        let t = figure4();
        let l1 = t.topology.link_by_name("l1").unwrap();
        let l2 = t.topology.link_by_name("l2").unwrap();
        let l3 = t.topology.link_by_name("l3").unwrap();
        (t.topology, l1, l2, l3)
    }

    #[test]
    fn section5_worked_example() {
        // Σ_n̄ = {⟨l1⟩, ⟨l1,l2⟩}, truth {l1, l2}: FN 0, FP 0, granularity 1.5.
        let (t, l1, l2, _) = fig4_ids();
        let identified = vec![LinkSeq::single(l1), LinkSeq::new(vec![l1, l2])];
        let q = evaluate(&t, &identified, &[l1, l2]);
        assert_eq!(q.false_negative_rate, 0.0);
        assert_eq!(q.false_positive_rate, 0.0);
        assert!((q.granularity - 1.5).abs() < 1e-12);
    }

    #[test]
    fn false_negative_counted() {
        // Truth {l1, l2} but only ⟨l1⟩ identified: FN = 1/2.
        let (t, l1, l2, _) = fig4_ids();
        let q = evaluate(&t, &[LinkSeq::single(l1)], &[l1, l2]);
        assert!((q.false_negative_rate - 0.5).abs() < 1e-12);
        assert_eq!(q.false_positive_rate, 0.0);
        assert_eq!(q.granularity, 1.0);
    }

    #[test]
    fn false_positive_counted() {
        // Truth {l1}; identified ⟨l3⟩ (fully neutral): 1 of 5 neutral links
        // implicated.
        let (t, l1, _, l3) = fig4_ids();
        let q = evaluate(&t, &[LinkSeq::single(l3)], &[l1]);
        assert!((q.false_positive_rate - 1.0 / 5.0).abs() < 1e-12);
        assert!((q.false_negative_rate - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sequence_containing_truth_is_not_false_positive() {
        // ⟨l1, l3⟩ contains the non-neutral l1: l3's presence worsens
        // granularity but is not a false positive (§5's definition).
        let (t, l1, _, l3) = fig4_ids();
        let q = evaluate(&t, &[LinkSeq::new(vec![l1, l3])], &[l1]);
        assert_eq!(q.false_positive_rate, 0.0);
        assert_eq!(q.false_negative_rate, 0.0);
        assert_eq!(q.granularity, 2.0);
    }

    #[test]
    fn empty_result_on_neutral_truth_is_perfect() {
        let (t, ..) = fig4_ids();
        let q = evaluate(&t, &[], &[]);
        assert_eq!(q.false_negative_rate, 0.0);
        assert_eq!(q.false_positive_rate, 0.0);
        assert_eq!(q.granularity, 0.0);
    }
}
