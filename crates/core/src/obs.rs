//! The observation interface between the inference algorithm and its data
//! sources.
//!
//! Algorithm 1 consumes performance numbers `y_Θ` of pathsets. Two sources
//! exist:
//!
//! * the **exact oracle** ([`ExactOracle`]) — ground-truth numbers computed
//!   analytically from the equivalent neutral network (used by the theory
//!   tests and the exact-mode algorithm);
//! * **measurements** — `nni-measure` implements this trait on top of
//!   per-interval packet counts via Algorithm 2, which is why the trait
//!   carries the *normalization group* (the paths of `Paths(τ)` whose packet
//!   counts must be equalised, §6.2).

use crate::equivalent::EquivalentNetwork;
use nni_topology::{PathId, PathSet};

/// Source of pathset performance numbers.
pub trait Observations {
    /// The performance number `y_Θ` of `pathset`, measured in the context of
    /// a slice whose normalization group (`Paths(τ)`) is `group`.
    ///
    /// Exact sources ignore `group`; measured sources use it to equalise
    /// per-interval packet counts before thresholding (Algorithm 2).
    fn pathset_perf(&self, group: &[PathId], pathset: &PathSet) -> f64;

    /// Observation vector for a whole slice: one `y` per pathset, aligned
    /// with the pathset order.
    fn observe_all(&self, group: &[PathId], pathsets: &[PathSet]) -> Vec<f64> {
        pathsets
            .iter()
            .map(|t| self.pathset_perf(group, t))
            .collect()
    }
}

/// Exact ground-truth oracle backed by the equivalent neutral network.
#[derive(Debug, Clone)]
pub struct ExactOracle {
    eq: EquivalentNetwork,
}

impl ExactOracle {
    /// Wraps an equivalent network as an observation source.
    pub fn new(eq: EquivalentNetwork) -> ExactOracle {
        ExactOracle { eq }
    }

    /// Access to the underlying equivalent network.
    pub fn equivalent(&self) -> &EquivalentNetwork {
        &self.eq
    }
}

impl Observations for ExactOracle {
    fn pathset_perf(&self, _group: &[PathId], pathset: &PathSet) -> f64 {
        self.eq.pathset_perf(pathset)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::class::Classes;
    use crate::perf::{LinkPerf, NetworkPerf};
    use nni_topology::library::figure5;

    #[test]
    fn exact_oracle_delegates_to_equivalent_network() {
        let t = figure5();
        let classes = Classes::new(&t.topology, t.classes.clone()).unwrap();
        let perf = NetworkPerf::congestion_free(&t.topology, 2).with_link(
            t.topology.link_by_name("l1").unwrap(),
            LinkPerf::per_class(vec![0.0, 0.7]),
        );
        let eq = EquivalentNetwork::build(&t.topology, &classes, &perf);
        let oracle = ExactOracle::new(eq);
        let y = oracle.pathset_perf(&[], &PathSet::single(PathId(1)));
        assert!((y - 0.7).abs() < 1e-12);
        let ys = oracle.observe_all(
            &[],
            &[PathSet::single(PathId(0)), PathSet::single(PathId(1))],
        );
        assert_eq!(ys.len(), 2);
        assert!(ys[0].abs() < 1e-12);
    }
}
