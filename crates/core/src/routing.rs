//! Generalized routing matrices (§2.3).
//!
//! Given a set of pathsets `Θ = {Θ_1, …}`, the generalized routing matrix
//! `A(Θ)` is the `|Θ| × |L|` 0/1 matrix with `A_ik = 1` iff at least one path
//! in pathset `Θ_i` traverses link `l_k` (Figure 1(b)). The neutral-network
//! hypothesis is the statement `y = A(Θ) · x` (System 3).

use nni_linalg::Matrix;
use nni_topology::{PathSet, Topology};

/// Builds the generalized routing matrix `A(Θ)` for the given pathsets.
pub fn routing_matrix(topology: &Topology, pathsets: &[PathSet]) -> Matrix {
    let mut a = Matrix::zeros(pathsets.len(), topology.link_count());
    for (i, theta) in pathsets.iter().enumerate() {
        for &p in theta.paths() {
            for &l in topology.path(p).links() {
                a[(i, l.index())] = 1.0;
            }
        }
    }
    a
}

/// Predicted observation vector for a *neutral* network: `y = A(Θ) · x`
/// (Equation 2 row by row).
pub fn neutral_predictions(topology: &Topology, pathsets: &[PathSet], x: &[f64]) -> Vec<f64> {
    routing_matrix(topology, pathsets).matvec(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nni_topology::library::figure1;
    use nni_topology::PathId;

    /// Figure 1(b) is given verbatim in the paper; reproduce it.
    #[test]
    fn figure1b_routing_matrix() {
        let t = figure1();
        let (p1, p2, p3) = (PathId(0), PathId(1), PathId(2));
        let pathsets = vec![
            PathSet::single(p1),
            PathSet::single(p2),
            PathSet::single(p3),
            PathSet::pair(p1, p2),
            PathSet::pair(p1, p3),
            PathSet::pair(p2, p3),
            PathSet::new(vec![p1, p2, p3]),
        ];
        let a = routing_matrix(&t.topology, &pathsets);
        let expected = [
            [1.0, 1.0, 0.0, 0.0], // {p1}
            [1.0, 0.0, 1.0, 0.0], // {p2}
            [0.0, 0.0, 1.0, 1.0], // {p3}
            [1.0, 1.0, 1.0, 0.0], // {p1,p2}
            [1.0, 1.0, 1.0, 1.0], // {p1,p3}
            [1.0, 0.0, 1.0, 1.0], // {p2,p3}
            [1.0, 1.0, 1.0, 1.0], // {p1,p2,p3}
        ];
        for (i, row) in expected.iter().enumerate() {
            for (k, &want) in row.iter().enumerate() {
                assert_eq!(a[(i, k)], want, "A[{i}][{k}]");
            }
        }
    }

    #[test]
    fn pathset_row_is_or_of_singleton_rows() {
        let t = figure1();
        let (p1, p3) = (PathId(0), PathId(2));
        let single = routing_matrix(&t.topology, &[PathSet::single(p1), PathSet::single(p3)]);
        let pair = routing_matrix(&t.topology, &[PathSet::pair(p1, p3)]);
        for k in 0..t.topology.link_count() {
            let or = (single[(0, k)] != 0.0 || single[(1, k)] != 0.0) as u8 as f64;
            assert_eq!(pair[(0, k)], or);
        }
    }

    #[test]
    fn neutral_predictions_match_paper_equations() {
        // §2.3: y{p1} = x1 + x2; y{p2} = x1 + x3; y{p1,p2} = x1 + x2 + x3.
        let t = figure1();
        let x = [0.1, 0.2, 0.3, 0.4];
        let ps = vec![
            PathSet::single(PathId(0)),
            PathSet::single(PathId(1)),
            PathSet::pair(PathId(0), PathId(1)),
        ];
        let y = neutral_predictions(&t.topology, &ps, &x);
        assert!((y[0] - 0.3).abs() < 1e-12);
        assert!((y[1] - 0.4).abs() < 1e-12);
        assert!((y[2] - 0.6).abs() < 1e-12);
    }
}
