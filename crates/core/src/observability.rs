//! Observability of neutrality violations (§3).
//!
//! **Definition 1**: a violation is *observable* when some set of pathsets
//! makes System 3 unsolvable. **Theorem 1**: this happens iff the equivalent
//! neutral network contains a virtual link distinguishable from every
//! original link (with a non-zero performance delta so the unsolvability is
//! actually excited — the theorem's proof uses `x(n) − x(n*) ≠ 0`).
//!
//! Two independent deciders are provided:
//!
//! * [`theorem1`] — the structural condition (fast, no linear algebra);
//! * [`unsolvable_over_power_set`] — the brute-force oracle that literally
//!   searches for an unsolvable System 3 over `Θ = P*` (exponential, used to
//!   cross-validate the theorem on the paper's examples and in property
//!   tests).

use crate::class::Classes;
use crate::equivalent::EquivalentNetwork;
use crate::perf::NetworkPerf;
use crate::routing::routing_matrix;
use nni_linalg::{analyze, default_tolerance};
use nni_topology::{power_set, LinkId, PathId, Topology};

/// Why (or why not) a violation is observable.
#[derive(Debug, Clone)]
pub struct ObservabilityReport {
    /// Verdict of Theorem 1.
    pub observable: bool,
    /// The witnesses: regulation virtual links (origin link, regulated
    /// class) that are distinguishable from every original link.
    pub witnesses: Vec<(LinkId, usize)>,
}

/// Decides observability via the structural condition of Theorem 1.
pub fn theorem1(topology: &Topology, classes: &Classes, perf: &NetworkPerf) -> ObservabilityReport {
    let eq = EquivalentNetwork::build(topology, classes, perf);
    let mut witnesses = Vec::new();
    for v in eq.active_regulations() {
        // Distinguishable from *every* link of L: Paths(l+) != Paths(l) ∀ l.
        let masked = topology
            .link_ids()
            .any(|l| topology.paths_through(l) == v.paths.as_slice());
        if !masked {
            let class = match v.role {
                crate::equivalent::VirtualRole::Regulation { class } => class,
                _ => unreachable!("active_regulations yields regulations only"),
            };
            witnesses.push((v.origin, class));
        }
    }
    ObservabilityReport {
        observable: !witnesses.is_empty(),
        witnesses,
    }
}

/// Brute-force oracle: builds System 3 over the full power set `P*` with the
/// ground-truth observations `y = A⁺(P*) x⁺` and reports whether it is
/// unsolvable (Lemma 1 / Definition 1). Exponential in `|P|`.
pub fn unsolvable_over_power_set(
    topology: &Topology,
    classes: &Classes,
    perf: &NetworkPerf,
) -> bool {
    let n = topology.path_count();
    assert!(n <= 14, "power-set oracle limited to small path counts");
    let pathsets = power_set(n);
    let eq = EquivalentNetwork::build(topology, classes, perf);
    let y: Vec<f64> = pathsets.iter().map(|t| eq.pathset_perf(t)).collect();
    let a = routing_matrix(topology, &pathsets);
    let tol = default_tolerance(&a.augment_col(&y)).max(1e-9);
    !analyze(&a, &y, tol).is_consistent()
}

/// Slice of Lemma 4 exposed for tests: whether all links are pairwise
/// distinguishable (then `A(P*)` has full column rank).
pub fn all_links_distinguishable(topology: &Topology) -> bool {
    let n = topology.link_count();
    for i in 0..n {
        for j in i + 1..n {
            if !topology.distinguishable(LinkId(i), LinkId(j)) {
                return false;
            }
        }
    }
    true
}

/// Convenience used in tests: the class index containing path `p`.
pub fn class_containing(classes: &Classes, p: PathId) -> usize {
    classes.class_of(p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::perf::LinkPerf;
    use nni_linalg::rank_default;
    use nni_topology::library::{figure1, figure2, figure4, figure5, PaperTopology};

    fn two_class_truth(t: &PaperTopology, deltas: &[(&str, f64, f64)]) -> (Classes, NetworkPerf) {
        let classes = Classes::new(&t.topology, t.classes.clone()).unwrap();
        let mut perf = NetworkPerf::congestion_free(&t.topology, 2);
        for &(name, x1, x2) in deltas {
            let l = t.topology.link_by_name(name).unwrap();
            perf = perf.with_link(l, LinkPerf::per_class(vec![x1, x2]));
        }
        (classes, perf)
    }

    #[test]
    fn figure1_violation_is_observable() {
        let t = figure1();
        let (classes, perf) = two_class_truth(&t, &[("l1", 0.0, 0.5)]);
        let r = theorem1(&t.topology, &classes, &perf);
        assert!(r.observable);
        // Witness: l1's regulation of class 2, {p2} ∩ Paths(l1) = {p2} —
        // traversed by p2 alone, but no original link is traversed by p2
        // alone (l1: {p1,p2}, l2: {p1}, l3: {p2,p3}, l4: {p3}).
        assert_eq!(
            r.witnesses,
            vec![(t.topology.link_by_name("l1").unwrap(), 1)]
        );
        assert!(unsolvable_over_power_set(&t.topology, &classes, &perf));
    }

    #[test]
    fn figure2_violation_is_not_observable() {
        // §3.3 non-observable: l1+(2) is indistinguishable from l3.
        let t = figure2();
        let (classes, perf) = two_class_truth(&t, &[("l1", 0.0, 0.5)]);
        let r = theorem1(&t.topology, &classes, &perf);
        assert!(!r.observable);
        assert!(!unsolvable_over_power_set(&t.topology, &classes, &perf));
    }

    #[test]
    fn figure4_violation_is_observable() {
        let t = figure4();
        let (classes, perf) = two_class_truth(&t, &[("l1", 0.0, 0.4), ("l2", 0.1, 0.3)]);
        let r = theorem1(&t.topology, &classes, &perf);
        assert!(r.observable);
        assert!(unsolvable_over_power_set(&t.topology, &classes, &perf));
    }

    #[test]
    fn figure5_violation_is_observable() {
        let t = figure5();
        let (classes, perf) = two_class_truth(&t, &[("l1", 0.0, (2.0_f64).ln())]);
        let r = theorem1(&t.topology, &classes, &perf);
        assert!(r.observable, "observable violation #2 of §3.3");
        assert!(unsolvable_over_power_set(&t.topology, &classes, &perf));
    }

    #[test]
    fn neutral_network_never_observable() {
        for t in [figure1(), figure2(), figure4(), figure5()] {
            let classes = Classes::new(&t.topology, t.classes.clone()).unwrap();
            let perf = NetworkPerf::neutral(&vec![0.1; t.topology.link_count()], classes.count());
            assert!(!theorem1(&t.topology, &classes, &perf).observable);
            assert!(!unsolvable_over_power_set(&t.topology, &classes, &perf));
        }
    }

    #[test]
    fn zero_delta_regulation_is_not_a_witness() {
        // l1 "non-neutral" with x(2) == x(1): behaviourally neutral, so no
        // witness and no unsolvable system even though the structure would
        // allow one.
        let t = figure5();
        let (classes, perf) = two_class_truth(&t, &[("l1", 0.2, 0.2)]);
        assert!(!theorem1(&t.topology, &classes, &perf).observable);
        assert!(!unsolvable_over_power_set(&t.topology, &classes, &perf));
    }

    #[test]
    fn lemma4_full_column_rank_when_distinguishable() {
        // Figure 1: all four links pairwise distinguishable → A(P*) has full
        // column rank.
        let t = figure1();
        assert!(all_links_distinguishable(&t.topology));
        let pathsets = nni_topology::power_set(t.topology.path_count());
        let a = routing_matrix(&t.topology, &pathsets);
        assert_eq!(rank_default(&a), t.topology.link_count());
    }

    #[test]
    fn lemma4_rank_deficient_when_indistinguishable() {
        // Figure 4's original network: l1 and l2 are indistinguishable?
        // Paths(l1) = {p1..p4}, Paths(l2) = {p1,p2,p3} — distinguishable.
        // Build an artificial case: a 2-link chain traversed by one path.
        let mut b = nni_topology::TopologyBuilder::new();
        let h0 = b.host("h0");
        let r = b.relay("r");
        let h1 = b.host("h1");
        let l0 = b.link("l0", h0, r).unwrap();
        let l1 = b.link("l1", r, h1).unwrap();
        b.path("p0", vec![l0, l1]).unwrap();
        let t = b.build();
        assert!(!all_links_distinguishable(&t));
        let a = routing_matrix(&t, &nni_topology::power_set(1));
        assert!(rank_default(&a) < t.link_count());
    }
}
