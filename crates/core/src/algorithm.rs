//! Algorithm 1: identification of non-neutral link sequences (§5), plus the
//! redundancy-removal post-pass and the two solvability deciders of §6.2.
//!
//! ```text
//! 1. group all path pairs by their shared link set τ            (slices)
//! 2. keep slices with |Θ_τ| >= 5  (== at least 2 path pairs)
//! 3. decide, per slice, whether System 4 "has a solution":
//!      exact mode     — Rouché–Capelli rank test (noise-free oracles)
//!      clustered mode — per-pair estimates x_τ = y_i + y_j − y_ij; the
//!                       slice's unsolvability is their max−min spread;
//!                       2-means over all slices' unsolvability; high
//!                       cluster = unsolvable (§6.2)
//! 4. Σ_n̄ = unsolvable slices; remove redundant sequences        (§5)
//! ```

use crate::obs::Observations;
use crate::slice::{enumerate_slices, normalization_group, Slice};
use nni_linalg::{analyze, default_tolerance};
use nni_stats::{two_means, SeparationGuard};
use nni_topology::{LinkSeq, PathId, Topology};

/// How to decide whether a slice's System 4 "has a solution".
#[derive(Debug, Clone, Copy)]
pub enum DecisionMode {
    /// Exact consistency test with an absolute tolerance — for noise-free
    /// (oracle) observations.
    Exact {
        /// Entries below this are treated as zero.
        tol: f64,
    },
    /// The paper's measurement-mode rule: two-cluster the unsolvability
    /// scores, high cluster = unsolvable.
    ///
    /// Clustering needs a population; topology A produces a *single* slice
    /// (every path pair shares exactly `⟨l5⟩`), yet the paper still decides
    /// it correctly in every experiment. `abs_threshold` supplies the
    /// missing rule: a slice whose unsolvability exceeds it is unsolvable
    /// regardless of the clustering outcome (subject to the relative
    /// margin below). The default (0.04 ≈ a 4% disagreement between
    /// congestion-free probability estimates) is far above sampling noise —
    /// in a neutral network the normalized per-interval indicators of paths
    /// sharing a queue are strongly correlated, so pair estimates agree to
    /// well under that — and below the differentiation signal of the
    /// policing/shaping experiments.
    Clustered {
        /// Minimum-separation rule (see `nni-stats`).
        guard: SeparationGuard,
        /// Absolute unsolvability above which a slice is non-neutral even
        /// when clustering collapses.
        abs_threshold: f64,
        /// Relative margin: the spread must also exceed `rel_margin` times
        /// the median |estimate| of the slice. A heavily congested *neutral*
        /// sequence yields pair estimates that are all large and agree to
        /// within proportional sampling noise (spread ≪ median); a
        /// differentiating sequence yields a structured split (pairs inside
        /// the throttled class high, the rest near zero), so its spread is
        /// comparable to or larger than the median. This is the
        /// scale-awareness that cross-system clustering provides in the
        /// paper's multi-slice experiments, applied within a slice.
        rel_margin: f64,
    },
}

/// Algorithm configuration.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Minimum number of path pairs per slice (the paper's `|Θ_τ| >= 5`
    /// equals 2 pairs).
    pub min_pairs: usize,
    /// Solvability decider.
    pub mode: DecisionMode,
}

impl Config {
    /// Exact mode with the default tolerance.
    pub fn exact() -> Config {
        Config {
            min_pairs: 2,
            mode: DecisionMode::Exact { tol: 1e-9 },
        }
    }

    /// Clustered (measurement) mode with the default separation guard and
    /// absolute threshold.
    pub fn clustered() -> Config {
        Config {
            min_pairs: 2,
            mode: DecisionMode::Clustered {
                guard: SeparationGuard::default(),
                abs_threshold: 0.04,
                rel_margin: 1.0,
            },
        }
    }
}

impl Default for Config {
    fn default() -> Self {
        Config::clustered()
    }
}

/// Per-pair estimate of `x_τ` (used for reporting, e.g. Figure 10(b)).
#[derive(Debug, Clone, PartialEq)]
pub struct PairEstimate {
    /// The path pair.
    pub pair: (PathId, PathId),
    /// The pair's unique estimate `x_τ = y_i + y_j − y_{ij}`.
    pub estimate: f64,
}

/// The analysis of one slice.
#[derive(Debug, Clone, PartialEq)]
pub struct SliceVerdict {
    /// The candidate link sequence.
    pub tau: LinkSeq,
    /// Per-pair estimates of `x_τ`.
    pub estimates: Vec<PairEstimate>,
    /// Unsolvability score (max − min of the estimates).
    pub unsolvability: f64,
    /// Final verdict: `true` = System 4 has no solution = non-neutral.
    pub nonneutral: bool,
}

/// Output of Algorithm 1 (+ redundancy removal).
#[derive(Debug, Clone, PartialEq)]
pub struct InferenceResult {
    /// All analyzed slices with their verdicts (deterministic order).
    pub verdicts: Vec<SliceVerdict>,
    /// `Σ_n̄` before redundancy removal.
    pub nonneutral_raw: Vec<LinkSeq>,
    /// `Σ_n̄` after redundancy removal — the algorithm's answer.
    pub nonneutral: Vec<LinkSeq>,
    /// Sequences classified neutral (`Σ_n` in the paper's notation).
    pub neutral: Vec<LinkSeq>,
}

impl InferenceResult {
    /// Whether any non-neutral link sequence was identified.
    pub fn network_is_nonneutral(&self) -> bool {
        !self.nonneutral.is_empty()
    }

    /// FNV-1a over every field — slice verdicts (estimates and scores as
    /// f64 bit patterns) and all three sequence lists. Exactly as strict as
    /// `PartialEq`: two results compare equal iff they fingerprint equal
    /// (up to hash collisions). The golden-corpus gate pins these values
    /// across codec versions.
    pub fn fingerprint(&self) -> u64 {
        let mut h = crate::fnv::Fnv::new();
        let seq = |h: &mut crate::fnv::Fnv, s: &LinkSeq| {
            h.word(s.len() as u64);
            for &l in s.links() {
                h.word(l.index() as u64);
            }
        };
        h.word(self.verdicts.len() as u64);
        for v in &self.verdicts {
            seq(&mut h, &v.tau);
            h.word(v.estimates.len() as u64);
            for e in &v.estimates {
                h.word(e.pair.0.index() as u64);
                h.word(e.pair.1.index() as u64);
                h.f64(e.estimate);
            }
            h.f64(v.unsolvability);
            h.word(v.nonneutral as u64);
        }
        for list in [&self.nonneutral_raw, &self.nonneutral, &self.neutral] {
            h.word(list.len() as u64);
            for s in list {
                seq(&mut h, s);
            }
        }
        h.0
    }
}

/// The per-topology precompute of Algorithm 1: the analyzable slices and
/// their normalization groups, derived once and reused across repeated
/// identifications over the same topology — the structure an incremental
/// (per-interval) re-identification must not re-derive on every arrival.
///
/// A plan depends only on the topology and `cfg.min_pairs`; observation
/// vectors vary per call, so [`identify_with_plan`] (full) and
/// [`identify_scores`] (caller-supplied `y` vectors) both consume one.
#[derive(Debug, Clone)]
pub struct IdentifyPlan {
    slices: Vec<Slice>,
    groups: Vec<Vec<PathId>>,
}

impl IdentifyPlan {
    /// Enumerates and filters the slices of `topology` and precomputes each
    /// slice's normalization group `Paths(τ)`.
    pub fn new(topology: &Topology, cfg: &Config) -> IdentifyPlan {
        let slices: Vec<Slice> = enumerate_slices(topology)
            .into_iter()
            .filter(|s| s.pair_count() >= cfg.min_pairs)
            .collect();
        let groups = slices
            .iter()
            .map(|s| normalization_group(topology, &s.tau))
            .collect();
        IdentifyPlan { slices, groups }
    }

    /// The analyzable slices, in the deterministic `τ` order
    /// [`identify`] walks them.
    pub fn slices(&self) -> &[Slice] {
        &self.slices
    }

    /// The normalization group of slice `i` (aligned with [`slices`]).
    ///
    /// [`slices`]: IdentifyPlan::slices
    pub fn group(&self, i: usize) -> &[PathId] {
        &self.groups[i]
    }

    /// Queries `obs` for every slice's observation vector, in plan order —
    /// the acquisition half of [`identify_with_plan`].
    pub fn observe(&self, obs: &impl Observations) -> Vec<Vec<f64>> {
        self.slices
            .iter()
            .zip(&self.groups)
            .map(|(s, g)| obs.observe_all(g, &s.pathsets))
            .collect()
    }
}

/// Runs Algorithm 1 against an observation source.
pub fn identify(topology: &Topology, obs: &impl Observations, cfg: Config) -> InferenceResult {
    let plan = IdentifyPlan::new(topology, &cfg);
    identify_with_plan(&plan, obs, cfg)
}

/// [`identify`] over a precomputed [`IdentifyPlan`] — what repeated
/// identifications on one topology (sweeps, streaming re-clustering) call
/// so slice enumeration happens once.
pub fn identify_with_plan(
    plan: &IdentifyPlan,
    obs: &impl Observations,
    cfg: Config,
) -> InferenceResult {
    identify_scores(plan, &plan.observe(obs), cfg)
}

/// The decision half of Algorithm 1: per-slice estimates, unsolvability
/// scores, the solvability decision (exact rank test or 2-means
/// re-clustering), and redundancy removal — over caller-supplied
/// observation vectors `ys` (one per plan slice, aligned with
/// [`IdentifyPlan::slices`]).
///
/// This is the seam the streaming subsystem re-enters on every closed
/// interval: an incremental Algorithm 2 maintains the counts behind `ys`
/// cheaply, and the (cheap, slice-count-sized) decision re-runs here, so
/// every emitted verdict is the same pure function of `(ys, cfg)` that
/// batch [`identify`] computes.
pub fn identify_scores(plan: &IdentifyPlan, ys: &[Vec<f64>], cfg: Config) -> InferenceResult {
    let slices = &plan.slices;
    assert_eq!(
        ys.len(),
        slices.len(),
        "one observation vector per plan slice"
    );

    // Per-slice scores from the observation vectors.
    let mut verdicts: Vec<SliceVerdict> = Vec::with_capacity(slices.len());
    let mut exact_flags: Vec<bool> = Vec::with_capacity(slices.len());
    for (s, y) in slices.iter().zip(ys) {
        let estimates: Vec<PairEstimate> = s
            .pairs
            .iter()
            .zip(s.pair_estimates(y))
            .map(|(&pair, estimate)| PairEstimate { pair, estimate })
            .collect();
        let unsolvability = s.unsolvability(y);
        let exact_unsolvable = match cfg.mode {
            DecisionMode::Exact { tol } => {
                let a = s.routing_matrix();
                let tol = tol.max(default_tolerance(&a.augment_col(y)));
                !analyze(&a, y, tol).is_consistent()
            }
            DecisionMode::Clustered { .. } => false, // decided below
        };
        exact_flags.push(exact_unsolvable);
        verdicts.push(SliceVerdict {
            tau: s.tau.clone(),
            estimates,
            unsolvability,
            nonneutral: false,
        });
    }

    // Decide solvability.
    match cfg.mode {
        DecisionMode::Exact { .. } => {
            for (v, flag) in verdicts.iter_mut().zip(exact_flags) {
                v.nonneutral = flag;
            }
        }
        DecisionMode::Clustered {
            guard,
            abs_threshold,
            rel_margin,
        } => {
            let scores: Vec<f64> = verdicts.iter().map(|v| v.unsolvability).collect();
            let clusters = two_means(&scores, guard);
            for (v, &high) in verdicts.iter_mut().zip(clusters.high.iter()) {
                let mut mags: Vec<f64> = v.estimates.iter().map(|e| e.estimate.abs()).collect();
                mags.sort_by(|a, b| a.partial_cmp(b).expect("finite estimates"));
                let median = if mags.is_empty() {
                    0.0
                } else {
                    mags[mags.len() / 2]
                };
                let floor = abs_threshold.max(rel_margin * median);
                v.nonneutral = high || v.unsolvability > floor;
            }
        }
    }

    let nonneutral_raw: Vec<LinkSeq> = verdicts
        .iter()
        .filter(|v| v.nonneutral)
        .map(|v| v.tau.clone())
        .collect();
    let neutral: Vec<LinkSeq> = verdicts
        .iter()
        .filter(|v| !v.nonneutral)
        .map(|v| v.tau.clone())
        .collect();
    let nonneutral = remove_redundant(&nonneutral_raw, &neutral);

    InferenceResult {
        verdicts,
        nonneutral_raw,
        nonneutral,
        neutral,
    }
}

/// Redundancy removal (§5): `τ ∈ Σ_n̄` is redundant iff there exists a set of
/// *other* classified sequences `{τ_i} ⊆ Σ_n̄ ∪ Σ_n`, at least one of them
/// non-neutral, whose union equals `τ`.
///
/// Because all candidate `τ_i` must be subsets of `τ`, the union of *all*
/// subset-candidates is the maximal reachable union; the existential check
/// reduces to comparing that union with `τ` and checking that some
/// non-neutral candidate exists.
pub fn remove_redundant(nonneutral: &[LinkSeq], neutral: &[LinkSeq]) -> Vec<LinkSeq> {
    nonneutral
        .iter()
        .filter(|tau| {
            let candidates: Vec<&LinkSeq> = nonneutral
                .iter()
                .filter(|t| *t != *tau && t.is_subset_of(tau))
                .chain(neutral.iter().filter(|t| t.is_subset_of(tau)))
                .collect();
            let has_nonneutral = candidates.iter().any(|t| nonneutral.contains(t));
            if !has_nonneutral {
                return true; // keep: cannot be covered with a non-neutral member
            }
            let mut union = LinkSeq::new(Vec::new());
            for c in &candidates {
                union = union.union(c);
            }
            union != **tau // keep unless fully covered
        })
        .cloned()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::class::Classes;
    use crate::equivalent::EquivalentNetwork;
    use crate::obs::ExactOracle;
    use crate::perf::{LinkPerf, NetworkPerf};
    use nni_topology::library::{figure4, figure5, topology_b};
    use nni_topology::LinkId;

    fn oracle_for(t: &nni_topology::PaperTopology, perf: &NetworkPerf) -> ExactOracle {
        let classes = Classes::new(&t.topology, t.classes.clone()).unwrap();
        ExactOracle::new(EquivalentNetwork::build(&t.topology, &classes, perf))
    }

    #[test]
    fn figure4_example_from_section_5() {
        // Both l1 and l2 non-neutral: the algorithm must return
        // Σ = {⟨l1⟩, ⟨l1,l2⟩}, FN 0, granularity 1.5.
        let t = figure4();
        let l1 = t.topology.link_by_name("l1").unwrap();
        let l2 = t.topology.link_by_name("l2").unwrap();
        let perf = NetworkPerf::congestion_free(&t.topology, 2)
            .with_link(l1, LinkPerf::per_class(vec![0.0, 0.4]))
            .with_link(l2, LinkPerf::per_class(vec![0.0, 0.2]));
        let oracle = oracle_for(&t, &perf);
        let r = identify(&t.topology, &oracle, Config::exact());
        assert!(r.network_is_nonneutral());
        let mut got = r.nonneutral.clone();
        got.sort();
        let mut want = vec![LinkSeq::single(l1), LinkSeq::new(vec![l1, l2])];
        want.sort();
        assert_eq!(got, want);
        let granularity: f64 = got.iter().map(|s| s.len() as f64).sum::<f64>() / 2.0;
        assert!((granularity - 1.5).abs() < 1e-12);
    }

    #[test]
    fn neutral_network_yields_empty_result_exact() {
        let t = figure4();
        let perf = NetworkPerf::neutral(&[0.1, 0.2, 0.05, 0.0, 0.3, 0.15], 2);
        let oracle = oracle_for(&t, &perf);
        let r = identify(&t.topology, &oracle, Config::exact());
        assert!(!r.network_is_nonneutral());
        assert!(r.nonneutral_raw.is_empty());
    }

    #[test]
    fn neutral_network_yields_empty_result_clustered() {
        // The separation guard must keep a noise-free neutral network from
        // splitting into two clusters.
        let t = figure4();
        let perf = NetworkPerf::neutral(&[0.1, 0.2, 0.05, 0.0, 0.3, 0.15], 2);
        let oracle = oracle_for(&t, &perf);
        let r = identify(&t.topology, &oracle, Config::clustered());
        assert!(!r.network_is_nonneutral());
    }

    #[test]
    fn clustered_mode_flags_figure5() {
        let t = figure5();
        let l1 = t.topology.link_by_name("l1").unwrap();
        let perf = NetworkPerf::congestion_free(&t.topology, 2)
            .with_link(l1, LinkPerf::per_class(vec![0.0, (2.0_f64).ln()]));
        let oracle = oracle_for(&t, &perf);
        let r = identify(&t.topology, &oracle, Config::clustered());
        assert!(r.network_is_nonneutral());
        assert_eq!(r.nonneutral, vec![LinkSeq::single(l1)]);
    }

    #[test]
    fn topology_b_exact_mode_identifies_all_policers() {
        let t = topology_b();
        let mut perf = NetworkPerf::congestion_free(&t.topology, 2);
        for &l in &t.nonneutral_links {
            perf = perf.with_link(l, LinkPerf::per_class(vec![0.001, 0.05]));
        }
        let oracle = oracle_for(&t, &perf);
        let r = identify(&t.topology, &oracle, Config::exact());
        for &pol in &t.nonneutral_links {
            assert!(
                r.nonneutral.iter().any(|s| s.contains(pol)),
                "policer {pol} missed"
            );
        }
        // Zero false positives: every identified sequence contains a policer.
        for s in &r.nonneutral {
            assert!(
                t.nonneutral_links.iter().any(|&pol| s.contains(pol)),
                "sequence {s} wrongly identified"
            );
        }
    }

    #[test]
    fn redundancy_removal_paper_example() {
        // Σ_n̄ = {⟨1,2⟩, ⟨2,3⟩, ⟨1,2,3⟩}: the long one is redundant.
        let s12 = LinkSeq::new(vec![LinkId(1), LinkId(2)]);
        let s23 = LinkSeq::new(vec![LinkId(2), LinkId(3)]);
        let s123 = LinkSeq::new(vec![LinkId(1), LinkId(2), LinkId(3)]);
        let kept = remove_redundant(&[s12.clone(), s23.clone(), s123], &[]);
        assert_eq!(kept, vec![s12, s23]);
    }

    #[test]
    fn redundancy_removal_needs_nonneutral_member() {
        // ⟨1,2⟩ non-neutral; ⟨1⟩ and ⟨2⟩ both classified *neutral*: the union
        // covers τ but contains no non-neutral member, so τ is kept.
        let s12 = LinkSeq::new(vec![LinkId(1), LinkId(2)]);
        let s1 = LinkSeq::single(LinkId(1));
        let s2 = LinkSeq::single(LinkId(2));
        let kept = remove_redundant(std::slice::from_ref(&s12), &[s1, s2]);
        assert_eq!(kept, vec![s12]);
    }

    #[test]
    fn redundancy_removal_mixed_cover() {
        // §6.4 discussion: had ⟨18,14⟩ been classified non-neutral, the long
        // ⟨18,14,6,3⟩ would be discarded thanks to neutral ⟨6,3⟩.
        let long = LinkSeq::new(vec![LinkId(18), LinkId(14), LinkId(6), LinkId(3)]);
        let s1814 = LinkSeq::new(vec![LinkId(18), LinkId(14)]);
        let s63 = LinkSeq::new(vec![LinkId(6), LinkId(3)]);
        let kept = remove_redundant(&[long.clone(), s1814.clone()], &[s63]);
        assert_eq!(kept, vec![s1814]);
    }

    #[test]
    fn verdicts_report_estimates() {
        let t = figure5();
        let l1 = t.topology.link_by_name("l1").unwrap();
        let perf = NetworkPerf::congestion_free(&t.topology, 2)
            .with_link(l1, LinkPerf::per_class(vec![0.0, (2.0_f64).ln()]));
        let oracle = oracle_for(&t, &perf);
        let r = identify(&t.topology, &oracle, Config::exact());
        let v = &r.verdicts[0];
        assert_eq!(v.estimates.len(), 3);
        assert!((v.unsolvability - (2.0_f64).ln()).abs() < 1e-9);
    }
}
