//! Property-based tests for the inference core.

use nni_core::{
    enumerate_slices, identify, remove_redundant, routing_matrix, theorem1,
    unsolvable_over_power_set, Classes, Config, EquivalentNetwork, ExactOracle, LinkPerf,
    NetworkPerf, Observations,
};
use nni_topology::library::{dumbbell, parking_lot};
use nni_topology::{LinkId, LinkSeq, PathSet};
use proptest::prelude::*;

/// Strategy: a dumbbell topology with 1–4 paths per class.
fn dumbbell_strategy() -> impl Strategy<Value = nni_topology::PaperTopology> {
    (1usize..=4, 1usize..=4).prop_map(|(a, b)| dumbbell(a, b))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A neutral network never yields an unsolvable slice system (Lemma 2's
    /// contrapositive), whatever the topology and link numbers.
    #[test]
    fn neutral_networks_are_never_accused(
        t in dumbbell_strategy(),
        seed_xs in prop::collection::vec(0.0..0.5f64, 17..=24),
    ) {
        let classes = Classes::new(&t.topology, t.classes.clone()).unwrap();
        let xs = &seed_xs[..t.topology.link_count()];
        let perf = NetworkPerf::neutral(xs, classes.count());
        let oracle = ExactOracle::new(
            EquivalentNetwork::build(&t.topology, &classes, &perf));
        let result = identify(&t.topology, &oracle, Config::exact());
        prop_assert!(result.nonneutral.is_empty());
        // And the whole network is unobservably neutral.
        prop_assert!(!theorem1(&t.topology, &classes, &perf).observable);
    }

    /// Theorem 1 agrees with the brute-force power-set oracle on dumbbells
    /// with an arbitrary differentiated shared link.
    #[test]
    fn theorem1_agrees_with_brute_force(
        n1 in 1usize..=2,
        n2 in 1usize..=2,
        x1 in 0.0..0.3f64,
        delta in 0.01..0.5f64,
    ) {
        let t = dumbbell(n1, n2);
        let classes = Classes::new(&t.topology, t.classes.clone()).unwrap();
        let shared = t.nonneutral_links[0];
        let perf = NetworkPerf::congestion_free(&t.topology, 2)
            .with_link(shared, LinkPerf::per_class(vec![x1, x1 + delta]));
        let th = theorem1(&t.topology, &classes, &perf).observable;
        let brute = unsolvable_over_power_set(&t.topology, &classes, &perf);
        prop_assert_eq!(th, brute);
    }

    /// The exact oracle is additive over the equivalent network: the routing
    /// matrix product reproduces pathset_perf for arbitrary pathsets.
    #[test]
    fn oracle_matches_routing_product(
        t in dumbbell_strategy(),
        x1 in 0.0..0.3f64,
        delta in 0.0..0.5f64,
    ) {
        let classes = Classes::new(&t.topology, t.classes.clone()).unwrap();
        let shared = t.nonneutral_links[0];
        let perf = NetworkPerf::congestion_free(&t.topology, 2)
            .with_link(shared, LinkPerf::per_class(vec![x1, x1 + delta]));
        let eq = EquivalentNetwork::build(&t.topology, &classes, &perf);
        let pathsets: Vec<PathSet> =
            t.topology.path_ids().map(PathSet::single).collect();
        let a = eq.routing_matrix(&pathsets);
        let y = a.matvec(&eq.perf_vector());
        for (i, p) in pathsets.iter().enumerate() {
            prop_assert!((eq.pathset_perf(p) - y[i]).abs() < 1e-9);
        }
    }

    /// Slice enumeration is complete and sound: every pair of paths with a
    /// shared link lands in exactly one slice, keyed by the shared set.
    #[test]
    fn slices_partition_path_pairs(segments in 2usize..=8) {
        let t = parking_lot(segments);
        let slices = enumerate_slices(&t.topology);
        let paths = t.topology.paths();
        let mut pair_count = 0usize;
        for i in 0..paths.len() {
            for j in i + 1..paths.len() {
                let shared = paths[i].shared_links(&paths[j]);
                if shared.is_empty() {
                    continue;
                }
                pair_count += 1;
                let hosting: Vec<_> = slices
                    .iter()
                    .filter(|s| {
                        s.pairs.contains(&(paths[i].id(), paths[j].id()))
                    })
                    .collect();
                prop_assert_eq!(hosting.len(), 1, "pair must be in exactly one slice");
                prop_assert_eq!(&hosting[0].tau, &shared);
            }
        }
        let total: usize = slices.iter().map(|s| s.pair_count()).sum();
        prop_assert_eq!(total, pair_count);
    }

    /// Redundancy removal returns a subset and never removes a sequence that
    /// is not covered by the union of its classified subsets.
    #[test]
    fn redundancy_removal_is_sound(
        seq_bits in prop::collection::vec(1u8..=7, 1..6),
        neutral_bits in prop::collection::vec(1u8..=7, 0..4),
    ) {
        let to_seq = |bits: u8| {
            LinkSeq::new(
                (0..3).filter(|b| bits & (1 << b) != 0).map(LinkId).collect())
        };
        let nonneutral: Vec<LinkSeq> = seq_bits.iter().map(|&b| to_seq(b)).collect();
        let neutral: Vec<LinkSeq> = neutral_bits.iter().map(|&b| to_seq(b)).collect();
        let kept = remove_redundant(&nonneutral, &neutral);
        // Subset property.
        for k in &kept {
            prop_assert!(nonneutral.contains(k));
        }
        // Every removed sequence is genuinely covered.
        for tau in &nonneutral {
            if kept.contains(tau) {
                continue;
            }
            let candidates: Vec<&LinkSeq> = nonneutral
                .iter()
                .filter(|t| *t != tau && t.is_subset_of(tau))
                .chain(neutral.iter().filter(|t| t.is_subset_of(tau)))
                .collect();
            let mut union = LinkSeq::new(vec![]);
            for c in &candidates {
                union = union.union(c);
            }
            prop_assert_eq!(&union, tau, "removed sequence must be covered");
            prop_assert!(candidates.iter().any(|c| nonneutral.contains(c)));
        }
    }

    /// The routing matrix of singleton pathsets has exactly one 1 per
    /// link-of-path, and pathset rows are unions of singleton rows.
    #[test]
    fn routing_matrix_row_structure(t in dumbbell_strategy()) {
        let g = &t.topology;
        let singles: Vec<PathSet> = g.path_ids().map(PathSet::single).collect();
        let a = routing_matrix(g, &singles);
        for (i, p) in g.paths().iter().enumerate() {
            let ones: usize = (0..g.link_count())
                .filter(|&k| a[(i, k)] == 1.0)
                .count();
            prop_assert_eq!(ones, p.links().len());
        }
    }

    /// Observation sources are consistent: observe_all equals per-pathset
    /// queries.
    #[test]
    fn observe_all_matches_pointwise(t in dumbbell_strategy(), delta in 0.0..0.4f64) {
        let classes = Classes::new(&t.topology, t.classes.clone()).unwrap();
        let shared = t.nonneutral_links[0];
        let perf = NetworkPerf::congestion_free(&t.topology, 2)
            .with_link(shared, LinkPerf::per_class(vec![0.0, delta]));
        let oracle = ExactOracle::new(
            EquivalentNetwork::build(&t.topology, &classes, &perf));
        let pathsets: Vec<PathSet> = t.topology.path_ids().map(PathSet::single).collect();
        let group: Vec<_> = t.topology.path_ids().collect();
        let all = oracle.observe_all(&group, &pathsets);
        for (i, p) in pathsets.iter().enumerate() {
            prop_assert_eq!(all[i], oracle.pathset_perf(&group, p));
        }
    }
}
