//! # nni-live
//!
//! Online inference over a growing corpus directory: the consumer half of
//! the streaming subsystem.
//!
//! A [`LiveMonitor`] turns the arrival stream of a
//! [`CorpusTail`](nni_measure::CorpusTail) into a stream of
//! [`VerdictUpdate`]s — one inference session per measurement identity
//! ([`SetKey`]: scenario fingerprint + seed), re-clustered on every newly
//! closed interval via [`StreamingInference`]:
//!
//! * **segments** (`.nniseg`, e.g. from `nni-serviced --follow`) feed their
//!   session incrementally — one Algorithm 2 evaluation per group per
//!   interval, then the cheap decision half of Algorithm 1, never a full
//!   recompute;
//! * **complete entries** (`.nniset`) replay through the same incremental
//!   path interval by interval, so the update stream looks the same
//!   whether the producer spilled live or all at once;
//! * **a second vantage** for an identity already being watched (another
//!   entry or segment with the same key) is merged on the fly:
//!   [`MeasurementLog::merge`] sums the vantage logs cell-wise, the
//!   session [`rebase`](StreamingInference::rebase)s its counters, and one
//!   `"rebase"` update carries the re-derived verdict — the exact
//!   fallback, since merge rewrites frozen history;
//! * **corrupt segment regions** degrade instead of killing the session:
//!   the tail's follower skips to the next valid chunk
//!   ([`TailEvent::SegmentGap`]), the monitor zero-fills the lost
//!   intervals and emits one `"resync"` update, and every later verdict
//!   from that session carries `"degraded":true`.
//!
//! Every emitted verdict is checkable against batch inference over the
//! session's merged log at the same watermark;
//! [`LiveMonitor::verify_batch`] performs exactly that check (the
//! `nni-live --verify-batch` exit gate), and
//! `tests/streaming_convergence.rs` pins the convergence across the
//! identity suite and the randomized population.
//!
//! The [`run_live`] loop in [`run`] is the `nni-live` binary's engine: it
//! drives a monitor over either a local
//! [`CorpusTail`](nni_measure::CorpusTail) or a remote
//! [`RemoteTail`](nni_measure::RemoteTail) relay connection
//! (`nni-live --connect`, fed by `nni-serviced --serve-segments`) — the
//! same events, the same degraded semantics, over a socket.

pub mod run;

pub use run::{run_live, RunConfig, RunError, RunStats, TailSource};

use std::collections::HashMap;
use std::path::{Path, PathBuf};

use nni_core::InferenceResult;
use nni_measure::{
    MeasurementLog, MeasurementSet, MeasurementSource, MergeError, SetKey, SourceError,
    StreamError, StreamingLog, TailEvent,
};
use nni_scenario::{infer, InferenceConfig, Provenance, StreamingInference};
use nni_topology::{PathId, Topology};

/// How a [`LiveMonitor`] runs its inference sessions.
#[derive(Debug, Clone, Copy, Default)]
pub struct LiveConfig {
    /// The inference configuration every session runs under.
    pub inference: InferenceConfig,
    /// Sliding window (closed intervals) per session; `None` = full
    /// history. Windowed verdicts converge to batch inference over the
    /// window-truncated log instead of the full one.
    pub window: Option<usize>,
}

/// Whether an update extends frozen history or rewrites it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpdateMode {
    /// New closed intervals were folded into the counters in place.
    Incremental,
    /// A merge rewrote consumed intervals; the session rebased and
    /// replayed the merged log (the exact fallback).
    Rebase,
    /// A corrupt segment region was skipped: the missing intervals were
    /// zero-filled and the session resumed past them.
    Resync,
}

impl UpdateMode {
    /// The JSONL tag.
    pub fn as_str(self) -> &'static str {
        match self {
            UpdateMode::Incremental => "incremental",
            UpdateMode::Rebase => "rebase",
            UpdateMode::Resync => "resync",
        }
    }
}

/// One re-derived verdict, emitted per newly closed interval (or per
/// vantage merge).
#[derive(Debug, Clone)]
pub struct VerdictUpdate {
    /// Human-readable scenario name (from provenance).
    pub scenario: String,
    /// Scenario fingerprint (seed excluded) — the session identity's
    /// first half.
    pub scenario_fingerprint: u64,
    /// Acquisition seed — the identity's second half.
    pub seed: u64,
    /// Watermark: closed intervals folded in when this verdict was taken.
    pub interval: usize,
    /// Vantage logs merged into the session so far.
    pub vantages: usize,
    /// Whether Algorithm 1 currently flags any non-neutral link sequence.
    pub nonneutral: bool,
    /// Fingerprint of the full [`InferenceResult`] — comparable against
    /// batch re-inference of the same log prefix.
    pub result_fingerprint: u64,
    /// Incremental extension, merge-triggered rebase, or corruption
    /// resync.
    pub mode: UpdateMode,
    /// Whether this session has ever lost intervals to segment
    /// corruption. Once set it stays set: every later verdict from the
    /// session is derived from an incomplete log.
    pub degraded: bool,
}

impl VerdictUpdate {
    /// The update as one JSON line (no trailing newline).
    pub fn jsonl(&self) -> String {
        format!(
            "{{\"type\":\"update\",\"scenario\":\"{}\",\"fingerprint\":\"{:016x}\",\
             \"seed\":{},\"interval\":{},\"vantages\":{},\"nonneutral\":{},\
             \"result\":\"{:016x}\",\"mode\":\"{}\",\"degraded\":{}}}",
            esc(&self.scenario),
            self.scenario_fingerprint,
            self.seed,
            self.interval,
            self.vantages,
            self.nonneutral,
            self.result_fingerprint,
            self.mode.as_str(),
            self.degraded,
        )
    }
}

/// Why the monitor refused an arrival.
#[derive(Debug)]
pub enum LiveError {
    /// A corpus entry failed to load.
    Source(SourceError),
    /// Interval rows refused to append to the session's log.
    Stream(StreamError),
    /// Two vantage logs refused to merge (grid or path-count mismatch).
    Merge(MergeError),
    /// A second vantage for a key disagrees on topology or classes —
    /// same identity must mean same measured network.
    VantageMismatch(SetKey),
    /// Interval rows arrived for a segment whose header was never seen.
    UnknownSegment(PathBuf),
}

impl std::fmt::Display for LiveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LiveError::Source(e) => write!(f, "entry failed to load: {e}"),
            LiveError::Stream(e) => write!(f, "interval append refused: {e}"),
            LiveError::Merge(e) => write!(f, "vantage merge refused: {e}"),
            LiveError::VantageMismatch(key) => {
                write!(f, "vantage for {key} disagrees on topology/classes")
            }
            LiveError::UnknownSegment(p) => {
                write!(f, "intervals for unknown segment {}", p.display())
            }
        }
    }
}

impl std::error::Error for LiveError {}

impl From<SourceError> for LiveError {
    fn from(e: SourceError) -> LiveError {
        LiveError::Source(e)
    }
}

impl From<StreamError> for LiveError {
    fn from(e: StreamError) -> LiveError {
        LiveError::Stream(e)
    }
}

impl From<MergeError> for LiveError {
    fn from(e: MergeError) -> LiveError {
        LiveError::Merge(e)
    }
}

/// One inference session: everything known about one measurement identity.
#[derive(Debug)]
struct Session {
    topology: Topology,
    classes: Vec<Vec<PathId>>,
    provenance: Provenance,
    /// The merged multi-vantage log; its watermark is the verdict
    /// watermark.
    stream: StreamingLog,
    live: StreamingInference,
    vantages: usize,
    /// The segment file feeding this session incrementally, if any — the
    /// first segment vantage keeps the cheap append path; everything else
    /// goes through merge + rebase.
    primary: Option<PathBuf>,
    /// Intervals have been lost to segment corruption; sticky.
    degraded: bool,
}

impl Session {
    fn update(&mut self, key: SetKey, mode: UpdateMode) -> VerdictUpdate {
        let result = self.live.verdict();
        VerdictUpdate {
            scenario: self.provenance.scenario.clone(),
            scenario_fingerprint: key.fingerprint,
            seed: key.seed,
            interval: self.live.consumed(),
            vantages: self.vantages,
            nonneutral: result.network_is_nonneutral(),
            result_fingerprint: result.fingerprint(),
            mode,
            degraded: self.degraded,
        }
    }

    /// Merges `delta` (another vantage's counts) into the session log and
    /// replays: the exact fallback for history rewrites.
    fn merge_and_rebase(&mut self, delta: &MeasurementLog) -> Result<(), LiveError> {
        let placeholder = StreamingLog::new(delta.path_count(), delta.interval_s());
        let mut log = std::mem::replace(&mut self.stream, placeholder).into_log();
        log.merge(delta)?;
        let mut stream = StreamingLog::from_log(log);
        stream.close_all();
        self.stream = stream;
        self.live.rebase();
        self.live.advance(self.stream.log(), self.stream.closed());
        Ok(())
    }
}

/// A mismatch found by [`LiveMonitor::verify_batch`]: the streaming
/// verdict diverged from batch inference over the same log.
#[derive(Debug, Clone)]
pub struct VerifyMismatch {
    /// The diverging session.
    pub key: SetKey,
    /// What the streaming session reports.
    pub streaming: u64,
    /// What batch inference over the merged log computes.
    pub batch: u64,
}

/// Multi-session online inference over a [`TailEvent`] stream.
///
/// Feed it every event a [`CorpusTail`](nni_measure::CorpusTail) yields;
/// it returns the verdict updates the arrival produced (none for headers
/// and corrupt files — the caller decides how to report those).
#[derive(Debug)]
pub struct LiveMonitor {
    cfg: LiveConfig,
    /// Sessions in arrival order (stable iteration for summaries and
    /// verification), indexed by identity.
    sessions: Vec<(SetKey, Session)>,
    index: HashMap<SetKey, usize>,
    /// Segment file → the session it feeds.
    by_path: HashMap<PathBuf, SetKey>,
}

impl LiveMonitor {
    /// A monitor with no sessions yet.
    pub fn new(cfg: LiveConfig) -> LiveMonitor {
        LiveMonitor {
            cfg,
            sessions: Vec::new(),
            index: HashMap::new(),
            by_path: HashMap::new(),
        }
    }

    /// Sessions currently tracked.
    pub fn session_count(&self) -> usize {
        self.sessions.len()
    }

    /// The identities tracked, in arrival order.
    pub fn keys(&self) -> impl Iterator<Item = SetKey> + '_ {
        self.sessions.iter().map(|(k, _)| *k)
    }

    /// Consumes one tail arrival, returning the verdict updates it
    /// produced. [`TailEvent::Corrupt`] produces none — surface it from
    /// the tail loop instead.
    pub fn handle(&mut self, event: TailEvent) -> Result<Vec<VerdictUpdate>, LiveError> {
        match event {
            TailEvent::Entry(entry) => {
                let set = entry.acquire()?;
                self.ingest_set(set)
            }
            TailEvent::SegmentHeader { path, set } => {
                self.ingest_header(path, set)?;
                Ok(Vec::new())
            }
            TailEvent::SegmentIntervals {
                path,
                first_t,
                rows,
            } => self.ingest_intervals(&path, first_t, &rows),
            TailEvent::SegmentGap {
                path,
                from_interval,
                to_interval,
                ..
            } => self.ingest_gap(&path, from_interval, to_interval),
            TailEvent::Corrupt { .. } => Ok(Vec::new()),
        }
    }

    /// A corrupt region of a live segment was skipped: intervals
    /// `from_interval..to_interval` are gone for good. On the in-sync
    /// primary segment the session zero-fills the lost intervals (no
    /// packets observed) and advances, so the rows that follow still
    /// append at the watermark; either way the session is marked degraded
    /// and every later verdict carries the tag.
    fn ingest_gap(
        &mut self,
        path: &Path,
        from_interval: usize,
        to_interval: usize,
    ) -> Result<Vec<VerdictUpdate>, LiveError> {
        let Some(&key) = self.by_path.get(path) else {
            return Err(LiveError::UnknownSegment(path.to_path_buf()));
        };
        let i = self.index[&key];
        let session = &mut self.sessions[i].1;
        session.degraded = true;
        let appendable =
            session.primary.as_deref() == Some(path) && from_interval == session.stream.closed();
        if !appendable || to_interval <= from_interval {
            // Non-primary vantages merge their rows as deltas; a gap in
            // one simply means fewer rows to merge.
            return Ok(Vec::new());
        }
        let zeros = vec![0u64; session.stream.log().path_count()];
        for _ in from_interval..to_interval {
            session.stream.append_interval(&zeros, &zeros)?;
        }
        session
            .live
            .advance(session.stream.log(), session.stream.closed());
        Ok(vec![session.update(key, UpdateMode::Resync)])
    }

    /// A complete measurement set landed: first vantage replays interval
    /// by interval through the incremental path; a repeat identity merges
    /// as a new vantage.
    fn ingest_set(&mut self, set: MeasurementSet) -> Result<Vec<VerdictUpdate>, LiveError> {
        let key = set.key();
        if let Some(&i) = self.index.get(&key) {
            let session = &mut self.sessions[i].1;
            if session.topology != set.topology || session.classes != set.classes {
                return Err(LiveError::VantageMismatch(key));
            }
            session.merge_and_rebase(&set.log)?;
            session.vantages += 1;
            return Ok(vec![self.sessions[i].1.update(key, UpdateMode::Rebase)]);
        }

        let i = self.open_session(key, &set);
        let session = &mut self.sessions[i].1;
        let n = set.log.path_count();
        let mut updates = Vec::with_capacity(set.log.interval_count());
        for t in 0..set.log.interval_count() {
            let sent: Vec<u64> = (0..n).map(|p| set.log.sent(t, PathId(p))).collect();
            let lost: Vec<u64> = (0..n).map(|p| set.log.lost(t, PathId(p))).collect();
            session.stream.append_interval(&sent, &lost)?;
            session
                .live
                .advance(session.stream.log(), session.stream.closed());
            updates.push(session.update(key, UpdateMode::Incremental));
        }
        Ok(updates)
    }

    /// A segment announced itself: open (or join) the session and remember
    /// which file feeds it.
    fn ingest_header(&mut self, path: PathBuf, set: MeasurementSet) -> Result<(), LiveError> {
        let key = set.key();
        match self.index.get(&key) {
            Some(&i) => {
                let session = &mut self.sessions[i].1;
                if session.topology != set.topology || session.classes != set.classes {
                    return Err(LiveError::VantageMismatch(key));
                }
                // A second vantage joins; its intervals will merge.
                session.vantages += 1;
            }
            None => {
                let i = self.open_session(key, &set);
                self.sessions[i].1.primary = Some(path.clone());
            }
        }
        self.by_path.insert(path, key);
        Ok(())
    }

    /// Newly complete interval rows of a live segment. The primary segment
    /// appends at the watermark (pure incremental); any other vantage —
    /// or a primary that fell behind a merge — goes through merge +
    /// rebase.
    fn ingest_intervals(
        &mut self,
        path: &Path,
        first_t: usize,
        rows: &[(Vec<u64>, Vec<u64>)],
    ) -> Result<Vec<VerdictUpdate>, LiveError> {
        let Some(&key) = self.by_path.get(path) else {
            return Err(LiveError::UnknownSegment(path.to_path_buf()));
        };
        let i = self.index[&key];
        let session = &mut self.sessions[i].1;

        let appendable =
            session.primary.as_deref() == Some(path) && first_t == session.stream.closed();
        if appendable {
            let mut updates = Vec::with_capacity(rows.len());
            for (sent, lost) in rows {
                session.stream.append_interval(sent, lost)?;
                session
                    .live
                    .advance(session.stream.log(), session.stream.closed());
                updates.push(session.update(key, UpdateMode::Incremental));
            }
            return Ok(updates);
        }

        // Another vantage's rows (or out-of-position primary rows after a
        // merge extended the log): express them as a delta log and merge.
        let log = session.stream.log();
        let mut delta = MeasurementLog::new(log.path_count(), log.interval_s());
        for (i, (sent, lost)) in rows.iter().enumerate() {
            for (p, (&s, &l)) in sent.iter().zip(lost).enumerate() {
                delta.record_sent(first_t + i, PathId(p), s);
                delta.record_lost(first_t + i, PathId(p), l);
            }
        }
        session.merge_and_rebase(&delta)?;
        Ok(vec![session.update(key, UpdateMode::Rebase)])
    }

    fn open_session(&mut self, key: SetKey, set: &MeasurementSet) -> usize {
        let live = match self.cfg.window {
            Some(w) => StreamingInference::windowed(
                &set.topology,
                set.provenance.seed,
                &self.cfg.inference,
                w,
            ),
            None => {
                StreamingInference::new(&set.topology, set.provenance.seed, &self.cfg.inference)
            }
        };
        let session = Session {
            topology: set.topology.clone(),
            classes: set.classes.clone(),
            provenance: set.provenance.clone(),
            stream: StreamingLog::new(set.log.path_count(), set.log.interval_s()),
            live,
            vantages: 1,
            primary: None,
            degraded: false,
        };
        let i = self.sessions.len();
        self.sessions.push((key, session));
        self.index.insert(key, i);
        i
    }

    /// Checks every session's current verdict against batch inference over
    /// its merged log (window-truncated when windowed): the streaming
    /// guarantee, enforced at runtime. Returns the divergences — empty
    /// means every live verdict is bit-identical to its batch
    /// counterpart.
    pub fn verify_batch(&self) -> Vec<VerifyMismatch> {
        let mut mismatches = Vec::new();
        for (key, session) in &self.sessions {
            let log = session.stream.log();
            let t_max = session.stream.closed();
            // Windowed sessions compare against the same log with the
            // aged-out prefix zeroed — same interval indices, so the
            // normalization draws line up.
            let keep_from = match self.cfg.window {
                Some(w) => t_max.saturating_sub(w),
                None => 0,
            };
            let mut batch_log = MeasurementLog::new(log.path_count(), log.interval_s());
            for t in keep_from..t_max {
                for p in 0..log.path_count() {
                    batch_log.record_sent(t, PathId(p), log.sent(t, PathId(p)));
                    batch_log.record_lost(t, PathId(p), log.lost(t, PathId(p)));
                }
            }
            if t_max > 0 && batch_log.interval_count() < t_max {
                batch_log.record_sent(t_max - 1, PathId(0), 0);
            }
            let batch_set = MeasurementSet {
                topology: session.topology.clone(),
                classes: session.classes.clone(),
                log: batch_log,
                provenance: session.provenance.clone(),
            };
            let streaming = session.live.verdict().fingerprint();
            let batch = infer(&batch_set, &self.cfg.inference).fingerprint();
            if streaming != batch {
                mismatches.push(VerifyMismatch {
                    key: *key,
                    streaming,
                    batch,
                });
            }
        }
        mismatches
    }

    /// The current verdict of one session, if tracked.
    pub fn verdict(&self, key: SetKey) -> Option<InferenceResult> {
        let &i = self.index.get(&key)?;
        Some(self.sessions[i].1.live.verdict())
    }

    /// The merged log watermark of one session, if tracked.
    pub fn watermark(&self, key: SetKey) -> Option<usize> {
        let &i = self.index.get(&key)?;
        Some(self.sessions[i].1.stream.closed())
    }
}

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use nni_measure::{Corpus, CorpusTail, SegmentWriter};
    use nni_scenario::library::{topology_a_scenario, ExperimentParams, Mechanism};

    fn recorded_set(seed: u64) -> MeasurementSet {
        let mut s = topology_a_scenario(ExperimentParams {
            mechanism: Mechanism::Policing(0.2),
            duration_s: 4.0,
            ..ExperimentParams::default()
        });
        s.measurement.warmup_s = Some(1.0);
        s.with_seed(seed).compile().simulate()
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "nni-live-test-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn entry_arrival_streams_one_update_per_interval() {
        let dir = temp_dir("entry");
        let set = recorded_set(3);
        Corpus::open(&dir).unwrap().store(&set).unwrap();

        let mut tail = CorpusTail::open(&dir).unwrap();
        let mut monitor = LiveMonitor::new(LiveConfig::default());
        let mut updates = Vec::new();
        for e in tail.poll().unwrap() {
            updates.extend(monitor.handle(e).unwrap());
        }
        assert_eq!(updates.len(), set.log.interval_count());
        let last = updates.last().unwrap();
        assert_eq!(last.interval, set.log.interval_count());
        assert_eq!(last.vantages, 1);
        assert_eq!(last.mode, UpdateMode::Incremental);
        assert_eq!(
            last.result_fingerprint,
            infer(&set, &InferenceConfig::default()).fingerprint()
        );
        assert!(monitor.verify_batch().is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn segment_arrival_streams_chunks_incrementally() {
        let dir = temp_dir("segment");
        std::fs::create_dir_all(&dir).unwrap();
        let set = recorded_set(3);
        let path = dir.join(nni_measure::segment_file_name(&set.provenance));
        let mut w = SegmentWriter::create(&path, &set).unwrap();

        let mut tail = CorpusTail::open(&dir).unwrap();
        let mut monitor = LiveMonitor::new(LiveConfig::default());
        let total = set.log.interval_count();
        let mut updates = Vec::new();
        let mut from = 0;
        while from < total {
            let to = (from + 7).min(total);
            w.append_intervals(&set.log, from, to).unwrap();
            from = to;
            for e in tail.poll().unwrap() {
                updates.extend(monitor.handle(e).unwrap());
            }
        }
        assert_eq!(updates.len(), total);
        assert!(updates.iter().all(|u| u.mode == UpdateMode::Incremental));
        assert_eq!(
            updates.last().unwrap().result_fingerprint,
            infer(&set, &InferenceConfig::default()).fingerprint()
        );
        assert!(monitor.verify_batch().is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn second_vantage_merges_and_rebases() {
        let set = recorded_set(5);
        let n = set.log.path_count();
        // Split into two vantage logs by interval parity.
        let mut a = MeasurementLog::new(n, set.log.interval_s());
        let mut b = MeasurementLog::new(n, set.log.interval_s());
        for t in 0..set.log.interval_count() {
            let dst = if t % 2 == 0 { &mut a } else { &mut b };
            for p in 0..n {
                dst.record_sent(t, PathId(p), set.log.sent(t, PathId(p)));
                dst.record_lost(t, PathId(p), set.log.lost(t, PathId(p)));
            }
            let other = if t % 2 == 0 { &mut b } else { &mut a };
            other.record_sent(t, PathId(0), 0);
        }
        let vantage = |log: MeasurementLog| MeasurementSet {
            topology: set.topology.clone(),
            classes: set.classes.clone(),
            log,
            provenance: set.provenance.clone(),
        };

        let mut monitor = LiveMonitor::new(LiveConfig::default());
        let first = monitor.ingest_set(vantage(a)).unwrap();
        assert!(first.iter().all(|u| u.vantages == 1));
        let second = monitor.ingest_set(vantage(b)).unwrap();
        assert_eq!(second.len(), 1, "a merge emits one rebase update");
        assert_eq!(second[0].mode, UpdateMode::Rebase);
        assert_eq!(second[0].vantages, 2);
        assert_eq!(
            second[0].result_fingerprint,
            infer(&set, &InferenceConfig::default()).fingerprint(),
            "merged verdict equals batch inference over the full log"
        );
        assert!(monitor.verify_batch().is_empty());
    }

    #[test]
    fn vantage_with_different_topology_is_refused() {
        let set = recorded_set(3);
        let mut monitor = LiveMonitor::new(LiveConfig::default());
        monitor.ingest_set(set.clone()).unwrap();
        let mut other = set.clone();
        other.classes = vec![other.classes.concat()];
        match monitor.ingest_set(other) {
            Err(LiveError::VantageMismatch(key)) => assert_eq!(key, set.key()),
            other => panic!("expected a vantage mismatch, got {other:?}"),
        }
    }

    #[test]
    fn windowed_monitor_verifies_against_truncated_batch() {
        let set = recorded_set(3);
        let w = 10;
        assert!(set.log.interval_count() > w);
        let mut monitor = LiveMonitor::new(LiveConfig {
            window: Some(w),
            ..LiveConfig::default()
        });
        monitor.ingest_set(set).unwrap();
        assert!(monitor.verify_batch().is_empty());
    }
}
