//! `nni-live`: tail a growing corpus directory and stream verdict updates
//! as JSONL, re-running inference on every newly closed interval.
//!
//! ```text
//! nni-live <corpus-dir> [--out PATH] [--poll-ms N] [--window W]
//!          [--idle-exit N] [--verify-batch] [--retry-budget N]
//! ```
//!
//! One JSON line per update, to stdout (or `--out`):
//!
//! ```text
//! {"type":"update","scenario":"…","fingerprint":"…","seed":3,
//!  "interval":17,"vantages":1,"nonneutral":true,"result":"…",
//!  "mode":"incremental"}
//! ```
//!
//! `--idle-exit N` stops after `N` consecutive empty polls (the demo /
//! CI mode; without it the tail runs until killed). `--verify-batch`
//! re-runs *batch* inference over every session's merged log on exit and
//! exits 1 unless each streaming verdict is bit-identical — the
//! convergence guarantee, checked end to end. Corrupt files are reported
//! on stderr and skipped.

use std::fs::OpenOptions;
use std::io::Write;
use std::path::PathBuf;
use std::process::exit;

use nni_live::{LiveConfig, LiveMonitor};
use nni_measure::{CorpusTail, TailEvent};

fn usage() -> ! {
    eprintln!(
        "usage: nni-live <corpus-dir> [--out PATH] [--poll-ms N] [--window W] \
         [--idle-exit N] [--verify-batch] [--retry-budget N]"
    );
    exit(2);
}

fn parse<T: std::str::FromStr>(flag: &str, value: Option<String>) -> T {
    let Some(v) = value else {
        eprintln!("nni-live: {flag} needs a value");
        usage();
    };
    v.parse().unwrap_or_else(|_| {
        eprintln!("nni-live: bad value for {flag}: {v:?}");
        usage();
    })
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut dir: Option<PathBuf> = None;
    let mut out: Option<PathBuf> = None;
    let mut poll_ms: u64 = 100;
    let mut window: Option<usize> = None;
    let mut idle_exit: Option<u32> = None;
    let mut verify_batch = false;
    let mut retry_budget: Option<u32> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => out = Some(parse::<PathBuf>("--out", args.next())),
            "--poll-ms" => poll_ms = parse("--poll-ms", args.next()),
            "--window" => window = Some(parse("--window", args.next())),
            "--idle-exit" => idle_exit = Some(parse("--idle-exit", args.next())),
            "--verify-batch" => verify_batch = true,
            "--retry-budget" => retry_budget = Some(parse("--retry-budget", args.next())),
            "--help" | "-h" => usage(),
            _ if dir.is_none() && !arg.starts_with('-') => dir = Some(PathBuf::from(arg)),
            _ => {
                eprintln!("nni-live: unexpected argument {arg:?}");
                usage();
            }
        }
    }
    let Some(dir) = dir else { usage() };

    let mut tail = match CorpusTail::open(&dir) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("nni-live: cannot tail {}: {e}", dir.display());
            exit(1);
        }
    };
    if let Some(budget) = retry_budget {
        tail = tail.with_retry_budget(budget);
    }
    let mut sink: Box<dyn Write> = match &out {
        Some(path) => match OpenOptions::new().create(true).append(true).open(path) {
            Ok(f) => Box::new(f),
            Err(e) => {
                eprintln!("nni-live: cannot open {}: {e}", path.display());
                exit(1);
            }
        },
        None => Box::new(std::io::stdout()),
    };
    let mut monitor = LiveMonitor::new(LiveConfig {
        window,
        ..LiveConfig::default()
    });

    let mut idle: u32 = 0;
    let mut emitted: u64 = 0;
    loop {
        let events = match tail.poll() {
            Ok(events) => events,
            Err(e) => {
                eprintln!("nni-live: poll failed: {e}");
                exit(1);
            }
        };
        let mut quiet = true;
        for event in events {
            quiet = false;
            if let TailEvent::Corrupt { path, message } = &event {
                eprintln!("nni-live: corrupt {}: {message}", path.display());
                continue;
            }
            if let TailEvent::SegmentGap {
                path,
                from_interval,
                to_interval,
                bytes_skipped,
            } = &event
            {
                eprintln!(
                    "nni-live: gap in {}: intervals {from_interval}..{to_interval} \
                     lost ({bytes_skipped} bytes skipped)",
                    path.display()
                );
            }
            let updates = match monitor.handle(event) {
                Ok(updates) => updates,
                Err(e) => {
                    eprintln!("nni-live: {e}");
                    exit(1);
                }
            };
            for u in &updates {
                if writeln!(sink, "{}", u.jsonl()).is_err() {
                    eprintln!("nni-live: output stream closed");
                    exit(1);
                }
                emitted += 1;
            }
        }
        let _ = sink.flush();
        if quiet {
            idle += 1;
            if idle_exit.is_some_and(|n| idle >= n) {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(poll_ms.max(1)));
        } else {
            idle = 0;
        }
    }

    if verify_batch {
        let mismatches = monitor.verify_batch();
        if !mismatches.is_empty() {
            for m in &mismatches {
                eprintln!(
                    "nni-live: verdict for {} diverged from batch: \
                     streaming {:016x} != batch {:016x}",
                    m.key, m.streaming, m.batch
                );
            }
            exit(1);
        }
        eprintln!(
            "nni-live: {} session(s) verified against batch inference",
            monitor.session_count()
        );
    }
    eprintln!(
        "nni-live: done: {emitted} update(s) across {} session(s)",
        monitor.session_count()
    );
}
