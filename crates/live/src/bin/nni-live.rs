//! `nni-live`: tail a growing corpus directory — or a remote segment
//! relay — and stream verdict updates as JSONL, re-running inference on
//! every newly closed interval.
//!
//! ```text
//! nni-live <corpus-dir>       [--out PATH] [--poll-ms N] [--window W]
//!          [--idle-exit N] [--verify-batch] [--retry-budget N]
//! nni-live --connect <addr>   [--out PATH] [--poll-ms N] [--window W]
//!          [--idle-exit N] [--verify-batch]
//! ```
//!
//! One JSON line per update, to stdout (or `--out`):
//!
//! ```text
//! {"type":"update","scenario":"…","fingerprint":"…","seed":3,
//!  "interval":17,"vantages":1,"nonneutral":true,"result":"…",
//!  "mode":"incremental"}
//! ```
//!
//! `--connect <addr>` follows a daemon's live `.nniseg` traffic over TCP
//! (`nni-serviced --serve-segments`) instead of a local directory — a
//! true remote monitor, with the same resync/degraded semantics, exiting
//! when the server hangs up. `--idle-exit N` stops after `N` consecutive
//! empty polls (the demo / CI mode; without it a directory tail runs
//! until killed). `--verify-batch` re-runs *batch* inference over every
//! session's merged log on exit and exits 1 unless each streaming verdict
//! is bit-identical — the convergence guarantee, checked end to end.
//! Corrupt files are reported on stderr and skipped.

use std::fs::OpenOptions;
use std::io::Write;
use std::path::PathBuf;
use std::process::exit;
use std::time::Duration;

use nni_live::{run_live, LiveConfig, LiveMonitor, RunConfig, TailSource};
use nni_measure::{CorpusTail, RemoteTail};

fn usage() -> ! {
    eprintln!(
        "usage: nni-live <corpus-dir> | --connect <addr> \
         [--out PATH] [--poll-ms N] [--window W] \
         [--idle-exit N] [--verify-batch] [--retry-budget N]"
    );
    exit(2);
}

fn parse<T: std::str::FromStr>(flag: &str, value: Option<String>) -> T {
    let Some(v) = value else {
        eprintln!("nni-live: {flag} needs a value");
        usage();
    };
    v.parse().unwrap_or_else(|_| {
        eprintln!("nni-live: bad value for {flag}: {v:?}");
        usage();
    })
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut dir: Option<PathBuf> = None;
    let mut connect: Option<String> = None;
    let mut out: Option<PathBuf> = None;
    let mut poll_ms: u64 = 100;
    let mut window: Option<usize> = None;
    let mut idle_exit: Option<u32> = None;
    let mut verify_batch = false;
    let mut retry_budget: Option<u32> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--connect" => connect = Some(parse::<String>("--connect", args.next())),
            "--out" => out = Some(parse::<PathBuf>("--out", args.next())),
            "--poll-ms" => poll_ms = parse("--poll-ms", args.next()),
            "--window" => window = Some(parse("--window", args.next())),
            "--idle-exit" => idle_exit = Some(parse("--idle-exit", args.next())),
            "--verify-batch" => verify_batch = true,
            "--retry-budget" => retry_budget = Some(parse("--retry-budget", args.next())),
            "--help" | "-h" => usage(),
            _ if dir.is_none() && !arg.starts_with('-') => dir = Some(PathBuf::from(arg)),
            _ => {
                eprintln!("nni-live: unexpected argument {arg:?}");
                usage();
            }
        }
    }

    let mut source: Box<dyn TailSource> = match (dir, connect) {
        (Some(dir), None) => {
            let mut tail = match CorpusTail::open(&dir) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("nni-live: cannot tail {}: {e}", dir.display());
                    exit(1);
                }
            };
            if let Some(budget) = retry_budget {
                tail = tail.with_retry_budget(budget);
            }
            Box::new(tail)
        }
        (None, Some(addr)) => {
            if retry_budget.is_some() {
                eprintln!("nni-live: --retry-budget only applies to a directory tail");
                usage();
            }
            match RemoteTail::connect(addr.as_str()) {
                Ok(tail) => Box::new(tail),
                Err(e) => {
                    eprintln!("nni-live: cannot connect to {addr}: {e}");
                    exit(1);
                }
            }
        }
        _ => usage(), // exactly one source
    };

    let mut sink: Box<dyn Write> = match &out {
        Some(path) => match OpenOptions::new().create(true).append(true).open(path) {
            Ok(f) => Box::new(f),
            Err(e) => {
                eprintln!("nni-live: cannot open {}: {e}", path.display());
                exit(1);
            }
        },
        None => Box::new(std::io::stdout()),
    };
    let mut monitor = LiveMonitor::new(LiveConfig {
        window,
        ..LiveConfig::default()
    });

    /// Prefixes every diagnostic line with the program name on stderr.
    struct Diag;
    impl Write for Diag {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            eprint!("nni-live: {}", String::from_utf8_lossy(buf));
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    let stats = match run_live(
        source.as_mut(),
        &mut monitor,
        &mut sink,
        &mut Diag,
        &RunConfig {
            poll: Duration::from_millis(poll_ms.max(1)),
            idle_exit,
        },
    ) {
        Ok(stats) => stats,
        Err(e) => {
            eprintln!("nni-live: {e}");
            exit(1);
        }
    };

    if verify_batch {
        let mismatches = monitor.verify_batch();
        if !mismatches.is_empty() {
            for m in &mismatches {
                eprintln!(
                    "nni-live: verdict for {} diverged from batch: \
                     streaming {:016x} != batch {:016x}",
                    m.key, m.streaming, m.batch
                );
            }
            exit(1);
        }
        eprintln!(
            "nni-live: {} session(s) verified against batch inference",
            monitor.session_count()
        );
    }
    eprintln!(
        "nni-live: done: {} update(s) across {} session(s)",
        stats.emitted,
        monitor.session_count()
    );
}
