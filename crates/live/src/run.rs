//! The `nni-live` event loop, extracted from the binary so its idle-exit
//! semantics are pinned by tests and shared between the two tail modes —
//! a local directory ([`CorpusTail`]) and a remote relay connection
//! ([`RemoteTail`]).
//!
//! The loop's one subtle invariant: **every** event resets the idle
//! counter, including [`TailEvent::SegmentGap`] and [`TailEvent::Corrupt`]
//! — a stream that is degrading is not a stream that is idle. A monitor
//! run with `--idle-exit` must not give up while a producer is still
//! writing, even if everything currently arriving is damage reports
//! (`tests/live_loop.rs` pins this).

use std::io::Write;
use std::time::Duration;

use nni_measure::{CorpusTail, RemoteTail, TailEvent};

use crate::{LiveError, LiveMonitor};

/// Anything a live monitor can be driven from: a poll surface plus an
/// end-of-source signal. Implemented for the local directory tail (which
/// never ends — a directory can always grow) and the remote relay tail
/// (which ends when the server hangs up).
pub trait TailSource {
    /// Everything that newly arrived, in replay order.
    fn poll(&mut self) -> std::io::Result<Vec<TailEvent>>;

    /// Whether the source can never produce again.
    fn finished(&self) -> bool {
        false
    }
}

impl TailSource for CorpusTail {
    fn poll(&mut self) -> std::io::Result<Vec<TailEvent>> {
        CorpusTail::poll(self)
    }
}

impl TailSource for RemoteTail {
    fn poll(&mut self) -> std::io::Result<Vec<TailEvent>> {
        RemoteTail::poll(self)
    }

    fn finished(&self) -> bool {
        RemoteTail::finished(self)
    }
}

/// Loop knobs, mirroring the `nni-live` flags.
#[derive(Debug, Clone, Copy)]
pub struct RunConfig {
    /// Sleep between empty polls.
    pub poll: Duration,
    /// Stop after this many consecutive empty polls (`None`: run until
    /// the source finishes — forever, for a directory).
    pub idle_exit: Option<u32>,
}

/// What one loop run did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Verdict-update lines written to the sink.
    pub emitted: u64,
    /// Source polls performed.
    pub polls: u64,
}

/// Why the loop stopped (beyond a clean idle-exit / source end).
#[derive(Debug)]
pub enum RunError {
    /// The tail source failed (directory I/O, broken relay connection).
    Poll(std::io::Error),
    /// The monitor rejected an event (e.g. conflicting vantage merge).
    Monitor(LiveError),
    /// The verdict sink went away.
    Sink(std::io::Error),
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::Poll(e) => write!(f, "poll failed: {e}"),
            RunError::Monitor(e) => write!(f, "{e}"),
            RunError::Sink(e) => write!(f, "output stream closed: {e}"),
        }
    }
}

impl std::error::Error for RunError {}

/// Drives `monitor` over `source`'s event stream until `idle_exit`
/// consecutive quiet polls, or until the source reports it can never
/// produce again (a closed relay connection; a directory never
/// finishes). Verdict updates stream to `sink` as JSONL; gap and
/// corruption notices go to `diag`.
pub fn run_live(
    source: &mut dyn TailSource,
    monitor: &mut LiveMonitor,
    sink: &mut dyn Write,
    diag: &mut dyn Write,
    cfg: &RunConfig,
) -> Result<RunStats, RunError> {
    let mut stats = RunStats::default();
    let mut idle: u32 = 0;
    loop {
        let events = source.poll().map_err(RunError::Poll)?;
        stats.polls += 1;
        let mut quiet = true;
        for event in events {
            // Any arrival — including a gap or a corruption report — is
            // activity: the producer is alive, so the idle clock resets.
            quiet = false;
            if let TailEvent::Corrupt { path, message } = &event {
                let _ = writeln!(diag, "corrupt {}: {message}", path.display());
                continue;
            }
            if let TailEvent::SegmentGap {
                path,
                from_interval,
                to_interval,
                bytes_skipped,
            } = &event
            {
                let _ = writeln!(
                    diag,
                    "gap in {}: intervals {from_interval}..{to_interval} \
                     lost ({bytes_skipped} bytes skipped)",
                    path.display()
                );
            }
            let updates = monitor.handle(event).map_err(RunError::Monitor)?;
            for u in &updates {
                writeln!(sink, "{}", u.jsonl()).map_err(RunError::Sink)?;
                stats.emitted += 1;
            }
        }
        sink.flush().map_err(RunError::Sink)?;
        if quiet {
            if source.finished() {
                return Ok(stats); // the source can never produce again
            }
            idle += 1;
            if cfg.idle_exit.is_some_and(|n| idle >= n) {
                return Ok(stats);
            }
            std::thread::sleep(cfg.poll.max(Duration::from_millis(1)));
        } else {
            idle = 0;
        }
    }
}
