//! The live-resilience gate: a corrupt chunk in a live segment must not
//! kill the session. The tail skips to the next valid chunk, the monitor
//! zero-fills the lost intervals, emits one `"resync"` update, and tags
//! every later verdict `"degraded":true` — while the streaming verdict
//! stays bit-identical to batch inference over the (zero-filled) log the
//! session actually consumed.

use std::path::PathBuf;

use nni_live::{LiveConfig, LiveMonitor, UpdateMode};
use nni_measure::{segment_file_name, CorpusTail, MeasurementSet, SegmentWriter, TailEvent};
use nni_scenario::library::{topology_a_scenario, ExperimentParams, Mechanism};

fn recorded_set(seed: u64) -> MeasurementSet {
    let mut s = topology_a_scenario(ExperimentParams {
        mechanism: Mechanism::Policing(0.2),
        duration_s: 4.0,
        ..ExperimentParams::default()
    });
    s.measurement.warmup_s = Some(1.0);
    s.with_seed(seed).compile().simulate()
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "nni-degraded-test-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn live_session_resyncs_past_segment_corruption_with_degraded_tags() {
    let dir = temp_dir("resync");
    std::fs::create_dir_all(&dir).unwrap();
    let set = recorded_set(11);
    let total = set.log.interval_count();
    assert!(total >= 12, "need room for three chunks");
    let third = total / 3;

    // Spill the whole log as three chunks, then flip one byte in the
    // middle chunk's payload.
    let path = dir.join(segment_file_name(&set.provenance));
    let mut w = SegmentWriter::create(&path, &set).unwrap();
    w.append_intervals(&set.log, 0, third).unwrap();
    let clean = std::fs::read(&path).unwrap().len();
    w.append_intervals(&set.log, third, 2 * third).unwrap();
    w.append_intervals(&set.log, 2 * third, total).unwrap();
    let mut bytes = std::fs::read(&path).unwrap();
    bytes[clean + 12] ^= 0x20;
    std::fs::write(&path, &bytes).unwrap();

    let mut tail = CorpusTail::open(&dir).unwrap();
    let mut monitor = LiveMonitor::new(LiveConfig::default());
    let mut updates = Vec::new();
    let mut gaps = Vec::new();
    for event in tail.poll().unwrap() {
        if let TailEvent::SegmentGap {
            from_interval,
            to_interval,
            ..
        } = &event
        {
            gaps.push((*from_interval, *to_interval));
        }
        updates.extend(monitor.handle(event).unwrap());
    }

    // The corrupt middle chunk became exactly one gap...
    assert_eq!(gaps, vec![(third, 2 * third)]);
    // ...bridged by exactly one resync update at the gap's far edge.
    let resyncs: Vec<_> = updates
        .iter()
        .filter(|u| u.mode == UpdateMode::Resync)
        .collect();
    assert_eq!(resyncs.len(), 1);
    assert_eq!(resyncs[0].interval, 2 * third);
    assert!(resyncs[0].degraded);

    // Updates before the gap are clean; everything from the resync on is
    // tagged degraded, and the stream still reached the end of the log.
    assert_eq!(updates.len(), total - third + 1);
    for u in &updates {
        assert_eq!(u.degraded, u.interval > third, "update at {}", u.interval);
    }
    let last = updates.last().unwrap();
    assert_eq!(last.interval, total);
    assert!(last.degraded);
    assert!(last.jsonl().contains("\"degraded\":true"));
    assert!(resyncs[0].jsonl().contains("\"mode\":\"resync\""));

    // Degraded is degraded, not wrong: the streaming verdict still
    // matches batch inference over the zero-filled log it consumed.
    assert!(monitor.verify_batch().is_empty());
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn gap_on_a_secondary_vantage_marks_the_session_degraded_only() {
    let dir = temp_dir("secondary");
    std::fs::create_dir_all(&dir).unwrap();
    let set = recorded_set(13);
    let total = set.log.interval_count();
    let half = total / 2;

    // Primary vantage: a clean segment. Secondary: same identity from a
    // second file whose middle chunk is corrupt.
    let primary = dir.join(segment_file_name(&set.provenance));
    let mut w = SegmentWriter::create(&primary, &set).unwrap();
    w.append_intervals(&set.log, 0, total).unwrap();

    let secondary = dir.join(format!("vantage2-{}", segment_file_name(&set.provenance)));
    let mut w2 = SegmentWriter::create(&secondary, &set).unwrap();
    w2.append_intervals(&set.log, 0, half).unwrap();
    let clean = std::fs::read(&secondary).unwrap().len();
    w2.append_intervals(&set.log, half, half + 2).unwrap();
    w2.append_intervals(&set.log, half + 2, total).unwrap();
    let mut bytes = std::fs::read(&secondary).unwrap();
    bytes[clean + 12] ^= 0x08;
    std::fs::write(&secondary, &bytes).unwrap();

    let mut tail = CorpusTail::open(&dir).unwrap();
    let mut monitor = LiveMonitor::new(LiveConfig::default());
    let mut updates = Vec::new();
    for event in tail.poll().unwrap() {
        updates.extend(monitor.handle(event).unwrap());
    }

    // The session survived, saw both vantages, and is tagged degraded
    // from the secondary's gap onward.
    let last = updates.last().unwrap();
    assert_eq!(last.vantages, 2);
    assert!(last.degraded);
    assert!(updates
        .iter()
        .all(|u| u.mode != UpdateMode::Resync || u.degraded));
    assert!(monitor.verify_batch().is_empty());
    std::fs::remove_dir_all(&dir).unwrap();
}
