//! Pins the `nni-live` event loop's exit semantics ([`run_live`]):
//!
//! * the idle counter resets on **every** arrival, including
//!   [`TailEvent::SegmentGap`] and [`TailEvent::Corrupt`] — a degrading
//!   stream is not an idle stream, so a monitor under `--idle-exit` keeps
//!   watching while damage reports are still coming in;
//! * a finished remote source ends the loop without waiting out the idle
//!   budget;
//! * a remote relay replay produces **byte-identical** JSONL to a local
//!   directory tail over the same corpus — the remote-monitor guarantee.

use std::collections::VecDeque;
use std::path::PathBuf;
use std::time::Duration;

use nni_live::{run_live, LiveConfig, LiveMonitor, RunConfig, TailSource};
use nni_measure::{
    segment_file_name, CorpusTail, MeasurementSet, RelaySource, RemoteTail, SegmentWriter,
    TailEvent,
};
use nni_scenario::library::{topology_a_scenario, ExperimentParams, Mechanism};

fn recorded_set(seed: u64) -> MeasurementSet {
    let mut s = topology_a_scenario(ExperimentParams {
        mechanism: Mechanism::Policing(0.2),
        duration_s: 4.0,
        ..ExperimentParams::default()
    });
    s.measurement.warmup_s = Some(1.0);
    s.with_seed(seed).compile().simulate()
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "nni-live-loop-test-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A scripted tail: each poll pops the next batch (empty once the script
/// runs dry). Never finishes — exactly like a directory.
struct Script(VecDeque<Vec<TailEvent>>);

impl TailSource for Script {
    fn poll(&mut self) -> std::io::Result<Vec<TailEvent>> {
        Ok(self.0.pop_front().unwrap_or_default())
    }
}

fn quick_cfg(idle_exit: Option<u32>) -> RunConfig {
    RunConfig {
        poll: Duration::from_millis(1),
        idle_exit,
    }
}

#[test]
fn gap_and_corrupt_events_reset_the_idle_counter() {
    let set = recorded_set(31);
    let total = set.log.interval_count();
    assert!(total >= 9, "need room for three slices");
    let (a, b) = (total / 3, 2 * total / 3);
    let path = PathBuf::from("scripted.nniseg");
    let rows = |from: usize, to: usize| -> Vec<(Vec<u64>, Vec<u64>)> {
        (from..to)
            .map(|t| {
                let paths = set.log.path_count();
                (
                    (0..paths)
                        .map(|p| set.log.sent(t, nni_topology::PathId(p)))
                        .collect(),
                    (0..paths)
                        .map(|p| set.log.lost(t, nni_topology::PathId(p)))
                        .collect(),
                )
            })
            .collect()
    };

    // The script: activity, two quiet polls, then a poll carrying ONLY a
    // gap, one more carrying ONLY an unrelated corruption report, a quiet
    // stretch that is one poll short of the idle budget, the resumed
    // intervals, and finally silence. With idle_exit = 3 the loop reaches
    // the resumed intervals only if the gap-only and corrupt-only polls
    // both reset the counter — otherwise it exits during the quiet
    // stretch and the post-gap data is never consumed.
    let script: VecDeque<Vec<TailEvent>> = VecDeque::from(vec![
        vec![
            TailEvent::SegmentHeader {
                path: path.clone(),
                set: set.clone(),
            },
            TailEvent::SegmentIntervals {
                path: path.clone(),
                first_t: 0,
                rows: rows(0, a),
            },
        ],
        vec![],
        vec![],
        vec![TailEvent::SegmentGap {
            path: path.clone(),
            from_interval: a,
            to_interval: b,
            bytes_skipped: 123,
        }],
        vec![],
        vec![],
        vec![TailEvent::Corrupt {
            path: PathBuf::from("other-file.nniset"),
            message: "scripted corruption".into(),
        }],
        vec![],
        vec![],
        vec![TailEvent::SegmentIntervals {
            path: path.clone(),
            first_t: b,
            rows: rows(b, total),
        }],
    ]);
    let polls_scripted = script.len() as u64;

    let mut monitor = LiveMonitor::new(LiveConfig::default());
    let mut sink = Vec::new();
    let mut diag = Vec::new();
    let stats = run_live(
        &mut Script(script),
        &mut monitor,
        &mut sink,
        &mut diag,
        &quick_cfg(Some(3)),
    )
    .expect("loop runs clean");

    // Every scripted batch was consumed, then exactly the idle budget.
    assert_eq!(
        stats.polls,
        polls_scripted + 3,
        "the loop must outlast every damage report before idling out"
    );
    let out = String::from_utf8(sink).unwrap();
    assert!(
        out.contains("\"mode\":\"resync\""),
        "the gap-only poll was handled: {out}"
    );
    let last = out.lines().last().expect("updates emitted");
    assert!(
        last.contains(&format!("\"interval\":{total}")) && last.contains("\"degraded\":true"),
        "the post-gap intervals were consumed: {last}"
    );
    let diag = String::from_utf8(diag).unwrap();
    assert!(diag.contains("gap in scripted.nniseg"), "{diag}");
    assert!(diag.contains("corrupt other-file.nniset"), "{diag}");
    // Degraded is degraded, not wrong.
    assert!(monitor.verify_batch().is_empty());
}

#[test]
fn without_activity_the_loop_exits_after_exactly_the_idle_budget() {
    let mut monitor = LiveMonitor::new(LiveConfig::default());
    let (mut sink, mut diag) = (Vec::new(), Vec::new());
    let stats = run_live(
        &mut Script(VecDeque::new()),
        &mut monitor,
        &mut sink,
        &mut diag,
        &quick_cfg(Some(4)),
    )
    .expect("loop runs clean");
    assert_eq!(stats.polls, 4);
    assert_eq!(stats.emitted, 0);
}

/// Corpus fixture shared by the bit-identity tests: two segments, one of
/// them with a corrupt middle chunk (so the remote replay must exercise
/// the gap/resync path too, not just the happy path).
fn build_corpus(dir: &std::path::Path) -> usize {
    let mut sessions = 0;
    for (seed, corrupt) in [(41, false), (43, true)] {
        let set = recorded_set(seed);
        let total = set.log.interval_count();
        let third = total / 3;
        let path = dir.join(segment_file_name(&set.provenance));
        let mut w = SegmentWriter::create(&path, &set).unwrap();
        w.append_intervals(&set.log, 0, third).unwrap();
        let clean = std::fs::read(&path).unwrap().len();
        w.append_intervals(&set.log, third, 2 * third).unwrap();
        w.append_intervals(&set.log, 2 * third, total).unwrap();
        if corrupt {
            let mut bytes = std::fs::read(&path).unwrap();
            bytes[clean + 20] ^= 0x20; // middle chunk's payload
            std::fs::write(&path, &bytes).unwrap();
        }
        sessions += 1;
    }
    sessions
}

#[test]
fn remote_replay_emits_byte_identical_jsonl_to_a_local_tail() {
    let dir = temp_dir("bit-identity");
    let sessions = build_corpus(&dir);

    // Local: a directory tail, one poll of which sees everything.
    let mut local_monitor = LiveMonitor::new(LiveConfig::default());
    let (mut local_out, mut local_diag) = (Vec::new(), Vec::new());
    let local_stats = run_live(
        &mut CorpusTail::open(&dir).unwrap(),
        &mut local_monitor,
        &mut local_out,
        &mut local_diag,
        &quick_cfg(Some(1)),
    )
    .expect("local run");

    // Remote: the same corpus pumped through the relay protocol into a
    // RemoteTail; the loop ends on the source's own finished signal (a
    // closed connection), with no idle budget at all.
    let mut wire = Vec::new();
    RelaySource::new(&dir).pump(&mut wire).unwrap();
    let mut remote_monitor = LiveMonitor::new(LiveConfig::default());
    let (mut remote_out, mut remote_diag) = (Vec::new(), Vec::new());
    let remote_stats = run_live(
        &mut RemoteTail::from_reader(std::io::Cursor::new(wire)),
        &mut remote_monitor,
        &mut remote_out,
        &mut remote_diag,
        &quick_cfg(None),
    )
    .expect("remote run");

    assert_eq!(
        String::from_utf8(local_out).unwrap(),
        String::from_utf8(remote_out).unwrap(),
        "remote JSONL must be byte-identical to local"
    );
    assert_eq!(local_stats.emitted, remote_stats.emitted);
    assert_eq!(local_monitor.session_count(), sessions);
    assert_eq!(remote_monitor.session_count(), sessions);
    // Both sides saw the same gap; both verdict streams verify against
    // batch inference over what was actually consumed.
    assert!(String::from_utf8(local_diag).unwrap().contains("gap in"));
    assert!(String::from_utf8(remote_diag).unwrap().contains("gap in"));
    assert!(local_monitor.verify_batch().is_empty());
    assert!(remote_monitor.verify_batch().is_empty());
    std::fs::remove_dir_all(&dir).unwrap();
}
