//! The streaming-convergence gate: online inference must land on
//! *bit-identical* verdicts to batch inference — across the curated
//! 14-scenario identity suite AND the 24-scenario randomized invariant
//! population — and the incremental path must actually be incremental:
//! ≥3× faster than re-running a full recompute per closed interval over a
//! 60-interval window, with the advantage proven structurally by the
//! Algorithm 2 evaluation probe, not just by wall clock.
//!
//! This is the suite the dedicated `live-streaming` CI job runs.

use std::sync::Mutex;
use std::time::Instant;

use nni_measure::{interval_eval_count, MeasurementLog, MeasurementSet};
use nni_scenario::library::{identity_suite, topology_a_scenario, ExperimentParams, Mechanism};
use nni_scenario::{
    infer, infer_incremental, InferenceConfig, Scenario, ScenarioGen, StreamingInference,
};
use nni_topology::PathId;

/// The Algorithm 2 evaluation probe is process-global, so every test in
/// this binary serializes on it: concurrent inference in another test
/// thread must not pollute an eval-count delta (and must not skew the
/// best-of-two timings).
static EVAL_GUARD: Mutex<()> = Mutex::new(());

fn invariant_seed() -> u64 {
    std::env::var("NNI_INVARIANT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42)
}

/// The same population the invariants and process-identity harnesses
/// check: 16 full-generator scenarios plus 8 forced-neutral controls.
fn random_population() -> Vec<Scenario> {
    let seed = invariant_seed();
    let mut pop = ScenarioGen::new(seed).scenarios(16);
    pop.extend(ScenarioGen::neutral_only(seed.wrapping_add(0x9E37_79B9)).scenarios(8));
    pop
}

fn assert_streams_to_batch(scenario: &Scenario) {
    let set = scenario.compile().simulate();
    let cfg = InferenceConfig::of(scenario);
    let batch = infer(&set, &cfg);
    let streamed = infer_incremental(&set, &cfg);
    assert_eq!(
        streamed.fingerprint(),
        batch.fingerprint(),
        "streaming verdict diverged from batch on {:?} (seed {})",
        scenario.name,
        set.provenance.seed,
    );
    assert_eq!(streamed, batch);
}

#[test]
fn identity_suite_streams_to_batch_fingerprints() {
    let _guard = EVAL_GUARD.lock().unwrap();
    let suite = identity_suite();
    assert_eq!(suite.len(), 14, "the curated identity suite");
    for scenario in &suite {
        assert_streams_to_batch(scenario);
    }
}

#[test]
fn randomized_population_streams_to_batch_fingerprints() {
    let _guard = EVAL_GUARD.lock().unwrap();
    let population = random_population();
    assert_eq!(population.len(), 24);
    for scenario in &population {
        assert_streams_to_batch(scenario);
    }
}

/// A policing run with exactly 60 post-warmup intervals — the window the
/// speedup gate is specified over.
fn sixty_interval_set() -> (MeasurementSet, InferenceConfig) {
    let mut s = topology_a_scenario(ExperimentParams {
        mechanism: Mechanism::Policing(0.2),
        duration_s: 7.0,
        ..ExperimentParams::default()
    });
    s.measurement.warmup_s = Some(1.0);
    let cfg = InferenceConfig::of(&s);
    let set = s.compile().simulate();
    assert_eq!(
        set.log.interval_count(),
        60,
        "the gate's 60-interval window"
    );
    (set, cfg)
}

/// Batch inference over the first `through` intervals of `set`.
fn prefix_infer(set: &MeasurementSet, through: usize, cfg: &InferenceConfig) -> u64 {
    let mut prefix = MeasurementLog::new(set.log.path_count(), set.log.interval_s());
    for t in 0..through {
        for p in 0..set.log.path_count() {
            prefix.record_sent(t, PathId(p), set.log.sent(t, PathId(p)));
            prefix.record_lost(t, PathId(p), set.log.lost(t, PathId(p)));
        }
    }
    let prefix_set = MeasurementSet {
        topology: set.topology.clone(),
        classes: set.classes.clone(),
        log: prefix,
        provenance: set.provenance.clone(),
    };
    infer(&prefix_set, cfg).fingerprint()
}

#[test]
fn incremental_recluster_is_at_least_3x_faster_than_full_recompute() {
    let _guard = EVAL_GUARD.lock().unwrap();
    let (set, cfg) = sixty_interval_set();
    let t_max = set.log.interval_count();

    // Best-of-two timings on each side: a single descheduling blip on a
    // loaded CI runner must not decide a 3×-floor assertion that actually
    // sits far above it.

    // Naive online inference: a full batch recompute at every watermark.
    let mut naive = None;
    let mut naive_elapsed = None;
    let mut naive_evals = 0;
    for _ in 0..2 {
        let evals0 = interval_eval_count();
        let t0 = Instant::now();
        let fps: Vec<u64> = (1..=t_max).map(|t| prefix_infer(&set, t, &cfg)).collect();
        let elapsed = t0.elapsed();
        naive_evals = interval_eval_count() - evals0;
        naive.get_or_insert(fps);
        naive_elapsed =
            Some(naive_elapsed.map_or(elapsed, |b: std::time::Duration| b.min(elapsed)));
    }
    let (naive, naive_elapsed) = (naive.unwrap(), naive_elapsed.unwrap());

    // Incremental: fold each interval once, re-run only the decision half.
    let mut inc = None;
    let mut inc_elapsed = None;
    let mut inc_evals = 0;
    for _ in 0..2 {
        let evals0 = interval_eval_count();
        let t0 = Instant::now();
        let mut live = StreamingInference::new(&set.topology, set.provenance.seed, &cfg);
        let fps: Vec<u64> = (1..=t_max)
            .map(|t| {
                live.advance(&set.log, t);
                live.verdict().fingerprint()
            })
            .collect();
        let elapsed = t0.elapsed();
        inc_evals = interval_eval_count() - evals0;
        inc.get_or_insert(fps);
        inc_elapsed = Some(inc_elapsed.map_or(elapsed, |b: std::time::Duration| b.min(elapsed)));
    }
    let (inc, inc_elapsed) = (inc.unwrap(), inc_elapsed.unwrap());

    // Same verdict at every watermark first — speed claims over different
    // results are void.
    assert_eq!(inc, naive, "per-watermark verdicts must agree exactly");

    // Structural proof: the naive side pays T evaluations per group at
    // watermark T (T·(T+1)/2 = 1830 per group over the window); the
    // incremental side pays exactly one per interval per group.
    assert_eq!(
        naive_evals * 2,
        inc_evals * (t_max as u64 + 1),
        "naive recompute must cost T(T+1)/2 evals per group vs T incremental"
    );

    assert!(
        inc_elapsed * 3 <= naive_elapsed,
        "incremental re-clustering must be ≥3× faster: \
         naive {naive_elapsed:?} vs incremental {inc_elapsed:?}"
    );
    println!(
        "60-interval window: naive {naive_elapsed:?} ({naive_evals} evals), \
         incremental {inc_elapsed:?} ({inc_evals} evals, {:.1}×)",
        naive_elapsed.as_secs_f64() / inc_elapsed.as_secs_f64()
    );
}
