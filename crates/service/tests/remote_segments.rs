//! The remote-monitor gate: `nni-serviced --serve-segments` must stream a
//! draining spool's live `.nniseg` traffic to a connected
//! [`RemoteTail`](nni_measure::RemoteTail) such that the remote replay is
//! bit-identical to what a local [`CorpusTail`](nni_measure::CorpusTail)
//! reads off the corpus directory — and to the original simulation.

use std::io::BufRead;
use std::net::{SocketAddr, TcpListener};
use std::path::PathBuf;
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

use nni_measure::{MeasurementLog, RemoteTail, TailEvent};
use nni_scenario::library::{topology_a_scenario, ExperimentParams};
use nni_service::{run_daemon, spawn_segment_server, DaemonConfig, Spool};
use nni_topology::PathId;

fn worker_bin() -> &'static str {
    env!("CARGO_BIN_EXE_nni-worker")
}

fn temp_spool(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "nni-remote-seg-test-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Replays header + interval events into a log, panicking on anything a
/// clean stream must not contain.
fn reassemble(
    events: &[TailEvent],
) -> (Option<nni_measure::MeasurementSet>, Option<MeasurementLog>) {
    let mut header = None;
    let mut log: Option<MeasurementLog> = None;
    for e in events {
        match e {
            TailEvent::SegmentHeader { set, .. } => {
                log = Some(MeasurementLog::new(
                    set.log.path_count(),
                    set.log.interval_s(),
                ));
                header = Some(set.clone());
            }
            TailEvent::SegmentIntervals { first_t, rows, .. } => {
                let log = log.as_mut().expect("header precedes intervals");
                for (i, (sent, lost)) in rows.iter().enumerate() {
                    for (p, (&s, &l)) in sent.iter().zip(lost).enumerate() {
                        log.record_sent(first_t + i, PathId(p), s);
                        log.record_lost(first_t + i, PathId(p), l);
                    }
                }
            }
            other => panic!("unexpected event on a clean stream: {other:?}"),
        }
    }
    (header, log)
}

#[test]
fn remote_tail_replays_a_draining_spool_bit_identically() {
    let spool_dir = temp_spool("inproc");
    let spool = Spool::open(&spool_dir).expect("spool opens");
    let scenario = topology_a_scenario(ExperimentParams {
        duration_s: 4.0,
        ..ExperimentParams::default()
    });
    spool.submit(&scenario.with_seed(21)).expect("submit");

    // Bind the relay ourselves (port 0, race-free) and point a remote
    // tail at it *before* the daemon runs: the connection must see the
    // segment grow, not just the finished file.
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("local addr");
    spawn_segment_server(
        listener,
        spool.corpus_dir().to_path_buf(),
        Duration::from_millis(5),
    );
    let mut remote = RemoteTail::connect(addr).expect("connect");

    let cfg = DaemonConfig {
        worker_bin: Some(PathBuf::from(worker_bin())),
        follow: true,
        ..DaemonConfig::drain(&spool_dir)
    };
    let summary = run_daemon(&cfg).expect("daemon drains");
    assert_eq!(summary.jobs_done, 1);

    // Collect remotely until the full log has crossed the wire.
    let want = scenario.with_seed(21).compile().simulate();
    let deadline = Instant::now() + Duration::from_secs(60);
    let mut events = Vec::new();
    loop {
        events.extend(remote.poll().expect("remote poll"));
        let (_, log) = reassemble(&events);
        if log.as_ref() == Some(&want.log) {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "remote replay incomplete after 60s: {} events",
            events.len()
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    let (header, _) = reassemble(&events);
    assert_eq!(header.expect("header seen").provenance, want.provenance);

    // And the remote stream is exactly what a local tail reads.
    let mut local_tail = nni_measure::CorpusTail::open(spool.corpus_dir()).expect("local tail");
    let local = local_tail.poll().expect("local poll");
    let (lh, ll) = reassemble(&local);
    assert_eq!(lh.expect("local header").provenance, want.provenance);
    assert_eq!(ll.expect("local log"), want.log);
    std::fs::remove_dir_all(&spool_dir).expect("cleanup");
}

#[test]
fn serviced_binary_announces_and_serves_segments_over_a_socket() {
    let spool_dir = temp_spool("bin");
    let spool = Spool::open(&spool_dir).expect("spool opens");
    let scenario = topology_a_scenario(ExperimentParams {
        duration_s: 4.0,
        ..ExperimentParams::default()
    });
    spool.submit(&scenario.with_seed(23)).expect("submit");

    // Follow mode, no --drain: the daemon keeps serving after the queue
    // empties, so the relay is guaranteed alive until we kill it.
    let mut daemon = Command::new(env!("CARGO_BIN_EXE_nni-serviced"))
        .arg(&spool_dir)
        .args([
            "--follow",
            "--serve-segments",
            "127.0.0.1:0",
            "--poll-ms",
            "20",
        ])
        .args(["--worker-bin", worker_bin()])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("daemon spawns");
    let stdout = daemon.stdout.take().expect("piped stdout");
    let mut line = String::new();
    std::io::BufReader::new(stdout)
        .read_line(&mut line)
        .expect("announcement line");
    let addr: SocketAddr = line
        .strip_prefix("serving-segments ")
        .unwrap_or_else(|| panic!("bad announcement: {line:?}"))
        .trim()
        .parse()
        .expect("announced address parses");

    let want = scenario.with_seed(23).compile().simulate();
    let mut remote = RemoteTail::connect(addr).expect("connect");
    let deadline = Instant::now() + Duration::from_secs(60);
    let mut events = Vec::new();
    let complete = loop {
        match remote.poll() {
            Ok(batch) => events.extend(batch),
            Err(e) => panic!("remote poll failed: {e}"),
        }
        let (_, log) = reassemble(&events);
        if log.as_ref() == Some(&want.log) {
            break true;
        }
        if Instant::now() >= deadline {
            break false;
        }
        std::thread::sleep(Duration::from_millis(10));
    };
    let _ = daemon.kill();
    let _ = daemon.wait();
    assert!(complete, "remote replay incomplete after 60s");
    let (header, _) = reassemble(&events);
    assert_eq!(header.expect("header seen").provenance, want.provenance);
    std::fs::remove_dir_all(&spool_dir).expect("cleanup");
}
