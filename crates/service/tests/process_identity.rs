//! The three-way identity gate: for the same scenarios, the process
//! executor's outcomes are bit-identical to the serial and sharded
//! executors' — across the curated 14-scenario identity suite AND the
//! 24-scenario randomized invariant population. This is the suite the
//! dedicated `process-identity` CI job runs.
//!
//! The worker binary is the one cargo just built for this crate
//! (`CARGO_BIN_EXE_nni-worker`), so the gate always tests the code under
//! review, never a stale installed binary.

use nni_scenario::library::identity_suite;
use nni_scenario::{
    run_sets, Executor, ProcessExecutor, Scenario, ScenarioGen, SerialExecutor, ShardedExecutor,
    SweepSet,
};

fn process_pool(workers: usize) -> ProcessExecutor {
    ProcessExecutor::new(workers).with_worker_bin(env!("CARGO_BIN_EXE_nni-worker"))
}

fn invariant_seed() -> u64 {
    std::env::var("NNI_INVARIANT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42)
}

/// The same population `crates/scenario/tests/invariants.rs` checks: 16
/// full-generator scenarios plus 8 forced-neutral controls.
fn random_population() -> Vec<Scenario> {
    let seed = invariant_seed();
    let mut pop = ScenarioGen::new(seed).scenarios(16);
    pop.extend(ScenarioGen::neutral_only(seed.wrapping_add(0x9E37_79B9)).scenarios(8));
    pop
}

#[test]
fn identity_suite_is_three_way_bit_identical() {
    let experiments: Vec<_> = identity_suite().iter().map(Scenario::compile).collect();
    assert_eq!(experiments.len(), 14, "the curated identity suite");

    let serial = SerialExecutor.execute(&experiments);
    let sharded = ShardedExecutor::new(3).execute(&experiments);
    assert_eq!(serial, sharded, "sharded must match serial");

    let (process, stats) = process_pool(2)
        .try_execute(&experiments)
        .expect("process batch succeeds");
    assert_eq!(
        serial, process,
        "process outcomes must be bit-identical to serial, in input order"
    );
    assert_eq!(
        (stats.respawns, stats.retries),
        (0, 0),
        "a healthy pool neither crashes nor retries"
    );
}

#[test]
fn randomized_population_is_three_way_bit_identical() {
    // Same sweep-set surface as the invariants harness: identity must hold
    // on batched sets (compile + batch + re-slice), not just single runs.
    let sets: Vec<SweepSet> = random_population()
        .chunks(6)
        .enumerate()
        .map(|(i, chunk)| {
            SweepSet::from_points(
                format!("random set {i}"),
                "member",
                chunk.iter().map(|s| (s.name.clone(), s.clone())),
            )
        })
        .collect();
    assert_eq!(sets.iter().map(SweepSet::len).sum::<usize>(), 24);

    let serial = run_sets(&sets, &SerialExecutor);
    let sharded = run_sets(&sets, &ShardedExecutor::new(3));
    let process = run_sets(&sets, &process_pool(2));
    assert_eq!(serial, sharded, "sharded must match serial");
    assert_eq!(
        serial, process,
        "process sweep-set outcomes must be bit-identical to serial"
    );
}

#[test]
fn acquired_measurement_sets_are_identical_too() {
    // The daemon path goes through `acquire` (measurement sets spilled to a
    // corpus), so identity must hold on that surface as well.
    let scenarios: Vec<Scenario> = identity_suite().into_iter().take(4).collect();
    let experiments: Vec<_> = scenarios.iter().map(Scenario::compile).collect();
    let serial = SerialExecutor.acquire(&experiments);
    let process = process_pool(2).acquire(&experiments);
    assert_eq!(serial, process, "measurement sets must match bit for bit");
}
