//! The identity gate: for the same scenarios, the process executor's
//! outcomes are bit-identical to the serial and sharded executors' —
//! across the curated 14-scenario identity suite AND the 24-scenario
//! randomized invariant population, over every worker transport (stdio
//! pipes, TCP connect-back, and dial-out to `--listen` workers). This is
//! the suite the dedicated `process-identity` and `socket-identity` CI
//! jobs run (the latter filters on `socket`).
//!
//! The worker binary is the one cargo just built for this crate
//! (`CARGO_BIN_EXE_nni-worker`), so the gate always tests the code under
//! review, never a stale installed binary.

use std::io::BufRead;
use std::net::SocketAddr;
use std::process::{Child, Command, Stdio};

use nni_scenario::library::identity_suite;
use nni_scenario::{
    run_sets, Executor, ProcessExecutor, Scenario, ScenarioGen, SerialExecutor, ShardedExecutor,
    SweepSet, WorkerTransport,
};

fn process_pool(workers: usize) -> ProcessExecutor {
    ProcessExecutor::new(workers).with_worker_bin(env!("CARGO_BIN_EXE_nni-worker"))
}

fn tcp_pool(workers: usize) -> ProcessExecutor {
    process_pool(workers).with_transport(WorkerTransport::Tcp)
}

/// Spawns one standalone `nni-worker --listen 127.0.0.1:0` and parses the
/// bound address off its announcement line.
fn listen_worker() -> (Child, SocketAddr) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_nni-worker"))
        .args(["--listen", "127.0.0.1:0"])
        .stdout(Stdio::piped())
        .spawn()
        .expect("listen worker spawns");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut line = String::new();
    std::io::BufReader::new(stdout)
        .read_line(&mut line)
        .expect("announcement line");
    let addr = line
        .strip_prefix("listening ")
        .unwrap_or_else(|| panic!("bad announcement: {line:?}"))
        .trim()
        .parse()
        .expect("announced address parses");
    (child, addr)
}

fn invariant_seed() -> u64 {
    std::env::var("NNI_INVARIANT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42)
}

/// The same population `crates/scenario/tests/invariants.rs` checks: 16
/// full-generator scenarios plus 8 forced-neutral controls.
fn random_population() -> Vec<Scenario> {
    let seed = invariant_seed();
    let mut pop = ScenarioGen::new(seed).scenarios(16);
    pop.extend(ScenarioGen::neutral_only(seed.wrapping_add(0x9E37_79B9)).scenarios(8));
    pop
}

#[test]
fn identity_suite_is_three_way_bit_identical() {
    let experiments: Vec<_> = identity_suite().iter().map(Scenario::compile).collect();
    assert_eq!(experiments.len(), 14, "the curated identity suite");

    let serial = SerialExecutor.execute(&experiments);
    let sharded = ShardedExecutor::new(3).execute(&experiments);
    assert_eq!(serial, sharded, "sharded must match serial");

    let (process, stats) = process_pool(2)
        .try_execute(&experiments)
        .expect("process batch succeeds");
    assert_eq!(
        serial, process,
        "process outcomes must be bit-identical to serial, in input order"
    );
    assert_eq!(
        (stats.respawns, stats.retries),
        (0, 0),
        "a healthy pool neither crashes nor retries"
    );
}

#[test]
fn randomized_population_is_three_way_bit_identical() {
    // Same sweep-set surface as the invariants harness: identity must hold
    // on batched sets (compile + batch + re-slice), not just single runs.
    let sets: Vec<SweepSet> = random_population()
        .chunks(6)
        .enumerate()
        .map(|(i, chunk)| {
            SweepSet::from_points(
                format!("random set {i}"),
                "member",
                chunk.iter().map(|s| (s.name.clone(), s.clone())),
            )
        })
        .collect();
    assert_eq!(sets.iter().map(SweepSet::len).sum::<usize>(), 24);

    let serial = run_sets(&sets, &SerialExecutor);
    let sharded = run_sets(&sets, &ShardedExecutor::new(3));
    let process = run_sets(&sets, &process_pool(2));
    assert_eq!(serial, sharded, "sharded must match serial");
    assert_eq!(
        serial, process,
        "process sweep-set outcomes must be bit-identical to serial"
    );
}

#[test]
fn identity_suite_is_bit_identical_over_tcp_sockets() {
    // The socket leg of the gate: same jobs, same answers, whether the
    // frames cross stdio pipes or a loopback TCP connection.
    let experiments: Vec<_> = identity_suite().iter().map(Scenario::compile).collect();
    let serial = SerialExecutor.execute(&experiments);

    let (tcp, stats) = tcp_pool(2)
        .try_execute(&experiments)
        .expect("tcp batch succeeds");
    assert_eq!(
        serial, tcp,
        "socket-transport outcomes must be bit-identical to serial"
    );
    assert_eq!(
        (stats.respawns, stats.retries),
        (0, 0),
        "a healthy socket pool neither crashes nor retries"
    );
}

#[test]
fn randomized_population_is_bit_identical_over_tcp_sockets() {
    let sets: Vec<SweepSet> = random_population()
        .chunks(6)
        .enumerate()
        .map(|(i, chunk)| {
            SweepSet::from_points(
                format!("random socket set {i}"),
                "member",
                chunk.iter().map(|s| (s.name.clone(), s.clone())),
            )
        })
        .collect();
    let serial = run_sets(&sets, &SerialExecutor);
    let tcp = run_sets(&sets, &tcp_pool(2));
    assert_eq!(
        serial, tcp,
        "socket sweep-set outcomes must be bit-identical to serial"
    );
}

#[test]
fn identity_holds_against_standalone_listen_socket_workers() {
    // Dial-out mode: the pool owns no worker processes at all — it
    // connects to already-running `nni-worker --listen` endpoints, the
    // fleet-of-boxes shape. Identity must survive that too.
    let (mut w1, a1) = listen_worker();
    let (mut w2, a2) = listen_worker();
    let experiments: Vec<_> = identity_suite()
        .iter()
        .take(6)
        .map(Scenario::compile)
        .collect();
    let serial = SerialExecutor.execute(&experiments);
    let remote = ProcessExecutor::new(2)
        .with_transport(WorkerTransport::Remote(vec![a1, a2]))
        .try_execute(&experiments);
    let _ = w1.kill();
    let _ = w2.kill();
    let _ = w1.wait();
    let _ = w2.wait();
    let (remote, _) = remote.expect("remote batch succeeds");
    assert_eq!(
        serial, remote,
        "dial-out worker outcomes must be bit-identical to serial"
    );
}

#[test]
fn acquired_measurement_sets_are_identical_too() {
    // The daemon path goes through `acquire` (measurement sets spilled to a
    // corpus), so identity must hold on that surface as well.
    let scenarios: Vec<Scenario> = identity_suite().into_iter().take(4).collect();
    let experiments: Vec<_> = scenarios.iter().map(Scenario::compile).collect();
    let serial = SerialExecutor.acquire(&experiments);
    let process = process_pool(2).acquire(&experiments);
    assert_eq!(serial, process, "measurement sets must match bit for bit");
}
