//! The chaos gate: the seed-42 randomized scenario population run under a
//! randomized [`FaultPlan`] — worker hangs, slow answers, aborts before
//! and after the result frame, torn frames, bit-flipped checksums, poison
//! jobs — must end with every completed job bit-identical to a serial
//! run and the quarantine set *exactly* equal to the plan's predicted
//! poison set. Fault draws key on the job token (measurement fingerprint
//! + seed), so the test can compute that prediction up front.
//!
//! The plan travels per-executor via [`ProcessExecutor::with_env`] /
//! [`DaemonConfig::worker_env`], never the test process's own
//! environment, so these tests run in parallel with everything else.
//!
//! `NNI_FAULT_SEED` reseeds both the population and the plan (CI pins 42).
//! The full storm runs twice — over stdio pipes and over loopback TCP —
//! because fault classification must not depend on the transport.

use std::path::PathBuf;
use std::time::Duration;

use nni_scenario::{
    Executor, FaultPlan, ProcessError, ProcessExecutor, Scenario, ScenarioGen, SerialExecutor,
    WorkerFailure, FAULT_PLAN_ENV,
};
use nni_service::{fault_token, reason_path_for, run_daemon, DaemonConfig, Spool};

fn worker_bin() -> &'static str {
    env!("CARGO_BIN_EXE_nni-worker")
}

fn fault_seed() -> u64 {
    std::env::var("NNI_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42)
}

/// The same population the identity and invariants harnesses check: 16
/// full-generator scenarios plus 8 forced-neutral controls.
fn chaos_population() -> Vec<Scenario> {
    let seed = fault_seed();
    let mut pop = ScenarioGen::new(seed).scenarios(16);
    pop.extend(ScenarioGen::neutral_only(seed.wrapping_add(0x9E37_79B9)).scenarios(8));
    pop
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "nni-chaos-test-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

/// A cheap single scenario for the targeted failure-mode tests.
fn quick_scenario() -> Scenario {
    use nni_scenario::library::{topology_a_scenario, ExperimentParams};
    topology_a_scenario(ExperimentParams {
        duration_s: 1.0,
        ..ExperimentParams::default()
    })
}

#[test]
fn hung_worker_is_killed_respawned_and_the_job_retried() {
    let state = temp_dir("hang-state");
    let scenario = quick_scenario();
    let plan = FaultPlan {
        hang: 1.0,
        hang_ms: 60_000,
        state: Some(state.clone()), // one-shot: the retry runs clean
        ..FaultPlan::seeded(fault_seed())
    };
    let exec = ProcessExecutor::new(1)
        .with_worker_bin(worker_bin())
        .with_job_timeout(Duration::from_millis(2_500))
        .with_backoff(Duration::from_millis(5), Duration::from_millis(20))
        .with_env(FAULT_PLAN_ENV, plan.to_env());
    let refs = [&scenario];
    let (reports, stats) = exec.try_reports(&refs).expect("retry lands after the kill");
    assert_eq!(reports[0], scenario.compile().emulate());
    assert!(stats.timeouts >= 1, "the hang must be seen: {stats:?}");
    assert!(stats.respawns >= 1, "the worker must be killed: {stats:?}");
    std::fs::remove_dir_all(&state).unwrap();
}

#[test]
fn exhausted_hang_budget_surfaces_a_typed_hang_failure() {
    let scenario = quick_scenario();
    let plan = FaultPlan {
        hang: 1.0,
        hang_ms: 60_000,
        state: None, // fire on every attempt: exhaust the budget
        ..FaultPlan::seeded(fault_seed())
    };
    let exec = ProcessExecutor::new(1)
        .with_worker_bin(worker_bin())
        .with_max_attempts(2)
        .with_job_timeout(Duration::from_millis(400))
        .with_backoff(Duration::from_millis(5), Duration::from_millis(20))
        .with_env(FAULT_PLAN_ENV, plan.to_env());
    match exec.try_reports(&[&scenario]).unwrap_err() {
        ProcessError::JobFailed {
            job,
            attempts,
            last,
        } => {
            assert_eq!((job, attempts), (0, 2));
            assert!(
                matches!(last, WorkerFailure::Hang { timeout_ms: 400 }),
                "a hang must be reported as one, got {last}"
            );
        }
        other => panic!("expected JobFailed, got {other}"),
    }
}

#[test]
fn clean_eof_mid_batch_is_distinguished_from_a_hang() {
    let scenario = quick_scenario();
    let plan = FaultPlan {
        crash_before: 1.0, // abort before answering: clean EOF, no bytes
        state: None,
        ..FaultPlan::seeded(fault_seed())
    };
    let exec = ProcessExecutor::new(1)
        .with_worker_bin(worker_bin())
        .with_max_attempts(3)
        .with_backoff(Duration::from_millis(5), Duration::from_millis(20))
        .with_env(FAULT_PLAN_ENV, plan.to_env());
    match exec.try_reports(&[&scenario]).unwrap_err() {
        ProcessError::JobFailed {
            job,
            attempts,
            last,
        } => {
            assert_eq!((job, attempts), (0, 3));
            assert!(
                matches!(last, WorkerFailure::CleanEof),
                "an exit without an answer is a clean EOF, not a hang: {last}"
            );
        }
        other => panic!("expected JobFailed, got {other}"),
    }
}

/// The full fault storm over one worker transport. The fault hooks live
/// in the worker's serve loop, which reads and writes a generic stream —
/// so every failure mode (torn frames, bit flips, crashes, hangs) must
/// classify identically whether the frames cross pipes or a socket.
fn storm(tag: &str, transport: nni_scenario::WorkerTransport) {
    let scenarios = chaos_population();
    let refs: Vec<&Scenario> = scenarios.iter().collect();

    // The plan is known before the storm: predict the poison set.
    let state = temp_dir(&format!("storm-state-{tag}"));
    let plan = FaultPlan {
        crash_before: 0.12,
        crash_after: 0.12,
        torn: 0.12,
        bitflip: 0.12,
        slow: 0.10,
        slow_ms: 25,
        hang: 0.08,
        hang_ms: 60_000,
        poison: 0.12,
        state: Some(state.clone()),
        ..FaultPlan::seeded(fault_seed())
    };
    let poison: Vec<usize> = scenarios
        .iter()
        .enumerate()
        .filter(|(_, s)| plan.poisoned(fault_token(s)))
        .map(|(i, _)| i)
        .collect();
    if fault_seed() == 42 {
        assert!(
            !poison.is_empty() && poison.len() < scenarios.len(),
            "seed 42 must poison a strict subset: {poison:?}"
        );
    }

    let serial =
        SerialExecutor.execute(&scenarios.iter().map(Scenario::compile).collect::<Vec<_>>());

    let exec = ProcessExecutor::new(4)
        .with_worker_bin(worker_bin())
        .with_transport(transport)
        .with_max_attempts(6) // transients fire once: never quarantined
        .with_job_timeout(Duration::from_secs(10))
        .with_backoff(Duration::from_millis(5), Duration::from_millis(50))
        .with_env(FAULT_PLAN_ENV, plan.to_env());
    let outcome = exec.try_batch(&refs).expect("the pool survives the storm");

    // Quarantined exactly the predicted poison set — no transient was
    // promoted to poison, no poison slipped through.
    let quarantined: Vec<usize> = outcome.quarantined.iter().map(|q| q.job).collect();
    assert_eq!(quarantined, poison, "quarantine must equal the poison set");
    for q in &outcome.quarantined {
        assert_eq!(q.attempts, 6, "poison must exhaust the budget: {q:?}");
        assert!(
            matches!(q.last, WorkerFailure::CleanEof | WorkerFailure::Io(_)),
            "poison aborts before answering: {:?}",
            q.last
        );
    }
    assert_eq!(outcome.stats.quarantined, poison.len());

    // Every completed job is bit-identical to its serial outcome.
    assert_eq!(outcome.reports.len(), scenarios.len());
    for (i, report) in outcome.reports.iter().enumerate() {
        match report {
            Some(r) => assert_eq!(
                r, &serial[i].report,
                "chaos must not change completed outcomes (job {i})"
            ),
            None => assert!(poison.contains(&i), "only poison may be missing ({i})"),
        }
    }
    std::fs::remove_dir_all(&state).unwrap();
}

#[test]
fn chaos_population_is_bit_identical_and_quarantines_exactly_the_poison_set() {
    storm("stdio", nni_scenario::WorkerTransport::Stdio);
}

#[test]
fn chaos_storm_over_tcp_sockets_is_bit_identical_too() {
    storm("tcp", nni_scenario::WorkerTransport::Tcp);
}

#[test]
fn daemon_parks_poison_jobs_and_drains_the_rest() {
    let scenarios = chaos_population();
    // Pick a plan (deterministically) that poisons some of the population
    // but not all of it, whatever the seed.
    let state = temp_dir("daemon-state");
    let mut plan = FaultPlan {
        torn: 0.15,
        bitflip: 0.15,
        state: Some(state.clone()),
        ..FaultPlan::seeded(fault_seed())
    };
    let mut poisoned = Vec::new();
    for rate in [0.12, 0.25, 0.5, 0.75] {
        plan.poison = rate;
        poisoned = scenarios
            .iter()
            .filter(|s| plan.poisoned(fault_token(s)))
            .cloned()
            .collect();
        if !poisoned.is_empty() && poisoned.len() < scenarios.len() {
            break;
        }
    }
    assert!(!poisoned.is_empty() && poisoned.len() < scenarios.len());
    let clean: Vec<Scenario> = scenarios
        .iter()
        .filter(|s| !plan.poisoned(fault_token(s)))
        .take(3)
        .cloned()
        .collect();
    let poisoned: Vec<Scenario> = poisoned.into_iter().take(2).collect();

    let spool_dir = temp_dir("daemon-spool");
    let spool = Spool::open(&spool_dir).expect("spool opens");
    for s in clean.iter().chain(&poisoned) {
        spool.submit(s).expect("submit");
    }

    let cfg = DaemonConfig {
        worker_bin: Some(PathBuf::from(worker_bin())),
        worker_env: vec![(FAULT_PLAN_ENV.to_string(), plan.to_env())],
        max_attempts: 2,
        job_retries: 2,
        retry_base_ms: 5,
        retry_cap_ms: 25,
        ..DaemonConfig::drain(&spool_dir)
    };
    let summary = run_daemon(&cfg).expect("poison parks; the daemon lives");

    // The offenders are parked with machine-readable reasons; everything
    // else drained in the same run.
    assert_eq!(summary.jobs_done, clean.len(), "clean jobs all complete");
    assert_eq!(summary.parked, poisoned.len(), "poison jobs all park");
    assert!(summary.quarantined >= summary.parked);
    let counts = spool.counts().expect("counts");
    assert_eq!(
        (counts.incoming, counts.running, counts.done, counts.failed),
        (0, 0, clean.len(), poisoned.len())
    );
    let failed_dir = spool.root().join("failed");
    for entry in std::fs::read_dir(&failed_dir).expect("failed/") {
        let path = entry.expect("entry").path();
        if path.extension().is_some_and(|e| e == "job") {
            let reason =
                std::fs::read_to_string(reason_path_for(&path)).expect("reason file exists");
            assert!(reason.contains("\"kind\":\"quarantined\""), "got: {reason}");
        }
    }
    let verdicts = std::fs::read_to_string(spool.verdicts_path()).expect("verdicts");
    assert!(verdicts
        .lines()
        .any(|l| l.contains("\"type\":\"requeued\"")));
    assert!(verdicts.lines().any(|l| l.contains("\"type\":\"parked\"")));
    std::fs::remove_dir_all(&spool_dir).unwrap();
    std::fs::remove_dir_all(&state).unwrap();
}
