//! The ISP-scale leg of the executor-identity gate: a *generated*
//! topology with ≥200 links and ≥1000 measured paths simulates and
//! infers end-to-end through the serial, sharded, and process executors
//! with bit-identical outcomes.
//!
//! Shipping this scenario through the process pool also exercises the
//! scenario wire codec at scale — a 240-link, 1056-path spec round-trips
//! per job, not just the hand-built paper topologies.

use nni_scenario::{seed_sweep, Executor, ProcessExecutor, SerialExecutor, ShardedExecutor};
use nni_topogen::{isp_scenario, IspParams};

fn invariant_seed() -> u64 {
    std::env::var("NNI_INVARIANT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42)
}

#[test]
fn generated_isp_topology_is_three_way_bit_identical() {
    let params = IspParams::isp_200link();
    let scenario = isp_scenario(&params, 2.0, invariant_seed());
    assert!(scenario.topology.link_count() >= 200, "headline link floor");
    assert!(
        scenario.topology.path_count() >= 1000,
        "headline path floor"
    );

    let experiments = seed_sweep(&scenario, &[1, 2]);
    let serial = SerialExecutor.execute(&experiments);
    let sharded = ShardedExecutor::new(2).execute(&experiments);
    assert_eq!(serial, sharded, "sharded must match serial at ISP scale");

    let pool = ProcessExecutor::new(2).with_worker_bin(env!("CARGO_BIN_EXE_nni-worker"));
    let (process, stats) = pool
        .try_execute(&experiments)
        .expect("process batch succeeds");
    assert_eq!(
        serial, process,
        "process outcomes must be bit-identical to serial at ISP scale"
    );
    assert_eq!((stats.respawns, stats.retries), (0, 0), "healthy pool");

    // The neutral generated network reads as neutral on every leg.
    for outcome in &serial {
        assert!(!outcome.flagged_nonneutral);
        assert!(outcome.correct);
    }
}
