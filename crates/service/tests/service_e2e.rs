//! End-to-end service tests: submit → daemon drain → corpus + verdicts,
//! the decode-error exit contract of every binary, and the `nni-servicectl`
//! command surface.

use std::fs;
use std::io::Write;
use std::path::PathBuf;
use std::process::{Command, Stdio};

use nni_measure::Corpus;
use nni_scenario::library::{identity_suite, topology_a_scenario, ExperimentParams};
use nni_service::{reason_path_for, run_daemon, DaemonConfig, Spool};

fn worker_bin() -> &'static str {
    env!("CARGO_BIN_EXE_nni-worker")
}

fn temp_spool_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "nni-e2e-test-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn drain_config(spool_dir: &PathBuf) -> DaemonConfig {
    DaemonConfig {
        worker_bin: Some(PathBuf::from(worker_bin())),
        ..DaemonConfig::drain(spool_dir)
    }
}

#[test]
fn submitted_jobs_drain_into_corpus_and_verdicts() {
    let spool_dir = temp_spool_dir("drain");
    let spool = Spool::open(&spool_dir).expect("spool opens");
    let scenario = topology_a_scenario(ExperimentParams {
        duration_s: 4.0,
        ..ExperimentParams::default()
    });
    for seed in [3u64, 5, 8] {
        spool.submit(&scenario.with_seed(seed)).expect("submit");
    }

    let summary = run_daemon(&drain_config(&spool_dir)).expect("daemon drains");
    assert_eq!(summary.jobs_done, 3);

    // Every completed job spilled one measurement set, bit-identical to a
    // local simulation of the same scenario.
    let corpus = Corpus::open(spool.corpus_dir()).expect("corpus opens");
    let mut sets = corpus.load_all().expect("corpus loads");
    sets.sort_by_key(|s| s.provenance.seed);
    assert_eq!(sets.len(), 3);
    for (set, seed) in sets.iter().zip([3u64, 5, 8]) {
        assert_eq!(set.provenance.seed, seed);
        assert_eq!(set, &scenario.with_seed(seed).compile().simulate());
    }

    // Verdict stream: one JSON line per job plus the batch summaries.
    let verdicts = fs::read_to_string(spool.verdicts_path()).expect("verdicts exist");
    let lines: Vec<&str> = verdicts.lines().collect();
    assert_eq!(lines.len(), summary.jobs_done + summary.batches);
    assert_eq!(
        lines
            .iter()
            .filter(|l| l.contains("\"type\":\"verdict\""))
            .count(),
        3
    );
    for line in &lines {
        assert!(
            line.starts_with('{') && line.ends_with('}'),
            "bad JSONL: {line}"
        );
    }
    fs::remove_dir_all(&spool_dir).expect("cleanup");
}

#[test]
fn follow_mode_spills_segments_a_tail_can_replay() {
    let spool_dir = temp_spool_dir("follow");
    let spool = Spool::open(&spool_dir).expect("spool opens");
    let scenario = topology_a_scenario(ExperimentParams {
        duration_s: 4.0,
        ..ExperimentParams::default()
    });
    spool.submit(&scenario.with_seed(7)).expect("submit");

    let cfg = DaemonConfig {
        follow: true,
        ..drain_config(&spool_dir)
    };
    let summary = run_daemon(&cfg).expect("daemon drains");
    assert_eq!(summary.jobs_done, 1);

    // No whole-blob entry lands in follow mode — only the segment.
    let corpus = Corpus::open(spool.corpus_dir()).expect("corpus opens");
    assert!(corpus.entries().expect("lists").is_empty());
    let mut tail = nni_measure::CorpusTail::open(spool.corpus_dir()).expect("tail opens");
    let events = tail.poll().expect("tail polls");

    // Header + interval chunks reassemble the exact simulated set.
    let want = scenario.with_seed(7).compile().simulate();
    let mut header = None;
    let mut log = None;
    for e in events {
        match e {
            nni_measure::TailEvent::SegmentHeader { set, .. } => {
                log = Some(nni_measure::MeasurementLog::new(
                    set.log.path_count(),
                    set.log.interval_s(),
                ));
                header = Some(set);
            }
            nni_measure::TailEvent::SegmentIntervals { first_t, rows, .. } => {
                let log = log.as_mut().expect("header precedes intervals");
                for (i, (sent, lost)) in rows.iter().enumerate() {
                    for (p, (&s, &l)) in sent.iter().zip(lost).enumerate() {
                        let path = nni_topology::PathId(p);
                        log.record_sent(first_t + i, path, s);
                        log.record_lost(first_t + i, path, l);
                    }
                }
            }
            other => panic!("unexpected tail event {other:?}"),
        }
    }
    let header = header.expect("segment header seen");
    assert_eq!(header.provenance, want.provenance);
    assert_eq!(log.expect("intervals seen"), want.log);
    fs::remove_dir_all(&spool_dir).expect("cleanup");
}

#[test]
fn undecodable_job_parks_and_the_daemon_continues() {
    let spool_dir = temp_spool_dir("badjob");
    let spool = Spool::open(&spool_dir).expect("spool opens");
    fs::write(
        spool.root().join("incoming").join("corrupt.job"),
        b"these are not frame bytes",
    )
    .expect("write bad job");
    // A healthy job alongside: parking the offender must not cost it.
    let scenario = topology_a_scenario(ExperimentParams {
        duration_s: 4.0,
        ..ExperimentParams::default()
    });
    spool.submit(&scenario.with_seed(4)).expect("submit");

    let summary = run_daemon(&drain_config(&spool_dir)).expect("daemon survives the bad job");
    assert_eq!(summary.jobs_done, 1);
    assert_eq!(summary.parked, 1);

    let counts = spool.counts().expect("counts");
    assert_eq!((counts.failed, counts.done), (1, 1));
    // The parked job carries a machine-readable reason...
    let parked = spool.root().join("failed").join("corrupt.job");
    assert!(parked.exists(), "bad job must be parked in failed/");
    let reason = fs::read_to_string(reason_path_for(&parked)).expect("reason file");
    assert!(reason.contains("\"kind\":\"undecodable\""), "got: {reason}");
    // ...and an audit line in the verdict stream.
    let verdicts = fs::read_to_string(spool.verdicts_path()).expect("verdicts");
    assert!(verdicts.lines().any(|l| l.contains("\"type\":\"parked\"")));
    fs::remove_dir_all(&spool_dir).expect("cleanup");
}

#[test]
fn worker_binary_exits_nonzero_on_garbage_stdin() {
    let mut child = Command::new(worker_bin())
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("worker spawns");
    child
        .stdin
        .take()
        .expect("piped stdin")
        .write_all(b"garbage bytes, not a frame")
        .expect("write garbage");
    let out = child.wait_with_output().expect("worker exits");
    assert_eq!(out.status.code(), Some(1), "decode errors must exit 1");
    assert!(out.stdout.is_empty(), "no result frame may be emitted");
    assert!(!out.stderr.is_empty(), "the failure must be reported");
}

#[test]
fn worker_binary_exits_zero_on_clean_eof() {
    let out = Command::new(worker_bin())
        .stdin(Stdio::null())
        .stdout(Stdio::piped())
        .output()
        .expect("worker runs");
    assert!(out.status.success(), "clean EOF is a clean exit");
}

#[test]
fn servicectl_submit_status_drain_round_trip() {
    let spool_dir = temp_spool_dir("ctl");
    let ctl = env!("CARGO_BIN_EXE_nni-servicectl");
    let run = |args: &[&str]| {
        Command::new(ctl)
            .args(args)
            .output()
            .expect("servicectl runs")
    };
    let spool_s = spool_dir.to_str().expect("utf8 temp dir");

    // Submit by the library's own name — whatever the suite calls its first
    // member — so the test does not hard-code naming conventions.
    let name = identity_suite()[0].name.clone();
    let out = run(&["submit", spool_s, &name]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let out = run(&["submit", spool_s, "no-such-scenario"]);
    assert_eq!(out.status.code(), Some(1), "unknown scenario must exit 1");

    let out = run(&["status", spool_s]);
    assert!(out.status.success());
    let status = String::from_utf8_lossy(&out.stdout);
    assert!(status.contains("incoming 1"), "got: {status}");

    let out = run(&["drain", spool_s]);
    assert!(out.status.success());
    assert!(Spool::open(&spool_dir).expect("spool").drain_requested());

    let out = run(&["bogus-subcommand"]);
    assert_eq!(out.status.code(), Some(2), "usage errors exit 2");
    fs::remove_dir_all(&spool_dir).expect("cleanup");
}
