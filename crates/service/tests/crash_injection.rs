//! Crash injection: a worker killed mid-job must be respawned, the job
//! requeued, and the batch's final outcomes must still be bit-identical to
//! serial — the no-lost-no-duplicated-jobs half of the executor contract.
//!
//! The injection hook is `NNI_WORKER_CRASH_ONCE=<token-path>`: the first
//! worker to see a missing token file creates it and `abort()`s before
//! answering, so exactly one crash happens per token path. The variable is
//! process-global (inherited by every spawned worker), so the tests here
//! serialize on a mutex and scope the variable tightly.

use std::path::PathBuf;
use std::sync::Mutex;

use nni_scenario::library::{topology_a_scenario, ExperimentParams, Mechanism};
use nni_scenario::{seed_sweep, Executor, ProcessExecutor, SerialExecutor};
use nni_service::{run_daemon, DaemonConfig, Spool, CRASH_ONCE_ENV};

static ENV_LOCK: Mutex<()> = Mutex::new(());

fn worker_bin() -> &'static str {
    env!("CARGO_BIN_EXE_nni-worker")
}

fn temp_path(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "nni-crash-test-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_file(&dir);
    dir
}

/// Runs `f` with the crash token armed, then disarms and cleans up.
fn with_crash_once<T>(token: &PathBuf, f: impl FnOnce() -> T) -> T {
    let _guard = ENV_LOCK.lock().expect("unpoisoned");
    std::env::set_var(CRASH_ONCE_ENV, token);
    let out = f();
    std::env::remove_var(CRASH_ONCE_ENV);
    let _ = std::fs::remove_file(token);
    out
}

fn batch() -> Vec<nni_scenario::Experiment> {
    let scenario = topology_a_scenario(ExperimentParams {
        mechanism: Mechanism::Policing(0.2),
        duration_s: 4.0,
        ..ExperimentParams::default()
    });
    seed_sweep(&scenario, &[1, 2, 3, 4])
}

#[test]
fn killed_worker_is_respawned_and_outcomes_stay_identical() {
    let experiments = batch();
    let serial = SerialExecutor.execute(&experiments);

    let token = temp_path("executor-token");
    let exec = ProcessExecutor::new(2).with_worker_bin(worker_bin());
    let (process, stats) = with_crash_once(&token, || {
        exec.try_execute(&experiments).expect("batch survives")
    });

    assert!(
        stats.respawns >= 1,
        "the injected crash must be observed as a respawn: {stats:?}"
    );
    assert!(
        stats.retries >= 1,
        "the crashed worker's job must be requeued: {stats:?}"
    );
    assert_eq!(
        serial, process,
        "outcomes after a crash-respawn must still be bit-identical to serial"
    );
}

#[test]
fn exhausted_attempt_budget_fails_the_batch_loudly() {
    // A token pointing into a directory that cannot be created: the worker
    // aborts on every spawn, so the budget runs out and the typed error
    // carries the attempt count.
    let experiments = batch()[..1].to_vec();
    let token = PathBuf::from("/nonexistent-dir/never-created-token");
    let exec = ProcessExecutor::new(1)
        .with_worker_bin(worker_bin())
        .with_max_attempts(2);
    let err = with_crash_once(&token, || exec.try_execute(&experiments).unwrap_err());
    match err {
        nni_scenario::ProcessError::JobFailed { attempts, .. } => {
            assert_eq!(attempts, 2, "budget must be exhausted exactly")
        }
        other => panic!("expected JobFailed, got {other}"),
    }
}

#[test]
fn daemon_survives_a_worker_crash_with_no_lost_or_duplicated_jobs() {
    let spool_dir = temp_path("daemon-spool");
    let spool = Spool::open(&spool_dir).expect("spool opens");
    let scenario = topology_a_scenario(ExperimentParams {
        duration_s: 4.0,
        ..ExperimentParams::default()
    });
    let submitted = 3usize;
    for seed in 0..submitted as u64 {
        spool.submit(&scenario.with_seed(seed + 1)).expect("submit");
    }

    let token = temp_path("daemon-token");
    let cfg = DaemonConfig {
        worker_bin: Some(PathBuf::from(worker_bin())),
        ..DaemonConfig::drain(&spool_dir)
    };
    let summary = with_crash_once(&token, || run_daemon(&cfg).expect("daemon drains"));

    assert_eq!(summary.jobs_done, submitted, "every job completes once");
    assert!(
        summary.respawns >= 1,
        "the crash must be visible: {summary:?}"
    );
    let counts = spool.counts().expect("counts");
    assert_eq!(
        (counts.incoming, counts.running, counts.done, counts.failed),
        (0, 0, submitted, 0),
        "jobs must be neither lost nor duplicated"
    );
    // One verdict line per job plus one batch line per batch.
    assert_eq!(counts.verdicts, summary.jobs_done + summary.batches);
    std::fs::remove_dir_all(&spool_dir).expect("cleanup");
}
