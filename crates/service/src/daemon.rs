//! The `nni-serviced` loop: drain the spool through a worker-subprocess
//! pool, spill measurements, stream verdicts.
//!
//! Scheduling and crash handling are delegated to [`ProcessExecutor`]: a
//! worker that dies or hangs mid-job is killed, respawned (with backoff)
//! and the job requeued with a bounded attempt budget; a job that exhausts
//! the budget comes back *quarantined* in the typed partial
//! [`BatchOutcome`](nni_scenario::BatchOutcome) instead of failing the
//! batch. The daemon's own loop
//! manages **durability** and **poison containment**:
//!
//! * Jobs move `incoming → running → done` through fsync'd atomic renames;
//!   a daemon killed mid-batch leaves its claims in `running/`, which the
//!   next start [`recover`](Spool::recover)s back into the queue and
//!   records with a `"recovered"` audit line in the verdict stream.
//! * An **undecodable** submission is parked in `failed/` with a
//!   machine-readable reason and the daemon *continues* — one bad file
//!   cannot loop or kill the service.
//! * A **quarantined** job is retried across batches with exponential
//!   backoff plus deterministic jitter ([`DaemonConfig::job_retries`]
//!   daemon-level runs, each of [`DaemonConfig::max_attempts`] worker
//!   attempts); when the budget is spent it is parked in `failed/` with a
//!   `*.reason.json` naming the last worker failure, and the rest of the
//!   queue keeps draining.
//! * Only failures retrying cannot help — spawn errors, protocol
//!   violations, undecodable *worker* bytes — requeue the batch and stop
//!   the daemon (exit 1), because they mean the installation itself is
//!   broken.

use std::collections::HashMap;
use std::ffi::OsString;
use std::fs;
use std::io::Write;
use std::net::TcpListener;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use nni_measure::wire::FrameError;
use nni_measure::{Corpus, Fnv, MeasurementSet, RelaySource, SegmentWriter};
use nni_scenario::fault::FaultPlan;
use nni_scenario::{
    read_job, Executor, Experiment, ProcessError, ProcessExecutor, Quarantined, Scenario,
};

use crate::spool::Spool;

/// Everything the daemon needs to run.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Spool root directory.
    pub spool: PathBuf,
    /// Worker-subprocess pool size.
    pub workers: usize,
    /// Worker binary override (`None`: the executor's default resolution).
    pub worker_bin: Option<PathBuf>,
    /// Exit as soon as the queue is empty instead of polling forever.
    pub drain: bool,
    /// Poll interval while idle (non-drain mode).
    pub poll_ms: u64,
    /// Per-job worker attempt budget within one batch.
    pub max_attempts: u32,
    /// Spill measurements as chunked `.nniseg` segments instead of whole
    /// `.nniset` entries, so a live `CorpusTail` (e.g. `nni-live`) sees
    /// intervals land incrementally instead of one opaque blob per job.
    pub follow: bool,
    /// Per-job wall-clock timeout (hung-worker kill) in milliseconds.
    pub job_timeout_ms: u64,
    /// How many quarantines (daemon-level runs) one job may accumulate
    /// before it is parked in `failed/` as poison. Floored at one.
    pub job_retries: u32,
    /// Base of the between-runs retry backoff in milliseconds (doubles per
    /// strike, plus deterministic jitter).
    pub retry_base_ms: u64,
    /// Ceiling of the retry backoff in milliseconds.
    pub retry_cap_ms: u64,
    /// Most jobs claimed per batch — bounds the blast radius of a terminal
    /// pool failure and keeps the verdict stream flowing under a deep
    /// queue.
    pub max_batch: usize,
    /// Extra environment variables for spawned workers (how tests ship a
    /// `FaultPlan` without touching the daemon's own environment).
    pub worker_env: Vec<(String, String)>,
    /// Serve the corpus's live `.nniseg` traffic to remote tails
    /// (`nni-live --connect`) on this address. `None`: no listener. The
    /// bound address is announced as `serving-segments <addr>` on stdout,
    /// so `127.0.0.1:0` picks a free port race-free.
    pub serve_segments: Option<String>,
}

impl DaemonConfig {
    /// A drain-mode config with defaults (2 workers, 3 attempts, 5-minute
    /// job timeout, 2 daemon-level runs per job).
    pub fn drain(spool: impl Into<PathBuf>) -> DaemonConfig {
        DaemonConfig {
            spool: spool.into(),
            workers: 2,
            worker_bin: None,
            drain: true,
            poll_ms: 200,
            max_attempts: nni_scenario::DEFAULT_MAX_ATTEMPTS,
            follow: false,
            job_timeout_ms: nni_scenario::DEFAULT_JOB_TIMEOUT_MS,
            job_retries: 2,
            retry_base_ms: 25,
            retry_cap_ms: 1_000,
            max_batch: 32,
            worker_env: Vec::new(),
            serve_segments: None,
        }
    }
}

/// What one daemon run accomplished.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DaemonSummary {
    /// Jobs completed into `done/`.
    pub jobs_done: usize,
    /// Batches executed.
    pub batches: usize,
    /// Jobs recovered from `running/` at startup.
    pub recovered: usize,
    /// Worker processes respawned after crashes.
    pub respawns: usize,
    /// Jobs requeued after worker crashes.
    pub retries: usize,
    /// Hung workers killed on the job timeout.
    pub timeouts: usize,
    /// Quarantine events (a job may contribute several before parking).
    pub quarantined: usize,
    /// Jobs parked in `failed/` (undecodable or poison).
    pub parked: usize,
}

/// Why the daemon stopped.
#[derive(Debug)]
pub enum ServiceError {
    /// A filesystem or pipe failure.
    Io(std::io::Error),
    /// The worker pool failed terminally (spawn failure, protocol
    /// violation, undecodable worker bytes).
    Process(ProcessError),
    /// `nni-servicectl submit` was asked for a scenario the library does
    /// not contain.
    UnknownScenario(String),
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Io(e) => write!(f, "i/o error: {e}"),
            ServiceError::Process(e) => write!(f, "worker pool failed: {e}"),
            ServiceError::UnknownScenario(name) => {
                write!(f, "no library scenario named {name:?}")
            }
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<std::io::Error> for ServiceError {
    fn from(e: std::io::Error) -> ServiceError {
        ServiceError::Io(e)
    }
}

impl From<ProcessError> for ServiceError {
    fn from(e: ProcessError) -> ServiceError {
        ServiceError::Process(e)
    }
}

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn job_name(path: &Path) -> String {
    path.file_name()
        .unwrap_or_default()
        .to_string_lossy()
        .into_owned()
}

fn verdict_line(job: &Path, exp: &Experiment, out: &nni_scenario::ExperimentOutcome) -> String {
    let s = exp.scenario();
    format!(
        "{{\"type\":\"verdict\",\"job\":\"{}\",\"scenario\":\"{}\",\"seed\":{},\
         \"fingerprint\":\"{:016x}\",\"flagged\":{},\"correct\":{}}}",
        esc(&job_name(job)),
        esc(&s.name),
        s.measurement.seed,
        s.measurement_fingerprint(),
        out.flagged_nonneutral,
        out.correct,
    )
}

/// Between-runs retry delay for a quarantined job: exponential in the
/// strike count, clamped, plus deterministic jitter hashed from the job
/// name — so a burst of poison jobs spreads out instead of thundering back
/// in lockstep, and a test can still predict the schedule.
fn retry_backoff(cfg: &DaemonConfig, name: &OsString, strike: u32) -> Duration {
    let shift = strike.saturating_sub(1).min(16);
    let exp = cfg
        .retry_base_ms
        .saturating_mul(1 << shift)
        .min(cfg.retry_cap_ms.max(cfg.retry_base_ms));
    let mut h = Fnv::new();
    for b in name.to_string_lossy().bytes() {
        h.byte(b);
    }
    h.word(strike as u64);
    let jitter = if cfg.retry_base_ms > 0 {
        h.0 % cfg.retry_base_ms
    } else {
        0
    };
    Duration::from_millis(exp + jitter)
}

/// Runs the daemon until drained (drain mode / drain marker) or a terminal
/// error. See the module docs for the durability contract.
/// Spawns the segment-relay accept loop on an already-bound listener:
/// each connection gets its own [`RelaySource`] over `dir` (full history
/// from byte zero) on its own thread. Connection endings are logged, not
/// fatal; the loop runs until the process exits.
pub fn spawn_segment_server(
    listener: TcpListener,
    dir: PathBuf,
    poll: Duration,
) -> std::thread::JoinHandle<()> {
    std::thread::spawn(move || {
        for conn in listener.incoming() {
            match conn {
                Ok(stream) => {
                    let dir = dir.clone();
                    std::thread::spawn(move || {
                        let _ = stream.set_nodelay(true);
                        let mut out = std::io::BufWriter::new(stream);
                        let e = RelaySource::new(&dir).serve(&mut out, poll);
                        // A tail hanging up is how relay connections end.
                        eprintln!("segment relay connection ended: {e}");
                    });
                }
                Err(e) => eprintln!("segment relay accept failed: {e}"),
            }
        }
    })
}

pub fn run_daemon(cfg: &DaemonConfig) -> Result<DaemonSummary, ServiceError> {
    let spool = Spool::open(&cfg.spool)?;
    let corpus = Corpus::open(spool.corpus_dir())?;
    if let Some(addr) = &cfg.serve_segments {
        let listener = TcpListener::bind(addr)?;
        let bound = listener.local_addr()?;
        println!("serving-segments {bound}");
        let _ = std::io::stdout().flush();
        spawn_segment_server(
            listener,
            spool.corpus_dir().to_path_buf(),
            Duration::from_millis(cfg.poll_ms.max(1)),
        );
    }
    let mut exec = ProcessExecutor::new(cfg.workers)
        .with_max_attempts(cfg.max_attempts)
        .with_job_timeout(Duration::from_millis(cfg.job_timeout_ms.max(1)));
    if let Some(bin) = &cfg.worker_bin {
        exec = exec.with_worker_bin(bin);
    }
    for (key, value) in &cfg.worker_env {
        exec = exec.with_env(key, value);
    }
    // Delayed-spill fault hook: honored whether the plan arrives via the
    // worker-env override (tests) or the daemon's own environment.
    let spill_delay = cfg
        .worker_env
        .iter()
        .find(|(k, _)| k == nni_scenario::FAULT_PLAN_ENV)
        .and_then(|(_, v)| FaultPlan::parse(v).ok())
        .or_else(FaultPlan::from_env)
        .map(|p| Duration::from_millis(p.spill_delay_ms))
        .unwrap_or(Duration::ZERO);

    let recovered = spool.recover()?;
    let mut summary = DaemonSummary {
        recovered: recovered.len(),
        ..DaemonSummary::default()
    };
    if !recovered.is_empty() {
        let names: Vec<String> = recovered.iter().map(|p| esc(&job_name(p))).collect();
        spool.append_verdict(&format!(
            "{{\"type\":\"recovered\",\"jobs\":{},\"files\":[\"{}\"]}}",
            recovered.len(),
            names.join("\",\""),
        ))?;
    }

    // Quarantine strikes and retry-eligibility times per job file name.
    let mut strikes: HashMap<OsString, u32> = HashMap::new();
    let mut eligible_at: HashMap<OsString, Instant> = HashMap::new();

    loop {
        let pending = spool.pending()?;
        let now = Instant::now();
        let mut ready: Vec<PathBuf> = Vec::new();
        let mut next_eligible: Option<Instant> = None;
        for job in pending {
            let name = job
                .file_name()
                .expect("job files have names")
                .to_os_string();
            match eligible_at.get(&name) {
                Some(&at) if at > now => {
                    next_eligible = Some(next_eligible.map_or(at, |t: Instant| t.min(at)));
                }
                _ => ready.push(job),
            }
        }
        if ready.is_empty() {
            match next_eligible {
                // Jobs exist but are backing off: wait for the earliest.
                Some(at) => {
                    let wait = at.saturating_duration_since(now);
                    std::thread::sleep(wait.min(Duration::from_millis(cfg.poll_ms.max(1))));
                }
                None => {
                    if cfg.drain || spool.drain_requested() {
                        return Ok(summary);
                    }
                    std::thread::sleep(Duration::from_millis(cfg.poll_ms.max(1)));
                }
            }
            continue;
        }
        ready.truncate(cfg.max_batch.max(1));

        // Claim, then decode. An undecodable submission is parked with a
        // reason and the rest of the batch proceeds — one bad file must
        // not loop or stop the service.
        let mut jobs: Vec<(PathBuf, Experiment)> = Vec::with_capacity(ready.len());
        for job in &ready {
            let path = spool.claim(job)?;
            let bytes = fs::read(&path)?;
            let error = match read_job(&mut bytes.as_slice()) {
                Ok(Some((_, scenario))) => {
                    jobs.push((path, scenario.compile()));
                    continue;
                }
                Ok(None) => nni_measure::codec::CodecError::UnexpectedEof,
                Err(FrameError::Codec(error)) => error,
                Err(FrameError::Io(e)) => return Err(ServiceError::Io(e)),
            };
            let reason = format!(
                "{{\"kind\":\"undecodable\",\"error\":\"{}\"}}",
                esc(&error.to_string())
            );
            let parked = spool.park_failed_with_reason(&path, &reason)?;
            spool.append_verdict(&format!(
                "{{\"type\":\"parked\",\"job\":\"{}\",\"reason\":\"undecodable\",\"error\":\"{}\"}}",
                esc(&job_name(&parked)),
                esc(&error.to_string()),
            ))?;
            summary.parked += 1;
        }
        if jobs.is_empty() {
            continue;
        }

        let scenarios: Vec<&Scenario> = jobs.iter().map(|(_, e)| e.scenario()).collect();
        let batch = match exec.try_batch(&scenarios) {
            Ok(b) => b,
            Err(e) => {
                // Terminal pool failure: put the whole batch back so a
                // restart re-runs it.
                for (path, _) in &jobs {
                    let _ = spool.requeue(path);
                }
                return Err(e.into());
            }
        };

        let mut quarantined: HashMap<usize, Quarantined> =
            batch.quarantined.into_iter().map(|q| (q.job, q)).collect();
        for (i, ((path, exp), report)) in jobs.iter().zip(batch.reports).enumerate() {
            let name = path
                .file_name()
                .expect("job files have names")
                .to_os_string();
            match report {
                Some(report) => {
                    let outcome = exp.outcome_from(report);
                    let set = exp.package(outcome.report.log.clone());
                    if cfg.follow {
                        spill_segment(corpus.dir(), &set, spill_delay)?;
                    } else {
                        corpus.store(&set).map_err(ServiceError::Io)?;
                    }
                    spool.append_verdict(&verdict_line(path, exp, &outcome))?;
                    spool.complete(path)?;
                    summary.jobs_done += 1;
                    strikes.remove(&name);
                    eligible_at.remove(&name);
                }
                None => {
                    let q = quarantined.remove(&i).expect("no report means quarantined");
                    summary.quarantined += 1;
                    let strike = strikes.entry(name.clone()).or_insert(0);
                    *strike += 1;
                    if *strike >= cfg.job_retries.max(1) {
                        let reason = format!(
                            "{{\"kind\":\"quarantined\",\"runs\":{},\"attempts_per_run\":{},\
                             \"last\":\"{}\"}}",
                            strike,
                            q.attempts,
                            esc(&q.last.to_string()),
                        );
                        let parked = spool.park_failed_with_reason(path, &reason)?;
                        spool.append_verdict(&format!(
                            "{{\"type\":\"parked\",\"job\":\"{}\",\"reason\":\"quarantined\",\
                             \"runs\":{},\"last\":\"{}\"}}",
                            esc(&job_name(&parked)),
                            strike,
                            esc(&q.last.to_string()),
                        ))?;
                        summary.parked += 1;
                        strikes.remove(&name);
                        eligible_at.remove(&name);
                    } else {
                        let delay = retry_backoff(cfg, &name, *strike);
                        spool.requeue(path)?;
                        eligible_at.insert(name.clone(), Instant::now() + delay);
                        spool.append_verdict(&format!(
                            "{{\"type\":\"requeued\",\"job\":\"{}\",\"strike\":{},\
                             \"backoff_ms\":{},\"last\":\"{}\"}}",
                            esc(&job_name(path)),
                            strike,
                            delay.as_millis(),
                            esc(&q.last.to_string()),
                        ))?;
                    }
                }
            }
        }
        spool.append_verdict(&format!(
            "{{\"type\":\"batch\",\"jobs\":{},\"executor\":\"{}\",\
             \"respawns\":{},\"retries\":{},\"timeouts\":{},\"quarantined\":{}}}",
            jobs.len(),
            exec.describe(),
            batch.stats.respawns,
            batch.stats.retries,
            batch.stats.timeouts,
            batch.stats.quarantined,
        ))?;
        summary.batches += 1;
        summary.respawns += batch.stats.respawns;
        summary.retries += batch.stats.retries;
        summary.timeouts += batch.stats.timeouts;
    }
}

/// Segment chunk size in `--follow` mode: small enough that a concurrent
/// tail sees several interval batches land per job, large enough to keep
/// chunk overhead negligible.
const FOLLOW_CHUNK_INTERVALS: usize = 10;

/// Spills one completed job's measurement set as a chunked `.nniseg`
/// segment under the corpus directory (follow mode): header chunk first,
/// then interval chunks, each flushed — a tailing consumer never sees a
/// torn entry. `delay` (a fault-plan knob) is inserted between chunks to
/// exercise followers against slow producers.
fn spill_segment(dir: &Path, set: &MeasurementSet, delay: Duration) -> Result<(), ServiceError> {
    let path = dir.join(nni_measure::segment_file_name(&set.provenance));
    let mut w = SegmentWriter::create(&path, set).map_err(segment_err)?;
    let total = set.log.interval_count();
    let mut from = 0;
    while from < total {
        let to = (from + FOLLOW_CHUNK_INTERVALS).min(total);
        if !delay.is_zero() {
            std::thread::sleep(delay);
        }
        w.append_intervals(&set.log, from, to)
            .map_err(segment_err)?;
        from = to;
    }
    Ok(())
}

fn segment_err(e: nni_measure::SegmentError) -> ServiceError {
    match e {
        nni_measure::SegmentError::Io(e) => ServiceError::Io(e),
        other => ServiceError::Io(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            other.to_string(),
        )),
    }
}
