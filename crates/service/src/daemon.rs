//! The `nni-serviced` loop: drain the spool through a worker-subprocess
//! pool, spill measurements, stream verdicts.
//!
//! Scheduling and crash handling are delegated to
//! [`ProcessExecutor`]: a worker that dies
//! mid-job is respawned and the job requeued (bounded attempts), so the
//! daemon's own loop only manages *durability* — which state directory
//! each job file is in, and what has been written to the corpus and the
//! verdict stream. Jobs move `incoming → running → done` (or `failed` for
//! undecodable submissions); a daemon killed mid-batch leaves its claims
//! in `running/`, which the next start [`recover`](Spool::recover)s back
//! into the queue.

use std::fs;
use std::path::PathBuf;
use std::time::Duration;

use nni_measure::codec::CodecError;
use nni_measure::wire::FrameError;
use nni_measure::{Corpus, MeasurementSet, SegmentWriter};
use nni_scenario::{
    read_job, Executor, Experiment, ExperimentOutcome, ProcessError, ProcessExecutor,
};

use crate::spool::Spool;

/// Everything the daemon needs to run.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Spool root directory.
    pub spool: PathBuf,
    /// Worker-subprocess pool size.
    pub workers: usize,
    /// Worker binary override (`None`: the executor's default resolution).
    pub worker_bin: Option<PathBuf>,
    /// Exit as soon as the queue is empty instead of polling forever.
    pub drain: bool,
    /// Poll interval while idle (non-drain mode).
    pub poll_ms: u64,
    /// Per-job attempt budget across worker crashes.
    pub max_attempts: u32,
    /// Spill measurements as chunked `.nniseg` segments instead of whole
    /// `.nniset` entries, so a live `CorpusTail` (e.g. `nni-live`) sees
    /// intervals land incrementally instead of one opaque blob per job.
    pub follow: bool,
}

impl DaemonConfig {
    /// A drain-mode config with defaults (2 workers, 3 attempts).
    pub fn drain(spool: impl Into<PathBuf>) -> DaemonConfig {
        DaemonConfig {
            spool: spool.into(),
            workers: 2,
            worker_bin: None,
            drain: true,
            poll_ms: 200,
            max_attempts: nni_scenario::DEFAULT_MAX_ATTEMPTS,
            follow: false,
        }
    }
}

/// What one daemon run accomplished.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DaemonSummary {
    /// Jobs completed into `done/`.
    pub jobs_done: usize,
    /// Batches executed.
    pub batches: usize,
    /// Jobs recovered from `running/` at startup.
    pub recovered: usize,
    /// Worker processes respawned after crashes.
    pub respawns: usize,
    /// Jobs requeued after worker crashes.
    pub retries: usize,
}

/// Why the daemon stopped.
#[derive(Debug)]
pub enum ServiceError {
    /// A filesystem or pipe failure.
    Io(std::io::Error),
    /// A job file (or worker stream) held undecodable bytes. The file is
    /// parked in `failed/` before this is returned; the daemon exits
    /// non-zero rather than logging and continuing.
    Codec {
        /// The offending job file.
        file: PathBuf,
        /// The decode failure.
        error: CodecError,
    },
    /// The worker pool failed terminally (spawn failure, attempt budget
    /// exhausted, protocol violation).
    Process(ProcessError),
    /// `nni-servicectl submit` was asked for a scenario the library does
    /// not contain.
    UnknownScenario(String),
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Io(e) => write!(f, "i/o error: {e}"),
            ServiceError::Codec { file, error } => {
                write!(f, "undecodable job {}: {error}", file.display())
            }
            ServiceError::Process(e) => write!(f, "worker pool failed: {e}"),
            ServiceError::UnknownScenario(name) => {
                write!(f, "no library scenario named {name:?}")
            }
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<std::io::Error> for ServiceError {
    fn from(e: std::io::Error) -> ServiceError {
        ServiceError::Io(e)
    }
}

impl From<ProcessError> for ServiceError {
    fn from(e: ProcessError) -> ServiceError {
        ServiceError::Process(e)
    }
}

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn verdict_line(job: &std::path::Path, exp: &Experiment, out: &ExperimentOutcome) -> String {
    let s = exp.scenario();
    format!(
        "{{\"type\":\"verdict\",\"job\":\"{}\",\"scenario\":\"{}\",\"seed\":{},\
         \"fingerprint\":\"{:016x}\",\"flagged\":{},\"correct\":{}}}",
        esc(&job.file_name().unwrap_or_default().to_string_lossy()),
        esc(&s.name),
        s.measurement.seed,
        s.measurement_fingerprint(),
        out.flagged_nonneutral,
        out.correct,
    )
}

/// Runs the daemon until drained (drain mode / drain marker) or a terminal
/// error. See the module docs for the durability contract.
pub fn run_daemon(cfg: &DaemonConfig) -> Result<DaemonSummary, ServiceError> {
    let spool = Spool::open(&cfg.spool)?;
    let corpus = Corpus::open(spool.corpus_dir())?;
    let mut exec = ProcessExecutor::new(cfg.workers).with_max_attempts(cfg.max_attempts);
    if let Some(bin) = &cfg.worker_bin {
        exec = exec.with_worker_bin(bin);
    }
    let mut summary = DaemonSummary {
        recovered: spool.recover()?,
        ..DaemonSummary::default()
    };

    loop {
        let pending = spool.pending()?;
        if pending.is_empty() {
            if cfg.drain || spool.drain_requested() {
                return Ok(summary);
            }
            std::thread::sleep(Duration::from_millis(cfg.poll_ms.max(1)));
            continue;
        }

        // Claim, then decode. An undecodable submission is parked and
        // terminates the daemon non-zero — but only after the good jobs
        // claimed before it are returned to the queue, so nothing is lost.
        let mut claimed: Vec<PathBuf> = Vec::with_capacity(pending.len());
        for job in &pending {
            claimed.push(spool.claim(job)?);
        }
        let mut jobs: Vec<(PathBuf, Experiment)> = Vec::with_capacity(claimed.len());
        for path in &claimed {
            let bytes = fs::read(path)?;
            let decoded = match read_job(&mut bytes.as_slice()) {
                Ok(Some((_, scenario))) => scenario,
                Ok(None) => {
                    return fail_decode(&spool, jobs, path, CodecError::UnexpectedEof);
                }
                Err(FrameError::Codec(error)) => {
                    return fail_decode(&spool, jobs, path, error);
                }
                Err(FrameError::Io(e)) => return Err(ServiceError::Io(e)),
            };
            jobs.push((path.clone(), decoded.compile()));
        }

        let experiments: Vec<Experiment> = jobs.iter().map(|(_, e)| e.clone()).collect();
        let (outcomes, stats) = match exec.try_execute(&experiments) {
            Ok(r) => r,
            Err(e) => {
                // Terminal pool failure: put the whole batch back so a
                // restart re-runs it.
                for (path, _) in &jobs {
                    let _ = spool.requeue(path);
                }
                return Err(e.into());
            }
        };

        for ((path, exp), outcome) in jobs.iter().zip(&outcomes) {
            let set = exp.package(outcome.report.log.clone());
            if cfg.follow {
                spill_segment(corpus.dir(), &set)?;
            } else {
                corpus.store(&set).map_err(ServiceError::Io)?;
            }
            spool.append_verdict(&verdict_line(path, exp, outcome))?;
            spool.complete(path)?;
            summary.jobs_done += 1;
        }
        spool.append_verdict(&format!(
            "{{\"type\":\"batch\",\"jobs\":{},\"executor\":\"{}\",\
             \"respawns\":{},\"retries\":{}}}",
            outcomes.len(),
            exec.describe(),
            stats.respawns,
            stats.retries,
        ))?;
        summary.batches += 1;
        summary.respawns += stats.respawns;
        summary.retries += stats.retries;
    }
}

/// Segment chunk size in `--follow` mode: small enough that a concurrent
/// tail sees several interval batches land per job, large enough to keep
/// chunk overhead negligible.
const FOLLOW_CHUNK_INTERVALS: usize = 10;

/// Spills one completed job's measurement set as a chunked `.nniseg`
/// segment under the corpus directory (follow mode): header chunk first,
/// then interval chunks, each flushed — a tailing consumer never sees a
/// torn entry.
fn spill_segment(dir: &std::path::Path, set: &MeasurementSet) -> Result<(), ServiceError> {
    let path = dir.join(nni_measure::segment_file_name(&set.provenance));
    let mut w = SegmentWriter::create(&path, set).map_err(segment_err)?;
    let total = set.log.interval_count();
    let mut from = 0;
    while from < total {
        let to = (from + FOLLOW_CHUNK_INTERVALS).min(total);
        w.append_intervals(&set.log, from, to)
            .map_err(segment_err)?;
        from = to;
    }
    Ok(())
}

fn segment_err(e: nni_measure::SegmentError) -> ServiceError {
    match e {
        nni_measure::SegmentError::Io(e) => ServiceError::Io(e),
        other => ServiceError::Io(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            other.to_string(),
        )),
    }
}

/// Parks the undecodable job, requeues the already-decoded rest of the
/// batch, and surfaces the typed error (the bin exits 1 on it).
fn fail_decode(
    spool: &Spool,
    jobs: Vec<(PathBuf, Experiment)>,
    bad: &std::path::Path,
    error: CodecError,
) -> Result<DaemonSummary, ServiceError> {
    let parked = spool.park_failed(bad)?;
    for (path, _) in &jobs {
        let _ = spool.requeue(path);
    }
    Err(ServiceError::Codec {
        file: parked,
        error,
    })
}
