//! `nni-worker`: the subprocess half of the process executor. Speaks the
//! framed `NNIWJOB`/`NNIWRES` protocol over one of three transports:
//!
//! * default — stdin/stdout pipes (spawned by the pool);
//! * `--connect <addr>` — dial the pool's ephemeral loopback listener and
//!   serve the connection (the pool's TCP mode spawns exactly this);
//! * `--listen <addr>` — bind and serve connections as they arrive, one
//!   thread per connection, printing `listening <bound-addr>` on stdout
//!   so a supervisor (or a test) can bind port 0 and learn the port.
//!
//! In every mode a clean end-of-stream ends that stream's serve loop; any
//! frame error — transport or decode — exits 1 (pipe modes) or drops the
//! connection with a log line (`--listen`, which keeps serving others).

use std::io::{stdin, stdout, BufReader, BufWriter, Write};
use std::net::{TcpListener, TcpStream};

fn serve_stream(stream: TcpStream) -> Result<(), Box<dyn std::error::Error>> {
    let _ = stream.set_nodelay(true);
    let mut input = BufReader::new(stream.try_clone()?);
    let mut output = BufWriter::new(stream);
    nni_service::serve(&mut input, &mut output)?;
    output.flush()?;
    Ok(())
}

fn usage() -> ! {
    eprintln!("usage: nni-worker [--connect <addr> | --listen <addr>]");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.as_slice() {
        [] => {
            let mut input = BufReader::new(stdin().lock());
            let mut output = BufWriter::new(stdout().lock());
            match nni_service::serve(&mut input, &mut output) {
                Ok(_) => {
                    let _ = output.flush();
                }
                Err(e) => {
                    eprintln!("nni-worker: {e}");
                    std::process::exit(1);
                }
            }
        }
        [flag, addr] if flag == "--connect" => {
            let stream = match TcpStream::connect(addr) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("nni-worker: connect {addr}: {e}");
                    std::process::exit(1);
                }
            };
            if let Err(e) = serve_stream(stream) {
                eprintln!("nni-worker: {e}");
                std::process::exit(1);
            }
        }
        [flag, addr] if flag == "--listen" => {
            let listener = match TcpListener::bind(addr) {
                Ok(l) => l,
                Err(e) => {
                    eprintln!("nni-worker: bind {addr}: {e}");
                    std::process::exit(1);
                }
            };
            match listener.local_addr() {
                Ok(bound) => {
                    // The one line a supervisor parses; `--listen 127.0.0.1:0`
                    // is how tests get a free port race-free.
                    println!("listening {bound}");
                    let _ = stdout().flush();
                }
                Err(e) => {
                    eprintln!("nni-worker: local_addr: {e}");
                    std::process::exit(1);
                }
            }
            for conn in listener.incoming() {
                match conn {
                    Ok(stream) => {
                        std::thread::spawn(move || {
                            if let Err(e) = serve_stream(stream) {
                                eprintln!("nni-worker: connection ended: {e}");
                            }
                        });
                    }
                    Err(e) => eprintln!("nni-worker: accept: {e}"),
                }
            }
        }
        _ => usage(),
    }
}
