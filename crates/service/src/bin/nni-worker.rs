//! `nni-worker`: the subprocess half of the process executor. Reads framed
//! scenario jobs from stdin, emulates each, writes framed `SimReport`
//! results to stdout, and exits 0 on a clean end-of-stream. Any frame
//! error — transport or decode — exits 1 so the parent sees the failure.

use std::io::{stdin, stdout, BufReader, BufWriter, Write};

fn main() {
    let mut input = BufReader::new(stdin().lock());
    let mut output = BufWriter::new(stdout().lock());
    match nni_service::serve(&mut input, &mut output) {
        Ok(_) => {
            let _ = output.flush();
        }
        Err(e) => {
            eprintln!("nni-worker: {e}");
            std::process::exit(1);
        }
    }
}
