//! `nni-serviced`: the experiment-service daemon. Drains jobs from a spool
//! directory across a worker-subprocess pool, spilling measurement sets
//! into the spool's corpus and streaming verdict lines into
//! `verdicts.jsonl`.
//!
//! ```text
//! nni-serviced <spool> [--workers N] [--drain] [--worker-bin PATH]
//!              [--poll-ms N] [--max-attempts N] [--follow]
//!              [--job-timeout-ms N] [--job-retries N] [--max-batch N]
//!              [--serve-segments ADDR]
//! ```
//!
//! With `--follow`, completed jobs spill as chunked `.nniseg` segments
//! instead of whole `.nniset` entries, so a live tail (`nni-live`) sees
//! intervals land while the spool drains. `--serve-segments ADDR` also
//! streams that live segment traffic to remote tails over TCP (announced
//! as `serving-segments <bound-addr>` on stdout; pair with
//! `nni-live --connect`).
//!
//! Without `--drain` the daemon polls forever (until a drain marker is
//! written, e.g. by `nni-servicectl drain`). Undecodable or persistently
//! failing jobs are parked in `failed/` with a `*.reason.json` and the
//! daemon continues; only terminal pool failures (spawn errors, protocol
//! violations) exit 1.

use std::path::PathBuf;
use std::process::exit;

use nni_service::{run_daemon, DaemonConfig};

fn usage() -> ! {
    eprintln!(
        "usage: nni-serviced <spool> [--workers N] [--drain] \
         [--worker-bin PATH] [--poll-ms N] [--max-attempts N] [--follow] \
         [--job-timeout-ms N] [--job-retries N] [--max-batch N] \
         [--serve-segments ADDR]"
    );
    exit(2);
}

fn parse<T: std::str::FromStr>(flag: &str, value: Option<String>) -> T {
    let Some(v) = value else {
        eprintln!("nni-serviced: {flag} needs a value");
        usage();
    };
    v.parse().unwrap_or_else(|_| {
        eprintln!("nni-serviced: bad value for {flag}: {v:?}");
        usage();
    })
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut spool: Option<PathBuf> = None;
    let mut cfg = DaemonConfig {
        drain: false,
        ..DaemonConfig::drain(PathBuf::new())
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workers" => cfg.workers = parse("--workers", args.next()),
            "--drain" => cfg.drain = true,
            "--follow" => cfg.follow = true,
            "--worker-bin" => cfg.worker_bin = Some(parse::<PathBuf>("--worker-bin", args.next())),
            "--poll-ms" => cfg.poll_ms = parse("--poll-ms", args.next()),
            "--max-attempts" => cfg.max_attempts = parse("--max-attempts", args.next()),
            "--job-timeout-ms" => cfg.job_timeout_ms = parse("--job-timeout-ms", args.next()),
            "--job-retries" => cfg.job_retries = parse("--job-retries", args.next()),
            "--max-batch" => cfg.max_batch = parse("--max-batch", args.next()),
            "--serve-segments" => {
                cfg.serve_segments = Some(parse::<String>("--serve-segments", args.next()))
            }
            "--help" | "-h" => usage(),
            _ if spool.is_none() && !arg.starts_with('-') => spool = Some(PathBuf::from(arg)),
            _ => {
                eprintln!("nni-serviced: unexpected argument {arg:?}");
                usage();
            }
        }
    }
    let Some(spool) = spool else { usage() };
    cfg.spool = spool;

    match run_daemon(&cfg) {
        Ok(summary) => {
            println!(
                "nni-serviced: drained: {} jobs in {} batches \
                 (recovered {}, respawns {}, retries {}, timeouts {}, \
                 quarantined {}, parked {})",
                summary.jobs_done,
                summary.batches,
                summary.recovered,
                summary.respawns,
                summary.retries,
                summary.timeouts,
                summary.quarantined,
                summary.parked,
            );
        }
        Err(e) => {
            eprintln!("nni-serviced: {e}");
            exit(1);
        }
    }
}
