//! `nni-servicectl`: the client side of the experiment service.
//!
//! ```text
//! nni-servicectl submit <spool> <scenario-name> [--seed N]
//! nni-servicectl status <spool>
//! nni-servicectl drain <spool>
//! ```
//!
//! `submit` looks the scenario up by name in the library identity suite
//! (the same population the CI identity gate runs), optionally reseeded,
//! and spools it as one framed job file. `status` tallies the spool's
//! state directories; `drain` writes the control marker an idle daemon
//! exits on.

use std::process::exit;

use nni_scenario::library::identity_suite;
use nni_service::{ServiceError, Spool};

fn usage() -> ! {
    eprintln!(
        "usage: nni-servicectl submit <spool> <scenario-name> [--seed N]\n\
         \x20      nni-servicectl status <spool>\n\
         \x20      nni-servicectl drain <spool>"
    );
    exit(2);
}

fn run() -> Result<(), ServiceError> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("submit") => {
            let (Some(spool), Some(name)) = (args.get(1), args.get(2)) else {
                usage()
            };
            let seed = match args.get(3).map(String::as_str) {
                Some("--seed") => {
                    let v = args.get(4).unwrap_or_else(|| usage());
                    Some(v.parse::<u64>().unwrap_or_else(|_| {
                        eprintln!("nni-servicectl: bad value for --seed: {v:?}");
                        usage();
                    }))
                }
                Some(_) => usage(),
                None => None,
            };
            let mut scenario = identity_suite()
                .into_iter()
                .find(|s| s.name == *name)
                .ok_or_else(|| ServiceError::UnknownScenario(name.clone()))?;
            if let Some(seed) = seed {
                scenario = scenario.with_seed(seed);
            }
            let spool = Spool::open(spool)?;
            let path = spool.submit(&scenario)?;
            println!("submitted {}", path.display());
        }
        Some("status") => {
            let Some(spool) = args.get(1) else { usage() };
            let c = Spool::open(spool)?.counts()?;
            println!(
                "incoming {} | running {} | done {} | failed {} | verdicts {}",
                c.incoming, c.running, c.done, c.failed, c.verdicts
            );
        }
        Some("drain") => {
            let Some(spool) = args.get(1) else { usage() };
            Spool::open(spool)?.request_drain()?;
            println!("drain requested");
        }
        _ => usage(),
    }
    Ok(())
}

fn main() {
    if let Err(e) = run() {
        eprintln!("nni-servicectl: {e}");
        exit(1);
    }
}
