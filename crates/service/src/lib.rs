//! # nni-service
//!
//! The long-lived, multi-process half of the experiment layer: everything
//! that turns "run this batch here" into "keep running whatever lands in
//! the queue" (the ROADMAP's fleet-scale execution item).
//!
//! * [`worker`] — the `nni-worker` subprocess loop: read framed
//!   [`Scenario`](nni_scenario::Scenario) jobs from stdin, emulate, write
//!   framed `SimReport` results to stdout. This is the binary a
//!   [`ProcessExecutor`](nni_scenario::ProcessExecutor) pool spawns.
//! * [`spool`] — the on-disk work queue: `incoming/` → `running/` →
//!   `done/`/`failed/` job files, a drain marker, and a verdicts JSONL
//!   stream.
//! * [`daemon`] — the `nni-serviced` loop: claim spooled jobs, schedule
//!   them across a worker-subprocess pool (crash-respawn and bounded
//!   retries included), spill every `MeasurementSet` into a disk-backed
//!   [`Corpus`](nni_measure::Corpus), and append one verdict line per job.
//!
//! Error policy, shared by every binary here: transport failures are
//! retried (a worker that dies is respawned and its job requeued), but
//! bytes that fail to *decode* terminate the process with a non-zero exit —
//! a corrupted stream must never be logged-and-skipped into silent data
//! loss.

pub mod daemon;
pub mod spool;
pub mod worker;

pub use daemon::{run_daemon, DaemonConfig, DaemonSummary, ServiceError};
pub use spool::{Spool, SpoolCounts, JOB_EXT};
pub use worker::{serve, CRASH_ONCE_ENV};
