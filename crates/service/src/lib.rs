//! # nni-service
//!
//! The long-lived, multi-process half of the experiment layer: everything
//! that turns "run this batch here" into "keep running whatever lands in
//! the queue" (the ROADMAP's fleet-scale execution item).
//!
//! * [`worker`] — the `nni-worker` subprocess loop: read framed
//!   [`Scenario`](nni_scenario::Scenario) jobs from stdin, emulate, write
//!   framed `SimReport` results to stdout. This is the binary a
//!   [`ProcessExecutor`](nni_scenario::ProcessExecutor) pool spawns. It
//!   also hosts the chaos harness's fault hooks
//!   ([`FAULT_PLAN_ENV`](nni_scenario::FAULT_PLAN_ENV)): zero-cost when
//!   unset, deterministic crashes/hangs/corruption when armed.
//! * [`spool`] — the on-disk work queue: `incoming/` → `running/` →
//!   `done/`/`failed/` job files through fsync'd atomic renames, a drain
//!   marker, parked-job reason files, and a verdicts JSONL stream.
//! * [`daemon`] — the `nni-serviced` loop: claim spooled jobs, schedule
//!   them across a worker-subprocess pool (job timeouts, crash-respawn
//!   with backoff, bounded retries), quarantine-park poison jobs with
//!   machine-readable reasons, spill every `MeasurementSet` into a
//!   disk-backed [`Corpus`](nni_measure::Corpus), and append one verdict
//!   line per job.
//!
//! Error policy, shared by every binary here: transient failures are
//! contained and retried (a worker that dies or hangs is respawned and its
//! job requeued; a job that keeps failing is parked in `failed/` with a
//! reason, not looped), but bytes from a *worker* that checksum correctly
//! yet fail to decode terminate the daemon with a non-zero exit — a wrong
//! stream must never be logged-and-skipped into silent data loss.

pub mod daemon;
pub mod spool;
pub mod worker;

pub use daemon::{run_daemon, spawn_segment_server, DaemonConfig, DaemonSummary, ServiceError};
pub use spool::{reason_path_for, Spool, SpoolCounts, JOB_EXT};
pub use worker::{fault_token, serve, CRASH_ONCE_ENV};
