//! The worker loop behind the `nni-worker` binary: a frame-in, frame-out
//! service over any byte stream (stdin/stdout in production, in-memory
//! buffers in tests).
//!
//! The worker deliberately runs only the *emulation* half of an experiment
//! and ships the full `SimReport` back: inference is deterministic in the
//! report, so the parent re-derives outcomes locally and bit-identity to
//! the in-process executors holds by construction.

use std::io::{Read, Write};
use std::path::PathBuf;

use nni_measure::wire::FrameError;
use nni_scenario::{read_job, write_result};

/// Crash-injection hook for the requeue tests: when this variable names a
/// token file that does **not** exist yet, the worker creates it and
/// `abort()`s before answering its first job — so exactly one crash is
/// injected and the respawned worker (which finds the token) proceeds
/// normally.
pub const CRASH_ONCE_ENV: &str = "NNI_WORKER_CRASH_ONCE";

/// Serves jobs until a clean end-of-stream, returning how many were
/// answered. Any frame error — transport or codec — aborts the loop; the
/// binary maps it to a non-zero exit.
pub fn serve(input: &mut impl Read, output: &mut impl Write) -> Result<usize, FrameError> {
    let mut served = 0usize;
    while let Some((job_id, scenario)) = read_job(input)? {
        maybe_crash_once();
        let report = scenario.compile().emulate();
        write_result(output, job_id, &report)?;
        // The parent blocks on this result before sending the next job, so
        // a buffered stdout must drain per job, not per batch.
        output.flush()?;
        served += 1;
    }
    Ok(served)
}

fn maybe_crash_once() {
    if let Some(token) = std::env::var_os(CRASH_ONCE_ENV) {
        let token = PathBuf::from(token);
        if !token.exists() {
            // Leave the token first: the respawned worker must not crash
            // again, or the bounded retry budget would (correctly) give up.
            let _ = std::fs::write(&token, b"crashed once");
            std::process::abort();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nni_scenario::library::{topology_a_scenario, ExperimentParams};
    use nni_scenario::{read_result, write_job};

    #[test]
    fn serve_answers_jobs_in_order_until_eof() {
        let scenario = topology_a_scenario(ExperimentParams {
            duration_s: 2.0,
            ..ExperimentParams::default()
        });
        let mut input = Vec::new();
        write_job(&mut input, 4, &scenario).unwrap();
        write_job(&mut input, 9, &scenario.with_seed(7)).unwrap();
        let mut output = Vec::new();
        let served = serve(&mut input.as_slice(), &mut output).expect("clean run");
        assert_eq!(served, 2);
        let mut cursor = std::io::Cursor::new(&output);
        let (id_a, report_a) = read_result(&mut cursor).unwrap().expect("first result");
        let (id_b, report_b) = read_result(&mut cursor).unwrap().expect("second result");
        assert_eq!((id_a, id_b), (4, 9));
        assert_eq!(report_a, scenario.compile().emulate());
        assert_eq!(report_b, scenario.with_seed(7).compile().emulate());
        assert!(read_result(&mut cursor).unwrap().is_none());
    }

    #[test]
    fn garbage_input_is_a_frame_error_not_a_panic() {
        let mut output = Vec::new();
        let err = serve(&mut &b"not a frame at all"[..], &mut output).unwrap_err();
        assert!(matches!(err, FrameError::Codec(_)), "got {err}");
        assert!(output.is_empty(), "no result may be emitted for bad input");
    }
}
