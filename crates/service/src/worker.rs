//! The worker loop behind the `nni-worker` binary: a frame-in, frame-out
//! service over any byte stream (stdin/stdout in production, in-memory
//! buffers in tests).
//!
//! The worker deliberately runs only the *emulation* half of an experiment
//! and ships the full `SimReport` back: inference is deterministic in the
//! report, so the parent re-derives outcomes locally and bit-identity to
//! the in-process executors holds by construction.
//!
//! # Fault hooks
//!
//! The chaos harness drives this loop through two environment knobs:
//! [`CRASH_ONCE_ENV`] (the original single-crash token) and
//! [`FAULT_PLAN_ENV`](nni_scenario::FAULT_PLAN_ENV), a full seeded
//! [`FaultPlan`]. The plan is probed **once** per process into a
//! [`OnceLock`]; with the variable unset every job pays exactly one branch
//! on a cached `None`, so production throughput is untouched (gated by the
//! bench trajectory).

use std::io::{Read, Write};
use std::path::PathBuf;
use std::sync::OnceLock;

use nni_measure::wire::FrameError;
use nni_scenario::fault::{job_token, Fault, FaultPlan};
use nni_scenario::{read_job, result_frame_bytes, write_result, Scenario};

/// Crash-injection hook for the requeue tests: when this variable names a
/// token file that does **not** exist yet, the worker creates it and
/// `abort()`s before answering its first job — so exactly one crash is
/// injected and the respawned worker (which finds the token) proceeds
/// normally.
pub const CRASH_ONCE_ENV: &str = "NNI_WORKER_CRASH_ONCE";

/// Serves jobs until a clean end-of-stream, returning how many were
/// answered. Any frame error — transport or codec — aborts the loop; the
/// binary maps it to a non-zero exit.
pub fn serve(input: &mut impl Read, output: &mut impl Write) -> Result<usize, FrameError> {
    let mut served = 0usize;
    while let Some((job_id, scenario)) = read_job(input)? {
        maybe_crash_once();
        let token = fault_plan().map(|plan| {
            let token = job_token(
                scenario.measurement_fingerprint(),
                scenario.measurement.seed,
            );
            fault_before(plan, token);
            token
        });
        let report = scenario.compile().emulate();
        let mut handled = false;
        if let Some(token) = token {
            handled = fault_write(
                fault_plan().expect("probed"),
                token,
                job_id,
                output,
                &report,
            )?;
        }
        if !handled {
            write_result(output, job_id, &report)?;
            // The parent blocks on this result before sending the next job,
            // so a buffered stdout must drain per job, not per batch.
            output.flush()?;
        }
        served += 1;
    }
    Ok(served)
}

/// The job token fault draws key on — re-exported for tests that predict
/// the poison set of a population.
pub fn fault_token(scenario: &Scenario) -> u64 {
    job_token(
        scenario.measurement_fingerprint(),
        scenario.measurement.seed,
    )
}

/// The process-wide fault plan, probed from the environment exactly once.
fn fault_plan() -> Option<&'static FaultPlan> {
    static PLAN: OnceLock<Option<FaultPlan>> = OnceLock::new();
    PLAN.get_or_init(FaultPlan::from_env).as_ref()
}

/// Faults that fire before the emulation runs: poison (every attempt),
/// crash-before, hang, slow.
fn fault_before(plan: &FaultPlan, token: u64) {
    if plan.poisoned(token) {
        // Poison aborts on every attempt — no claim token.
        std::process::abort();
    }
    match plan.transient(token) {
        Some(Fault::CrashBefore) if plan.claim(token) => std::process::abort(),
        Some(Fault::Hang) if plan.claim(token) => {
            std::thread::sleep(std::time::Duration::from_millis(plan.hang_ms));
        }
        Some(Fault::Slow) if plan.claim(token) => {
            std::thread::sleep(std::time::Duration::from_millis(plan.slow_ms));
        }
        _ => {}
    }
}

/// Faults that corrupt the answer itself: crash-after (full frame, then
/// abort), torn frame (half the bytes, then abort), bit flip (trailer
/// corrupted, worker lives). Returns `true` when it wrote (or died) in
/// place of the normal result path.
fn fault_write(
    plan: &FaultPlan,
    token: u64,
    job_id: u64,
    output: &mut impl Write,
    report: &nni_emu::SimReport,
) -> Result<bool, FrameError> {
    let fault = match plan.transient(token) {
        Some(f @ (Fault::CrashAfter | Fault::TornFrame | Fault::BitFlip)) => f,
        _ => return Ok(false),
    };
    if !plan.claim(token) {
        return Ok(false);
    }
    let mut bytes = result_frame_bytes(job_id, report);
    match fault {
        Fault::CrashAfter => {
            output.write_all(&bytes).map_err(FrameError::Io)?;
            output.flush().map_err(FrameError::Io)?;
            std::process::abort();
        }
        Fault::TornFrame => {
            // Enough bytes that the parent is demonstrably *inside* the
            // frame (past magic + version + length), never a clean EOF.
            let cut = (bytes.len() / 2).max(17);
            output.write_all(&bytes[..cut]).map_err(FrameError::Io)?;
            output.flush().map_err(FrameError::Io)?;
            std::process::abort();
        }
        Fault::BitFlip => {
            // The final byte is inside the FNV trailer: the frame arrives
            // complete but fails its checksum.
            *bytes.last_mut().expect("frames are never empty") ^= 0x01;
            output.write_all(&bytes).map_err(FrameError::Io)?;
            output.flush().map_err(FrameError::Io)?;
            Ok(true)
        }
        _ => unreachable!("filtered above"),
    }
}

fn maybe_crash_once() {
    if let Some(token) = std::env::var_os(CRASH_ONCE_ENV) {
        let token = PathBuf::from(token);
        if !token.exists() {
            // Leave the token first: the respawned worker must not crash
            // again, or the bounded retry budget would (correctly) give up.
            let _ = std::fs::write(&token, b"crashed once");
            std::process::abort();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nni_scenario::library::{topology_a_scenario, ExperimentParams};
    use nni_scenario::{read_result, write_job};

    #[test]
    fn serve_answers_jobs_in_order_until_eof() {
        let scenario = topology_a_scenario(ExperimentParams {
            duration_s: 2.0,
            ..ExperimentParams::default()
        });
        let mut input = Vec::new();
        write_job(&mut input, 4, &scenario).unwrap();
        write_job(&mut input, 9, &scenario.with_seed(7)).unwrap();
        let mut output = Vec::new();
        let served = serve(&mut input.as_slice(), &mut output).expect("clean run");
        assert_eq!(served, 2);
        let mut cursor = std::io::Cursor::new(&output);
        let (id_a, report_a) = read_result(&mut cursor).unwrap().expect("first result");
        let (id_b, report_b) = read_result(&mut cursor).unwrap().expect("second result");
        assert_eq!((id_a, id_b), (4, 9));
        assert_eq!(report_a, scenario.compile().emulate());
        assert_eq!(report_b, scenario.with_seed(7).compile().emulate());
        assert!(read_result(&mut cursor).unwrap().is_none());
    }

    #[test]
    fn garbage_input_is_a_frame_error_not_a_panic() {
        let mut output = Vec::new();
        let err = serve(&mut &b"not a frame at all"[..], &mut output).unwrap_err();
        assert!(matches!(err, FrameError::Codec(_)), "got {err}");
        assert!(output.is_empty(), "no result may be emitted for bad input");
    }

    #[test]
    fn bitflip_fault_produces_a_complete_but_corrupt_frame() {
        let scenario = topology_a_scenario(ExperimentParams {
            duration_s: 2.0,
            ..ExperimentParams::default()
        });
        let token = fault_token(&scenario);
        let plan = FaultPlan {
            bitflip: 1.0,
            ..FaultPlan::seeded(3)
        };
        assert_eq!(plan.transient(token), Some(Fault::BitFlip));
        let report = scenario.compile().emulate();
        let mut output = Vec::new();
        let wrote = fault_write(&plan, token, 7, &mut output, &report).unwrap();
        assert!(wrote);
        let err = read_result(&mut output.as_slice()).unwrap_err();
        assert!(
            matches!(
                err,
                FrameError::Codec(nni_measure::codec::CodecError::ChecksumMismatch)
            ),
            "got {err}"
        );
    }
}
