//! The on-disk work queue `nni-serviced` drains and `nni-servicectl`
//! feeds.
//!
//! Layout under one spool root:
//!
//! ```text
//! incoming/*.job    submitted jobs (framed scenarios, see below)
//! running/*.job     claimed by the daemon (recovered on restart)
//! done/*.job        completed
//! failed/*.job      undecodable submissions
//! control/drain     marker: finish pending work, then exit
//! corpus/*.nniset   measurement sets spilled per completed job
//! verdicts.jsonl    one JSON line per completed job (+ batch summaries)
//! ```
//!
//! A job file holds exactly one `b"NNIWJOB"` frame (the same checksummed
//! framing the worker protocol uses on its pipes — one format end to end),
//! so a truncated or corrupted submission fails the decode loudly instead
//! of running a half-read scenario. Claiming is a `rename(2)` into
//! `running/`, which is atomic on one filesystem: a job is in exactly one
//! state directory at any instant, the invariant behind the
//! no-lost-no-duplicated-jobs guarantee.
//!
//! # Durability
//!
//! Every state transition is crash-safe, not just atomic: submissions
//! fsync the job file before the rename, and every rename fsyncs the
//! destination (and source) directory so the move survives a power cut,
//! not just a process crash. Directory fsync is best-effort — some
//! filesystems refuse it — but the rename itself is always durable-ordered
//! where the platform allows. [`Spool::recover`] additionally sweeps stale
//! `*.tmp` files (a submitter that died mid-write) and reports exactly
//! which claims it returned to the queue, so a restarted daemon can write
//! an audit line instead of silently re-running work.
//!
//! Jobs the daemon gives up on are parked with
//! [`Spool::park_failed_with_reason`]: next to `failed/<name>.job` lands a
//! machine-readable `failed/<name>.job.reason.json` describing why, so an
//! operator (or a sweeper) can triage poison jobs without re-running them.

use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use nni_scenario::{write_job, Scenario};

/// File extension of spooled jobs.
pub const JOB_EXT: &str = "job";

/// Monotone per-process submission counter (keeps names unique when one
/// process submits several jobs within a clock tick).
static SUBMITS: AtomicU64 = AtomicU64::new(0);

/// One spool directory with its state subdirectories materialized.
#[derive(Debug, Clone)]
pub struct Spool {
    root: PathBuf,
}

/// Queue-state tally for `nni-servicectl status`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpoolCounts {
    /// Jobs waiting in `incoming/`.
    pub incoming: usize,
    /// Jobs claimed in `running/`.
    pub running: usize,
    /// Jobs completed into `done/`.
    pub done: usize,
    /// Undecodable jobs parked in `failed/`.
    pub failed: usize,
    /// Verdict lines written so far.
    pub verdicts: usize,
}

impl Spool {
    /// Opens (creating if needed) a spool rooted at `root`.
    pub fn open(root: impl Into<PathBuf>) -> std::io::Result<Spool> {
        let root = root.into();
        for sub in ["incoming", "running", "done", "failed", "control"] {
            fs::create_dir_all(root.join(sub))?;
        }
        Ok(Spool { root })
    }

    /// The spool root.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Where completed jobs' measurement sets are spilled.
    pub fn corpus_dir(&self) -> PathBuf {
        self.root.join("corpus")
    }

    /// The verdict JSONL stream.
    pub fn verdicts_path(&self) -> PathBuf {
        self.root.join("verdicts.jsonl")
    }

    fn dir(&self, state: &str) -> PathBuf {
        self.root.join(state)
    }

    /// Submits one scenario: writes a framed job file into `incoming/` and
    /// returns its path.
    pub fn submit(&self, scenario: &Scenario) -> std::io::Result<PathBuf> {
        let nonce = SUBMITS.fetch_add(1, Ordering::Relaxed);
        let stamp = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0);
        let slug: String = scenario
            .name
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
            .take(48)
            .collect();
        let name = format!(
            "{slug}-{stamp:016x}-{}-{nonce:04}.{JOB_EXT}",
            std::process::id()
        );
        let mut bytes = Vec::new();
        write_job(&mut bytes, nonce, scenario).expect("Vec writes are infallible");
        let path = self.dir("incoming").join(&name);
        self.write_durable(&path, &bytes)?;
        Ok(path)
    }

    /// Write-then-fsync-then-rename(+dir fsync): a reader never sees a
    /// half-written file, and a completed write survives a power cut.
    fn write_durable(&self, path: &Path, bytes: &[u8]) -> std::io::Result<()> {
        let dir = path.parent().expect("spool paths have parents");
        let name = path.file_name().expect("spool paths have names");
        let tmp = dir.join(format!("{}.tmp", name.to_string_lossy()));
        {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(bytes)?;
            f.sync_all()?;
        }
        fs::rename(&tmp, path)?;
        sync_dir(dir);
        Ok(())
    }

    /// Jobs waiting in `incoming/`, sorted by file name (submission order
    /// for one submitter; stable for everyone).
    pub fn pending(&self) -> std::io::Result<Vec<PathBuf>> {
        let mut jobs: Vec<PathBuf> = fs::read_dir(self.dir("incoming"))?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|e| e == JOB_EXT))
            .collect();
        jobs.sort();
        Ok(jobs)
    }

    /// Claims a pending job: renames it into `running/` and returns the new
    /// path.
    pub fn claim(&self, job: &Path) -> std::io::Result<PathBuf> {
        self.rename_into(job, "running")
    }

    /// Returns a claimed job to the queue (daemon shutdown with the batch
    /// unfinished).
    pub fn requeue(&self, job: &Path) -> std::io::Result<PathBuf> {
        self.rename_into(job, "incoming")
    }

    /// Marks a claimed job completed.
    pub fn complete(&self, job: &Path) -> std::io::Result<PathBuf> {
        self.rename_into(job, "done")
    }

    /// Parks an unrunnable job (undecodable, or quarantined past its
    /// retry budget).
    pub fn park_failed(&self, job: &Path) -> std::io::Result<PathBuf> {
        self.rename_into(job, "failed")
    }

    /// Parks a job and writes a machine-readable reason next to it:
    /// `failed/<name>.job` + `failed/<name>.job.reason.json`. The reason
    /// string must already be a JSON object.
    pub fn park_failed_with_reason(&self, job: &Path, reason: &str) -> std::io::Result<PathBuf> {
        let parked = self.park_failed(job)?;
        let reason_path = reason_path_for(&parked);
        self.write_durable(&reason_path, reason.as_bytes())?;
        Ok(parked)
    }

    fn rename_into(&self, job: &Path, state: &str) -> std::io::Result<PathBuf> {
        let name = job.file_name().expect("job files have names");
        let src_dir = job.parent().map(Path::to_path_buf);
        let dst = self.dir(state).join(name);
        fs::rename(job, &dst)?;
        // Durable-order the move: destination directory first (the entry
        // must exist somewhere), then the source (the entry must not exist
        // twice after a replay).
        sync_dir(&self.dir(state));
        if let Some(src) = src_dir {
            sync_dir(&src);
        }
        Ok(dst)
    }

    /// Moves every `running/` job back to `incoming/` — called at daemon
    /// startup so jobs claimed by a crashed daemon are re-run, not lost —
    /// and sweeps stale `*.tmp` files left by a submitter that died
    /// mid-write. Returns the recovered jobs' queue paths, the audit
    /// record behind the daemon's `"recovered"` verdict line.
    pub fn recover(&self) -> std::io::Result<Vec<PathBuf>> {
        let mut recovered = Vec::new();
        for entry in fs::read_dir(self.dir("running"))? {
            let path = entry?.path();
            if path.extension().is_some_and(|e| e == JOB_EXT) {
                recovered.push(self.requeue(&path)?);
            }
        }
        for entry in fs::read_dir(self.dir("incoming"))? {
            let path = entry?.path();
            if path.extension().is_some_and(|e| e == "tmp") {
                let _ = fs::remove_file(&path);
            }
        }
        recovered.sort();
        Ok(recovered)
    }

    /// Requests an orderly shutdown: the daemon finishes pending work, then
    /// exits.
    pub fn request_drain(&self) -> std::io::Result<()> {
        fs::write(self.dir("control").join("drain"), b"")
    }

    /// Whether a drain was requested.
    pub fn drain_requested(&self) -> bool {
        self.dir("control").join("drain").exists()
    }

    /// Appends one line to the verdict stream and fsyncs it — a verdict a
    /// consumer has seen must still be there after a crash.
    pub fn append_verdict(&self, line: &str) -> std::io::Result<()> {
        let mut f = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(self.verdicts_path())?;
        writeln!(f, "{line}")?;
        f.sync_data()
    }

    /// Tallies every state directory plus the verdict stream.
    pub fn counts(&self) -> std::io::Result<SpoolCounts> {
        let count = |state: &str| -> std::io::Result<usize> {
            Ok(fs::read_dir(self.dir(state))?
                .filter_map(|e| e.ok())
                .filter(|e| e.path().extension().is_some_and(|x| x == JOB_EXT))
                .count())
        };
        let verdicts = match fs::read_to_string(self.verdicts_path()) {
            Ok(s) => s.lines().count(),
            Err(_) => 0,
        };
        Ok(SpoolCounts {
            incoming: count("incoming")?,
            running: count("running")?,
            done: count("done")?,
            failed: count("failed")?,
            verdicts,
        })
    }
}

/// Where the machine-readable reason of a parked job lives:
/// `<parked>.reason.json` (the `.job` extension is kept so the two files
/// sort together).
pub fn reason_path_for(parked: &Path) -> PathBuf {
    let mut name = parked.as_os_str().to_os_string();
    name.push(".reason.json");
    PathBuf::from(name)
}

/// Best-effort directory fsync: makes a completed rename durable where the
/// platform supports it; filesystems that refuse directory fsync are
/// silently tolerated (the rename itself is still atomic).
fn sync_dir(dir: &Path) {
    if let Ok(f) = fs::File::open(dir) {
        let _ = f.sync_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nni_scenario::library::{topology_a_scenario, ExperimentParams};
    use nni_scenario::read_job;

    fn temp_spool(tag: &str) -> Spool {
        let dir = std::env::temp_dir().join(format!(
            "nni-spool-test-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        Spool::open(dir).expect("spool opens")
    }

    #[test]
    fn submitted_jobs_round_trip_and_walk_the_lifecycle() {
        let spool = temp_spool("lifecycle");
        let scenario = topology_a_scenario(ExperimentParams {
            duration_s: 2.0,
            ..ExperimentParams::default()
        });
        let a = spool.submit(&scenario).unwrap();
        let b = spool.submit(&scenario.with_seed(9)).unwrap();
        assert_ne!(a, b, "submissions get unique names");
        assert_eq!(spool.pending().unwrap(), vec![a.clone(), b.clone()]);

        let bytes = fs::read(&a).unwrap();
        let (_, back) = read_job(&mut bytes.as_slice()).unwrap().expect("one job");
        assert_eq!(
            back.measurement_fingerprint(),
            scenario.measurement_fingerprint()
        );

        let running = spool.claim(&a).unwrap();
        assert_eq!(spool.counts().unwrap().running, 1);
        let done = spool.complete(&running).unwrap();
        assert!(done.starts_with(spool.root().join("done")));
        let parked = spool.park_failed(&spool.claim(&b).unwrap()).unwrap();
        assert!(parked.starts_with(spool.root().join("failed")));
        let c = spool.counts().unwrap();
        assert_eq!((c.incoming, c.running, c.done, c.failed), (0, 0, 1, 1));
        fs::remove_dir_all(spool.root()).unwrap();
    }

    #[test]
    fn recover_returns_running_jobs_to_the_queue() {
        let spool = temp_spool("recover");
        let scenario = topology_a_scenario(ExperimentParams {
            duration_s: 2.0,
            ..ExperimentParams::default()
        });
        let job = spool.submit(&scenario).unwrap();
        spool.claim(&job).unwrap();
        // A submitter that died mid-write leaves a stray tmp file; recovery
        // sweeps it so it never shadows a real submission.
        let stray = spool.root().join("incoming").join("halfdead.job.tmp");
        fs::write(&stray, b"partial").unwrap();
        assert!(spool.pending().unwrap().is_empty());
        let recovered = spool.recover().unwrap();
        assert_eq!(recovered.len(), 1);
        assert_eq!(spool.pending().unwrap(), recovered);
        assert!(!stray.exists(), "stale tmp swept");
        fs::remove_dir_all(spool.root()).unwrap();
    }

    #[test]
    fn parking_with_reason_leaves_a_machine_readable_trail() {
        let spool = temp_spool("reason");
        let scenario = topology_a_scenario(ExperimentParams {
            duration_s: 2.0,
            ..ExperimentParams::default()
        });
        let job = spool.submit(&scenario).unwrap();
        let claimed = spool.claim(&job).unwrap();
        let parked = spool
            .park_failed_with_reason(&claimed, "{\"kind\":\"quarantined\"}")
            .unwrap();
        assert!(parked.starts_with(spool.root().join("failed")));
        let reason = fs::read_to_string(reason_path_for(&parked)).unwrap();
        assert_eq!(reason, "{\"kind\":\"quarantined\"}");
        // The reason file must not inflate the failed-job count.
        assert_eq!(spool.counts().unwrap().failed, 1);
        fs::remove_dir_all(spool.root()).unwrap();
    }

    #[test]
    fn drain_marker_and_verdicts() {
        let spool = temp_spool("drain");
        assert!(!spool.drain_requested());
        spool.request_drain().unwrap();
        assert!(spool.drain_requested());
        spool.append_verdict("{\"type\":\"verdict\"}").unwrap();
        spool.append_verdict("{\"type\":\"batch\"}").unwrap();
        assert_eq!(spool.counts().unwrap().verdicts, 2);
        fs::remove_dir_all(spool.root()).unwrap();
    }
}
