//! The on-disk work queue `nni-serviced` drains and `nni-servicectl`
//! feeds.
//!
//! Layout under one spool root:
//!
//! ```text
//! incoming/*.job    submitted jobs (framed scenarios, see below)
//! running/*.job     claimed by the daemon (recovered on restart)
//! done/*.job        completed
//! failed/*.job      undecodable submissions
//! control/drain     marker: finish pending work, then exit
//! corpus/*.nniset   measurement sets spilled per completed job
//! verdicts.jsonl    one JSON line per completed job (+ batch summaries)
//! ```
//!
//! A job file holds exactly one `b"NNIWJOB"` frame (the same checksummed
//! framing the worker protocol uses on its pipes — one format end to end),
//! so a truncated or corrupted submission fails the decode loudly instead
//! of running a half-read scenario. Claiming is a `rename(2)` into
//! `running/`, which is atomic on one filesystem: a job is in exactly one
//! state directory at any instant, the invariant behind the
//! no-lost-no-duplicated-jobs guarantee.

use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use nni_scenario::{write_job, Scenario};

/// File extension of spooled jobs.
pub const JOB_EXT: &str = "job";

/// Monotone per-process submission counter (keeps names unique when one
/// process submits several jobs within a clock tick).
static SUBMITS: AtomicU64 = AtomicU64::new(0);

/// One spool directory with its state subdirectories materialized.
#[derive(Debug, Clone)]
pub struct Spool {
    root: PathBuf,
}

/// Queue-state tally for `nni-servicectl status`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpoolCounts {
    /// Jobs waiting in `incoming/`.
    pub incoming: usize,
    /// Jobs claimed in `running/`.
    pub running: usize,
    /// Jobs completed into `done/`.
    pub done: usize,
    /// Undecodable jobs parked in `failed/`.
    pub failed: usize,
    /// Verdict lines written so far.
    pub verdicts: usize,
}

impl Spool {
    /// Opens (creating if needed) a spool rooted at `root`.
    pub fn open(root: impl Into<PathBuf>) -> std::io::Result<Spool> {
        let root = root.into();
        for sub in ["incoming", "running", "done", "failed", "control"] {
            fs::create_dir_all(root.join(sub))?;
        }
        Ok(Spool { root })
    }

    /// The spool root.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Where completed jobs' measurement sets are spilled.
    pub fn corpus_dir(&self) -> PathBuf {
        self.root.join("corpus")
    }

    /// The verdict JSONL stream.
    pub fn verdicts_path(&self) -> PathBuf {
        self.root.join("verdicts.jsonl")
    }

    fn dir(&self, state: &str) -> PathBuf {
        self.root.join(state)
    }

    /// Submits one scenario: writes a framed job file into `incoming/` and
    /// returns its path.
    pub fn submit(&self, scenario: &Scenario) -> std::io::Result<PathBuf> {
        let nonce = SUBMITS.fetch_add(1, Ordering::Relaxed);
        let stamp = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0);
        let slug: String = scenario
            .name
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
            .take(48)
            .collect();
        let name = format!(
            "{slug}-{stamp:016x}-{}-{nonce:04}.{JOB_EXT}",
            std::process::id()
        );
        let mut bytes = Vec::new();
        write_job(&mut bytes, nonce, scenario).expect("Vec writes are infallible");
        // Write-then-rename so a reader never sees a half-written job.
        let tmp = self.dir("incoming").join(format!("{name}.tmp"));
        fs::write(&tmp, &bytes)?;
        let path = self.dir("incoming").join(&name);
        fs::rename(&tmp, &path)?;
        Ok(path)
    }

    /// Jobs waiting in `incoming/`, sorted by file name (submission order
    /// for one submitter; stable for everyone).
    pub fn pending(&self) -> std::io::Result<Vec<PathBuf>> {
        let mut jobs: Vec<PathBuf> = fs::read_dir(self.dir("incoming"))?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|e| e == JOB_EXT))
            .collect();
        jobs.sort();
        Ok(jobs)
    }

    /// Claims a pending job: renames it into `running/` and returns the new
    /// path.
    pub fn claim(&self, job: &Path) -> std::io::Result<PathBuf> {
        self.rename_into(job, "running")
    }

    /// Returns a claimed job to the queue (daemon shutdown with the batch
    /// unfinished).
    pub fn requeue(&self, job: &Path) -> std::io::Result<PathBuf> {
        self.rename_into(job, "incoming")
    }

    /// Marks a claimed job completed.
    pub fn complete(&self, job: &Path) -> std::io::Result<PathBuf> {
        self.rename_into(job, "done")
    }

    /// Parks an undecodable job.
    pub fn park_failed(&self, job: &Path) -> std::io::Result<PathBuf> {
        self.rename_into(job, "failed")
    }

    fn rename_into(&self, job: &Path, state: &str) -> std::io::Result<PathBuf> {
        let name = job.file_name().expect("job files have names");
        let dst = self.dir(state).join(name);
        fs::rename(job, &dst)?;
        Ok(dst)
    }

    /// Moves every `running/` job back to `incoming/` — called at daemon
    /// startup so jobs claimed by a crashed daemon are re-run, not lost.
    pub fn recover(&self) -> std::io::Result<usize> {
        let mut recovered = 0;
        for entry in fs::read_dir(self.dir("running"))? {
            let path = entry?.path();
            if path.extension().is_some_and(|e| e == JOB_EXT) {
                self.requeue(&path)?;
                recovered += 1;
            }
        }
        Ok(recovered)
    }

    /// Requests an orderly shutdown: the daemon finishes pending work, then
    /// exits.
    pub fn request_drain(&self) -> std::io::Result<()> {
        fs::write(self.dir("control").join("drain"), b"")
    }

    /// Whether a drain was requested.
    pub fn drain_requested(&self) -> bool {
        self.dir("control").join("drain").exists()
    }

    /// Appends one line to the verdict stream.
    pub fn append_verdict(&self, line: &str) -> std::io::Result<()> {
        let mut f = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(self.verdicts_path())?;
        writeln!(f, "{line}")
    }

    /// Tallies every state directory plus the verdict stream.
    pub fn counts(&self) -> std::io::Result<SpoolCounts> {
        let count = |state: &str| -> std::io::Result<usize> {
            Ok(fs::read_dir(self.dir(state))?
                .filter_map(|e| e.ok())
                .filter(|e| e.path().extension().is_some_and(|x| x == JOB_EXT))
                .count())
        };
        let verdicts = match fs::read_to_string(self.verdicts_path()) {
            Ok(s) => s.lines().count(),
            Err(_) => 0,
        };
        Ok(SpoolCounts {
            incoming: count("incoming")?,
            running: count("running")?,
            done: count("done")?,
            failed: count("failed")?,
            verdicts,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nni_scenario::library::{topology_a_scenario, ExperimentParams};
    use nni_scenario::read_job;

    fn temp_spool(tag: &str) -> Spool {
        let dir = std::env::temp_dir().join(format!(
            "nni-spool-test-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        Spool::open(dir).expect("spool opens")
    }

    #[test]
    fn submitted_jobs_round_trip_and_walk_the_lifecycle() {
        let spool = temp_spool("lifecycle");
        let scenario = topology_a_scenario(ExperimentParams {
            duration_s: 2.0,
            ..ExperimentParams::default()
        });
        let a = spool.submit(&scenario).unwrap();
        let b = spool.submit(&scenario.with_seed(9)).unwrap();
        assert_ne!(a, b, "submissions get unique names");
        assert_eq!(spool.pending().unwrap(), vec![a.clone(), b.clone()]);

        let bytes = fs::read(&a).unwrap();
        let (_, back) = read_job(&mut bytes.as_slice()).unwrap().expect("one job");
        assert_eq!(
            back.measurement_fingerprint(),
            scenario.measurement_fingerprint()
        );

        let running = spool.claim(&a).unwrap();
        assert_eq!(spool.counts().unwrap().running, 1);
        let done = spool.complete(&running).unwrap();
        assert!(done.starts_with(spool.root().join("done")));
        let parked = spool.park_failed(&spool.claim(&b).unwrap()).unwrap();
        assert!(parked.starts_with(spool.root().join("failed")));
        let c = spool.counts().unwrap();
        assert_eq!((c.incoming, c.running, c.done, c.failed), (0, 0, 1, 1));
        fs::remove_dir_all(spool.root()).unwrap();
    }

    #[test]
    fn recover_returns_running_jobs_to_the_queue() {
        let spool = temp_spool("recover");
        let scenario = topology_a_scenario(ExperimentParams {
            duration_s: 2.0,
            ..ExperimentParams::default()
        });
        let job = spool.submit(&scenario).unwrap();
        spool.claim(&job).unwrap();
        assert!(spool.pending().unwrap().is_empty());
        assert_eq!(spool.recover().unwrap(), 1);
        assert_eq!(spool.pending().unwrap().len(), 1);
        fs::remove_dir_all(spool.root()).unwrap();
    }

    #[test]
    fn drain_marker_and_verdicts() {
        let spool = temp_spool("drain");
        assert!(!spool.drain_requested());
        spool.request_drain().unwrap();
        assert!(spool.drain_requested());
        spool.append_verdict("{\"type\":\"verdict\"}").unwrap();
        spool.append_verdict("{\"type\":\"batch\"}").unwrap();
        assert_eq!(spool.counts().unwrap().verdicts, 2);
        fs::remove_dir_all(spool.root()).unwrap();
    }
}
