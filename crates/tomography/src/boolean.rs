//! Boolean network tomography (Nguyen–Thiran \[22\], Duffield \[13\]).
//!
//! The classic *congested-link location* problem: given per-interval path
//! congestion snapshots, explain each snapshot by a smallest set of congested
//! links. This is the technique the paper "turns on its head" — it
//! **assumes the network is neutral**, so under differentiation it
//! mis-attributes class-specific congestion to innocent links (the ablation
//! benches demonstrate exactly that).

use nni_topology::{LinkId, PathId, Topology};
use std::collections::HashSet;

/// One interval's observation: which paths were congested.
pub type Snapshot = Vec<bool>;

/// Result of boolean tomography.
#[derive(Debug, Clone)]
pub struct BooleanTomography {
    /// Estimated per-link congestion probability (fraction of intervals in
    /// which the link was blamed).
    pub link_congestion_prob: Vec<f64>,
    /// Number of snapshots processed.
    pub intervals: usize,
}

impl BooleanTomography {
    /// Estimated congestion probability of one link.
    pub fn prob(&self, l: LinkId) -> f64 {
        self.link_congestion_prob[l.index()]
    }
}

/// Greedy minimum-set-cover explanation of one snapshot: repeatedly blame
/// the link that covers the most still-unexplained congested paths, never
/// blaming a link that would implicate a congestion-free path.
///
/// Returns the blamed links (empty when nothing was congested).
pub fn explain_snapshot(topology: &Topology, snapshot: &Snapshot) -> Vec<LinkId> {
    assert_eq!(
        snapshot.len(),
        topology.path_count(),
        "snapshot size mismatch"
    );
    let congested: HashSet<PathId> = topology
        .path_ids()
        .filter(|p| snapshot[p.index()])
        .collect();
    if congested.is_empty() {
        return Vec::new();
    }
    // Candidate links: those traversed ONLY by congested paths (blaming any
    // other link would contradict a good path's observation).
    let candidates: Vec<LinkId> = topology
        .link_ids()
        .filter(|&l| {
            let through = topology.paths_through(l);
            !through.is_empty() && through.iter().all(|p| congested.contains(p))
        })
        .collect();

    let mut unexplained = congested;
    let mut blamed = Vec::new();
    let mut remaining = candidates;
    while !unexplained.is_empty() {
        // Pick the candidate covering the most unexplained paths.
        let best = remaining
            .iter()
            .enumerate()
            .max_by_key(|(_, &l)| {
                topology
                    .paths_through(l)
                    .iter()
                    .filter(|p| unexplained.contains(p))
                    .count()
            })
            .map(|(i, &l)| (i, l));
        let Some((idx, link)) = best else { break };
        let covers: Vec<PathId> = topology
            .paths_through(link)
            .iter()
            .filter(|p| unexplained.contains(p))
            .copied()
            .collect();
        if covers.is_empty() {
            break; // inconsistent observation: no candidate explains the rest
        }
        for p in covers {
            unexplained.remove(&p);
        }
        blamed.push(link);
        remaining.swap_remove(idx);
    }
    blamed
}

/// Runs boolean tomography over a sequence of snapshots.
pub fn infer(topology: &Topology, snapshots: &[Snapshot]) -> BooleanTomography {
    let mut counts = vec![0usize; topology.link_count()];
    for snap in snapshots {
        for l in explain_snapshot(topology, snap) {
            counts[l.index()] += 1;
        }
    }
    let n = snapshots.len().max(1);
    BooleanTomography {
        link_congestion_prob: counts.iter().map(|&c| c as f64 / n as f64).collect(),
        intervals: snapshots.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nni_topology::library::{figure5, topology_a};

    #[test]
    fn shared_link_blamed_when_all_congested() {
        // Figure 5 star: if all three paths congest together, the shared l1
        // is the single-link explanation.
        let t = figure5();
        let l1 = t.topology.link_by_name("l1").unwrap();
        let blamed = explain_snapshot(&t.topology, &vec![true, true, true]);
        assert_eq!(blamed, vec![l1]);
    }

    #[test]
    fn leaf_link_blamed_for_single_congested_path() {
        let t = figure5();
        let l3 = t.topology.link_by_name("l3").unwrap();
        // Only p2 (index 1) congested: must blame l3, not the shared l1.
        let blamed = explain_snapshot(&t.topology, &vec![false, true, false]);
        assert_eq!(blamed, vec![l3]);
    }

    #[test]
    fn clean_snapshot_blames_nothing() {
        let t = figure5();
        assert!(explain_snapshot(&t.topology, &vec![false, false, false]).is_empty());
    }

    #[test]
    fn differentiation_fools_the_baseline() {
        // Topology A with l5 policing class 2: paths p3, p4 congest together
        // while p1, p2 stay clean. Boolean tomography CANNOT blame the true
        // culprit l5 (that would implicate the clean p1/p2); it blames the
        // innocent access links of p3/p4 instead. This is the paper's core
        // motivation.
        let t = topology_a(0.05, 0.05);
        let l5 = t.topology.link_by_name("l5").unwrap();
        let snapshots: Vec<Snapshot> = (0..100)
            .map(|i| {
                if i % 2 == 0 {
                    vec![false, false, true, true]
                } else {
                    vec![false, false, false, false]
                }
            })
            .collect();
        let result = infer(&t.topology, &snapshots);
        assert_eq!(result.prob(l5), 0.0, "baseline exonerates the real culprit");
        // The blame lands on p3/p4's private links.
        let blamed_total: f64 = result.link_congestion_prob.iter().sum();
        assert!(blamed_total > 0.5, "blame went somewhere");
    }

    #[test]
    fn probabilities_match_frequency() {
        let t = figure5();
        let l1 = t.topology.link_by_name("l1").unwrap();
        let snaps: Vec<Snapshot> = (0..10)
            .map(|i| {
                if i < 3 {
                    vec![true, true, true]
                } else {
                    vec![false, false, false]
                }
            })
            .collect();
        let r = infer(&t.topology, &snaps);
        assert!((r.prob(l1) - 0.3).abs() < 1e-12);
        assert_eq!(r.intervals, 10);
    }
}
