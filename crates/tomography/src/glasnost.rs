//! A Glasnost-style differential detector (Dischinger et al. \[11\]).
//!
//! Glasnost detects per-*path* differentiation by comparing the performance
//! of two flow types exchanged between the same pair of end-hosts. Cast into
//! this codebase's terms: given the class partition (which Glasnost knows —
//! it crafts the two flow types itself), compare the per-class congestion
//! probability of each path-pair sharing the same endpoints-ish context.
//!
//! The contrast with the paper's algorithm:
//!
//! * Glasnost **requires knowing the differentiation criterion** (the class
//!   partition) — Algorithm 1 does not;
//! * Glasnost yields a per-path verdict and **cannot localize** the
//!   violation to links — Algorithm 1 can.

use nni_measure::MeasurementLog;
use nni_topology::PathId;

/// Verdict of the differential detector.
#[derive(Debug, Clone, PartialEq)]
pub struct GlasnostVerdict {
    /// Mean congestion probability of class-1 paths.
    pub class1_congestion: f64,
    /// Mean congestion probability of class-2 paths.
    pub class2_congestion: f64,
    /// Whether differentiation was declared.
    pub differentiated: bool,
}

/// Declares differentiation when the two classes' mean congestion
/// probabilities differ by more than `margin` (both absolutely and by a
/// factor of two, mirroring Glasnost's noise rules).
pub fn detect(
    log: &MeasurementLog,
    class1: &[PathId],
    class2: &[PathId],
    loss_threshold: f64,
    margin: f64,
) -> GlasnostVerdict {
    let mean = |paths: &[PathId]| -> f64 {
        if paths.is_empty() {
            return 0.0;
        }
        paths
            .iter()
            .map(|&p| log.congestion_probability(p, loss_threshold))
            .sum::<f64>()
            / paths.len() as f64
    };
    let c1 = mean(class1);
    let c2 = mean(class2);
    let (lo, hi) = if c1 <= c2 { (c1, c2) } else { (c2, c1) };
    let differentiated = hi - lo > margin && hi > 2.0 * lo;
    GlasnostVerdict {
        class1_congestion: c1,
        class2_congestion: c2,
        differentiated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn log_with(c1_loss: bool, c2_loss: bool) -> MeasurementLog {
        let mut log = MeasurementLog::new(4, 0.1);
        for t in 0..100 {
            for p in 0..4 {
                log.record_sent(t, PathId(p), 100);
            }
            if t % 2 == 0 {
                if c1_loss {
                    log.record_lost(t, PathId(0), 10);
                    log.record_lost(t, PathId(1), 10);
                }
                if c2_loss {
                    log.record_lost(t, PathId(2), 10);
                    log.record_lost(t, PathId(3), 10);
                }
            }
        }
        log
    }

    const C1: [PathId; 2] = [PathId(0), PathId(1)];
    const C2: [PathId; 2] = [PathId(2), PathId(3)];

    #[test]
    fn detects_one_sided_congestion() {
        let log = log_with(false, true);
        let v = detect(&log, &C1, &C2, 0.01, 0.05);
        assert!(v.differentiated);
        assert!(v.class2_congestion > v.class1_congestion);
    }

    #[test]
    fn symmetric_congestion_is_not_differentiation() {
        let log = log_with(true, true);
        let v = detect(&log, &C1, &C2, 0.01, 0.05);
        assert!(!v.differentiated);
    }

    #[test]
    fn clean_network_is_not_differentiation() {
        let log = log_with(false, false);
        let v = detect(&log, &C1, &C2, 0.01, 0.05);
        assert!(!v.differentiated);
        assert_eq!(v.class1_congestion, 0.0);
    }
}
