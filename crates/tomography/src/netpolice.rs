//! A NetPolice-style baseline (Zhang, Mao, Zhang \[31\]).
//!
//! NetPolice detects ISP-level differentiation by *directly measuring* the
//! loss rate an ISP inflicts on different traffic using traceroute-like
//! probes, then comparing the per-class rates. It localizes (per ISP) but
//! fundamentally relies on probes that (a) can be generated toward interior
//! routers and (b) are treated like regular traffic — the two assumptions
//! the paper's approach drops (§8).
//!
//! In this codebase the "probe measurements" are stood in by the emulator's
//! per-link ground truth: what NetPolice would measure *if* its probes were
//! perfect. The ablation bench contrasts this best-case baseline with
//! Algorithm 1, which needs no interior measurements at all.

use nni_topology::LinkId;

/// Per-link per-class directly measured loss rates (the probe results).
#[derive(Debug, Clone)]
pub struct ProbeMeasurements {
    /// `loss_rate[link][class]` — fraction of probes lost.
    pub loss_rate: Vec<Vec<f64>>,
}

/// Verdict for one link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkVerdict {
    /// Maximum per-class loss rate.
    pub max_rate: f64,
    /// Minimum per-class loss rate.
    pub min_rate: f64,
    /// Whether the link was flagged as differentiating.
    pub differentiates: bool,
}

/// Flags links whose per-class loss rates differ by more than `margin`
/// (absolute) *and* a factor of two (NetPolice's significance heuristic,
/// simplified).
pub fn detect(probes: &ProbeMeasurements, margin: f64) -> Vec<LinkVerdict> {
    probes
        .loss_rate
        .iter()
        .map(|rates| {
            let max_rate = rates.iter().cloned().fold(0.0, f64::max);
            let min_rate = rates.iter().cloned().fold(f64::INFINITY, f64::min);
            let min_rate = if min_rate.is_finite() { min_rate } else { 0.0 };
            let differentiates = max_rate - min_rate > margin && max_rate > 2.0 * min_rate;
            LinkVerdict {
                max_rate,
                min_rate,
                differentiates,
            }
        })
        .collect()
}

/// Convenience accessor.
pub fn flagged_links(verdicts: &[LinkVerdict]) -> Vec<LinkId> {
    verdicts
        .iter()
        .enumerate()
        .filter(|(_, v)| v.differentiates)
        .map(|(i, _)| LinkId(i))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_clearly_skewed_link() {
        let probes = ProbeMeasurements {
            loss_rate: vec![
                vec![0.001, 0.002], // neutral-ish
                vec![0.001, 0.050], // differentiating
                vec![0.0, 0.0],     // clean
            ],
        };
        let v = detect(&probes, 0.01);
        assert!(!v[0].differentiates);
        assert!(v[1].differentiates);
        assert!(!v[2].differentiates);
        assert_eq!(flagged_links(&v), vec![LinkId(1)]);
    }

    #[test]
    fn symmetric_loss_is_not_differentiation() {
        let probes = ProbeMeasurements {
            loss_rate: vec![vec![0.08, 0.085]],
        };
        let v = detect(&probes, 0.01);
        assert!(
            !v[0].differentiates,
            "equal heavy loss is congestion, not bias"
        );
    }

    #[test]
    fn margin_suppresses_noise() {
        let probes = ProbeMeasurements {
            loss_rate: vec![vec![0.000, 0.004]],
        };
        assert!(!detect(&probes, 0.01)[0].differentiates);
        assert!(detect(&probes, 0.001)[0].differentiates);
    }

    #[test]
    fn single_class_never_differentiates() {
        let probes = ProbeMeasurements {
            loss_rate: vec![vec![0.3]],
        };
        assert!(!detect(&probes, 0.01)[0].differentiates);
    }
}
