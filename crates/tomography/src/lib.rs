//! # nni-tomography
//!
//! Baselines from the related-work landscape (§8), used by the ablation
//! benches to demonstrate *why* neutrality inference has to turn tomography
//! on its head:
//!
//! * [`boolean`] — Nguyen–Thiran-style boolean tomography \[22\]: explains
//!   each congestion snapshot with a smallest set of congested links.
//!   Assumes neutrality; under differentiation it exonerates the culprit
//!   link and blames innocent ones.
//! * [`loss`] — classic least-squares loss tomography \[7, 8\]: fits one
//!   performance number per link. Under differentiation the fit's residual
//!   explodes — which is exactly the unsolvability signal Lemma 1 turns
//!   into a detector.
//! * [`glasnost`] — a Glasnost-style differential detector \[11\]: knows the
//!   class partition, detects per-path differentiation, cannot localize.
//! * [`netpolice`] — a NetPolice-style per-link probe comparator \[31\]:
//!   localizes, but only given direct interior measurements that real
//!   networks may treat differently from user traffic.

pub mod boolean;
pub mod glasnost;
pub mod loss;
pub mod netpolice;

pub use boolean::{explain_snapshot, infer as boolean_infer, BooleanTomography, Snapshot};
pub use glasnost::{detect as glasnost_detect, GlasnostVerdict};
pub use loss::{infer as loss_infer, LossTomography};
pub use netpolice::{detect as netpolice_detect, flagged_links, LinkVerdict, ProbeMeasurements};
