//! Least-squares loss tomography (Caceres et al. \[7\] lineage).
//!
//! Solves `y = A({singletons}) · x` for per-link performance numbers in the
//! least-squares sense, with negative estimates clipped to zero. Like all of
//! classic tomography it **assumes neutrality** — a single number per link —
//! so under differentiation its per-link estimates are a class-blind average
//! and the residual blows up (which is, in essence, the paper's Lemma 1).

use nni_core::routing_matrix;
use nni_linalg::{lstsq, norm2, residual};
use nni_topology::{LinkId, PathSet, Topology};

/// Result of least-squares loss tomography.
#[derive(Debug, Clone)]
pub struct LossTomography {
    /// Per-link performance-number estimates (clipped at zero).
    pub link_perf: Vec<f64>,
    /// Residual norm of the fit — large residuals signal that no neutral
    /// explanation fits the observations.
    pub residual_norm: f64,
}

impl LossTomography {
    /// Estimate for one link.
    pub fn perf(&self, l: LinkId) -> f64 {
        self.link_perf[l.index()]
    }
}

/// Fits per-link performance numbers to pathset observations.
///
/// `pathsets` and `y` must align; using all singletons is the classic
/// formulation, adding multi-path pathsets tightens the fit.
pub fn infer(topology: &Topology, pathsets: &[PathSet], y: &[f64]) -> LossTomography {
    assert_eq!(
        pathsets.len(),
        y.len(),
        "observations must align with pathsets"
    );
    let a = routing_matrix(topology, pathsets);
    let x = lstsq(&a, y);
    let r = residual(&a, &x, y);
    LossTomography {
        link_perf: x.into_iter().map(|v| v.max(0.0)).collect(),
        residual_norm: norm2(&r),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nni_core::{Classes, EquivalentNetwork, LinkPerf, NetworkPerf};
    use nni_topology::library::figure1;
    use nni_topology::{power_set, PathId};

    #[test]
    fn recovers_neutral_ground_truth() {
        let t = figure1();
        let truth = [0.05, 0.1, 0.2, 0.0];
        let pathsets = power_set(t.topology.path_count());
        let classes = Classes::single(&t.topology);
        let perf = NetworkPerf::neutral(&truth, 1);
        let eq = EquivalentNetwork::build(&t.topology, &classes, &perf);
        let y: Vec<f64> = pathsets.iter().map(|p| eq.pathset_perf(p)).collect();
        let r = infer(&t.topology, &pathsets, &y);
        assert!(r.residual_norm < 1e-9, "neutral network fits exactly");
        for (k, &want) in truth.iter().enumerate() {
            assert!(
                (r.perf(LinkId(k)) - want).abs() < 1e-6,
                "link {k}: got {} want {want}",
                r.perf(LinkId(k))
            );
        }
    }

    #[test]
    fn differentiation_inflates_residual() {
        // Figure 1 with non-neutral l1: no neutral x fits all pathsets.
        let t = figure1();
        let classes = Classes::new(&t.topology, t.classes.clone()).unwrap();
        let l1 = t.topology.link_by_name("l1").unwrap();
        let perf = NetworkPerf::congestion_free(&t.topology, 2)
            .with_link(l1, LinkPerf::per_class(vec![0.0, 0.6]));
        let eq = EquivalentNetwork::build(&t.topology, &classes, &perf);
        let pathsets = power_set(t.topology.path_count());
        let y: Vec<f64> = pathsets.iter().map(|p| eq.pathset_perf(p)).collect();
        let r = infer(&t.topology, &pathsets, &y);
        assert!(
            r.residual_norm > 0.1,
            "non-neutral observations must not fit: residual {}",
            r.residual_norm
        );
    }

    #[test]
    fn estimates_clip_at_zero() {
        let t = figure1();
        // Deliberately inconsistent small system pushing a variable negative.
        let pathsets = vec![
            PathSet::single(PathId(0)),
            PathSet::single(PathId(1)),
            PathSet::single(PathId(2)),
        ];
        let y = [0.0, 0.5, 0.0];
        let r = infer(&t.topology, &pathsets, &y);
        assert!(r.link_perf.iter().all(|&v| v >= 0.0));
    }
}
