//! Seeded random scenario generation: [`ScenarioGen`] emits *valid*
//! scenarios spanning the API's axes — topology family, differentiation
//! placement/rate/burst, traffic mix, congestion-control fleets, and
//! per-link queue overrides.
//!
//! The generator powers two things:
//!
//! * the **randomized invariant suite** (`crates/scenario/tests/
//!   invariants.rs`): serial/sharded executor identity, packet
//!   conservation, and "neutral networks are not flagged" over a seeded
//!   population of scenarios nobody hand-picked;
//! * **builder property tests** (`crates/scenario/tests/
//!   proptest_scenario.rs`): every generated spec re-validates `Ok`, and
//!   targeted invalid mutations yield the expected typed
//!   [`ScenarioError`](crate::ScenarioError).
//!
//! Determinism: same seed, same scenario stream — the invariant suite runs
//! CI with a pinned seed (`NNI_INVARIANT_SEED`).
//!
//! ```
//! use nni_scenario::ScenarioGen;
//!
//! let mut g = ScenarioGen::new(7);
//! let a = g.scenario();
//! let b = ScenarioGen::new(7).scenario();
//! assert_eq!(a.name, b.name); // same seed -> same stream
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use nni_emu::{policer_at_fraction, shaper_at_fraction, CcFleet, CcKind};
use nni_topology::library::{dumbbell, parking_lot, topology_a, PaperTopology};
use nni_topology::LinkId;

use crate::spec::{Expectation, QueueOverride, Scenario, TrafficProfile};

/// Knobs bounding the generated population.
///
/// The defaults put every scenario in the *moderately congested* regime
/// (several parallel slots per path, short idle gaps, 6–10 simulated
/// seconds): enough congested measurement intervals that Algorithm 1's
/// pair estimates stabilise and a neutral network reliably reads as
/// neutral. Lightly loaded scenarios at short durations produce small,
/// noisy estimates whose spread crosses the decision thresholds — a
/// sampling artefact, not differentiation — so the generator stays out of
/// that regime by default.
#[derive(Debug, Clone, Copy)]
pub struct GenConfig {
    /// Simulated duration drawn uniformly from this range (seconds). Kept
    /// short by default — the generator exists for test populations.
    pub duration_range_s: (f64, f64),
    /// Probability that a scenario carries differentiation at all. Zero
    /// makes every emitted scenario neutral (the invariant suite's control
    /// population).
    pub differentiation_prob: f64,
    /// Probability that a traffic profile gets a mixed CC fleet.
    pub mixed_fleet_prob: f64,
    /// Probability that a scenario overrides at least one link's queue.
    pub queue_override_prob: f64,
    /// Upper bound (inclusive) on parallel flow slots per profile.
    pub max_parallel: usize,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            duration_range_s: (6.0, 10.0),
            differentiation_prob: 0.6,
            mixed_fleet_prob: 0.4,
            queue_override_prob: 0.3,
            max_parallel: 10,
        }
    }
}

/// Where [`ScenarioGen`] draws its topologies from.
///
/// The default [`LibraryTopologies`] source draws the hand-built paper
/// topologies (topology A, dumbbells, parking lots); `nni-topogen` plugs in
/// generated ISP-like hierarchies through the same seam. A source draws
/// from the generator's own RNG, so a fixed seed still pins the whole
/// scenario stream.
pub trait TopologySource: std::fmt::Debug {
    /// Draws the next topology (with its class partition) plus a family
    /// label for the scenario name.
    fn draw(&mut self, rng: &mut StdRng) -> (PaperTopology, String);
}

/// The built-in source: the `nni_topology::library` paper topologies, with
/// randomized RTTs and fan-outs.
#[derive(Debug, Clone, Copy, Default)]
pub struct LibraryTopologies;

impl TopologySource for LibraryTopologies {
    fn draw(&mut self, rng: &mut StdRng) -> (PaperTopology, String) {
        match rng.gen_range(0u32..4) {
            0 => {
                let rtt = rng.gen_range(0.04..0.08);
                (topology_a(rtt, rtt), "topology-a".into())
            }
            1 => {
                let n1 = rng.gen_range(1usize..=3);
                let n2 = rng.gen_range(1usize..=3);
                (dumbbell(n1, n2), "dumbbell".into())
            }
            2 => {
                let segments = rng.gen_range(2usize..=4);
                (parking_lot(segments), "parking-lot".into())
            }
            _ => (dumbbell(2, 2), "dumbbell-2x2".into()),
        }
    }
}

/// A deterministic stream of valid random scenarios (see the module docs).
#[derive(Debug)]
pub struct ScenarioGen {
    rng: StdRng,
    cfg: GenConfig,
    counter: u64,
    source: Box<dyn TopologySource>,
}

impl ScenarioGen {
    /// A generator with the default [`GenConfig`].
    pub fn new(seed: u64) -> ScenarioGen {
        ScenarioGen::with_config(seed, GenConfig::default())
    }

    /// A generator with explicit bounds.
    pub fn with_config(seed: u64, cfg: GenConfig) -> ScenarioGen {
        ScenarioGen::with_source(seed, cfg, LibraryTopologies)
    }

    /// A generator drawing topologies from an explicit source — how
    /// `nni-topogen` routes generated hierarchies into the population
    /// machinery.
    pub fn with_source(
        seed: u64,
        cfg: GenConfig,
        source: impl TopologySource + 'static,
    ) -> ScenarioGen {
        ScenarioGen {
            rng: StdRng::seed_from_u64(seed),
            cfg,
            counter: 0,
            source: Box::new(source),
        }
    }

    /// A generator that only emits neutral scenarios (no differentiation).
    pub fn neutral_only(seed: u64) -> ScenarioGen {
        ScenarioGen::with_config(
            seed,
            GenConfig {
                differentiation_prob: 0.0,
                ..GenConfig::default()
            },
        )
    }

    /// The next random scenario. Always valid: the result went through
    /// [`ScenarioBuilder::build`](crate::ScenarioBuilder) internally.
    pub fn scenario(&mut self) -> Scenario {
        self.counter += 1;
        let (paper, family) = self.source.draw(&mut self.rng);
        let g = &paper.topology;

        // Differentiation: maybe a policer or a two-lane shaper, placed on
        // a link some measured path actually crosses.
        let differentiate = self.rng.gen_bool(self.cfg.differentiation_prob);
        let mut mechanisms = Vec::new();
        if differentiate {
            let link = self.random_path_link(&paper);
            if self.rng.gen_bool(0.5) {
                let fraction = self.rng.gen_range(0.15..0.5);
                let burst_s = self.rng.gen_range(0.01..0.1);
                mechanisms.push(policer_at_fraction(g, link, 1, fraction, burst_s));
            } else {
                let fraction = self.rng.gen_range(0.2..0.45);
                mechanisms.push(shaper_at_fraction(g, link, fraction));
            }
        }
        let mech_links: Vec<LinkId> = mechanisms.iter().map(|&(l, _)| l).collect();
        let mech_label = match mechanisms.first() {
            None => "neutral",
            Some((_, nni_emu::Differentiation::Policing { .. })) => "policing",
            _ => "shaping",
        };

        // A short warm-up keeps most intervals in the measured log at
        // generator durations (the default 5 s would drop everything).
        let measurement = crate::spec::MeasurementConfig {
            duration_s: self
                .rng
                .gen_range(self.cfg.duration_range_s.0..self.cfg.duration_range_s.1),
            warmup_s: Some(0.5),
            seed: self.rng.gen::<u64>(),
            ..crate::spec::MeasurementConfig::default()
        };
        let mut b = Scenario::builder(
            format!("gen#{} {family} {mech_label}", self.counter),
            g.clone(),
        )
        .classes(paper.classes.clone())
        .measurement(measurement)
        .differentiate_all(mechanisms);

        // Traffic: one or two random profile shapes, applied to *every*
        // measured path (class label = the path's performance class). The
        // mix varies between scenarios, not between classes — at invariant-
        // suite durations a heavily skewed class load is statistically
        // indistinguishable from differentiation, so class-symmetric load
        // is what makes the "neutral is never flagged" invariant honest.
        let shapes: Vec<TrafficProfile> = (0..if self.rng.gen_bool(0.25) { 2 } else { 1 })
            .map(|_| self.random_profile(0))
            .collect();
        for path in g.path_ids() {
            let class = paper.class_of(path).min(1) as u8;
            for shape in &shapes {
                let mut profile = shape.clone();
                profile.class = class;
                b = b.path_traffic(path, profile);
            }
        }

        // Queue overrides: shrink or grow a random link's buffer.
        if self.rng.gen_bool(self.cfg.queue_override_prob) {
            let link = self.random_path_link(&paper);
            let q = if self.rng.gen_bool(0.5) {
                QueueOverride::Bytes(self.rng.gen_range(30_000u64..500_000))
            } else {
                QueueOverride::Packets(self.rng.gen_range(20u32..300))
            };
            b = b.queue_override(link, q);
        }

        let expectation = if mech_links.is_empty() {
            Expectation::neutral()
        } else {
            Expectation::nonneutral(mech_links)
        };
        b.expect(expectation)
            .build()
            .expect("generated scenario must be valid")
    }

    /// The next `n` scenarios.
    pub fn scenarios(&mut self, n: usize) -> Vec<Scenario> {
        (0..n).map(|_| self.scenario()).collect()
    }

    /// A random link crossed by a random measured path — differentiation
    /// and queue overrides land where traffic actually flows.
    fn random_path_link(&mut self, paper: &PaperTopology) -> LinkId {
        let g = &paper.topology;
        let path = g.path(nni_topology::PathId(
            self.rng.gen_range(0usize..g.path_count()),
        ));
        let links = path.links();
        links[self.rng.gen_range(0usize..links.len())]
    }

    fn random_profile(&mut self, class: u8) -> TrafficProfile {
        let mean_bits = self.rng.gen_range(2e6..20e6);
        let gap_s = self.rng.gen_range(0.5..2.0);
        let parallel = self.rng.gen_range(4usize..=self.cfg.max_parallel.max(4));
        let mut profile =
            TrafficProfile::pareto_bits(class, CcKind::Cubic, mean_bits, gap_s, parallel);
        if self.rng.gen_bool(self.cfg.mixed_fleet_prob) {
            // The fleet covers the slots exactly, with at least one slot of
            // each algorithm — every "mixed" profile really runs both.
            let cubic = self.rng.gen_range(1usize..parallel);
            profile = profile.with_fleet(CcFleet::fleet(&[
                (CcKind::Cubic, cubic),
                (CcKind::NewReno, parallel - cubic),
            ]));
        } else if self.rng.gen_bool(0.3) {
            profile = profile.with_fleet(CcFleet::Uniform(CcKind::NewReno));
        }
        profile
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ScenarioBuilder;

    #[test]
    fn generator_is_deterministic_per_seed() {
        let a: Vec<String> = ScenarioGen::new(3)
            .scenarios(5)
            .iter()
            .map(|s| format!("{s:?}"))
            .collect();
        let b: Vec<String> = ScenarioGen::new(3)
            .scenarios(5)
            .iter()
            .map(|s| format!("{s:?}"))
            .collect();
        assert_eq!(a, b);
        let c: Vec<String> = ScenarioGen::new(4)
            .scenarios(5)
            .iter()
            .map(|s| format!("{s:?}"))
            .collect();
        assert_ne!(a, c, "different seed must change the stream");
    }

    #[test]
    fn generated_scenarios_revalidate() {
        let mut g = ScenarioGen::new(11);
        for s in g.scenarios(20) {
            assert!(
                ScenarioBuilder::of(s).build().is_ok(),
                "generated scenarios must re-validate Ok"
            );
        }
    }

    #[test]
    fn custom_sources_route_through_the_same_machinery() {
        #[derive(Debug)]
        struct FixedSource;
        impl TopologySource for FixedSource {
            fn draw(&mut self, _rng: &mut StdRng) -> (PaperTopology, String) {
                (dumbbell(2, 2), "fixed".into())
            }
        }
        let mut g = ScenarioGen::with_source(3, GenConfig::default(), FixedSource);
        for s in g.scenarios(5) {
            assert!(s.name.contains("fixed"));
            assert!(ScenarioBuilder::of(s).build().is_ok());
        }
        // The default source *is* LibraryTopologies: identical streams.
        let a: Vec<String> = ScenarioGen::new(9)
            .scenarios(4)
            .iter()
            .map(|s| s.name.clone())
            .collect();
        let b: Vec<String> = ScenarioGen::with_source(9, GenConfig::default(), LibraryTopologies)
            .scenarios(4)
            .iter()
            .map(|s| s.name.clone())
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn neutral_only_emits_no_differentiation() {
        let mut g = ScenarioGen::neutral_only(5);
        for s in g.scenarios(10) {
            assert!(s.differentiation.is_empty());
            assert!(!s.expectation.expect_flagged);
        }
    }

    #[test]
    fn population_covers_the_new_axes() {
        let mut g = ScenarioGen::new(1);
        let pop = g.scenarios(40);
        let mixed = pop
            .iter()
            .flat_map(|s| &s.path_traffic)
            .filter(|(_, p)| p.cc.is_mixed())
            .count();
        let overridden = pop.iter().filter(|s| !s.queue_overrides.is_empty()).count();
        let differentiated = pop.iter().filter(|s| !s.differentiation.is_empty()).count();
        assert!(mixed > 0, "population must contain mixed fleets");
        assert!(overridden > 0, "population must contain queue overrides");
        assert!(
            differentiated > 0 && differentiated < pop.len(),
            "population must mix neutral and differentiated scenarios"
        );
    }
}
