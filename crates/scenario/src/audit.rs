//! Structural audits of a scenario's traffic model.
//!
//! The PR 1 seed-test lesson, made executable: `policer_hits_only_target
//! _class` originally drove a 5 Mb/s policer with a *single* CUBIC flow,
//! which settles into an RTO crawl below the token rate and rarely trips
//! the policer at all. Every policer scenario test should therefore assert
//! [`assert_demand_exceeds_policed_rate`] before trusting its verdicts, so
//! a future traffic-model change cannot silently starve the policer again.

use nni_emu::{policed_demand, PolicedDemand};

use crate::spec::Scenario;

/// Demand must exceed the token rate by at least this factor for the
/// policer to be meaningfully exercised (a bare `>` leaves no headroom for
/// TCP inefficiency under loss).
pub const DEMAND_MARGIN: f64 = 1.5;

/// Audits every policer of a scenario against the traffic that feeds it —
/// the scenario-level view of [`nni_emu::policed_demand`], computed on the
/// compiled link/route/traffic tables.
pub fn policed_demand_report(scenario: &Scenario) -> Vec<PolicedDemand> {
    let exp = scenario.compile();
    policed_demand(exp.links(), exp.routes(), exp.traffic())
}

/// Asserts the two halves of the PR 1 lesson for every policer in the
/// scenario:
///
/// 1. the targeted class's sustained demand through the policed link is at
///    least [`DEMAND_MARGIN`] × the token rate, and
/// 2. at least two parallel flow slots feed the policer (a single policed
///    flow can collapse into an RTO crawl below the rate and never trip
///    the bucket).
///
/// # Panics
///
/// Panics with a diagnostic naming the starved link when either condition
/// fails. Scenarios without policers pass vacuously.
pub fn assert_demand_exceeds_policed_rate(scenario: &Scenario) {
    for d in policed_demand_report(scenario) {
        assert!(
            d.demand_bps >= DEMAND_MARGIN * d.rate_bps,
            "scenario `{}`: class {} demand {:.0} b/s does not exceed \
             {DEMAND_MARGIN}x the {:.0} b/s token rate on {} — the policer \
             would be starved, not exercised",
            scenario.name,
            d.class,
            d.demand_bps,
            d.rate_bps,
            d.link,
        );
        assert!(
            d.feeding_slots >= 2,
            "scenario `{}`: only {} flow slot(s) of class {} feed the \
             policer on {} — a single policed flow can RTO-crawl below the \
             token rate (the PR 1 seed-test lesson)",
            scenario.name,
            d.feeding_slots,
            d.class,
            d.link,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library::{topology_a_scenario, ExperimentParams, Mechanism};

    #[test]
    fn library_policing_scenario_passes_the_audit() {
        let s = topology_a_scenario(ExperimentParams {
            mechanism: Mechanism::Policing(0.2),
            ..ExperimentParams::default()
        });
        let report = policed_demand_report(&s);
        assert_eq!(report.len(), 1);
        assert_demand_exceeds_policed_rate(&s);
    }

    #[test]
    #[should_panic(expected = "would be starved")]
    fn starved_policer_fails_the_audit() {
        // One tiny, rarely-sending source cannot press a 20 Mb/s policer.
        let mut s = topology_a_scenario(ExperimentParams {
            mechanism: Mechanism::Policing(0.2),
            ..ExperimentParams::default()
        });
        for (_, profile) in &mut s.path_traffic {
            profile.parallel = 2;
            profile.mean_gap_s = 1000.0;
        }
        assert_demand_exceeds_policed_rate(&s);
    }

    #[test]
    #[should_panic(expected = "RTO-crawl")]
    fn single_flow_fails_the_audit() {
        let mut s = topology_a_scenario(ExperimentParams {
            mechanism: Mechanism::Policing(0.2),
            flow_size_c1_bits: 10e9,
            flow_size_c2_bits: 10e9,
            ..ExperimentParams::default()
        });
        // One persistent flow per class-2 path: plenty of demand, but a
        // lone flow per the whole policed class is the PR 1 failure mode.
        s.path_traffic.retain(|(p, _)| p.index() != 3);
        for (_, profile) in &mut s.path_traffic {
            profile.parallel = 1;
        }
        assert_demand_exceeds_policed_rate(&s);
    }

    #[test]
    fn neutral_scenarios_pass_vacuously() {
        let s = topology_a_scenario(ExperimentParams::default());
        assert!(policed_demand_report(&s).is_empty());
        assert_demand_exceeds_policed_rate(&s);
    }
}
